//! Network serving end to end in one process: build a sharded index,
//! put a [`NetServer`] in front of it on an ephemeral loopback port, and
//! drive it with four concurrent pipelined [`GphClient`]s — searches,
//! top-k, a batch, and live mutations — then shut down gracefully.
//!
//! ```text
//! cargo run --release --example network_service
//! ```

use gph_suite::datagen::Profile;
use gph_suite::gph::engine::GphConfig;
use gph_suite::net::{GphClient, NetServer, ServerConfig, WireMutation};
use gph_suite::serve::{QueryService, ServiceConfig, ShardedIndex};
use std::sync::Arc;
use std::time::Instant;

const TAU: u32 = 12;
const CLIENTS: usize = 4;
const DEPTH: usize = 8;
const QUERIES_PER_CLIENT: usize = 250;

fn main() {
    // 1. Data and index: skewed 128-bit codes over 2 shards.
    let profile = Profile::synthetic_gamma(0.25);
    let data = profile.generate(8_000, 17);
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), 16);
    let t0 = Instant::now();
    let index = Arc::new(ShardedIndex::build(&data, 2, &cfg).expect("build shards"));
    println!("built {} rows over 2 shards in {:.1}s", index.len(), t0.elapsed().as_secs_f64());

    // 2. Service + TCP server on an ephemeral port.
    let service = Arc::new(QueryService::new(Arc::clone(&index), ServiceConfig::default()));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // 3. Four clients, each pipelining DEPTH searches at a time over its
    //    own connection, cross-checking against the local index.
    let t1 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let data = data.clone();
            let index = Arc::clone(&index);
            std::thread::spawn(move || {
                let client = GphClient::connect(addr).expect("connect");
                let mut inflight = std::collections::VecDeque::new();
                let mut results = 0usize;
                for i in 0..QUERIES_PER_CLIENT {
                    let qi = (c * 31 + i * 7) % data.len();
                    inflight.push_back((qi, client.submit_search(data.row(qi), TAU).unwrap()));
                    if inflight.len() >= DEPTH {
                        let (qi, t) = inflight.pop_front().unwrap();
                        let got = t.wait().expect("pipelined response");
                        assert_eq!(got.ids, index.search(data.row(qi), TAU), "remote != local");
                        results += got.ids.len();
                    }
                }
                for (qi, t) in inflight {
                    let got = t.wait().expect("pipelined response");
                    assert_eq!(got.ids, index.search(data.row(qi), TAU), "remote != local");
                    results += got.ids.len();
                }
                // One top-k and one batch per client, same cross-check.
                let hits = client.topk(data.row(c), 5).expect("topk").hits;
                assert_eq!(hits, index.search_topk(data.row(c), 5));
                let refs: Vec<&[u64]> =
                    (0..16).map(|i| data.row((c + i * 11) % data.len())).collect();
                let entries = client.batch_search(&refs, TAU).expect("batch");
                assert_eq!(entries.len(), refs.len());
                results
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    let elapsed = t1.elapsed().as_secs_f64();
    let n_queries = CLIENTS * (QUERIES_PER_CLIENT + 17);
    println!(
        "{CLIENTS} clients x {QUERIES_PER_CLIENT} pipelined queries (depth {DEPTH}): \
         {total} results in {elapsed:.2}s ({:.0} QPS over loopback)",
        n_queries as f64 / elapsed
    );

    // 4. Live mutations over the wire: insert a row, see it, delete it.
    let client = GphClient::connect(addr).expect("connect");
    let fresh = data.row(0).to_vec();
    assert_eq!(client.insert(900_000, &fresh).unwrap(), WireMutation::Applied { replaced: false });
    assert!(client.search(&fresh, 0).unwrap().ids.contains(&900_000));
    assert_eq!(client.delete(900_000).unwrap(), WireMutation::Applied { replaced: true });
    assert_eq!(client.delete(900_000).unwrap(), WireMutation::NotFound);
    println!("live insert/delete round-tripped over the wire");

    // 5. Remote stats, then graceful shutdown (drains in-flight work).
    let remote = client.stats().expect("stats");
    println!(
        "server: {} rows, p50 {:.2} ms, p95 {:.2} ms, cache hit rate {:.0}%",
        remote.rows,
        remote.stats.service.latency_p50_ns as f64 / 1e6,
        remote.stats.service.latency_p95_ns as f64 / 1e6,
        remote.stats.cache.hit_rate() * 100.0
    );
    let stats = server.shutdown();
    println!(
        "shutdown: {} connections served, {} requests, {} B in, {} B out",
        stats.connections_opened, stats.requests, stats.bytes_in, stats.bytes_out
    );
}

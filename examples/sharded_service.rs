//! Serving-layer tour: sharded scatter-gather behind a query service
//! with batching, admission control, and a result cache.
//!
//! ```text
//! cargo run --release --example sharded_service
//! ```

use gph_suite::datagen::Profile;
use gph_suite::gph::engine::GphConfig;
use gph_suite::hamming_core::Dataset;
use gph_suite::serve::{
    AdmissionConfig, Outcome, OverBudgetPolicy, QueryService, ServiceConfig, ShardedIndex,
};
use std::sync::Arc;

fn main() {
    // 1. Data: medium-skew 128-bit codes, queries = perturbed members.
    let profile = Profile::synthetic_gamma(0.25);
    let data = profile.generate(30_000, 7);
    let queries = {
        let mut qs = Dataset::new(data.dim());
        for i in 0..64usize {
            let mut v = data.vector((i * 397) % data.len());
            for b in 0..3 {
                v.flip((i * 31 + b * 59) % data.dim());
            }
            qs.push(&v).expect("same dim");
        }
        qs
    };

    // 2. Shard the rows and build one GPH engine per shard in parallel.
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), 16);
    let n_shards = 4;
    let index = Arc::new(ShardedIndex::build(&data, n_shards, &cfg).expect("build shards"));
    println!(
        "sharded index: {} rows over {} shards (sizes {:?}), {:.1} MB",
        index.len(),
        index.num_shards(),
        index.shard_sizes(),
        index.size_bytes() as f64 / 1e6
    );

    // 3. Front the shards with the query service: worker pool over a
    //    bounded queue, cost-budget admission (degrade instead of
    //    reject), and a small LRU result cache.
    let service = QueryService::new(
        Arc::clone(&index),
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            cache_capacity: 256,
            admission: AdmissionConfig {
                // Calibrated to these 128-bit codes: τ = 16 queries
                // estimate ~25–55 cost units, so they degrade to the
                // largest τ that fits; τ ≤ 8 queries pass untouched.
                cost_budget: 5.0,
                policy: OverBudgetPolicy::Degrade { min_tau: 2 },
            },
            // Tracing off for this tour; see `gph_suite::obs` and
            // `gph-store query --trace` for the observability layer.
            trace: Default::default(),
            // Everything resident; see the README's "Out-of-core
            // serving" section for the file-backed mode.
            storage: Default::default(),
            generation: 0,
        },
    );

    // 4. Single queries: the first miss executes, the repeat hits cache.
    let q0 = queries.row(0);
    let miss = service.query(q0, 8);
    let hit = service.query(q0, 8);
    println!(
        "single query tau=8: {} results ({} -> cache {})",
        miss.ids().map_or(0, <[u32]>::len),
        if miss.from_cache { "hit" } else { "miss" },
        if hit.from_cache { "hit" } else { "miss" },
    );

    // 5. Batched scatter-gather: one job, answered back-to-back by a
    //    worker; results come back in submission order. τ = 16 blows the
    //    cost budget, so admission degrades each query to the widest
    //    affordable radius instead of running it at full cost.
    let batch: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();
    let responses = service.submit_batch(&batch, 16).wait();
    let mut served = 0usize;
    let mut degraded = 0usize;
    let mut rejected = 0usize;
    for resp in &responses {
        match &resp.outcome {
            Outcome::Ids { degraded_from: Some(_), .. } => {
                served += 1;
                degraded += 1;
            }
            Outcome::Ids { .. } | Outcome::TopK { .. } => served += 1,
            Outcome::Rejected { .. } => rejected += 1,
            Outcome::Overloaded | Outcome::Dropped => {}
        }
    }
    println!(
        "batch of {}: {served} served ({degraded} degraded to fit the cost budget), \
         {rejected} rejected",
        batch.len()
    );

    // 6. A hot query mix to show the cache and the tail latencies.
    for round in 0..4 {
        for i in (0..queries.len()).step_by(2) {
            let _ = service.query(queries.row(i), 8);
        }
        let _ = round;
    }

    // 7. Top-k rides the same path — including admission, which prices
    //    it at the full escalation radius and caps it to fit the budget.
    if let Outcome::TopK { hits, degraded_cap } = &service.query_topk(queries.row(1), 5).outcome {
        println!(
            "top-5 for query 1: {:?} (id, distance){}",
            hits.as_slice(),
            degraded_cap.map_or(String::new(), |c| format!(", escalation capped at tau={c}"))
        );
    }

    // 8. Service-level observability.
    let st = service.stats();
    let cache = service.cache_stats();
    let adm = service.admission_stats();
    println!(
        "stats: {} responses at {:.0} QPS | latency p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms \
         | {:.0} candidates/query",
        st.responses,
        st.qps,
        st.latency_p50_ns as f64 / 1e6,
        st.latency_p95_ns as f64 / 1e6,
        st.latency_p99_ns as f64 / 1e6,
        st.candidates_per_query,
    );
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate, {}/{} resident) | admission: \
         {} admitted, {} degraded, {} rejected",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.len,
        cache.capacity,
        adm.admitted,
        adm.degraded,
        adm.rejected,
    );
    service.shutdown();
}

//! Chemical similarity search — the paper's cheminformatics application
//! (§I): molecules as 881-bit fingerprints, similarity by Tanimoto
//! coefficient, answered through an equivalent Hamming constraint.
//!
//! For a query of weight `a` and Tanimoto threshold `t`, every molecule
//! with `T ≥ t` lies within Hamming distance
//! `τ = ⌊(1−t)/(1+t)·(a + a/t)⌋` (see
//! `hamming_core::distance::tanimoto_to_hamming_bound`), so a GPH range
//! query plus exact Tanimoto verification answers the chemical query
//! exactly.
//!
//! ```text
//! cargo run --release --example chem_search
//! ```

use gph_suite::datagen::Profile;
use gph_suite::gph::engine::{Gph, GphConfig};
use gph_suite::hamming_core::distance::{tanimoto, tanimoto_to_hamming_bound};
use std::time::Instant;

fn main() {
    let profile = Profile::pubchem_like();
    let library = profile.generate(20_000, 11);
    // Queries: "analog" molecules — library fingerprints with a few
    // substructure bits toggled, as a medicinal-chemistry lookup would be.
    let queries = {
        let mut qs = gph_suite::hamming_core::Dataset::new(library.dim());
        for i in 0..20usize {
            let mut v = library.vector(i * 731);
            for b in 0..4 {
                v.flip((i * 13 + b * 97) % library.dim());
            }
            qs.push(&v).expect("same dim");
        }
        qs
    };
    println!(
        "fingerprint library: {} molecules x {} bits (PubChem-style skew)",
        library.len(),
        library.dim()
    );

    let t_threshold = 0.85; // typical similarity-search threshold

    // Weights of our sparse fingerprints are ~60-120 bits, so the Hamming
    // bound stays small; size tau_max for the largest query weight.
    let max_w = (0..queries.len())
        .map(|i| queries.row(i).iter().map(|w| w.count_ones()).sum::<u32>())
        .max()
        .unwrap_or(0);
    let tau_max = tanimoto_to_hamming_bound(max_w, t_threshold).max(1);
    println!("Tanimoto >= {t_threshold} -> Hamming tau up to {tau_max}");

    let cfg = GphConfig::new(GphConfig::suggested_m(library.dim()), tau_max as usize);
    let index = Gph::build(library.clone(), &cfg).expect("build");

    let t0 = Instant::now();
    let mut total_hits = 0usize;
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let w_q: u32 = q.iter().map(|w| w.count_ones()).sum();
        let tau = tanimoto_to_hamming_bound(w_q, t_threshold);
        // Range search then exact Tanimoto verification.
        let hits: Vec<(u32, f64)> = index
            .search(q, tau)
            .into_iter()
            .map(|id| (id, tanimoto(library.row(id as usize), q)))
            .filter(|&(_, sim)| sim >= t_threshold)
            .collect();
        total_hits += hits.len();
        if qi < 3 {
            println!(
                "query {qi} (weight {w_q}, tau {tau}): {} molecules with T >= {t_threshold}: {:?}",
                hits.len(),
                hits.iter().take(4).collect::<Vec<_>>()
            );
        }
    }
    println!(
        "{} queries -> {total_hits} similar molecules in {:.1} ms",
        queries.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Exactness spot-check against brute force on the first query.
    let q = queries.row(0);
    let brute: Vec<u32> = (0..library.len())
        .filter(|&id| tanimoto(library.row(id), q) >= t_threshold)
        .map(|id| id as u32)
        .collect();
    let w_q: u32 = q.iter().map(|w| w.count_ones()).sum();
    let via_index: Vec<u32> = index
        .search(q, tanimoto_to_hamming_bound(w_q, t_threshold))
        .into_iter()
        .filter(|&id| tanimoto(library.row(id as usize), q) >= t_threshold)
        .collect();
    assert_eq!(brute, via_index, "Tanimoto-via-Hamming is exact");
    println!("brute-force cross-check passed ({} hits)", brute.len());
}

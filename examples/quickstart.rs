//! Quickstart: build a GPH index and run Hamming range queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gph_suite::datagen::Profile;
use gph_suite::gph::engine::{Gph, GphConfig};

fn main() {
    // 1. Some 128-dimensional binary vectors (a medium-skew synthetic
    //    stand-in for learned binary codes).
    let profile = Profile::synthetic_gamma(0.25);
    let data = profile.generate(20_000, 42);
    // Queries: data vectors with a few bits flipped (the paper queries
    // with held-out data vectors; perturbation guarantees near matches).
    let queries = {
        let mut qs = gph_suite::hamming_core::Dataset::new(data.dim());
        for i in 0..5usize {
            let mut v = data.vector(i * 1000);
            for b in 0..3 {
                v.flip((i * 17 + b * 41) % data.dim());
            }
            qs.push(&v).expect("same dim");
        }
        qs
    };
    println!("dataset: {} vectors x {} dims", data.len(), data.dim());

    // 2. Build the index. `GphConfig::new(m, tau_max)` uses the paper's
    //    defaults: cost-optimal DP threshold allocation, sub-partition CN
    //    estimation, and the entropy/cost-driven GR partitioning (a query
    //    workload is auto-sampled from the data when none is supplied).
    let m = GphConfig::suggested_m(data.dim()); // ≈ n/24
    let cfg = GphConfig::new(m, 16);
    let index = Gph::build(data, &cfg).expect("build");
    let bs = index.build_stats();
    println!(
        "built: m={m}, partitioning {} ms, indexing {} ms, estimator {} ms, {:.1} MB",
        bs.partition_ms,
        bs.index_ms,
        bs.estimator_ms,
        index.size_bytes() as f64 / 1e6
    );

    // 3. Range queries: all vectors within Hamming distance τ.
    for tau in [4u32, 8, 12] {
        let res = index.search_with_stats(queries.row(0), tau);
        println!(
            "tau={tau:2}: {} results, thresholds {:?} (sum = tau - m + 1 = {}), \
             {} candidates in {:.2} ms",
            res.ids.len(),
            res.stats.thresholds,
            tau as i64 - m as i64 + 1,
            res.stats.n_candidates,
            res.stats.total_ns() as f64 / 1e6,
        );
    }

    // 4. Top-k nearest by threshold escalation.
    let top = index.search_topk(queries.row(1), 5);
    println!("top-5 for query 1: {top:?} (id, distance)");

    // 5. Batched parallel search (the paper's future-work "parallel case").
    let qrefs: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();
    let batch = index.par_search(&qrefs, 8, 4);
    println!(
        "parallel batch at tau=8: {:?} results per query",
        batch.iter().map(Vec::len).collect::<Vec<_>>()
    );
}

//! Near-duplicate Web page detection over 64-bit SimHashes — the paper's
//! §I application (Google's setting: pages are near-duplicates when their
//! SimHashes differ in at most 3 bits).
//!
//! We plant clusters of near-duplicate "pages" in a background corpus,
//! then find every duplicate pair with GPH at τ = 3 and cross-check
//! against a linear scan.
//!
//! ```text
//! cargo run --release --example web_dedup
//! ```

use gph_suite::baselines::{LinearScan, SearchIndex};
use gph_suite::datagen::{plant_near_duplicates, Profile};
use gph_suite::gph::engine::{Gph, GphConfig};
use std::time::Instant;

fn main() {
    const TAU: u32 = 3; // Manku et al.'s near-duplicate threshold
    let background = Profile::uniform(64).generate(50_000, 7);
    let (corpus, truth) = plant_near_duplicates(&background, 200, 5, TAU, 8);
    println!("corpus: {} simhashes (200 planted clusters of 5 near-duplicates)", corpus.len());

    let cfg = GphConfig::new(4, TAU as usize + 1);
    let index = Gph::build(corpus.clone(), &cfg).expect("build");
    let scan = LinearScan::build(corpus.clone());

    // Deduplicate: query every cluster seed, expect its members back.
    let mut found_members = 0usize;
    let mut expected_members = 0usize;
    let t = Instant::now();
    for cluster in &truth.clusters {
        let seed_row = corpus.row(cluster[0] as usize).to_vec();
        let dups = index.search(&seed_row, TAU);
        expected_members += cluster.len();
        found_members += cluster.iter().filter(|m| dups.contains(m)).count();
    }
    let gph_time = t.elapsed();

    let t = Instant::now();
    for cluster in &truth.clusters {
        let seed_row = corpus.row(cluster[0] as usize).to_vec();
        let _ = scan.search(&seed_row, TAU);
    }
    let scan_time = t.elapsed();

    assert_eq!(found_members, expected_members, "GPH is exact");
    println!(
        "found {found_members}/{expected_members} planted duplicates \
         (exactness asserted against construction)"
    );
    println!(
        "200 dedup queries: GPH {:.1} ms vs linear scan {:.1} ms ({:.0}x)",
        gph_time.as_secs_f64() * 1e3,
        scan_time.as_secs_f64() * 1e3,
        scan_time.as_secs_f64() / gph_time.as_secs_f64().max(1e-9)
    );

    // Full-corpus self-join flavour: how many pages have any near-dup?
    // Sample half from the background, half from the planted region.
    let planted_start = corpus.len() - 200 * 5;
    let sample: Vec<&[u64]> = (0..250)
        .map(|i| corpus.row(i * 97 % planted_start))
        .chain((0..250).map(|i| corpus.row(planted_start + (i * 7) % (200 * 5))))
        .collect();
    let t = Instant::now();
    let results = index.par_search(&sample, TAU, 4);
    let with_dups = results.iter().filter(|r| r.len() > 1).count();
    println!(
        "sampled self-join: {}/{} pages have a near-duplicate ({:.1} ms, 4 threads)",
        with_dups,
        sample.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
}

//! Image retrieval over 256-bit GIST-style binary codes — the paper's §I
//! image application: binary codes from learned hashing, k-NN retrieval
//! via Hamming distance.
//!
//! Demonstrates top-k search (threshold escalation over the GPH index)
//! and range search at the image-candidate threshold of τ = 16 used by
//! Zhang et al. [42].
//!
//! ```text
//! cargo run --release --example image_retrieval
//! ```

use gph_suite::baselines::{Mih, SearchIndex};
use gph_suite::datagen::{plant_near_duplicates, Profile};
use gph_suite::gph::engine::{Gph, GphConfig};
use std::time::Instant;

fn main() {
    let profile = Profile::gist_like();
    let background = profile.generate(30_000, 5);
    // Plant visually-near-duplicate "images" (codes within 12 bits).
    let (gallery, truth) = plant_near_duplicates(&background, 50, 8, 12, 6);
    println!("gallery: {} image codes x {} bits", gallery.len(), gallery.dim());

    let cfg = GphConfig::new(GphConfig::suggested_m(gallery.dim()), 32);
    let index = Gph::build(gallery.clone(), &cfg).expect("build");
    let mih = Mih::build(gallery.clone(), Mih::suggested_m(gallery.dim(), gallery.len()))
        .expect("mih build");

    // Top-k retrieval for a planted query: its cluster should surface.
    let cluster = &truth.clusters[0];
    let q = gallery.row(cluster[0] as usize).to_vec();
    let t = Instant::now();
    let top = index.search_topk(&q, 8);
    println!("top-8 for a planted image ({:.2} ms): {:?}", t.elapsed().as_secs_f64() * 1e3, top);
    let found = top.iter().filter(|(id, _)| cluster.contains(id)).count();
    println!("{found}/8 of the top-8 are from the query's planted cluster");

    // Range search at the candidate threshold of [42] (τ = 16), compared
    // against MIH.
    let queries: Vec<&[u64]> =
        truth.clusters.iter().take(20).map(|c| gallery.row(c[0] as usize)).collect();
    let tau = 16u32;
    for (name, engine) in [("GPH", &index as &dyn Retrieval), ("MIH", &mih)] {
        let t = Instant::now();
        let mut results = 0usize;
        for q in &queries {
            results += engine.range(q, tau).len();
        }
        println!(
            "{name}: {} queries at tau={tau} -> {results} candidates in {:.2} ms",
            queries.len(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }
}

/// Minimal retrieval facade so GPH and MIH share the loop above.
trait Retrieval {
    fn range(&self, q: &[u64], tau: u32) -> Vec<u32>;
}

impl Retrieval for Gph {
    fn range(&self, q: &[u64], tau: u32) -> Vec<u32> {
        self.search(q, tau)
    }
}

impl Retrieval for Mih {
    fn range(&self, q: &[u64], tau: u32) -> Vec<u32> {
        self.search(q, tau)
    }
}

//! Warm restart: build a sharded index once, snapshot it to disk, then
//! bring a query service back up from the snapshot — without re-running
//! the partition optimizer, the index build, or estimator training.
//!
//! ```text
//! cargo run --release --example warm_restart
//! ```

use gph_suite::datagen::Profile;
use gph_suite::gph::engine::GphConfig;
use gph_suite::hamming_core::Dataset;
use gph_suite::serve::{QueryService, ServiceConfig, ShardedIndex};
use std::time::Instant;

fn main() {
    // 1. Data: skewed 128-bit codes, queries = perturbed members.
    let profile = Profile::synthetic_gamma(0.25);
    let data = profile.generate(20_000, 11);
    let queries = {
        let mut qs = Dataset::new(data.dim());
        for i in 0..32usize {
            let mut v = data.vector((i * 613) % data.len());
            for b in 0..4 {
                v.flip((i * 37 + b * 61) % data.dim());
            }
            qs.push(&v).expect("same dim");
        }
        qs
    };

    // 2. The expensive offline phase: GR partitioning + index build +
    //    estimator construction, one engine per shard.
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), 16);
    let t_build = Instant::now();
    let built = ShardedIndex::build(&data, 4, &cfg).expect("build shards");
    let build_s = t_build.elapsed().as_secs_f64();
    println!(
        "cold build: {} rows over {} shards in {build_s:.2}s",
        built.len(),
        built.num_shards()
    );

    // 3. Snapshot the fleet: one checksummed engine file per shard plus
    //    the manifest (shard count, id-hash fingerprint, per-file CRCs).
    let dir = std::env::temp_dir().join("gph_warm_restart_example");
    let t_snap = Instant::now();
    let manifest = built.snapshot(&dir).expect("snapshot");
    println!(
        "snapshot: {} shard files + MANIFEST in {:.2}s -> {}",
        manifest.shards.len(),
        t_snap.elapsed().as_secs_f64(),
        dir.display()
    );

    // 4. "Process restart": restore the index from disk. This is pure
    //    deserialization — partition optimization never re-runs.
    let t_restore = Instant::now();
    let restored = ShardedIndex::restore(&dir).expect("restore");
    let restore_s = t_restore.elapsed().as_secs_f64();
    println!(
        "warm restore: {} rows over {} shards in {restore_s:.2}s \
         ({:.0}x faster than the cold build)",
        restored.len(),
        restored.num_shards(),
        build_s / restore_s.max(1e-9)
    );

    // 5. The restored fleet is query-for-query identical to the built one.
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        assert_eq!(restored.search(q, 8), built.search(q, 8), "range qi={qi}");
        assert_eq!(restored.search_topk(q, 5), built.search_topk(q, 5), "topk qi={qi}");
    }
    println!("verified: restored results identical on {} queries", queries.len());

    // 6. Warm-start the full service on the snapshot and take traffic.
    let service = QueryService::warm_start(&dir, ServiceConfig::default()).expect("warm start");
    let qrefs: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();
    let responses = service.submit_batch(&qrefs, 8).wait();
    let served: usize = responses.iter().map(|r| r.ids().map_or(0, <[u32]>::len)).sum();
    let stats = service.stats();
    println!(
        "warm-started service answered {} queries ({served} results, p95 {:.2} ms)",
        stats.responses,
        stats.latency_p95_ns as f64 / 1e6
    );

    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-algorithm agreement: every exact engine returns exactly the
//! linear-scan result set, on random data and on the paper's skewed
//! profiles. This is the load-bearing correctness property of the whole
//! reproduction.

use baselines::{HmSearch, LinearScan, Mih, PartAlloc, SearchIndex};
use datagen::Profile;
use gph::engine::{Gph, GphConfig};
use gph::partition_opt::PartitionStrategy;
use hamming_core::{BitVector, Dataset};
use proptest::prelude::*;

fn bits(dim: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn all_exact_engines_agree_random(
        rows in prop::collection::vec(bits(32), 5..40),
        q in bits(32),
        tau in 0u32..8,
    ) {
        let ds = Dataset::from_vectors(
            32,
            rows.iter().map(|r| BitVector::from_bits(r.iter().copied())),
        )
        .unwrap();
        let qv = BitVector::from_bits(q.iter().copied());
        let truth = ds.linear_scan(qv.words(), tau);

        let scan = LinearScan::build(ds.clone());
        prop_assert_eq!(scan.search(qv.words(), tau), truth.clone());

        let mih = Mih::build(ds.clone(), 4).unwrap();
        prop_assert_eq!(mih.search(qv.words(), tau), truth.clone());

        let hm = HmSearch::build(ds.clone(), tau).unwrap();
        prop_assert_eq!(hm.search(qv.words(), tau), truth.clone());

        let pa = PartAlloc::build(ds.clone(), tau).unwrap();
        prop_assert_eq!(pa.search(qv.words(), tau), truth.clone());

        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 11 };
        let g = Gph::build(ds, &cfg).unwrap();
        prop_assert_eq!(g.search(qv.words(), tau), truth);
    }
}

/// Deterministic agreement run on each paper-profile generator, larger τ.
#[test]
fn engines_agree_on_paper_profiles() {
    for (profile, tau) in [
        (Profile::sift_like(), 10u32),
        (Profile::uqvideo_like(), 12),
        (Profile::synthetic_gamma(0.4), 8),
    ] {
        let ds = profile.generate(600, 99);
        let queries = profile.generate(5, 100);
        let mih = Mih::build(ds.clone(), 6).unwrap();
        let hm = HmSearch::build(ds.clone(), tau).unwrap();
        let pa = PartAlloc::build(ds.clone(), tau).unwrap();
        let mut cfg = GphConfig::new(6, tau as usize);
        cfg.strategy = PartitionStrategy::Os;
        let g = Gph::build(ds.clone(), &cfg).unwrap();
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let truth = ds.linear_scan(q, tau);
            assert_eq!(mih.search(q, tau), truth, "{} MIH qi={qi}", profile.name);
            assert_eq!(hm.search(q, tau), truth, "{} HmSearch qi={qi}", profile.name);
            assert_eq!(pa.search(q, tau), truth, "{} PartAlloc qi={qi}", profile.name);
            assert_eq!(g.search(q, tau), truth, "{} GPH qi={qi}", profile.name);
        }
    }
}

/// High-dimensional (multi-word partitions, 881 dims) agreement.
#[test]
fn engines_agree_on_pubchem_profile() {
    let profile = Profile::pubchem_like();
    let ds = profile.generate(300, 7);
    let queries = profile.generate(3, 8);
    let tau = 16u32;
    let mih = Mih::build(ds.clone(), 36).unwrap();
    let mut cfg = GphConfig::new(36, tau as usize);
    cfg.strategy = PartitionStrategy::Original;
    let g = Gph::build(ds.clone(), &cfg).unwrap();
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let truth = ds.linear_scan(q, tau);
        assert_eq!(mih.search(q, tau), truth, "MIH qi={qi}");
        assert_eq!(g.search(q, tau), truth, "GPH qi={qi}");
    }
}

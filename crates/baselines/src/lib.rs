//! # baselines
//!
//! Every comparator algorithm from the GPH paper's evaluation (§VII-A),
//! implemented from scratch on the same substrate as GPH so that index
//! sizes, candidate counts, and query times are directly comparable:
//!
//! * [`scan::LinearScan`] — the naïve exact algorithm (ground truth).
//! * [`mih::Mih`] — Multi-Index Hashing \[25\]: equi-width partitions,
//!   `⌊τ/m⌋` thresholds, query-side enumeration.
//! * [`hmsearch::HmSearch`] — \[43\]: `⌊(τ+3)/2⌋` partitions, thresholds
//!   in {0, 1}, data-side 1-deletion variants, even-τ enhancement.
//! * [`partalloc::PartAlloc`] — \[11\] adapted to Hamming space: `τ + 1`
//!   partitions, greedy thresholds in {−1, 0, 1}, positional filter,
//!   deletion-variant index.
//! * [`lsh::MinHashLsh`] — approximate minhash LSH over the Hamming →
//!   Jaccard transform \[1\], k = 3, table count from a recall target.
//!
//! All exact methods return precisely the linear-scan result set; the
//! cross-algorithm property test in `/tests` enforces it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmsearch;
pub mod lsh;
pub mod mih;
pub mod partalloc;
pub mod scan;
pub(crate) mod variants;

pub use hmsearch::HmSearch;
pub use lsh::MinHashLsh;
pub use mih::Mih;
pub use partalloc::PartAlloc;
pub use scan::LinearScan;

/// Candidate-level instrumentation shared by all engines (the quantities
/// Fig. 2(b) and Fig. 7 report).
#[derive(Clone, Copy, Debug, Default)]
pub struct CandidateStats {
    /// Signatures (index probes) issued.
    pub n_signatures: u64,
    /// Postings entries touched (`Σ_s |I_s|`).
    pub sum_postings: u64,
    /// Distinct candidates verified.
    pub n_candidates: u64,
    /// Results returned.
    pub n_results: u64,
}

/// A built Hamming-threshold search index.
pub trait SearchIndex {
    /// Human-readable algorithm name (experiment tables).
    fn name(&self) -> &'static str;

    /// Exact or approximate range search.
    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats);

    /// IDs only.
    fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).0
    }

    /// Heap footprint of the index structures (Fig. 6).
    fn size_bytes(&self) -> usize;
}

/// Epoch-stamped visited set used by every candidate generator here.
pub(crate) struct Stamp {
    stamps: Vec<u32>,
    epoch: u32,
}

impl Stamp {
    pub(crate) fn new(n: usize) -> Self {
        Stamp { stamps: vec![0; n], epoch: 0 }
    }

    /// Starts a new generation; all marks are implicitly cleared.
    pub(crate) fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
    }

    /// Marks `id`; returns true the first time within this epoch.
    #[inline]
    pub(crate) fn mark(&mut self, id: usize) -> bool {
        if self.stamps[id] != self.epoch {
            self.stamps[id] = self.epoch;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_marks_once_per_epoch() {
        let mut s = Stamp::new(4);
        s.next_epoch();
        assert!(s.mark(2));
        assert!(!s.mark(2));
        s.next_epoch();
        assert!(s.mark(2));
    }

    #[test]
    fn stamp_epoch_wraparound_resets() {
        let mut s = Stamp::new(2);
        s.epoch = u32::MAX;
        s.next_epoch(); // wraps to 0 -> resets to 1
        assert_eq!(s.epoch, 1);
        assert!(s.mark(0));
        assert!(!s.mark(0));
    }
}

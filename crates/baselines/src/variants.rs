//! Shared deletion-variant index used by HmSearch and PartAlloc.
//!
//! Both methods index, for every data vector and partition, the exact
//! projected value **and** its 1-deletion variants (the value with one
//! position masked, tagged by the position). Two values within Hamming
//! distance 1 share either the exact key or a deletion key, so radius-1
//! lookups need no enumeration of the 2-neighbourhood — at the price of
//! an index `n+1` times larger than the data, which is exactly the
//! index-size gap Fig. 6 shows for these methods.

use hamming_core::fasthash::FastMap;
use hamming_core::key::{key_of, mix64};
use hamming_core::project::ProjectedDataset;

/// Compacted postings: key → contiguous ID range.
pub(crate) struct CompactPostings {
    ranges: FastMap<u64, (u32, u32)>,
    ids: Vec<u32>,
}

impl CompactPostings {
    /// Builds from `(key, id)` pairs (two passes, IDs preserved in input
    /// order — callers emit ascending IDs so postings stay sorted).
    pub(crate) fn build(pairs: &[(u64, u32)]) -> Self {
        let mut counts: FastMap<u64, u32> = FastMap::default();
        for &(k, _) in pairs {
            *counts.entry(k).or_insert(0) += 1;
        }
        let mut ranges: FastMap<u64, (u32, u32)> =
            FastMap::with_capacity_and_hasher(counts.len(), Default::default());
        let mut offset = 0u32;
        for (&k, &c) in &counts {
            ranges.insert(k, (offset, 0));
            offset += c;
        }
        let mut ids = vec![0u32; pairs.len()];
        for &(k, id) in pairs {
            let slot = ranges.get_mut(&k).expect("counted");
            ids[(slot.0 + slot.1) as usize] = id;
            slot.1 += 1;
        }
        CompactPostings { ranges, ids }
    }

    #[inline]
    pub(crate) fn get(&self, key: u64) -> &[u32] {
        match self.ranges.get(&key) {
            Some(&(off, len)) => &self.ids[off as usize..(off + len) as usize],
            None => &[],
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        self.ids.len() * 4 + self.ranges.len() * 18
    }
}

/// Exact + 1-deletion postings for one partition.
pub(crate) struct VariantIndex {
    pub(crate) width: usize,
    words: usize,
    exact: CompactPostings,
    deletions: CompactPostings,
}

/// Key for a masked value at `pos`: the masked value's key entangled with
/// the position. Collisions only merge postings (extra candidates, never
/// misses), so exactness is preserved by verification.
#[inline]
pub(crate) fn deletion_key(masked_key: u64, pos: usize) -> u64 {
    mix64(masked_key ^ (pos as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1E7)
}

impl VariantIndex {
    /// Builds the exact and deletion postings for partition `part`.
    pub(crate) fn build(pd: &ProjectedDataset, part: usize) -> Self {
        let col = pd.column(part);
        let width = col.width();
        let words = col.words().max(1);
        let n = pd.len();
        let mut exact_pairs = Vec::with_capacity(n);
        let mut del_pairs = Vec::with_capacity(n * width);
        let mut buf = vec![0u64; words];
        for id in 0..n {
            let v = col.value(id);
            exact_pairs.push((key_of(v, width), id as u32));
            buf.copy_from_slice(v);
            for pos in 0..width {
                let w = pos / 64;
                let mask = 1u64 << (pos % 64);
                let orig = buf[w];
                buf[w] &= !mask; // canonical masked form: bit cleared
                del_pairs.push((deletion_key(key_of(&buf, width), pos), id as u32));
                buf[w] = orig;
            }
        }
        VariantIndex {
            width,
            words,
            exact: CompactPostings::build(&exact_pairs),
            deletions: CompactPostings::build(&del_pairs),
        }
    }

    /// Postings with the exact query value (distance 0).
    #[inline]
    pub(crate) fn exact_postings(&self, q_val: &[u64]) -> &[u32] {
        self.exact.get(key_of(q_val, self.width))
    }

    /// Calls `f(ids)` for each deletion slot of the query value; the
    /// union of these lists with the exact postings is the distance ≤ 1
    /// candidate set.
    pub(crate) fn for_deletion_postings<F: FnMut(&[u32])>(&self, q_val: &[u64], mut f: F) {
        let mut buf = q_val[..self.words].to_vec();
        for pos in 0..self.width {
            let w = pos / 64;
            let mask = 1u64 << (pos % 64);
            let orig = buf[w];
            buf[w] &= !mask;
            f(self.deletions.get(deletion_key(key_of(&buf, self.width), pos)));
            buf[w] = orig;
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        self.exact.size_bytes() + self.deletions.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::project::Projector;
    use hamming_core::{BitVector, Dataset, Partitioning};
    use std::collections::HashSet;

    fn build_one(dim: usize, rows: &[&str]) -> (Dataset, VariantIndex) {
        let ds =
            Dataset::from_vectors(dim, rows.iter().map(|s| BitVector::parse(s).unwrap())).unwrap();
        let p = Partitioning::equi_width(dim, 1).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let vi = VariantIndex::build(&pd, 0);
        (ds, vi)
    }

    /// Distance ≤ 1 candidate set from the variant index.
    fn leq1_set(vi: &VariantIndex, q: &BitVector) -> HashSet<u32> {
        let mut out: HashSet<u32> = vi.exact_postings(q.words()).iter().copied().collect();
        vi.for_deletion_postings(q.words(), |ids| out.extend(ids.iter().copied()));
        out
    }

    #[test]
    fn variant_lookup_finds_all_within_one() {
        let rows = ["0000", "0001", "0011", "1111", "1000"];
        let (ds, vi) = build_one(4, &rows);
        for qs in ["0000", "0101", "1111", "0010"] {
            let q = BitVector::parse(qs).unwrap();
            let got = leq1_set(&vi, &q);
            for id in 0..ds.len() {
                let d = hamming_core::distance::hamming(ds.row(id), q.words());
                if d <= 1 {
                    assert!(got.contains(&(id as u32)), "q={qs} id={id} d={d}");
                } else if d > 1 {
                    // No false positives for width ≤ 64 (keys collide only
                    // for wide partitions).
                    assert!(!got.contains(&(id as u32)), "q={qs} id={id} d={d}");
                }
            }
        }
    }

    #[test]
    fn exact_postings_only_distance_zero() {
        let rows = ["0000", "0001", "0000"];
        let (_, vi) = build_one(4, &rows);
        let q = BitVector::parse("0000").unwrap();
        assert_eq!(vi.exact_postings(q.words()), &[0, 2]);
    }

    #[test]
    fn deletion_keys_distinguish_positions() {
        assert_ne!(deletion_key(5, 0), deletion_key(5, 1));
        assert_ne!(deletion_key(5, 0), deletion_key(6, 0));
    }
}

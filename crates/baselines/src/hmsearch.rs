//! HmSearch — Zhang, Qin, Wang, Sun & Lu \[43\].
//!
//! Divides vectors into `m = ⌊(τ+3)/2⌋` equi-width partitions, so each
//! partition's basic-pigeonhole threshold is 0 or 1, answered without
//! enumeration through the 1-deletion variant index. Candidate rules:
//!
//! * **odd τ**: some partition has distance ≤ 1;
//! * **even τ**: some partition matches exactly, **or** at least two
//!   partitions have distance ≤ 1
//!
//! (if neither held, the total distance would exceed τ). The paper notes
//! this filter has multiple cases but is **not tight** — which is what
//! GPH improves on. The index depends on τ through `m`, so one build
//! serves a single `tau_build` (the experiment harness rebuilds per τ,
//! as the original system does).

use crate::variants::VariantIndex;
use crate::{CandidateStats, SearchIndex, Stamp};
use hamming_core::error::{HammingError, Result};
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::{Dataset, Partitioning};
use parking_lot::Mutex;

/// A built HmSearch index for a fixed `tau_build`.
pub struct HmSearch {
    data: Dataset,
    projector: Projector,
    parts: Vec<VariantIndex>,
    tau_build: u32,
    /// Scratch: (global candidate stamp, per-partition dedup stamp,
    /// per-id ≤1-partition counter, per-id exact flag).
    scratch: Mutex<(Stamp, Stamp, Vec<u8>, Vec<bool>)>,
}

/// HmSearch's partition count for a threshold.
pub fn hmsearch_m(tau: u32, dim: usize) -> usize {
    (((tau + 3) / 2) as usize).clamp(1, dim.max(1))
}

impl HmSearch {
    /// Builds for threshold `tau_build` with equi-width partitions.
    pub fn build(data: Dataset, tau_build: u32) -> Result<Self> {
        let m = hmsearch_m(tau_build, data.dim());
        let p = Partitioning::equi_width(data.dim(), m)?;
        Self::build_with_partitioning(data, p, tau_build)
    }

    /// Builds over an explicit partitioning with `m = ⌊(τ+3)/2⌋` parts
    /// (the §VII-E runs equip baselines with the OS rearrangement).
    pub fn build_with_partitioning(data: Dataset, p: Partitioning, tau_build: u32) -> Result<Self> {
        if p.num_parts() != hmsearch_m(tau_build, data.dim()) {
            return Err(HammingError::InvalidParameter(format!(
                "HmSearch at tau={tau_build} needs m={} partitions, got {}",
                hmsearch_m(tau_build, data.dim()),
                p.num_parts()
            )));
        }
        let projector = Projector::new(&p);
        let projected = ProjectedDataset::build(&data, &projector);
        let parts = (0..p.num_parts()).map(|i| VariantIndex::build(&projected, i)).collect();
        let n = data.len();
        Ok(HmSearch {
            data,
            projector,
            parts,
            tau_build,
            scratch: Mutex::new((Stamp::new(n), Stamp::new(n), vec![0; n], vec![false; n])),
        })
    }

    /// The threshold this index was built for.
    pub fn tau_build(&self) -> u32 {
        self.tau_build
    }
}

impl SearchIndex for HmSearch {
    fn name(&self) -> &'static str {
        "HmSearch"
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats) {
        assert!(
            tau <= self.tau_build,
            "HmSearch index built for tau={} cannot serve tau={tau}",
            self.tau_build
        );
        let mut stats = CandidateStats::default();
        let even = tau.is_multiple_of(2);
        let mut guard = self.scratch.lock();
        let (cand_stamp, part_stamp, counts, exacts) = &mut *guard;
        cand_stamp.next_epoch();
        let mut candidates: Vec<u32> = Vec::new();
        // Per-id state is lazily reset via the candidate stamp's "touched"
        // trick: the `touched` list records which slots to clear after.
        let mut touched: Vec<u32> = Vec::new();

        for (i, vi) in self.parts.iter().enumerate() {
            let q_proj = self.projector.project(i, query);
            part_stamp.next_epoch();
            // Exact postings: distance 0.
            let exact = vi.exact_postings(&q_proj);
            stats.n_signatures += 1;
            stats.sum_postings += exact.len() as u64;
            for &id in exact {
                let idu = id as usize;
                if part_stamp.mark(idu) {
                    if counts[idu] == 0 && !exacts[idu] {
                        touched.push(id);
                    }
                    counts[idu] += 1;
                    exacts[idu] = true;
                }
            }
            // Deletion postings: distance ≤ 1.
            vi.for_deletion_postings(&q_proj, |ids| {
                stats.n_signatures += 1;
                stats.sum_postings += ids.len() as u64;
                for &id in ids {
                    let idu = id as usize;
                    if part_stamp.mark(idu) {
                        if counts[idu] == 0 && !exacts[idu] {
                            touched.push(id);
                        }
                        counts[idu] += 1;
                    }
                }
            });
        }
        for &id in &touched {
            let idu = id as usize;
            let is_cand = if even { exacts[idu] || counts[idu] >= 2 } else { counts[idu] >= 1 };
            if is_cand && cand_stamp.mark(idu) {
                candidates.push(id);
            }
            counts[idu] = 0;
            exacts[idu] = false;
        }
        stats.n_candidates = candidates.len() as u64;
        let mut ids: Vec<u32> = candidates
            .into_iter()
            .filter(|&id| {
                hamming_core::distance::hamming_within(self.data.row(id as usize), query, tau)
                    .is_some()
            })
            .collect();
        ids.sort_unstable();
        stats.n_results = ids.len() as u64;
        (ids, stats)
    }

    fn size_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            ds.push(&BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.35)))).unwrap();
        }
        ds
    }

    #[test]
    fn hmsearch_equals_scan_odd_and_even_tau() {
        let ds = random_dataset(48, 400, 1);
        let queries = random_dataset(48, 8, 2);
        for tau in [0u32, 1, 2, 3, 4, 5, 6, 7] {
            let hm = HmSearch::build(ds.clone(), tau).unwrap();
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                assert_eq!(hm.search(q, tau), ds.linear_scan(q, tau), "tau={tau} qi={qi}");
            }
        }
    }

    #[test]
    fn partition_count_formula() {
        assert_eq!(hmsearch_m(0, 128), 1);
        assert_eq!(hmsearch_m(1, 128), 2);
        assert_eq!(hmsearch_m(6, 128), 4);
        assert_eq!(hmsearch_m(7, 128), 5);
        assert_eq!(hmsearch_m(100, 8), 8); // clamped to dim
    }

    #[test]
    fn serving_lower_tau_is_allowed() {
        let ds = random_dataset(32, 150, 3);
        let hm = HmSearch::build(ds.clone(), 5).unwrap();
        // Built for τ=5 (m=4): any τ ≤ 5 still satisfies the pigeonhole
        // bound ⌊τ/m⌋ ≤ 1, so results stay exact.
        for tau in [0u32, 2, 4, 5] {
            let q = ds.row(0).to_vec();
            assert_eq!(hm.search(&q, tau), ds.linear_scan(&q, tau), "tau={tau}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot serve")]
    fn serving_higher_tau_panics() {
        let ds = random_dataset(32, 50, 4);
        let hm = HmSearch::build(ds.clone(), 3).unwrap();
        let q = ds.row(0).to_vec();
        let _ = hm.search(&q, 9);
    }

    #[test]
    fn index_is_larger_than_mih() {
        let ds = random_dataset(64, 300, 5);
        let hm = HmSearch::build(ds.clone(), 6).unwrap();
        let mih = crate::mih::Mih::build(ds, 4).unwrap();
        // Deletion variants blow the index up — Fig. 6's qualitative gap.
        assert!(hm.size_bytes() > mih.size_bytes());
    }
}

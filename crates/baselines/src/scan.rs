//! The naïve exact algorithm: verify every vector.

use crate::{CandidateStats, SearchIndex};
use hamming_core::Dataset;

/// Linear scan — `O(N · n/64)` per query, zero index overhead. Every
/// other engine's output is defined as equal to this one's.
pub struct LinearScan {
    data: Dataset,
}

impl LinearScan {
    /// Wraps a dataset.
    pub fn build(data: Dataset) -> Self {
        LinearScan { data }
    }

    /// The wrapped data.
    pub fn data(&self) -> &Dataset {
        &self.data
    }
}

impl SearchIndex for LinearScan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats) {
        let ids = self.data.linear_scan(query, tau);
        let stats = CandidateStats {
            n_signatures: 0,
            sum_postings: self.data.len() as u64,
            n_candidates: self.data.len() as u64,
            n_results: ids.len() as u64,
        };
        (ids, stats)
    }

    fn size_bytes(&self) -> usize {
        0 // no structure beyond the data itself
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::BitVector;

    #[test]
    fn scan_finds_expected() {
        let ds = Dataset::from_vectors(
            8,
            ["00000000", "00000111", "00001111", "10011111"]
                .iter()
                .map(|s| BitVector::parse(s).unwrap()),
        )
        .unwrap();
        let scan = LinearScan::build(ds);
        let q = BitVector::parse("10000000").unwrap();
        let (ids, st) = scan.search_with_stats(q.words(), 2);
        assert_eq!(ids, vec![0]);
        assert_eq!(st.n_results, 1);
        assert_eq!(st.n_candidates, 4);
    }
}

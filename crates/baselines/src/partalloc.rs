//! PartAlloc — Deng, Li, Wen & Feng \[11\], adapted from set similarity
//! join to Hamming distance search (as the paper's evaluation does via
//! the Jaccard ↔ Hamming conversion).
//!
//! `m = τ + 1` equi-width partitions; per-partition thresholds from
//! {−1, 0, 1} allocated **greedily** by estimated candidate counts, with
//! the general-budget constraint `‖T‖₁ = τ − m + 1 = 0` (#(+1) = #(−1)).
//! Signatures exist on both sides: the data side indexes exact values
//! *and* 1-deletion variants (hence the large index of Fig. 6), and a
//! positional filter (per-partition popcount difference) prunes
//! candidates before verification.

use crate::variants::VariantIndex;
use crate::{CandidateStats, SearchIndex, Stamp};
use hamming_core::error::{HammingError, Result};
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::{Dataset, Partitioning};
use parking_lot::Mutex;

/// A built PartAlloc index for a fixed `tau_build`.
pub struct PartAlloc {
    data: Dataset,
    projector: Projector,
    parts: Vec<VariantIndex>,
    /// Per-partition popcounts of every data vector (positional filter).
    weights: Vec<Vec<u16>>,
    tau_build: u32,
    scratch: Mutex<Stamp>,
}

/// PartAlloc's partition count: `τ + 1`, clamped to the dimensionality.
pub fn partalloc_m(tau: u32, dim: usize) -> usize {
    ((tau + 1) as usize).clamp(1, dim.max(1))
}

impl PartAlloc {
    /// Builds for `tau_build` with equi-width partitions.
    pub fn build(data: Dataset, tau_build: u32) -> Result<Self> {
        let m = partalloc_m(tau_build, data.dim());
        let p = Partitioning::equi_width(data.dim(), m)?;
        Self::build_with_partitioning(data, p, tau_build)
    }

    /// Builds over an explicit partitioning with `τ + 1` parts.
    pub fn build_with_partitioning(data: Dataset, p: Partitioning, tau_build: u32) -> Result<Self> {
        if p.num_parts() != partalloc_m(tau_build, data.dim()) {
            return Err(HammingError::InvalidParameter(format!(
                "PartAlloc at tau={tau_build} needs m={} partitions, got {}",
                partalloc_m(tau_build, data.dim()),
                p.num_parts()
            )));
        }
        let projector = Projector::new(&p);
        let projected = ProjectedDataset::build(&data, &projector);
        let m = p.num_parts();
        let parts: Vec<VariantIndex> = (0..m).map(|i| VariantIndex::build(&projected, i)).collect();
        let mut weights = Vec::with_capacity(m);
        for i in 0..m {
            let col = projected.column(i);
            weights.push(
                (0..data.len())
                    .map(|id| col.value(id).iter().map(|w| w.count_ones()).sum::<u32>() as u16)
                    .collect(),
            );
        }
        let n = data.len();
        Ok(PartAlloc {
            data,
            projector,
            parts,
            weights,
            tau_build,
            scratch: Mutex::new(Stamp::new(n)),
        })
    }

    /// The greedy {−1, 0, 1} allocation of \[11\]: start from all-zero
    /// (already a valid budget), then flip the cheapest (+1) / most
    /// expensive (−1) pairs while the estimated candidate total drops.
    fn greedy_allocation(&self, q_projs: &[Vec<u64>]) -> Vec<i8> {
        let m = self.parts.len();
        // Estimated candidates at threshold 0 and 1 per partition.
        let mut cost0 = vec![0f64; m];
        let mut cost1 = vec![0f64; m];
        for i in 0..m {
            let vi = &self.parts[i];
            let exact = vi.exact_postings(&q_projs[i]).len() as f64;
            cost0[i] = exact;
            let mut dels = 0f64;
            vi.for_deletion_postings(&q_projs[i], |ids| dels += ids.len() as f64);
            // Each distance-0 pair appears in every deletion slot; each
            // distance-1 pair appears once.
            cost1[i] = exact + (dels - exact * vi.width as f64).max(0.0);
        }
        let mut alloc = vec![0i8; m];
        if m < 2 {
            return alloc;
        }
        // Pair the largest cost0 (to drop) with the smallest marginal
        // cost1 − cost0 (to raise), while beneficial.
        let mut drop_order: Vec<usize> = (0..m).collect();
        drop_order.sort_by(|&a, &b| cost0[b].partial_cmp(&cost0[a]).expect("no NaN"));
        let mut raise_order: Vec<usize> = (0..m).collect();
        raise_order.sort_by(|&a, &b| {
            (cost1[a] - cost0[a]).partial_cmp(&(cost1[b] - cost0[b])).expect("no NaN")
        });
        let mut di = 0usize;
        let mut ri = 0usize;
        while di < drop_order.len() && ri < raise_order.len() {
            let d = drop_order[di];
            let r = raise_order[ri];
            if alloc[d] != 0 {
                di += 1;
                continue;
            }
            if alloc[r] != 0 || r == d {
                ri += 1;
                continue;
            }
            let gain = cost0[d];
            let pay = cost1[r] - cost0[r];
            if gain > pay {
                alloc[d] = -1;
                alloc[r] = 1;
                di += 1;
                ri += 1;
            } else {
                break;
            }
        }
        alloc
    }

    /// The threshold this index was built for.
    pub fn tau_build(&self) -> u32 {
        self.tau_build
    }
}

impl SearchIndex for PartAlloc {
    fn name(&self) -> &'static str {
        "PartAlloc"
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats) {
        assert!(
            tau <= self.tau_build,
            "PartAlloc index built for tau={} cannot serve tau={tau}",
            self.tau_build
        );
        let m = self.parts.len();
        let mut stats = CandidateStats::default();
        let q_projs: Vec<Vec<u64>> = (0..m).map(|i| self.projector.project(i, query)).collect();
        // Allocation is computed against tau_build's partition layout; a
        // smaller query τ only loosens the budget (τ − m + 1 shrinks), so
        // the all-zero base remains correct and the greedy pairs remain a
        // valid general-pigeonhole vector.
        let alloc = self.greedy_allocation(&q_projs);
        let q_weights: Vec<u16> =
            q_projs.iter().map(|v| v.iter().map(|w| w.count_ones()).sum::<u32>() as u16).collect();
        let mut stamp = self.scratch.lock();
        stamp.next_epoch();
        let mut candidates: Vec<u32> = Vec::new();
        for i in 0..m {
            if alloc[i] < 0 {
                continue;
            }
            let vi = &self.parts[i];
            let exact = vi.exact_postings(&q_projs[i]);
            stats.n_signatures += 1;
            stats.sum_postings += exact.len() as u64;
            for &id in exact {
                if stamp.mark(id as usize) {
                    candidates.push(id);
                }
            }
            if alloc[i] == 1 {
                vi.for_deletion_postings(&q_projs[i], |ids| {
                    stats.n_signatures += 1;
                    stats.sum_postings += ids.len() as u64;
                    for &id in ids {
                        if stamp.mark(id as usize) {
                            candidates.push(id);
                        }
                    }
                });
            }
        }
        // Positional filter: Σᵢ |w(xᵢ) − w(qᵢ)| ≤ τ is necessary for
        // H(x, q) ≤ τ.
        let before = candidates.len() as u64;
        candidates.retain(|&id| {
            let mut acc = 0u32;
            for (wpart, &wq) in self.weights.iter().zip(&q_weights) {
                let wx = wpart[id as usize] as i32;
                acc += wx.abs_diff(wq as i32);
                if acc > tau {
                    return false;
                }
            }
            true
        });
        stats.n_candidates = before; // generated candidates (pre-filter)
        let mut ids: Vec<u32> = candidates
            .into_iter()
            .filter(|&id| {
                hamming_core::distance::hamming_within(self.data.row(id as usize), query, tau)
                    .is_some()
            })
            .collect();
        ids.sort_unstable();
        stats.n_results = ids.len() as u64;
        (ids, stats)
    }

    fn size_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.size_bytes()).sum::<usize>()
            + self.weights.iter().map(|w| w.len() * 2).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            ds.push(&BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.3)))).unwrap();
        }
        ds
    }

    #[test]
    fn partalloc_equals_scan() {
        let ds = random_dataset(48, 400, 1);
        let queries = random_dataset(48, 8, 2);
        for tau in [0u32, 1, 3, 5, 8] {
            let pa = PartAlloc::build(ds.clone(), tau).unwrap();
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                assert_eq!(pa.search(q, tau), ds.linear_scan(q, tau), "tau={tau} qi={qi}");
            }
        }
    }

    #[test]
    fn allocation_is_balanced() {
        let ds = random_dataset(64, 300, 3);
        let pa = PartAlloc::build(ds.clone(), 7).unwrap();
        let q = ds.row(0);
        let q_projs: Vec<Vec<u64>> =
            (0..pa.parts.len()).map(|i| pa.projector.project(i, q)).collect();
        let alloc = pa.greedy_allocation(&q_projs);
        let plus: i32 = alloc.iter().filter(|&&a| a == 1).count() as i32;
        let minus: i32 = alloc.iter().filter(|&&a| a == -1).count() as i32;
        assert_eq!(plus, minus, "general budget must stay 0: {alloc:?}");
    }

    #[test]
    fn positional_filter_never_drops_results() {
        let ds = random_dataset(32, 250, 4);
        let pa = PartAlloc::build(ds.clone(), 4).unwrap();
        let queries = random_dataset(32, 6, 5);
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            assert_eq!(pa.search(q, 4), ds.linear_scan(q, 4));
        }
    }

    #[test]
    fn index_includes_weights() {
        let ds = random_dataset(32, 100, 6);
        let pa = PartAlloc::build(ds, 3).unwrap();
        assert!(pa.size_bytes() > 0);
        assert_eq!(pa.weights.len(), 4);
        assert_eq!(pa.weights[0].len(), 100);
    }
}

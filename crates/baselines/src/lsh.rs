//! MinHash LSH — the approximate baseline of §VII-A.
//!
//! The Hamming constraint converts to Jaccard via the PartEnum-style
//! transform \[1\]: each vector maps to the n-element set
//! `{ 2i + x[i] : i < n }`, so `|S(x) ∩ S(y)| = n − H(x, y)` and
//! `J(x, y) = (n − H) / (n + H)`; threshold τ becomes
//! `t = (n − τ) / (n + τ)`. Following the paper: `k = 3` minhashes are
//! concatenated per signature and `l = ⌈log_{1−t^k}(1 − recall)⌉` tables
//! target 95 % recall. Results are verified with the exact Hamming
//! distance, so LSH returns a *subset* of the true results (no false
//! positives, possible misses).

use crate::variants::CompactPostings;
use crate::{CandidateStats, SearchIndex, Stamp};
use hamming_core::error::{HammingError, Result};
use hamming_core::key::mix64;
use hamming_core::Dataset;
use parking_lot::Mutex;

/// One LSH table: `k` hash functions and the banded postings.
struct Table {
    /// Precomputed hash of element `2i + b` for function `f`:
    /// `elem_hash[f][2i + b]`.
    elem_hash: Vec<Vec<u64>>,
    postings: CompactPostings,
}

/// A built minhash LSH index for a fixed `tau_build`.
pub struct MinHashLsh {
    data: Dataset,
    tables: Vec<Table>,
    k: usize,
    tau_build: u32,
    scratch: Mutex<Stamp>,
}

/// Number of tables for a recall target: `⌈log_{1−t^k}(1−recall)⌉`,
/// clamped to `[1, max_l]`.
pub fn table_count(n: usize, tau: u32, k: usize, recall: f64, max_l: usize) -> usize {
    let t = (n as f64 - tau as f64) / (n as f64 + tau as f64);
    let p_sig = t.powi(k as i32); // P[one signature collides]
    if p_sig >= 1.0 {
        return 1;
    }
    let l = (1.0 - recall).ln() / (1.0 - p_sig).ln();
    (l.ceil() as usize).clamp(1, max_l)
}

impl MinHashLsh {
    /// Builds with the paper's parameters (k = 3, recall 95 %).
    pub fn build(data: Dataset, tau_build: u32) -> Result<Self> {
        Self::build_with(data, tau_build, 3, 0.95, 256, 0x15AC)
    }

    /// Fully parameterized build.
    pub fn build_with(
        data: Dataset,
        tau_build: u32,
        k: usize,
        recall: f64,
        max_l: usize,
        seed: u64,
    ) -> Result<Self> {
        if data.dim() == 0 {
            return Err(HammingError::InvalidParameter("zero-dimensional data".into()));
        }
        if !(0.0..1.0).contains(&recall) {
            return Err(HammingError::InvalidParameter(format!(
                "recall must be in [0, 1), got {recall}"
            )));
        }
        let n = data.dim();
        let l = table_count(n, tau_build, k, recall, max_l);
        let mut tables = Vec::with_capacity(l);
        for li in 0..l {
            // Precompute per-function element hashes: h(2i + b).
            let elem_hash: Vec<Vec<u64>> = (0..k)
                .map(|f| {
                    let salt = mix64(seed ^ ((li * k + f) as u64) << 7);
                    (0..2 * n).map(|e| mix64(salt ^ e as u64)).collect()
                })
                .collect();
            // Signature per data vector.
            let mut pairs = Vec::with_capacity(data.len());
            for id in 0..data.len() {
                let sig = signature(data.row(id), n, &elem_hash);
                pairs.push((sig, id as u32));
            }
            tables.push(Table { elem_hash, postings: CompactPostings::build(&pairs) });
        }
        let n_rows = data.len();
        Ok(MinHashLsh { data, tables, k, tau_build, scratch: Mutex::new(Stamp::new(n_rows)) })
    }

    /// Number of tables `l`.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Minhashes per signature `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The threshold this index targets.
    pub fn tau_build(&self) -> u32 {
        self.tau_build
    }
}

/// Concatenated-minhash signature of one vector under a table's hash
/// functions.
fn signature(row: &[u64], n: usize, elem_hash: &[Vec<u64>]) -> u64 {
    let mut sig = 0xCBF2_9CE4_8422_2325u64;
    for hashes in elem_hash {
        let mut min = u64::MAX;
        for i in 0..n {
            let b = (row[i / 64] >> (i % 64)) & 1;
            let h = hashes[2 * i + b as usize];
            if h < min {
                min = h;
            }
        }
        sig = mix64(sig ^ min);
    }
    sig
}

impl SearchIndex for MinHashLsh {
    fn name(&self) -> &'static str {
        "LSH"
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats) {
        let mut stats = CandidateStats::default();
        let n = self.data.dim();
        let mut stamp = self.scratch.lock();
        stamp.next_epoch();
        let mut candidates: Vec<u32> = Vec::new();
        for table in &self.tables {
            let sig = signature(query, n, &table.elem_hash);
            stats.n_signatures += 1;
            let ids = table.postings.get(sig);
            stats.sum_postings += ids.len() as u64;
            for &id in ids {
                if stamp.mark(id as usize) {
                    candidates.push(id);
                }
            }
        }
        stats.n_candidates = candidates.len() as u64;
        let mut ids: Vec<u32> = candidates
            .into_iter()
            .filter(|&id| {
                hamming_core::distance::hamming_within(self.data.row(id as usize), query, tau)
                    .is_some()
            })
            .collect();
        ids.sort_unstable();
        stats.n_results = ids.len() as u64;
        (ids, stats)
    }

    fn size_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.postings.size_bytes() + t.elem_hash.iter().map(|h| h.len() * 8).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            ds.push(&BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.5)))).unwrap();
        }
        ds
    }

    #[test]
    fn table_count_behaviour() {
        // Tighter similarity thresholds (small τ) need fewer... actually:
        // t close to 1 -> p_sig close to 1 -> few tables.
        let small = table_count(128, 2, 3, 0.95, 256);
        let large = table_count(128, 32, 3, 0.95, 256);
        assert!(small <= large, "small-τ should need fewer tables");
        assert!(large >= 2);
        assert_eq!(table_count(128, 0, 3, 0.95, 256), 1);
        assert_eq!(table_count(128, 64, 3, 0.95, 4), 4); // clamped
    }

    #[test]
    fn lsh_returns_subset_with_high_recall() {
        let ds = random_dataset(64, 800, 1);
        // Plant near-duplicates of row 0 to guarantee hits.
        let mut ds2 = ds.clone();
        let base = ds.vector(0);
        for flip in 0..4usize {
            let mut v = base.clone();
            for f in 0..flip {
                v.flip(f);
            }
            ds2.push(&v).unwrap();
        }
        let lsh = MinHashLsh::build(ds2.clone(), 6).unwrap();
        let q = base.clone();
        let truth = ds2.linear_scan(q.words(), 6);
        let got = lsh.search(q.words(), 6);
        // Subset property (no false positives).
        for id in &got {
            assert!(truth.contains(id));
        }
        // Recall: at 95 % target over ≥5 planted neighbours we expect to
        // find most of them (deterministic seed keeps this stable).
        assert!(
            got.len() * 100 >= truth.len() * 60,
            "recall too low: {}/{}",
            got.len(),
            truth.len()
        );
    }

    #[test]
    fn exact_duplicates_always_found() {
        // J = 1 for identical vectors -> every table collides.
        let ds = random_dataset(32, 50, 3);
        let mut ds2 = ds.clone();
        ds2.push(&ds.vector(7)).unwrap(); // duplicate of id 7
        let lsh = MinHashLsh::build(ds2.clone(), 4).unwrap();
        let got = lsh.search(ds2.row(7), 0);
        assert!(got.contains(&7));
        assert!(got.contains(&(ds2.len() as u32 - 1)));
    }

    #[test]
    fn rejects_bad_recall() {
        let ds = random_dataset(16, 10, 4);
        assert!(MinHashLsh::build_with(ds, 2, 3, 1.5, 16, 0).is_err());
    }
}

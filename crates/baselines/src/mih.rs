//! Multi-Index Hashing (MIH) — Norouzi, Punjani & Fleet \[25\].
//!
//! The state-of-the-art baseline the paper builds on (§II-C): `m`
//! equi-width partitions, an inverted index per partition, and — by the
//! basic pigeonhole principle (Lemma 1) — a uniform per-partition
//! threshold `⌊τ/m⌋`. Signatures are enumerated on the query side only.
//! The index is τ-independent, so one build serves every threshold.

use crate::{CandidateStats, SearchIndex, Stamp};
use hamming_core::enumerate::{ball_size, for_each_in_ball_u64, for_each_in_ball_words};
use hamming_core::error::Result;
use hamming_core::key::key_of;
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::{Dataset, Partitioning};
use parking_lot::Mutex;

/// A built MIH index.
pub struct Mih {
    data: Dataset,
    projector: Projector,
    projected: ProjectedDataset,
    index: hamming_core::InvertedIndex,
    m: usize,
    stamp: Mutex<Stamp>,
}

impl Mih {
    /// Builds with `m` equi-width partitions over the original dimension
    /// order. (The paper tunes `m` per dataset; the experiment harness
    /// sweeps it and keeps the fastest, as §VII-A describes.)
    pub fn build(data: Dataset, m: usize) -> Result<Self> {
        let p = Partitioning::equi_width(data.dim(), m)?;
        Self::build_with_partitioning(data, p)
    }

    /// Builds over an explicit partitioning (the §VII-E runs equip
    /// baselines with the OS rearrangement).
    pub fn build_with_partitioning(data: Dataset, p: Partitioning) -> Result<Self> {
        let projector = Projector::new(&p);
        let projected = ProjectedDataset::build(&data, &projector);
        let index = hamming_core::InvertedIndex::build(&projected);
        let n = data.len();
        Ok(Mih {
            data,
            projector,
            projected,
            index,
            m: p.num_parts(),
            stamp: Mutex::new(Stamp::new(n)),
        })
    }

    /// MIH's rule-of-thumb partition count `m ≈ n / log₂ N` (from \[25\]).
    pub fn suggested_m(dim: usize, n_rows: usize) -> usize {
        let lg = (n_rows.max(2) as f64).log2();
        ((dim as f64 / lg).round() as usize).clamp(1, dim.max(1))
    }
}

impl SearchIndex for Mih {
    fn name(&self) -> &'static str {
        "MIH"
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats) {
        let mut stats = CandidateStats::default();
        let tau_part = (tau as usize) / self.m; // ⌊τ/m⌋ (Lemma 1)
        let mut stamp = self.stamp.lock();
        stamp.next_epoch();
        let mut candidates: Vec<u32> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        for i in 0..self.m {
            let shape = self.projector.shape(i);
            let width = shape.width;
            let radius = tau_part.min(width);
            let q_proj = self.projector.project(i, query);
            // Same guard as GPH's engine: when the ball outnumbers the
            // data, scan the projected column instead of enumerating.
            if ball_size(width, radius) > self.data.len() as u64 && !self.data.is_empty() {
                let col = self.projected.column(i);
                for id in 0..self.data.len() {
                    if hamming_core::distance::hamming(col.value(id), &q_proj) as usize <= radius {
                        stats.sum_postings += 1;
                        if stamp.mark(id) {
                            candidates.push(id as u32);
                        }
                    }
                }
                continue;
            }
            keys.clear();
            if width <= 64 {
                let center = q_proj.first().copied().unwrap_or(0);
                for_each_in_ball_u64(center, width, radius, |v| keys.push(v));
            } else {
                for_each_in_ball_words(&q_proj, width, radius, |w| keys.push(key_of(w, width)));
            }
            stats.n_signatures += keys.len() as u64;
            for &key in &keys {
                let postings = self.index.postings(i, key);
                stats.sum_postings += postings.len() as u64;
                for &id in postings {
                    if stamp.mark(id as usize) {
                        candidates.push(id);
                    }
                }
            }
        }
        stats.n_candidates = candidates.len() as u64;
        let mut ids: Vec<u32> = candidates
            .into_iter()
            .filter(|&id| {
                hamming_core::distance::hamming_within(self.data.row(id as usize), query, tau)
                    .is_some()
            })
            .collect();
        ids.sort_unstable();
        stats.n_results = ids.len() as u64;
        (ids, stats)
    }

    fn size_bytes(&self) -> usize {
        self.index.size_bytes() + self.projected.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            ds.push(&BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4)))).unwrap();
        }
        ds
    }

    #[test]
    fn mih_equals_scan() {
        let ds = random_dataset(64, 500, 1);
        let mih = Mih::build(ds.clone(), 4).unwrap();
        let queries = random_dataset(64, 10, 2);
        for tau in [0u32, 3, 8, 15] {
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                assert_eq!(mih.search(q, tau), ds.linear_scan(q, tau), "tau={tau}");
            }
        }
    }

    #[test]
    fn single_partition_mih_degenerates_to_column_scan() {
        let ds = random_dataset(16, 100, 3);
        let mih = Mih::build(ds.clone(), 1).unwrap();
        let q = ds.row(0).to_vec();
        assert_eq!(mih.search(&q, 4), ds.linear_scan(&q, 4));
    }

    #[test]
    fn suggested_m_reasonable() {
        // 128 dims, 1M rows: 128 / 20 ≈ 6.
        assert_eq!(Mih::suggested_m(128, 1 << 20), 6);
        assert!(Mih::suggested_m(8, 4) >= 1);
    }

    #[test]
    fn stats_track_candidates() {
        let ds = random_dataset(32, 200, 4);
        let mih = Mih::build(ds.clone(), 2).unwrap();
        let q = ds.row(7).to_vec();
        let (ids, st) = mih.search_with_stats(&q, 4);
        assert!(ids.contains(&7));
        assert!(st.n_results <= st.n_candidates);
        assert!(st.n_candidates <= st.sum_postings);
    }
}

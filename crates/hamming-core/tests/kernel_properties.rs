//! Property tests pinning every distance/verification kernel to the
//! portable reference loop.
//!
//! CI runs this suite twice: once portable and once with
//! `--features simd`. With the feature on, [`hamming`] and
//! [`verify_candidates`] dispatch to the `std::arch` AVX2/POPCNT kernels
//! (when the CPU has them), so these properties pin the accelerated
//! paths **bit-identical** to the portable word loops over random widths
//! — including the specialized 1/2/4-word row paths and the generic
//! fallback. With the feature off they pin the portable specializations
//! against the naive definition.

use hamming_core::distance::{
    hamming, hamming_portable, hamming_within, verify_candidates, verify_candidates_portable,
};
use proptest::prelude::*;

/// The definitional Hamming distance, written as naively as possible.
fn naive_hamming(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(&x, &y)| (x ^ y).count_ones()).sum()
}

proptest! {
    /// `hamming` (whatever kernel it dispatches to) equals the naive
    /// definition over random word widths, including widths around the
    /// SIMD chunk boundary (0..=12 covers tails of every length).
    #[test]
    fn hamming_matches_naive(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..12)
    ) {
        let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let expect = naive_hamming(&a, &b);
        prop_assert_eq!(hamming(&a, &b), expect);
        prop_assert_eq!(hamming_portable(&a, &b), expect);
    }

    /// `hamming_within` agrees with the full distance at, below, and
    /// above the threshold — in particular at `d == tau` exactly.
    #[test]
    fn hamming_within_boundary_is_exact(
        pairs in prop::collection::vec((any::<u64>(), any::<u64>()), 1..10)
    ) {
        let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let d = naive_hamming(&a, &b);
        prop_assert_eq!(hamming_within(&a, &b, d), Some(d));
        prop_assert_eq!(hamming_within(&a, &b, d + 1), Some(d));
        if d > 0 {
            prop_assert_eq!(hamming_within(&a, &b, d - 1), None);
        }
    }

    /// The batched verifier (dispatched and portable) returns exactly
    /// the candidates the scalar early-exit kernel accepts, in input
    /// order, over random slabs, widths, thresholds, and candidate
    /// lists (with repeats and in arbitrary order).
    #[test]
    fn batch_verify_matches_scalar_reference(
        wpv in 1usize..6,
        n_rows in 1usize..50,
        tau in 0u32..80,
        seed in any::<u64>(),
        cand_seed in any::<u64>(),
    ) {
        // Deterministic slab from the seed (xorshift).
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let words: Vec<u64> = (0..n_rows * wpv).map(|_| next()).collect();
        let query: Vec<u64> = (0..wpv).map(|_| next()).collect();
        let mut c = cand_seed | 1;
        let mut cnext = move || { c ^= c << 13; c ^= c >> 7; c ^= c << 17; c };
        let candidates: Vec<u32> =
            (0..n_rows * 2).map(|_| (cnext() % n_rows as u64) as u32).collect();

        let expect: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|&id| {
                let s = id as usize * wpv;
                hamming_within(&words[s..s + wpv], &query, tau).is_some()
            })
            .collect();
        let mut got = Vec::new();
        verify_candidates(&words, wpv, &query, tau, &candidates, &mut got);
        prop_assert_eq!(&got, &expect);
        let mut portable = Vec::new();
        verify_candidates_portable(&words, wpv, &query, tau, &candidates, &mut portable);
        prop_assert_eq!(&portable, &expect);
    }
}

#[test]
fn empty_slices_and_empty_candidates() {
    assert_eq!(hamming(&[], &[]), 0);
    assert_eq!(hamming_within(&[], &[], 0), Some(0));
    let mut out = Vec::new();
    verify_candidates(&[1, 2, 3, 4], 2, &[0, 0], 128, &[], &mut out);
    assert!(out.is_empty());
}

#[test]
fn simd_report_matches_compile_config() {
    // `simd_active()` may only ever be true when the feature is on.
    let active = hamming_core::distance::simd_active();
    let compiled = cfg!(feature = "simd");
    assert!(!active || compiled, "simd_active() true without the feature compiled in");
}

//! Golden-bytes test for the offset-addressed container framing.
//!
//! Pins the worked example in the workspace-level `FORMAT.md`
//! ("Worked example: a minimal v3 container") byte-for-byte: a
//! two-section `GPHX` container whose exact header, padding, slot
//! table, and trailer hex are printed in the spec. If this test fails,
//! either the framing changed (bump the container versions and update
//! FORMAT.md) or the spec rotted.

use hamming_core::io::{Footer, OffsetWriter, OFFSET_HEADER_LEN, PAGE_SIZE};

/// Builds the spec's example: magic "GPHX", version 3, section 0 =
/// b"GPH!" (unaligned), section 1 = [1..=8] (page-aligned).
fn example_container() -> Vec<u8> {
    let mut w = OffsetWriter::new(*b"GPHX", 3);
    let off0 = w.section(b"GPH!");
    let off1 = w.aligned_section(&[1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(off0, OFFSET_HEADER_LEN as u64);
    assert_eq!(off1, PAGE_SIZE as u64);
    w.finish()
}

#[test]
fn worked_example_matches_format_md_byte_for_byte() {
    let bytes = example_container();

    // FORMAT.md: "Total file length: 4164 bytes".
    assert_eq!(bytes.len(), 4164);

    // Header hex from the spec.
    assert_eq!(
        &bytes[..OFFSET_HEADER_LEN],
        &[0x47, 0x50, 0x48, 0x58, 0x03, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00],
    );

    // Section 0 payload at offset 12, then zero padding to 4096.
    assert_eq!(&bytes[12..16], b"GPH!");
    assert!(bytes[16..PAGE_SIZE].iter().all(|&b| b == 0), "inter-section padding must be zero");
    assert_eq!(&bytes[PAGE_SIZE..PAGE_SIZE + 8], &[1, 2, 3, 4, 5, 6, 7, 8]);

    // Slot table hex from the spec (offset 4104, 40 bytes).
    #[rustfmt::skip]
    let slot_table: [u8; 40] = [
        0x0c, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // slot 0 offset = 12
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // slot 0 len    = 4
        0x7b, 0x44, 0xf2, 0x3f,                         // slot 0 crc
        0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // slot 1 offset = 4096
        0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // slot 1 len    = 8
        0xc5, 0x88, 0xca, 0x3f,                         // slot 1 crc
    ];
    assert_eq!(&bytes[4104..4144], &slot_table);

    // Trailer hex from the spec (last 20 bytes).
    #[rustfmt::skip]
    let trailer: [u8; 20] = [
        0x03, 0x00, 0x00, 0x00,                         // version echo
        0x02, 0x00, 0x00, 0x00,                         // n_slots echo
        0x47, 0x50, 0x48, 0x58,                         // magic echo "GPHX"
        0x4e, 0x3d, 0x0f, 0xce,                         // footer crc
        0x47, 0x50, 0x48, 0x46,                         // footer magic "GPHF"
    ];
    assert_eq!(&bytes[4144..], &trailer);
}

#[test]
fn worked_example_round_trips_through_both_open_paths() {
    let bytes = example_container();

    // Resident open: full validation including payload CRCs + padding.
    let f = Footer::parse_bytes(*b"GPHX", 3, &bytes).expect("resident open");
    assert_eq!(f.n_slots(), 2);
    assert_eq!(f.payload(&bytes, 0).expect("slot 0"), b"GPH!");
    assert_eq!(f.payload(&bytes, 1).expect("slot 1"), &[1, 2, 3, 4, 5, 6, 7, 8]);

    // Cold open: footer-only validation from the file tail, as the
    // file-backed restore does. footer_len(2) = 2*20 + 20 = 60.
    assert_eq!(Footer::footer_len(2), 60);
    let f = Footer::parse(*b"GPHX", 3, bytes.len() as u64, &bytes[bytes.len() - 60..])
        .expect("cold open");
    assert_eq!(f.n_slots(), 2);
}

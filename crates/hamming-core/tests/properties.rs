//! Property-based tests for the hamming-core substrate.

use hamming_core::bitvec::BitVector;
use hamming_core::dataset::Dataset;
use hamming_core::distance::{hamming, hamming_within};
use hamming_core::enumerate::{ball_size, for_each_in_ball_u64, for_each_in_ball_words};
use hamming_core::io::{decode_dataset, encode_dataset};
use hamming_core::partition::Partitioning;
use hamming_core::project::{ProjectedDataset, Projector};
use proptest::prelude::*;

/// Strategy: a bit vector of the given dimensionality as a Vec<bool>.
fn bits(dim: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), dim)
}

fn bv(b: &[bool]) -> BitVector {
    BitVector::from_bits(b.iter().copied())
}

proptest! {
    #[test]
    fn distance_equals_naive_count(a in bits(130), b in bits(130)) {
        let (va, vb) = (bv(&a), bv(&b));
        let naive = a.iter().zip(&b).filter(|(x, y)| x != y).count() as u32;
        prop_assert_eq!(va.distance(&vb), naive);
    }

    #[test]
    fn distance_is_a_metric(a in bits(96), b in bits(96), c in bits(96)) {
        let (va, vb, vc) = (bv(&a), bv(&b), bv(&c));
        // symmetry
        prop_assert_eq!(va.distance(&vb), vb.distance(&va));
        // identity
        prop_assert_eq!(va.distance(&va), 0);
        // triangle inequality
        prop_assert!(va.distance(&vc) <= va.distance(&vb) + vb.distance(&vc));
    }

    #[test]
    fn within_agrees_with_full(a in bits(200), b in bits(200), tau in 0u32..200) {
        let (va, vb) = (bv(&a), bv(&b));
        let d = hamming(va.words(), vb.words());
        let w = hamming_within(va.words(), vb.words(), tau);
        if d <= tau {
            prop_assert_eq!(w, Some(d));
        } else {
            prop_assert_eq!(w, None);
        }
    }

    #[test]
    fn ball_enumeration_matches_bruteforce(center in 0u64..256, radius in 0usize..=8) {
        let width = 8usize;
        let mut got = Vec::new();
        for_each_in_ball_u64(center, width, radius, |v| got.push(v));
        let mut expect: Vec<u64> = (0..(1u64 << width))
            .filter(|v| (v ^ center).count_ones() as usize <= radius)
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got_sorted, expect);
        prop_assert_eq!(got.len() as u64, ball_size(width, radius));
    }

    #[test]
    fn multiword_ball_count(radius in 0usize..=2) {
        let width = 70usize;
        let mut count = 0u64;
        for_each_in_ball_words(&[0, 0], width, radius, |_| count += 1);
        prop_assert_eq!(count, ball_size(width, radius));
    }

    #[test]
    fn projection_preserves_distance_sum(
        rows in prop::collection::vec(bits(40), 2..6),
        m in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Sum of per-partition Hamming distances equals the full distance
        // (partitions are disjoint and cover all dims) — the fact all
        // pigeonhole arguments in the paper rest on.
        let ds = Dataset::from_vectors(40, rows.iter().map(|r| bv(r))).unwrap();
        let p = Partitioning::random_shuffle(40, m, seed).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        let full = hamming(ds.row(0), ds.row(1));
        let sum: u32 = (0..p.num_parts())
            .map(|i| hamming(pd.column(i).value(0), pd.column(i).value(1)))
            .sum();
        prop_assert_eq!(full, sum);
    }

    #[test]
    fn linear_scan_is_sound_and_complete(
        rows in prop::collection::vec(bits(64), 1..20),
        q in bits(64),
        tau in 0u32..64,
    ) {
        let ds = Dataset::from_vectors(64, rows.iter().map(|r| bv(r))).unwrap();
        let qv = bv(&q);
        let res = ds.linear_scan(qv.words(), tau);
        for id in 0..ds.len() {
            let d = hamming(ds.row(id), qv.words());
            prop_assert_eq!(res.contains(&(id as u32)), d <= tau, "id={} d={} tau={}", id, d, tau);
        }
    }

    #[test]
    fn io_roundtrip(rows in prop::collection::vec(bits(77), 0..12)) {
        let ds = Dataset::from_vectors(77, rows.iter().map(|r| bv(r))).unwrap();
        let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
        prop_assert_eq!(decoded.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert_eq!(decoded.row(i), ds.row(i));
        }
    }

    #[test]
    fn select_dims_then_distance_matches_projection(
        rows in prop::collection::vec(bits(30), 2..5),
        mask in prop::collection::vec(any::<bool>(), 30),
    ) {
        prop_assume!(mask.iter().any(|&b| b));
        let dims: Vec<usize> = mask.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        let ds = Dataset::from_vectors(30, rows.iter().map(|r| bv(r))).unwrap();
        let sub = ds.select_dims(&dims).unwrap();
        let naive: u32 = dims
            .iter()
            .filter(|&&d| rows[0][d] != rows[1][d])
            .count() as u32;
        prop_assert_eq!(hamming(sub.row(0), sub.row(1)), naive);
    }
}

//! `std::arch` x86-64 kernels behind runtime detection.
//!
//! Compiled only with `--features simd` on x86-64. Every entry point
//! checks [`available`] (AVX2 + POPCNT, detected once and cached) and
//! reports "not handled" otherwise, so callers in [`crate::distance`]
//! fall back to the portable word loops on any other hardware. The
//! portable and accelerated kernels are pinned bit-identical by the
//! property tests in `tests/kernel_properties.rs`.
//!
//! Two techniques, both standard for binary codes (compare `rupphash`'s
//! word-transmuted popcount and Faiss's `hamming.h`):
//!
//! * scalar `POPCNT`: inside a `#[target_feature(enable = "popcnt")]`
//!   function, `u64::count_ones` compiles to the hardware instruction
//!   even though the crate's baseline target lacks the feature — this is
//!   where most of the win over the portable build comes from;
//! * vector AVX2: 256-bit XOR plus the `vpshufb` nibble-LUT popcount
//!   (`popcount_words`), folding four words per lane operation, used for
//!   4-word (256-bit) rows and as the inner loop for wider rows.
//!
//! Verification kernels also software-prefetch candidate rows a fixed
//! distance ahead: posting-driven row accesses are random, so the
//! hardware stride prefetcher cannot help, but the candidate list itself
//! tells us exactly which cache lines are needed next.

use std::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_castsi256_si128,
    _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8,
    _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16,
    _mm256_xor_si256, _mm_add_epi64, _mm_cvtsi128_si64, _mm_extract_epi64, _mm_prefetch,
    _MM_HINT_T0,
};
use std::sync::atomic::{AtomicU8, Ordering};

/// Cached runtime detection: 0 = unknown, 1 = unavailable, 2 = available.
static DETECTED: AtomicU8 = AtomicU8::new(0);

/// True when the CPU supports AVX2 and POPCNT (cached after first call).
pub(crate) fn available() -> bool {
    match DETECTED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let ok = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt");
            DETECTED.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
            ok
        }
    }
}

/// How many candidates ahead the verification kernels prefetch.
const PREFETCH_AHEAD: usize = 16;

/// Per-64-bit-lane popcount of a 256-bit vector via the `vpshufb`
/// nibble lookup table, horizontally folded by `vpsadbw`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcount_words(v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
    let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_sad_epu8(cnt, _mm256_setzero_si256())
}

/// Sums the four 64-bit lanes of `v`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi64(v: __m256i) -> u64 {
    let s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
    (_mm_cvtsi128_si64(s) as u64).wrapping_add(_mm_extract_epi64::<1>(s) as u64)
}

/// Full-width Hamming distance: AVX2 over 4-word chunks, scalar POPCNT
/// tail. No early exit — at these throughputs the branchless full
/// distance beats a per-word compare for every row the batch kernels
/// feed it.
#[target_feature(enable = "avx2,popcnt")]
unsafe fn hamming_avx2(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let mut acc = _mm256_setzero_si256();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    for c in 0..chunks {
        // SAFETY: `c * 4 + 4 <= n`, so both unaligned 32-byte loads are
        // fully inside the slices.
        let va = _mm256_loadu_si256(pa.add(c * 4).cast());
        let vb = _mm256_loadu_si256(pb.add(c * 4).cast());
        acc = _mm256_add_epi64(acc, popcount_words(_mm256_xor_si256(va, vb)));
    }
    let mut d = hsum_epi64(acc);
    for i in chunks * 4..n {
        d += u64::from((a[i] ^ b[i]).count_ones());
    }
    d as u32
}

/// Accelerated [`crate::distance::hamming`]: `Some(distance)` when the
/// kernel ran, `None` when the slice is too narrow to pay for dispatch
/// or the CPU lacks the features.
#[inline]
pub(crate) fn hamming(a: &[u64], b: &[u64]) -> Option<u32> {
    if a.len() >= 4 && available() {
        // SAFETY: AVX2 + POPCNT presence was verified by `available`.
        Some(unsafe { hamming_avx2(a, b) })
    } else {
        None
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn verify_w1(words: &[u64], q: u64, tau: u32, candidates: &[u32], out: &mut Vec<u32>) {
    for (i, &id) in candidates.iter().enumerate() {
        if let Some(&nid) = candidates.get(i + PREFETCH_AHEAD) {
            // SAFETY: candidate IDs index valid rows, so the pointer is
            // in bounds (prefetch has no memory effect regardless).
            _mm_prefetch::<_MM_HINT_T0>(words.as_ptr().add(nid as usize).cast());
        }
        if (words[id as usize] ^ q).count_ones() <= tau {
            out.push(id);
        }
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn verify_w2(
    words: &[u64],
    query: &[u64],
    tau: u32,
    candidates: &[u32],
    out: &mut Vec<u32>,
) {
    let (q0, q1) = (query[0], query[1]);
    for (i, &id) in candidates.iter().enumerate() {
        if let Some(&nid) = candidates.get(i + PREFETCH_AHEAD) {
            // SAFETY: as in `verify_w1`.
            _mm_prefetch::<_MM_HINT_T0>(words.as_ptr().add(nid as usize * 2).cast());
        }
        let s = id as usize * 2;
        let d = (words[s] ^ q0).count_ones() + (words[s + 1] ^ q1).count_ones();
        if d <= tau {
            out.push(id);
        }
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn verify_w4(
    words: &[u64],
    query: &[u64],
    tau: u32,
    candidates: &[u32],
    out: &mut Vec<u32>,
) {
    // SAFETY: the dispatcher guarantees `query.len() == 4`.
    let q = _mm256_loadu_si256(query.as_ptr().cast());
    for (i, &id) in candidates.iter().enumerate() {
        if let Some(&nid) = candidates.get(i + PREFETCH_AHEAD) {
            // SAFETY: as in `verify_w1`.
            _mm_prefetch::<_MM_HINT_T0>(words.as_ptr().add(nid as usize * 4).cast());
        }
        // SAFETY: row `id` occupies words[id*4..id*4+4] — one 32-byte load.
        let row = _mm256_loadu_si256(words.as_ptr().add(id as usize * 4).cast());
        let d = hsum_epi64(popcount_words(_mm256_xor_si256(row, q))) as u32;
        if d <= tau {
            out.push(id);
        }
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn verify_generic(
    words: &[u64],
    wpv: usize,
    query: &[u64],
    tau: u32,
    candidates: &[u32],
    out: &mut Vec<u32>,
) {
    for (i, &id) in candidates.iter().enumerate() {
        if let Some(&nid) = candidates.get(i + PREFETCH_AHEAD) {
            // SAFETY: as in `verify_w1`.
            _mm_prefetch::<_MM_HINT_T0>(words.as_ptr().add(nid as usize * wpv).cast());
        }
        let s = id as usize * wpv;
        if hamming_avx2(&words[s..s + wpv], query) <= tau {
            out.push(id);
        }
    }
}

/// Accelerated batch verification. Returns `false` (leaving `out`
/// untouched) when the CPU lacks AVX2/POPCNT, in which case the caller
/// runs the portable kernel.
pub(crate) fn verify_candidates(
    words: &[u64],
    wpv: usize,
    query: &[u64],
    tau: u32,
    candidates: &[u32],
    out: &mut Vec<u32>,
) -> bool {
    if !available() {
        return false;
    }
    debug_assert_eq!(query.len(), wpv);
    // SAFETY: AVX2 + POPCNT presence was verified by `available`; each
    // kernel's loads stay within rows addressed by valid candidate IDs.
    unsafe {
        match wpv {
            1 => verify_w1(words, query[0], tau, candidates, out),
            2 => verify_w2(words, query, tau, candidates, out),
            4 => verify_w4(words, query, tau, candidates, out),
            _ => verify_generic(words, wpv, query, tau, candidates, out),
        }
    }
    true
}

//! Dimension partitionings and the rearrangement strategies evaluated in
//! the paper (§V, §VII-D).
//!
//! A [`Partitioning`] assigns every dimension of an `n`-dimensional vector
//! to exactly one of `m` disjoint partitions. Constructors cover:
//!
//! * [`Partitioning::equi_width`] — contiguous equal chunks (**OR** in the
//!   paper's Fig. 4: the original, unshuffled order);
//! * [`Partitioning::random_shuffle`] — shuffle then chunk (**RS**, the
//!   PartEnum-style baseline \[1\]);
//! * [`Partitioning::os_rearrangement`] — frequency-balancing dimension
//!   rearrangement in the spirit of HmSearch \[43\] (**OS**);
//! * [`Partitioning::dd_rearrangement`] — correlation-minimizing
//!   data-driven rearrangement in the spirit of \[36\] (**DD**).
//!
//! GPH's own partitioner (entropy-greedy initialization + cost-driven hill
//! climbing, **GR**) lives in the `gph` crate because it needs the query
//! cost model.

use crate::error::{HammingError, Result};
use crate::key::mix64;
use crate::stats::{ColumnBits, DimStats};

/// A disjoint cover of the dimensions `[0, n)` by `m` ordered partitions.
///
/// ```
/// use hamming_core::Partitioning;
/// let p = Partitioning::equi_width(8, 2).unwrap();
/// assert_eq!(p.part(0), &[0, 1, 2, 3]);
/// assert_eq!(p.widths(), vec![4, 4]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    dim: usize,
    parts: Vec<Vec<u32>>,
}

impl Partitioning {
    /// Validates that `parts` forms a disjoint cover of `[0, dim)`.
    /// Empty partitions are allowed (GPH's refinement can empty one;
    /// §V-B notes the output need not have exactly `m` parts).
    pub fn new(dim: usize, parts: Vec<Vec<u32>>) -> Result<Self> {
        let mut seen = vec![false; dim];
        let mut covered = 0usize;
        for (pi, part) in parts.iter().enumerate() {
            for &d in part {
                let d = d as usize;
                if d >= dim {
                    return Err(HammingError::InvalidPartitioning(format!(
                        "partition {pi} references dimension {d} >= {dim}"
                    )));
                }
                if seen[d] {
                    return Err(HammingError::InvalidPartitioning(format!(
                        "dimension {d} appears in more than one partition"
                    )));
                }
                seen[d] = true;
                covered += 1;
            }
        }
        if covered != dim {
            return Err(HammingError::InvalidPartitioning(format!(
                "{covered} of {dim} dimensions covered"
            )));
        }
        Ok(Partitioning { dim, parts })
    }

    /// Equi-width partitioning in the original dimension order. When
    /// `m` does not divide `dim`, the first `dim % m` partitions receive
    /// one extra dimension.
    pub fn equi_width(dim: usize, m: usize) -> Result<Self> {
        if m == 0 || m > dim.max(1) {
            return Err(HammingError::InvalidParameter(format!(
                "partition count m={m} invalid for dim={dim}"
            )));
        }
        Self::from_order(&(0..dim).collect::<Vec<_>>(), m)
    }

    /// Chunks an explicit dimension ordering into `m` near-equal parts.
    pub fn from_order(order: &[usize], m: usize) -> Result<Self> {
        let dim = order.len();
        if m == 0 || m > dim.max(1) {
            return Err(HammingError::InvalidParameter(format!(
                "partition count m={m} invalid for dim={dim}"
            )));
        }
        let base = dim / m;
        let extra = dim % m;
        let mut parts = Vec::with_capacity(m);
        let mut idx = 0usize;
        for pi in 0..m {
            let w = base + usize::from(pi < extra);
            let part: Vec<u32> = order[idx..idx + w].iter().map(|&d| d as u32).collect();
            idx += w;
            parts.push(part);
        }
        Self::new(dim, parts)
    }

    /// Random shuffle (Fisher–Yates seeded by splitmix64) followed by
    /// equi-width chunking — the **RS** baseline.
    pub fn random_shuffle(dim: usize, m: usize, seed: u64) -> Result<Self> {
        let mut order: Vec<usize> = (0..dim).collect();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(state)
        };
        for i in (1..dim).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        Self::from_order(&order, m)
    }

    /// **OS** rearrangement: sorts dimensions by skewness and deals them
    /// into partitions in snake order, so every partition receives a
    /// similar mixture of skewed and balanced dimensions — the
    /// "make every partition uniformly distributed" goal of HmSearch \[43\].
    pub fn os_rearrangement(stats: &DimStats, m: usize) -> Result<Self> {
        let dim = stats.dim();
        if m == 0 || m > dim.max(1) {
            return Err(HammingError::InvalidParameter(format!(
                "partition count m={m} invalid for dim={dim}"
            )));
        }
        let mut by_skew: Vec<usize> = (0..dim).collect();
        by_skew.sort_by(|&a, &b| {
            stats
                .skewness(b)
                .partial_cmp(&stats.skewness(a))
                .expect("skewness is never NaN")
                .then(a.cmp(&b))
        });
        let mut parts: Vec<Vec<u32>> = vec![Vec::with_capacity(dim.div_ceil(m)); m];
        for (rank, &d) in by_skew.iter().enumerate() {
            let round = rank / m;
            let pos = rank % m;
            // Snake order: alternate direction every round for balance.
            let pi = if round.is_multiple_of(2) { pos } else { m - 1 - pos };
            parts[pi].push(d as u32);
        }
        Self::new(dim, parts)
    }

    /// **DD** rearrangement: greedy correlation-*minimizing* assignment in
    /// the spirit of data-driven multi-index hashing \[36\]. Partitions are
    /// filled round-robin; each step assigns the unclaimed dimension with
    /// the smallest summed |phi| correlation to the receiving partition's
    /// current members.
    pub fn dd_rearrangement(cols: &ColumnBits, m: usize) -> Result<Self> {
        let dim = cols.dim();
        if m == 0 || m > dim.max(1) {
            return Err(HammingError::InvalidParameter(format!(
                "partition count m={m} invalid for dim={dim}"
            )));
        }
        // Precompute |phi| for all pairs once: O(n^2) popcount sweeps.
        let mut corr = vec![0.0f64; dim * dim];
        for i in 0..dim {
            for j in (i + 1)..dim {
                let c = cols.phi(i, j).abs();
                corr[i * dim + j] = c;
                corr[j * dim + i] = c;
            }
        }
        let mut assigned = vec![false; dim];
        let mut parts: Vec<Vec<u32>> = vec![Vec::with_capacity(dim.div_ceil(m)); m];
        // Seed each partition with the most skewed unassigned dimension so
        // skewed dims spread out (matching the uniformity goal).
        let mut remaining = dim;
        let mut pi = 0usize;
        while remaining > 0 {
            let target = dim / m + usize::from(pi < dim % m);
            if parts[pi].len() >= target {
                pi = (pi + 1) % m;
                continue;
            }
            let mut best = usize::MAX;
            let mut best_score = f64::INFINITY;
            for d in 0..dim {
                if assigned[d] {
                    continue;
                }
                let score: f64 = parts[pi].iter().map(|&e| corr[d * dim + e as usize]).sum();
                if score < best_score {
                    best_score = score;
                    best = d;
                }
            }
            assigned[best] = true;
            parts[pi].push(best as u32);
            remaining -= 1;
            pi = (pi + 1) % m;
        }
        Self::new(dim, parts)
    }

    /// Number of dimensions covered.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of partitions `m`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The dimensions of partition `i`.
    #[inline]
    pub fn part(&self, i: usize) -> &[u32] {
        &self.parts[i]
    }

    /// All partitions.
    #[inline]
    pub fn parts(&self) -> &[Vec<u32>] {
        &self.parts
    }

    /// Widths `n_i` of every partition.
    pub fn widths(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Mapping from dimension to its partition index.
    pub fn assignment(&self) -> Vec<usize> {
        let mut a = vec![usize::MAX; self.dim];
        for (pi, part) in self.parts.iter().enumerate() {
            for &d in part {
                a[d as usize] = pi;
            }
        }
        a
    }

    /// Moves dimension `d` from partition `from` to partition `to`.
    /// Used by GPH's hill-climbing refinement (Algorithm 2).
    pub fn move_dim(&mut self, d: u32, from: usize, to: usize) -> Result<()> {
        if from == to {
            return Ok(());
        }
        let pos = self.parts[from].iter().position(|&x| x == d).ok_or_else(|| {
            HammingError::InvalidParameter(format!("dim {d} not in partition {from}"))
        })?;
        self.parts[from].swap_remove(pos);
        self.parts[to].push(d);
        Ok(())
    }

    /// Drops empty partitions (the paper notes refinement may empty some).
    pub fn prune_empty(&mut self) {
        self.parts.retain(|p| !p.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;
    use crate::dataset::Dataset;

    #[test]
    fn equi_width_exact_division() {
        let p = Partitioning::equi_width(8, 2).unwrap();
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.part(0), &[0, 1, 2, 3]);
        assert_eq!(p.part(1), &[4, 5, 6, 7]);
    }

    #[test]
    fn equi_width_with_remainder() {
        let p = Partitioning::equi_width(10, 3).unwrap();
        assert_eq!(p.widths(), vec![4, 3, 3]);
        let mut all: Vec<u32> = p.parts().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn new_rejects_overlap_and_gaps() {
        assert!(Partitioning::new(4, vec![vec![0, 1], vec![1, 2, 3]]).is_err());
        assert!(Partitioning::new(4, vec![vec![0, 1], vec![2]]).is_err());
        assert!(Partitioning::new(4, vec![vec![0, 1, 4], vec![2, 3]]).is_err());
        assert!(Partitioning::new(4, vec![vec![0, 1], vec![2, 3], vec![]]).is_ok());
    }

    #[test]
    fn random_shuffle_is_valid_and_seed_deterministic() {
        let a = Partitioning::random_shuffle(128, 8, 42).unwrap();
        let b = Partitioning::random_shuffle(128, 8, 42).unwrap();
        let c = Partitioning::random_shuffle(128, 8, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.widths(), vec![16; 8]);
    }

    #[test]
    fn move_dim_and_assignment() {
        let mut p = Partitioning::equi_width(6, 2).unwrap();
        p.move_dim(0, 0, 1).unwrap();
        assert_eq!(p.widths(), vec![2, 4]);
        let a = p.assignment();
        assert_eq!(a[0], 1);
        assert_eq!(a[1], 0);
        assert!(p.move_dim(0, 0, 1).is_err()); // no longer in partition 0
    }

    fn skewed_dataset() -> Dataset {
        // dims 0..4 mostly zero (skewed); dims 4..8 balanced.
        let rows = [
            "00001010", "00000101", "00001100", "00000011", "00001001", "00000110", "10001111",
            "01000000",
        ];
        Dataset::from_vectors(8, rows.iter().map(|s| BitVector::parse(s).unwrap())).unwrap()
    }

    #[test]
    fn os_spreads_skewed_dims() {
        let ds = skewed_dataset();
        let st = DimStats::compute(&ds);
        let p = Partitioning::os_rearrangement(&st, 2).unwrap();
        assert_eq!(p.widths(), vec![4, 4]);
        // The two most-skewed dims must land in different partitions.
        let mut by_skew: Vec<usize> = (0..8).collect();
        by_skew.sort_by(|&a, &b| st.skewness(b).partial_cmp(&st.skewness(a)).unwrap());
        let assign = p.assignment();
        assert_ne!(assign[by_skew[0]], assign[by_skew[1]]);
    }

    #[test]
    fn dd_separates_correlated_pair() {
        // dims 0 and 1 identical across rows => |phi| = 1; DD should not
        // put them together when m = 2 (it minimizes in-partition corr).
        let rows = ["110000", "111100", "000011", "001101", "110110", "000000"];
        let ds =
            Dataset::from_vectors(6, rows.iter().map(|s| BitVector::parse(s).unwrap())).unwrap();
        let cb = ColumnBits::from_all(&ds);
        assert!((cb.phi(0, 1) - 1.0).abs() < 1e-9);
        let p = Partitioning::dd_rearrangement(&cb, 2).unwrap();
        let a = p.assignment();
        assert_ne!(a[0], a[1], "perfectly correlated dims should be split: {p:?}");
    }

    #[test]
    fn prune_empty_removes_only_empty() {
        let mut p = Partitioning::new(4, vec![vec![0, 1], vec![], vec![2, 3]]).unwrap();
        p.prune_empty();
        assert_eq!(p.num_parts(), 2);
    }
}

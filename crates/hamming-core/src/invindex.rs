//! The partition-signature inverted index.
//!
//! Like MIH, GPH maps each data vector's projection on each partition to
//! the vector's ID (§II-C, §VI). The index is immutable after build, so
//! postings are stored compacted: one flat `Vec<u32>` of IDs per
//! partition, addressed by `(offset, len)` ranges in a hash map keyed by
//! the signature key. Signatures are enumerated **on the query side
//! only** — the property that keeps GPH's index smaller than HmSearch's
//! and PartAlloc's in Fig. 6.

use crate::error::{HammingError, Result};
use crate::fasthash::FastMap;
use crate::io::ByteReader;
use crate::project::ProjectedDataset;
use bytes::BufMut;

/// One partition's postings.
#[derive(Clone, Debug)]
struct PartIndex {
    width: usize,
    /// key -> (offset, len) into `ids`.
    ranges: FastMap<u64, (u32, u32)>,
    ids: Vec<u32>,
}

/// Inverted index over every partition of a projected dataset.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    parts: Vec<PartIndex>,
    len: usize,
}

impl InvertedIndex {
    /// Builds the index from a projected dataset (two passes per
    /// partition: count, then fill — no per-key Vec churn).
    pub fn build(pd: &ProjectedDataset) -> Self {
        let n = pd.len();
        let mut parts = Vec::with_capacity(pd.num_parts());
        for p in 0..pd.num_parts() {
            let col = pd.column(p);
            // Pass 1: count postings per key.
            let mut counts: FastMap<u64, u32> = FastMap::default();
            for id in 0..n {
                *counts.entry(col.key(id)).or_insert(0) += 1;
            }
            // Assign ranges.
            let mut ranges: FastMap<u64, (u32, u32)> =
                FastMap::with_capacity_and_hasher(counts.len(), Default::default());
            let mut offset = 0u32;
            for (&key, &cnt) in &counts {
                ranges.insert(key, (offset, 0));
                offset += cnt;
            }
            // Pass 2: fill IDs in vector order (postings stay sorted).
            let mut ids = vec![0u32; n];
            for id in 0..n {
                let slot = ranges.get_mut(&col.key(id)).expect("counted in pass 1");
                ids[(slot.0 + slot.1) as usize] = id as u32;
                slot.1 += 1;
            }
            parts.push(PartIndex { width: col.width(), ranges, ids });
        }
        InvertedIndex { parts, len: n }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Width of partition `p`.
    pub fn part_width(&self, p: usize) -> usize {
        self.parts[p].width
    }

    /// Postings list for signature `key` in partition `p` (IDs ascending).
    #[inline]
    pub fn postings(&self, p: usize, key: u64) -> &[u32] {
        match self.parts[p].ranges.get(&key) {
            Some(&(off, len)) => &self.parts[p].ids[off as usize..(off + len) as usize],
            None => &[],
        }
    }

    /// Number of distinct signatures in partition `p`.
    pub fn distinct_signatures(&self, p: usize) -> usize {
        self.parts[p].ranges.len()
    }

    /// Deterministic byte encoding of the postings (for engine
    /// snapshots): the flat ID arrays and key ranges verbatim, with keys
    /// sorted so identical indexes always produce identical bytes.
    ///
    /// Layout (little-endian): `len u64, n_parts u64`, then per part
    /// `width u64, n_keys u64, n_ids u64, n_keys × (key u64, off u32,
    /// len u32), n_ids × id u32`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.size_bytes());
        buf.put_u64_le(self.len as u64);
        buf.put_u64_le(self.parts.len() as u64);
        for pi in &self.parts {
            buf.put_u64_le(pi.width as u64);
            buf.put_u64_le(pi.ranges.len() as u64);
            buf.put_u64_le(pi.ids.len() as u64);
            let mut keys: Vec<(u64, (u32, u32))> =
                pi.ranges.iter().map(|(&k, &r)| (k, r)).collect();
            keys.sort_unstable_by_key(|&(k, _)| k);
            for (key, (off, len)) in keys {
                buf.put_u64_le(key);
                buf.put_u32_le(off);
                buf.put_u32_le(len);
            }
            for &id in &pi.ids {
                buf.put_u32_le(id);
            }
        }
        buf
    }

    /// Decodes an index written by [`InvertedIndex::encode`], validating
    /// every range against the ID array and every ID against the
    /// declared cardinality so a corrupt payload cannot cause panics (or
    /// out-of-bounds postings) later.
    pub fn decode(bytes: &[u8]) -> Result<InvertedIndex> {
        let mut r = ByteReader::new(bytes);
        let len = r.u64("index len")? as usize;
        let n_parts = r.len(24, "index part count")?;
        let mut parts = Vec::with_capacity(n_parts);
        for p in 0..n_parts {
            let width = r.u64("part width")? as usize;
            let n_keys = r.len(16, "part key count")?;
            let n_ids = r.len(4, "part id count")?;
            if n_ids != len {
                return Err(HammingError::Corrupt(format!(
                    "part {p} holds {n_ids} postings for {len} vectors"
                )));
            }
            let mut ranges: FastMap<u64, (u32, u32)> =
                FastMap::with_capacity_and_hasher(n_keys, Default::default());
            let mut covered = 0usize;
            for _ in 0..n_keys {
                let key = r.u64("posting key")?;
                let off = r.u32("posting offset")?;
                let n = r.u32("posting length")?;
                let end = off as usize + n as usize;
                if end > n_ids {
                    return Err(HammingError::Corrupt(format!(
                        "part {p} range {off}+{n} exceeds {n_ids} ids"
                    )));
                }
                if ranges.insert(key, (off, n)).is_some() {
                    return Err(HammingError::Corrupt(format!("part {p} repeats key {key}")));
                }
                covered += n as usize;
            }
            if covered != n_ids {
                return Err(HammingError::Corrupt(format!(
                    "part {p} ranges cover {covered} of {n_ids} ids"
                )));
            }
            let mut ids = Vec::with_capacity(n_ids);
            for _ in 0..n_ids {
                let id = r.u32("posting id")?;
                if id as usize >= len {
                    return Err(HammingError::Corrupt(format!(
                        "posting id {id} out of range for {len} vectors"
                    )));
                }
                ids.push(id);
            }
            parts.push(PartIndex { width, ranges, ids });
        }
        r.finish("inverted index")?;
        Ok(InvertedIndex { parts, len })
    }

    /// Approximate heap size in bytes (IDs + hash-map entries), the
    /// quantity compared in Fig. 6.
    pub fn size_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|pi| {
                // map entry ≈ key + range + bucket overhead (≈ 1.14 load).
                pi.ids.len() * 4 + pi.ranges.len() * (8 + 8 + 2)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;
    use crate::dataset::Dataset;
    use crate::partition::Partitioning;
    use crate::project::Projector;

    fn build_table1() -> (Dataset, InvertedIndex, Projector) {
        let ds = Dataset::from_vectors(
            8,
            ["00000000", "00000111", "00001111", "10011111"]
                .iter()
                .map(|s| BitVector::parse(s).unwrap()),
        )
        .unwrap();
        let p = Partitioning::equi_width(8, 2).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        (ds, InvertedIndex::build(&pd), proj)
    }

    #[test]
    fn postings_group_equal_projections() {
        let (_, idx, _) = build_table1();
        // Partition 0 (dims 0..4): values 0000,0000,0000,1001.
        assert_eq!(idx.postings(0, 0b0000), &[0, 1, 2]);
        assert_eq!(idx.postings(0, 0b1001), &[3]);
        assert_eq!(idx.postings(0, 0b1111), &[] as &[u32]);
        assert_eq!(idx.distinct_signatures(0), 2);
        // Partition 1 (dims 4..8): 0000, 0111->bits 1,2,3, 1111, 1111.
        assert_eq!(idx.postings(1, 0b0000), &[0]);
        assert_eq!(idx.postings(1, 0b1110), &[1]); // dims 5,6,7 set
        assert_eq!(idx.postings(1, 0b1111), &[2, 3]);
    }

    #[test]
    fn postings_are_sorted() {
        let (_, idx, _) = build_table1();
        let l = idx.postings(1, 0b1111);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_dataset_index() {
        let ds = Dataset::new(8);
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let idx = InvertedIndex::build(&pd);
        assert!(idx.is_empty());
        assert_eq!(idx.postings(0, 0), &[] as &[u32]);
    }

    #[test]
    fn size_accounting_positive() {
        let (_, idx, _) = build_table1();
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn encode_decode_roundtrip_is_byte_stable() {
        let (_, idx, _) = build_table1();
        let bytes = idx.encode();
        let decoded = InvertedIndex::decode(&bytes).unwrap();
        assert_eq!(decoded.len(), idx.len());
        assert_eq!(decoded.num_parts(), idx.num_parts());
        assert_eq!(decoded.postings(0, 0b0000), idx.postings(0, 0b0000));
        assert_eq!(decoded.postings(1, 0b1111), idx.postings(1, 0b1111));
        assert_eq!(decoded.postings(1, 0b0101), &[] as &[u32]);
        // Re-encoding reproduces the exact bytes (sorted-key determinism).
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let (_, idx, _) = build_table1();
        let bytes = idx.encode();
        // Truncations never panic.
        for cut in 0..bytes.len() {
            assert!(InvertedIndex::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Forged huge part count is rejected before allocating.
        let mut huge = bytes.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(InvertedIndex::decode(&huge).is_err());
        // An id pushed out of range is caught.
        let mut bad_id = bytes.clone();
        let last = bad_id.len() - 4;
        bad_id[last..].copy_from_slice(&900u32.to_le_bytes());
        assert!(InvertedIndex::decode(&bad_id).is_err());
    }

    #[test]
    fn empty_index_roundtrips() {
        let ds = Dataset::new(8);
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let idx = InvertedIndex::build(&pd);
        let decoded = InvertedIndex::decode(&idx.encode()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.num_parts(), 2);
    }
}

//! The partition-signature inverted index.
//!
//! Like MIH, GPH maps each data vector's projection on each partition to
//! the vector's ID (§II-C, §VI). The index is immutable after build, so
//! postings are stored compacted: one flat `Vec<u32>` of IDs per
//! partition, addressed by `(offset, len)` ranges in a hash map keyed by
//! the signature key. Signatures are enumerated **on the query side
//! only** — the property that keeps GPH's index smaller than HmSearch's
//! and PartAlloc's in Fig. 6.

use crate::fasthash::FastMap;
use crate::project::ProjectedDataset;

/// One partition's postings.
#[derive(Clone, Debug)]
struct PartIndex {
    width: usize,
    /// key -> (offset, len) into `ids`.
    ranges: FastMap<u64, (u32, u32)>,
    ids: Vec<u32>,
}

/// Inverted index over every partition of a projected dataset.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    parts: Vec<PartIndex>,
    len: usize,
}

impl InvertedIndex {
    /// Builds the index from a projected dataset (two passes per
    /// partition: count, then fill — no per-key Vec churn).
    pub fn build(pd: &ProjectedDataset) -> Self {
        let n = pd.len();
        let mut parts = Vec::with_capacity(pd.num_parts());
        for p in 0..pd.num_parts() {
            let col = pd.column(p);
            // Pass 1: count postings per key.
            let mut counts: FastMap<u64, u32> = FastMap::default();
            for id in 0..n {
                *counts.entry(col.key(id)).or_insert(0) += 1;
            }
            // Assign ranges.
            let mut ranges: FastMap<u64, (u32, u32)> =
                FastMap::with_capacity_and_hasher(counts.len(), Default::default());
            let mut offset = 0u32;
            for (&key, &cnt) in &counts {
                ranges.insert(key, (offset, 0));
                offset += cnt;
            }
            // Pass 2: fill IDs in vector order (postings stay sorted).
            let mut ids = vec![0u32; n];
            for id in 0..n {
                let slot = ranges.get_mut(&col.key(id)).expect("counted in pass 1");
                ids[(slot.0 + slot.1) as usize] = id as u32;
                slot.1 += 1;
            }
            parts.push(PartIndex { width: col.width(), ranges, ids });
        }
        InvertedIndex { parts, len: n }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Width of partition `p`.
    pub fn part_width(&self, p: usize) -> usize {
        self.parts[p].width
    }

    /// Postings list for signature `key` in partition `p` (IDs ascending).
    #[inline]
    pub fn postings(&self, p: usize, key: u64) -> &[u32] {
        match self.parts[p].ranges.get(&key) {
            Some(&(off, len)) => &self.parts[p].ids[off as usize..(off + len) as usize],
            None => &[],
        }
    }

    /// Number of distinct signatures in partition `p`.
    pub fn distinct_signatures(&self, p: usize) -> usize {
        self.parts[p].ranges.len()
    }

    /// Approximate heap size in bytes (IDs + hash-map entries), the
    /// quantity compared in Fig. 6.
    pub fn size_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|pi| {
                // map entry ≈ key + range + bucket overhead (≈ 1.14 load).
                pi.ids.len() * 4 + pi.ranges.len() * (8 + 8 + 2)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;
    use crate::dataset::Dataset;
    use crate::partition::Partitioning;
    use crate::project::Projector;

    fn build_table1() -> (Dataset, InvertedIndex, Projector) {
        let ds = Dataset::from_vectors(
            8,
            ["00000000", "00000111", "00001111", "10011111"]
                .iter()
                .map(|s| BitVector::parse(s).unwrap()),
        )
        .unwrap();
        let p = Partitioning::equi_width(8, 2).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        (ds, InvertedIndex::build(&pd), proj)
    }

    #[test]
    fn postings_group_equal_projections() {
        let (_, idx, _) = build_table1();
        // Partition 0 (dims 0..4): values 0000,0000,0000,1001.
        assert_eq!(idx.postings(0, 0b0000), &[0, 1, 2]);
        assert_eq!(idx.postings(0, 0b1001), &[3]);
        assert_eq!(idx.postings(0, 0b1111), &[] as &[u32]);
        assert_eq!(idx.distinct_signatures(0), 2);
        // Partition 1 (dims 4..8): 0000, 0111->bits 1,2,3, 1111, 1111.
        assert_eq!(idx.postings(1, 0b0000), &[0]);
        assert_eq!(idx.postings(1, 0b1110), &[1]); // dims 5,6,7 set
        assert_eq!(idx.postings(1, 0b1111), &[2, 3]);
    }

    #[test]
    fn postings_are_sorted() {
        let (_, idx, _) = build_table1();
        let l = idx.postings(1, 0b1111);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_dataset_index() {
        let ds = Dataset::new(8);
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let idx = InvertedIndex::build(&pd);
        assert!(idx.is_empty());
        assert_eq!(idx.postings(0, 0), &[] as &[u32]);
    }

    #[test]
    fn size_accounting_positive() {
        let (_, idx, _) = build_table1();
        assert!(idx.size_bytes() > 0);
    }
}

//! The partition-signature inverted index.
//!
//! Like MIH, GPH maps each data vector's projection on each partition to
//! the vector's ID (§II-C, §VI). The index is immutable after build, so
//! each partition's postings are stored in **CSR form**: one sorted
//! `keys` array, one `offsets` prefix-sum array (`keys.len() + 1`
//! entries), and one flat `ids` array, so a probe is a binary search
//! followed by a contiguous slice — no hash-map pointer chasing on the
//! query hot path, and no per-key `Vec` churn at build time. Signatures
//! are enumerated **on the query side only** — the property that keeps
//! GPH's index smaller than HmSearch's and PartAlloc's in Fig. 6.
//!
//! Because keys are sorted, the in-memory layout is a *canonical*
//! function of the indexed data: two builds over the same dataset and
//! partitioning are identical word for word, and therefore produce
//! byte-identical snapshots (the old hash-map layout assigned posting
//! ranges in iteration order, so it wasn't).

use crate::error::{HammingError, Result};
use crate::fasthash::FastMap;
use crate::io::ByteReader;
use crate::project::ProjectedDataset;
use bytes::BufMut;

/// One partition's postings in CSR form.
#[derive(Clone, Debug)]
struct PartIndex {
    width: usize,
    /// Distinct signature keys, ascending.
    keys: Vec<u64>,
    /// `offsets[s]..offsets[s + 1]` is the `ids` range of `keys[s]`;
    /// `keys.len() + 1` entries, monotone, starting at 0 and ending at
    /// `ids.len()`.
    offsets: Vec<u32>,
    /// Posting IDs, grouped by key slot, ascending within each group.
    ids: Vec<u32>,
}

impl PartIndex {
    #[inline]
    fn postings(&self, key: u64) -> &[u32] {
        match self.keys.binary_search(&key) {
            Ok(s) => &self.ids[self.offsets[s] as usize..self.offsets[s + 1] as usize],
            Err(_) => &[],
        }
    }
}

/// Inverted index over every partition of a projected dataset.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    parts: Vec<PartIndex>,
    len: usize,
}

impl InvertedIndex {
    /// Builds the index from a projected dataset (two passes per
    /// partition: count, then fill the CSR arrays in sorted-key order).
    pub fn build(pd: &ProjectedDataset) -> Self {
        let n = pd.len();
        let mut parts = Vec::with_capacity(pd.num_parts());
        for p in 0..pd.num_parts() {
            let col = pd.column(p);
            // Pass 1: count postings per key.
            let mut counts: FastMap<u64, u32> = FastMap::default();
            for id in 0..n {
                *counts.entry(col.key(id)).or_insert(0) += 1;
            }
            // Canonical slot order: sorted keys.
            let mut keys: Vec<u64> = counts.keys().copied().collect();
            keys.sort_unstable();
            let mut offsets = Vec::with_capacity(keys.len() + 1);
            offsets.push(0u32);
            let mut acc = 0u32;
            for &k in &keys {
                acc += counts[&k];
                offsets.push(acc);
            }
            // Pass 2: fill IDs in vector order (postings stay sorted
            // within each key group). `counts` is reused as a write
            // cursor per key.
            for (s, &k) in keys.iter().enumerate() {
                counts.insert(k, offsets[s]);
            }
            let mut ids = vec![0u32; n];
            for id in 0..n {
                let cursor = counts.get_mut(&col.key(id)).expect("counted in pass 1");
                ids[*cursor as usize] = id as u32;
                *cursor += 1;
            }
            parts.push(PartIndex { width: col.width(), keys, offsets, ids });
        }
        InvertedIndex { parts, len: n }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Width of partition `p`.
    pub fn part_width(&self, p: usize) -> usize {
        self.parts[p].width
    }

    /// Postings list for signature `key` in partition `p` (IDs ascending).
    #[inline]
    pub fn postings(&self, p: usize, key: u64) -> &[u32] {
        self.parts[p].postings(key)
    }

    /// Number of distinct signatures in partition `p`.
    pub fn distinct_signatures(&self, p: usize) -> usize {
        self.parts[p].keys.len()
    }

    /// Partition `p`'s sorted distinct signature keys (CSR `keys` array).
    pub fn part_keys(&self, p: usize) -> &[u64] {
        &self.parts[p].keys
    }

    /// Partition `p`'s CSR prefix-sum array (`keys.len() + 1` entries).
    pub fn part_offsets(&self, p: usize) -> &[u32] {
        &self.parts[p].offsets
    }

    /// Partition `p`'s flat postings array, grouped by key slot.
    pub fn part_ids(&self, p: usize) -> &[u32] {
        &self.parts[p].ids
    }

    /// Assembles an index directly from raw CSR arrays (one
    /// `(width, keys, offsets, ids)` tuple per partition), applying the
    /// same structural validation as [`InvertedIndex::decode`]. This is
    /// how offset-addressed (v3) snapshots rebuild the index from
    /// sections read straight off disk.
    #[allow(clippy::type_complexity)]
    pub fn from_csr(
        len: usize,
        parts: Vec<(usize, Vec<u64>, Vec<u32>, Vec<u32>)>,
    ) -> Result<InvertedIndex> {
        let parts = parts
            .into_iter()
            .enumerate()
            .map(|(p, (width, keys, offsets, ids))| {
                validate_csr_part(p, len, &keys, &offsets, &ids)?;
                Ok(PartIndex { width, keys, offsets, ids })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(InvertedIndex { parts, len })
    }

    /// Deterministic byte encoding of the postings (for engine
    /// snapshots): the CSR arrays verbatim. Keys are stored sorted by
    /// construction, so identical indexes always produce identical bytes
    /// — and, because [`InvertedIndex::build`] is canonical, so do two
    /// independent builds of the same data.
    ///
    /// Layout (little-endian): `len u64, n_parts u64`, then per part
    /// `width u64, n_keys u64, n_ids u64, n_keys × key u64,
    /// (n_keys + 1) × offset u32, n_ids × id u32`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.size_bytes());
        buf.put_u64_le(self.len as u64);
        buf.put_u64_le(self.parts.len() as u64);
        for pi in &self.parts {
            buf.put_u64_le(pi.width as u64);
            buf.put_u64_le(pi.keys.len() as u64);
            buf.put_u64_le(pi.ids.len() as u64);
            for &key in &pi.keys {
                buf.put_u64_le(key);
            }
            for &off in &pi.offsets {
                buf.put_u32_le(off);
            }
            for &id in &pi.ids {
                buf.put_u32_le(id);
            }
        }
        buf
    }

    /// Decodes an index written by [`InvertedIndex::encode`], validating
    /// the key order, the offset monotonicity, and every ID against the
    /// declared cardinality so a corrupt payload cannot cause panics (or
    /// out-of-bounds postings) later.
    pub fn decode(bytes: &[u8]) -> Result<InvertedIndex> {
        let mut r = ByteReader::new(bytes);
        let len = r.u64("index len")? as usize;
        let n_parts = r.len(28, "index part count")?;
        let mut parts = Vec::with_capacity(n_parts);
        for p in 0..n_parts {
            let width = r.u64("part width")? as usize;
            let n_keys = r.len(12, "part key count")?;
            let n_ids = r.len(4, "part id count")?;
            let keys = r.u64s(n_keys, "posting keys")?;
            let offsets = r.u32s(n_keys + 1, "posting offsets")?;
            let ids = r.u32s(n_ids, "posting ids")?;
            validate_csr_part(p, len, &keys, &offsets, &ids)?;
            parts.push(PartIndex { width, keys, offsets, ids });
        }
        r.finish("inverted index")?;
        Ok(InvertedIndex { parts, len })
    }

    /// Encodes the pre-CSR (snapshot v1) layout: per part `width u64,
    /// n_keys u64, n_ids u64, n_keys × (key u64, off u32, len u32),
    /// n_ids × id u32`. Only needed to produce old-format fixtures for
    /// compatibility tests and downgrade tooling; new snapshots use
    /// [`InvertedIndex::encode`].
    pub fn encode_legacy(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.size_bytes());
        buf.put_u64_le(self.len as u64);
        buf.put_u64_le(self.parts.len() as u64);
        for pi in &self.parts {
            buf.put_u64_le(pi.width as u64);
            buf.put_u64_le(pi.keys.len() as u64);
            buf.put_u64_le(pi.ids.len() as u64);
            for (s, &key) in pi.keys.iter().enumerate() {
                buf.put_u64_le(key);
                buf.put_u32_le(pi.offsets[s]);
                buf.put_u32_le(pi.offsets[s + 1] - pi.offsets[s]);
            }
            for &id in &pi.ids {
                buf.put_u32_le(id);
            }
        }
        buf
    }

    /// Decodes the pre-CSR (snapshot v1) layout written by the old
    /// hash-map index, canonicalizing it into CSR form: keys are sorted
    /// and the `ids` array is regrouped so old snapshots load into the
    /// exact layout a fresh build would produce.
    pub fn decode_legacy(bytes: &[u8]) -> Result<InvertedIndex> {
        let mut r = ByteReader::new(bytes);
        let len = r.u64("index len")? as usize;
        let n_parts = r.len(24, "index part count")?;
        let mut parts = Vec::with_capacity(n_parts);
        for p in 0..n_parts {
            let width = r.u64("part width")? as usize;
            let n_keys = r.len(16, "part key count")?;
            let n_ids = r.len(4, "part id count")?;
            if n_ids != len {
                return Err(HammingError::Corrupt(format!(
                    "part {p} holds {n_ids} postings for {len} vectors"
                )));
            }
            let mut ranges: Vec<(u64, u32, u32)> = Vec::with_capacity(n_keys);
            let mut covered = 0usize;
            for _ in 0..n_keys {
                let key = r.u64("posting key")?;
                let off = r.u32("posting offset")?;
                let n = r.u32("posting length")?;
                if off as usize + n as usize > n_ids {
                    return Err(HammingError::Corrupt(format!(
                        "part {p} range {off}+{n} exceeds {n_ids} ids"
                    )));
                }
                covered += n as usize;
                ranges.push((key, off, n));
            }
            if covered != n_ids {
                return Err(HammingError::Corrupt(format!(
                    "part {p} ranges cover {covered} of {n_ids} ids"
                )));
            }
            let old_ids = r.u32s(n_ids, "posting ids")?;
            if let Some(&id) = old_ids.iter().find(|&&id| id as usize >= len) {
                return Err(HammingError::Corrupt(format!(
                    "posting id {id} out of range for {len} vectors"
                )));
            }
            // Canonicalize: sorted keys, ids regrouped contiguously.
            ranges.sort_unstable_by_key(|&(k, _, _)| k);
            if ranges.windows(2).any(|w| w[0].0 == w[1].0) {
                return Err(HammingError::Corrupt(format!("part {p} repeats a key")));
            }
            let mut keys = Vec::with_capacity(n_keys);
            let mut offsets = Vec::with_capacity(n_keys + 1);
            offsets.push(0u32);
            let mut ids = Vec::with_capacity(n_ids);
            for (key, off, n) in ranges {
                keys.push(key);
                ids.extend_from_slice(&old_ids[off as usize..(off + n) as usize]);
                offsets.push(ids.len() as u32);
            }
            parts.push(PartIndex { width, keys, offsets, ids });
        }
        r.finish("inverted index")?;
        Ok(InvertedIndex { parts, len })
    }

    /// Approximate heap size in bytes (the flat CSR arrays), the
    /// quantity compared in Fig. 6.
    pub fn size_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|pi| pi.ids.len() * 4 + pi.keys.len() * 8 + pi.offsets.len() * 4)
            .sum()
    }
}

/// Structural validation of one partition's CSR arrays, shared by
/// [`InvertedIndex::decode`] and [`InvertedIndex::from_csr`]: postings
/// cover exactly `len` ids, keys strictly ascending, offsets a monotone
/// prefix sum spanning `0..n_ids`, every id in range.
fn validate_csr_part(
    p: usize,
    len: usize,
    keys: &[u64],
    offsets: &[u32],
    ids: &[u32],
) -> Result<()> {
    let n_ids = ids.len();
    if n_ids != len {
        return Err(HammingError::Corrupt(format!(
            "part {p} holds {n_ids} postings for {len} vectors"
        )));
    }
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err(HammingError::Corrupt(format!("part {p} keys are not sorted")));
    }
    if offsets.len() != keys.len() + 1 {
        return Err(HammingError::Corrupt(format!(
            "part {p} has {} offsets for {} keys",
            offsets.len(),
            keys.len()
        )));
    }
    if offsets.first() != Some(&0) || offsets.last().copied() != Some(n_ids as u32) {
        return Err(HammingError::Corrupt(format!("part {p} offsets do not span 0..{n_ids}")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(HammingError::Corrupt(format!("part {p} offsets are not monotone")));
    }
    if let Some(&id) = ids.iter().find(|&&id| id as usize >= len) {
        return Err(HammingError::Corrupt(format!(
            "posting id {id} out of range for {len} vectors"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;
    use crate::dataset::Dataset;
    use crate::partition::Partitioning;
    use crate::project::Projector;

    fn build_table1() -> (Dataset, InvertedIndex, Projector) {
        let ds = Dataset::from_vectors(
            8,
            ["00000000", "00000111", "00001111", "10011111"]
                .iter()
                .map(|s| BitVector::parse(s).unwrap()),
        )
        .unwrap();
        let p = Partitioning::equi_width(8, 2).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        (ds, InvertedIndex::build(&pd), proj)
    }

    #[test]
    fn postings_group_equal_projections() {
        let (_, idx, _) = build_table1();
        // Partition 0 (dims 0..4): values 0000,0000,0000,1001.
        assert_eq!(idx.postings(0, 0b0000), &[0, 1, 2]);
        assert_eq!(idx.postings(0, 0b1001), &[3]);
        assert_eq!(idx.postings(0, 0b1111), &[] as &[u32]);
        assert_eq!(idx.distinct_signatures(0), 2);
        // Partition 1 (dims 4..8): 0000, 0111->bits 1,2,3, 1111, 1111.
        assert_eq!(idx.postings(1, 0b0000), &[0]);
        assert_eq!(idx.postings(1, 0b1110), &[1]); // dims 5,6,7 set
        assert_eq!(idx.postings(1, 0b1111), &[2, 3]);
    }

    #[test]
    fn postings_are_sorted() {
        let (_, idx, _) = build_table1();
        let l = idx.postings(1, 0b1111);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_dataset_index() {
        let ds = Dataset::new(8);
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let idx = InvertedIndex::build(&pd);
        assert!(idx.is_empty());
        assert_eq!(idx.postings(0, 0), &[] as &[u32]);
    }

    #[test]
    fn size_accounting_positive() {
        let (_, idx, _) = build_table1();
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn builds_are_deterministic() {
        // The CSR layout is a canonical function of the data: two
        // independent builds of the same projected dataset must be
        // byte-identical, which is what makes snapshots reproducible.
        let ds = Dataset::from_vectors(
            16,
            (0u32..200).map(|i| {
                BitVector::from_bits((0..16).map(|b| (i.wrapping_mul(2654435761) >> b) & 1 == 1))
            }),
        )
        .unwrap();
        let p = Partitioning::equi_width(16, 4).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let a = InvertedIndex::build(&pd);
        let b = InvertedIndex::build(&pd);
        assert_eq!(a.encode(), b.encode());
        // And a third build over an independently re-projected dataset.
        let pd2 = ProjectedDataset::build(&ds, &Projector::new(&p));
        assert_eq!(a.encode(), InvertedIndex::build(&pd2).encode());
    }

    #[test]
    fn encode_decode_roundtrip_is_byte_stable() {
        let (_, idx, _) = build_table1();
        let bytes = idx.encode();
        let decoded = InvertedIndex::decode(&bytes).unwrap();
        assert_eq!(decoded.len(), idx.len());
        assert_eq!(decoded.num_parts(), idx.num_parts());
        assert_eq!(decoded.postings(0, 0b0000), idx.postings(0, 0b0000));
        assert_eq!(decoded.postings(1, 0b1111), idx.postings(1, 0b1111));
        assert_eq!(decoded.postings(1, 0b0101), &[] as &[u32]);
        // Re-encoding reproduces the exact bytes (sorted-key determinism).
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn legacy_roundtrip_canonicalizes() {
        let (_, idx, _) = build_table1();
        let legacy = idx.encode_legacy();
        let decoded = InvertedIndex::decode_legacy(&legacy).unwrap();
        // A legacy decode lands in the same canonical CSR layout.
        assert_eq!(decoded.encode(), idx.encode());
        // Truncated legacy bytes never panic.
        for cut in 0..legacy.len() {
            assert!(InvertedIndex::decode_legacy(&legacy[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn legacy_decode_regroups_scattered_ranges() {
        // Hand-build a legacy payload whose ranges are *not* laid out in
        // key order (the hash-map layout): key 5 occupies ids[2..4],
        // key 1 occupies ids[0..2]. The decoder must regroup.
        let mut buf = Vec::new();
        buf.put_u64_le(4); // len
        buf.put_u64_le(1); // parts
        buf.put_u64_le(8); // width
        buf.put_u64_le(2); // keys
        buf.put_u64_le(4); // ids
        buf.put_u64_le(1);
        buf.put_u32_le(2);
        buf.put_u32_le(2); // key 1 -> ids[2..4]
        buf.put_u64_le(5);
        buf.put_u32_le(0);
        buf.put_u32_le(2); // key 5 -> ids[0..2]
        for id in [1u32, 3, 0, 2] {
            buf.put_u32_le(id);
        }
        let idx = InvertedIndex::decode_legacy(&buf).unwrap();
        assert_eq!(idx.postings(0, 1), &[0, 2]);
        assert_eq!(idx.postings(0, 5), &[1, 3]);
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let (_, idx, _) = build_table1();
        let bytes = idx.encode();
        // Truncations never panic.
        for cut in 0..bytes.len() {
            assert!(InvertedIndex::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Forged huge part count is rejected before allocating.
        let mut huge = bytes.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(InvertedIndex::decode(&huge).is_err());
        // An id pushed out of range is caught.
        let mut bad_id = bytes.clone();
        let last = bad_id.len() - 4;
        bad_id[last..].copy_from_slice(&900u32.to_le_bytes());
        assert!(InvertedIndex::decode(&bad_id).is_err());
    }

    #[test]
    fn empty_index_roundtrips() {
        let ds = Dataset::new(8);
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let idx = InvertedIndex::build(&pd);
        let decoded = InvertedIndex::decode(&idx.encode()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.num_parts(), 2);
    }
}

//! Binary serialization: flat formats for datasets and partitionings,
//! plus the generic **section-framed container** every persistent
//! artifact in the workspace (engine snapshots, shard manifests) is built
//! from.
//!
//! Dataset format (little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"HAMD"
//! version u32     = 1
//! dim     u64
//! len     u64
//! words   [u64]   = len * words_for(dim) raw words
//! ```
//!
//! The flat formats are intentionally dumb: datasets here are synthetic
//! and regenerable, so the only goals are speed and exact round-tripping.
//!
//! The container ([`SectionWriter`] / [`SectionReader`]) frames named
//! sections behind a magic + version header; every section carries its
//! length and a CRC-32, so any single-byte corruption anywhere in the
//! file is detected at parse time (CRC-32 catches all burst errors up to
//! 32 bits) and surfaces as [`HammingError::Corrupt`] rather than a panic
//! or silently wrong data. Readers ignore unknown sections, which is the
//! forward-compatibility escape hatch: new writers may append sections
//! without breaking old readers of the same major version.

use crate::dataset::Dataset;
use crate::error::{HammingError, Result};
use crate::partition::Partitioning;
use crate::words_for;
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"HAMD";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------

/// 256-entry lookup table for the reflected IEEE 802.3 polynomial.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes` — the per-section checksum of the
/// container format, also used by the serving layer's shard manifests.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(u32::MAX, bytes)
}

/// Streaming CRC-32 step over the raw (pre-inverted) register, so a
/// checksum can cover several non-contiguous slices.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Streaming CRC-32 (IEEE 802.3) hasher for checksums that span
/// non-contiguous slices — e.g. a wire frame whose header and payload
/// are read separately. `Crc32::new().update(a).update(b).finish()`
/// equals [`crc32`] over the concatenation of `a` and `b`.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(u32::MAX)
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(mut self, bytes: &[u8]) -> Self {
        self.0 = crc32_update(self.0, bytes);
        self
    }

    /// Finalizes and returns the CRC-32 value.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 over a section's tag, length field, and payload — covering the
/// header means a corrupted tag byte cannot masquerade as a valid
/// unknown section.
fn section_crc(tag: &[u8; SECTION_TAG_LEN], payload: &[u8]) -> u32 {
    let mut crc = crc32_update(u32::MAX, tag);
    crc = crc32_update(crc, &(payload.len() as u64).to_le_bytes());
    !crc32_update(crc, payload)
}

// ---------------------------------------------------------------------
// Length-validated primitive reads
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a byte slice: every read validates the
/// remaining length and returns [`HammingError::Corrupt`] on underrun
/// instead of panicking. Section payload decoders across the workspace
/// are written against this.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(HammingError::Corrupt(format!(
                "{what}: need {n} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u64` and validates it fits a `usize` **and** that at
    /// least `per_item` bytes per counted item remain — the guard that
    /// stops a corrupt header from driving a huge allocation.
    pub fn len(&mut self, per_item: usize, what: &str) -> Result<usize> {
        let n = self.u64(what)?;
        let n_usize =
            usize::try_from(n).map_err(|_| HammingError::Corrupt(format!("{what}: {n} items")))?;
        if n_usize.checked_mul(per_item).is_none_or(|need| need > self.buf.len()) {
            return Err(HammingError::Corrupt(format!(
                "{what}: {n} items exceed the {} remaining bytes",
                self.buf.len()
            )));
        }
        Ok(n_usize)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// Reads `n` little-endian `u32` values in one bounds check — the
    /// bulk path CSR posting decoders use instead of `n` cursor steps.
    pub fn u32s(&mut self, n: usize, what: &str) -> Result<Vec<u32>> {
        let raw = self.take(
            n.checked_mul(4).ok_or_else(|| {
                HammingError::Corrupt(format!("{what}: item count {n} overflows"))
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `n` little-endian `u64` words.
    pub fn u64s(&mut self, n: usize, what: &str) -> Result<Vec<u64>> {
        let raw = self.take(
            n.checked_mul(8).ok_or_else(|| {
                HammingError::Corrupt(format!("{what}: word count {n} overflows"))
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Errors unless the reader is fully consumed.
    pub fn finish(self, what: &str) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(HammingError::Corrupt(format!("{what}: {} trailing bytes", self.buf.len())))
        }
    }
}

// ---------------------------------------------------------------------
// The section-framed container
// ---------------------------------------------------------------------

/// Section tags are at most this many bytes of ASCII, space-padded.
pub const SECTION_TAG_LEN: usize = 8;

fn pad_tag(tag: &str) -> [u8; SECTION_TAG_LEN] {
    assert!(
        tag.len() <= SECTION_TAG_LEN && tag.is_ascii() && !tag.is_empty(),
        "section tags are 1..=8 ASCII bytes, got {tag:?}"
    );
    let mut out = [b' '; SECTION_TAG_LEN];
    out[..tag.len()].copy_from_slice(tag.as_bytes());
    out
}

/// Builds a section-framed container:
///
/// ```text
/// magic      [u8; 4]      caller-chosen file type
/// version    u32
/// n_sections u32
/// sections   n_sections × { tag [u8; 8], len u64, crc32 u32, payload }
/// ```
///
/// Writers append sections in order; [`SectionWriter::finish`] patches
/// the count. Everything is little-endian.
pub struct SectionWriter {
    buf: Vec<u8>,
    n_sections: u32,
}

impl SectionWriter {
    /// Starts a container with the given magic and format version.
    pub fn new(magic: [u8; 4], version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.put_slice(&magic);
        buf.put_u32_le(version);
        buf.put_u32_le(0); // patched by finish()
        SectionWriter { buf, n_sections: 0 }
    }

    /// Appends a section. `tag` must be 1..=8 ASCII bytes and unique
    /// within the container (readers reject duplicates).
    pub fn section(&mut self, tag: &str, payload: &[u8]) {
        let tag = pad_tag(tag);
        self.buf.put_slice(&tag);
        self.buf.put_u64_le(payload.len() as u64);
        self.buf.put_u32_le(section_crc(&tag, payload));
        self.buf.put_slice(payload);
        self.n_sections += 1;
    }

    /// Finalizes the container and returns its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[8..12].copy_from_slice(&self.n_sections.to_le_bytes());
        self.buf
    }
}

/// Parses and validates a section-framed container written by
/// [`SectionWriter`]: checks magic, version, per-section bounds, and
/// every section's CRC-32 up front, so lookups on a parsed reader cannot
/// hit corrupt payloads.
pub struct SectionReader<'a> {
    version: u32,
    sections: Vec<([u8; SECTION_TAG_LEN], &'a [u8])>,
}

impl<'a> SectionReader<'a> {
    /// Parses `bytes`, requiring `magic` and a version in
    /// `1..=max_version`. Unknown sections are retained (and ignorable),
    /// which lets newer writers of the same major version add sections
    /// without breaking old readers.
    pub fn parse(magic: [u8; 4], max_version: u32, bytes: &'a [u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let got = r.bytes(4, "container magic")?;
        if got != magic {
            return Err(HammingError::Corrupt(format!("bad magic {got:?}, expected {magic:?}")));
        }
        let version = r.u32("container version")?;
        if version == 0 || version > max_version {
            return Err(HammingError::Corrupt(format!(
                "unsupported container version {version} (reader supports 1..={max_version})"
            )));
        }
        // Each section needs at least its 20-byte header.
        let n_sections = r.u32("section count")? as usize;
        if n_sections > r.remaining() / (SECTION_TAG_LEN + 12) {
            return Err(HammingError::Corrupt(format!(
                "{n_sections} sections exceed the {} remaining bytes",
                r.remaining()
            )));
        }
        let mut sections: Vec<([u8; SECTION_TAG_LEN], &'a [u8])> = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let tag: [u8; SECTION_TAG_LEN] =
                r.bytes(SECTION_TAG_LEN, "section tag")?.try_into().expect("8 bytes");
            let len = r.len(1, "section length")?;
            let crc = r.u32("section crc")?;
            let payload = r.bytes(len, "section payload")?;
            if section_crc(&tag, payload) != crc {
                return Err(HammingError::Corrupt(format!(
                    "checksum mismatch in section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(HammingError::Corrupt(format!(
                    "duplicate section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            sections.push((tag, payload));
        }
        r.finish("container")?;
        Ok(SectionReader { version, sections })
    }

    /// The container's format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The payload of section `tag`, if present.
    pub fn get(&self, tag: &str) -> Option<&'a [u8]> {
        let tag = pad_tag(tag);
        self.sections.iter().find(|(t, _)| *t == tag).map(|&(_, p)| p)
    }

    /// The payload of section `tag`, or [`HammingError::Corrupt`] when
    /// the section is missing.
    pub fn section(&self, tag: &str) -> Result<&'a [u8]> {
        self.get(tag).ok_or_else(|| HammingError::Corrupt(format!("missing section {tag:?}")))
    }
}

/// Encodes `ds` into a byte buffer.
pub fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let wpv = words_for(ds.dim());
    let mut buf = Vec::with_capacity(24 + ds.len() * wpv * 8);
    buf.put_slice(&MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(ds.dim() as u64);
    buf.put_u64_le(ds.len() as u64);
    for row in ds.iter_rows() {
        for &w in row {
            buf.put_u64_le(w);
        }
    }
    buf
}

/// Decodes a dataset from bytes produced by [`encode_dataset`].
pub fn decode_dataset(mut bytes: &[u8]) -> Result<Dataset> {
    if bytes.len() < 24 {
        return Err(HammingError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(HammingError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(HammingError::Corrupt(format!("unsupported version {version}")));
    }
    let dim = bytes.get_u64_le() as usize;
    let len = bytes.get_u64_le() as usize;
    let wpv = words_for(dim);
    let need = len
        .checked_mul(wpv)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| HammingError::Corrupt("size overflow".into()))?;
    if bytes.remaining() != need {
        return Err(HammingError::Corrupt(format!(
            "payload is {} bytes, expected {need}",
            bytes.remaining()
        )));
    }
    let mut ds = Dataset::with_capacity(dim, len);
    let tail_mask = if dim.is_multiple_of(64) { u64::MAX } else { (1u64 << (dim % 64)) - 1 };
    let mut row = vec![0u64; wpv];
    for _ in 0..len {
        for w in row.iter_mut() {
            *w = bytes.get_u64_le();
        }
        if let Some(last) = row.last() {
            if *last & !tail_mask != 0 {
                return Err(HammingError::Corrupt(
                    "trailing bits set beyond dimensionality".into(),
                ));
            }
        }
        ds.push_words(&row);
    }
    Ok(ds)
}

/// Writes `ds` to `path`.
pub fn write_dataset<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_dataset(ds))?;
    w.flush()?;
    Ok(())
}

/// Reads a dataset from `path`.
pub fn read_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_dataset(&bytes)
}

const PART_MAGIC: [u8; 4] = *b"HAMP";

/// Encodes a partitioning (the expensive offline artifact of GPH's GR
/// strategy, worth persisting across runs and τ settings).
///
/// Format: magic `HAMP`, version u32, dim u64, m u64, then per partition
/// a u32 length and u32 dimension ids.
pub fn encode_partitioning(p: &Partitioning) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + p.dim() * 4);
    buf.put_slice(&PART_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(p.dim() as u64);
    buf.put_u64_le(p.num_parts() as u64);
    for part in p.parts() {
        buf.put_u32_le(part.len() as u32);
        for &d in part {
            buf.put_u32_le(d);
        }
    }
    buf
}

/// Decodes a partitioning written by [`encode_partitioning`], re-running
/// full disjoint-cover validation.
pub fn decode_partitioning(mut bytes: &[u8]) -> Result<Partitioning> {
    if bytes.len() < 24 {
        return Err(HammingError::Corrupt("partitioning header truncated".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if magic != PART_MAGIC {
        return Err(HammingError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(HammingError::Corrupt(format!("unsupported version {version}")));
    }
    let dim = bytes.get_u64_le() as usize;
    let m = bytes.get_u64_le() as usize;
    if m > dim.max(1) {
        return Err(HammingError::Corrupt(format!("{m} partitions for {dim} dims")));
    }
    // Validate the declared counts against the actual byte count BEFORE
    // allocating: a corrupt header could otherwise declare ~2^64 dims and
    // drive `Vec::with_capacity` into a huge allocation. Each partition
    // needs at least its 4-byte length, and the dimension ids across all
    // partitions total exactly `dim` u32s.
    if m > bytes.remaining() / 4 {
        return Err(HammingError::Corrupt(format!(
            "{m} partitions exceed the {} remaining bytes",
            bytes.remaining()
        )));
    }
    if dim > bytes.remaining() / 4 {
        return Err(HammingError::Corrupt(format!(
            "{dim} dims exceed the {} remaining bytes",
            bytes.remaining()
        )));
    }
    let mut parts = Vec::with_capacity(m);
    for _ in 0..m {
        if bytes.remaining() < 4 {
            return Err(HammingError::Corrupt("partition length truncated".into()));
        }
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len * 4 {
            return Err(HammingError::Corrupt("partition body truncated".into()));
        }
        let mut part = Vec::with_capacity(len);
        for _ in 0..len {
            part.push(bytes.get_u32_le());
        }
        parts.push(part);
    }
    if bytes.has_remaining() {
        return Err(HammingError::Corrupt("trailing bytes".into()));
    }
    Partitioning::new(dim, parts)
}

/// Writes a partitioning to `path`.
pub fn write_partitioning<P: AsRef<Path>>(p: &Partitioning, path: P) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_partitioning(p))?;
    w.flush()?;
    Ok(())
}

/// Reads a partitioning from `path`.
pub fn read_partitioning<P: AsRef<Path>>(path: P) -> Result<Partitioning> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_partitioning(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;

    fn sample(dim: usize, n: usize) -> Dataset {
        let mut ds = Dataset::new(dim);
        for i in 0..n {
            let mut v = BitVector::zeros(dim);
            for d in 0..dim {
                if (i * 31 + d * 7) % 3 == 0 {
                    v.set(d, true);
                }
            }
            ds.push(&v).unwrap();
        }
        ds
    }

    #[test]
    fn roundtrip_in_memory() {
        for (dim, n) in [(8, 4), (64, 10), (130, 7), (881, 3)] {
            let ds = sample(dim, n);
            let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
            assert_eq!(decoded.dim(), dim);
            assert_eq!(decoded.len(), n);
            for i in 0..n {
                assert_eq!(decoded.row(i), ds.row(i), "dim={dim} row={i}");
            }
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let ds = sample(100, 20);
        let dir = std::env::temp_dir().join("hamming_core_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.hamd");
        write_dataset(&ds, &path).unwrap();
        let decoded = read_dataset(&path).unwrap();
        assert_eq!(decoded.len(), 20);
        assert_eq!(decoded.row(19), ds.row(19));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let ds = sample(16, 2);
        let mut bytes = encode_dataset(&ds);
        assert!(decode_dataset(&bytes[..10]).is_err()); // truncated header
        bytes[0] = b'X';
        assert!(decode_dataset(&bytes).is_err()); // bad magic
        let mut bytes2 = encode_dataset(&ds);
        bytes2.truncate(bytes2.len() - 1);
        assert!(decode_dataset(&bytes2).is_err()); // truncated payload
        let mut bytes3 = encode_dataset(&ds);
        let last = bytes3.len() - 1;
        bytes3[last] = 0xFF; // dim=16, so high bytes of the word must be 0
        assert!(decode_dataset(&bytes3).is_err());
    }

    #[test]
    fn partitioning_roundtrip() {
        let p = Partitioning::random_shuffle(100, 7, 3).unwrap();
        let decoded = decode_partitioning(&encode_partitioning(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn partitioning_rejects_corruption() {
        let p = Partitioning::equi_width(16, 4).unwrap();
        let bytes = encode_partitioning(&p);
        assert!(decode_partitioning(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_partitioning(&bad).is_err());
        // Flip a dimension id so the cover breaks (duplicate dim).
        let mut dup = bytes.clone();
        let last = dup.len() - 4;
        dup[last..].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_partitioning(&dup).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_partitioning(&trailing).is_err());
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new(32);
        let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.dim(), 32);
    }

    #[test]
    fn forged_huge_headers_error_before_allocating() {
        // A corrupt header declaring ~2^64 rows/dims must be rejected by
        // byte-count validation, not by attempting the allocation.
        let mut ds_bytes = encode_dataset(&sample(16, 2));
        ds_bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // len
        assert!(decode_dataset(&ds_bytes).is_err());
        let mut ds_bytes2 = encode_dataset(&sample(16, 2));
        ds_bytes2[8..16].copy_from_slice(&u64::MAX.to_le_bytes()); // dim
        assert!(decode_dataset(&ds_bytes2).is_err());

        let p = Partitioning::equi_width(16, 4).unwrap();
        let mut p_bytes = encode_partitioning(&p);
        // dim and m both forged huge (m <= dim keeps the first check quiet).
        p_bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        p_bytes[16..24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(decode_partitioning(&p_bytes).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_crc32_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0usize, 1, 7, data.len() / 2, data.len()] {
            let (a, b) = data.split_at(split);
            assert_eq!(Crc32::new().update(a).update(b).finish(), crc32(data), "split={split}");
        }
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn container_roundtrip_and_unknown_sections() {
        let mut w = SectionWriter::new(*b"TEST", 1);
        w.section("alpha", b"hello");
        w.section("beta", &[]);
        w.section("futuresx", b"ignored by old readers");
        let bytes = w.finish();
        let r = SectionReader::parse(*b"TEST", 1, &bytes).unwrap();
        assert_eq!(r.version(), 1);
        assert_eq!(r.section("alpha").unwrap(), b"hello");
        assert_eq!(r.section("beta").unwrap(), b"");
        assert_eq!(r.get("futuresx").unwrap(), b"ignored by old readers");
        assert!(r.get("gamma").is_none());
        assert!(r.section("gamma").is_err());
    }

    #[test]
    fn container_rejects_wrong_magic_and_version() {
        let mut w = SectionWriter::new(*b"TEST", 3);
        w.section("a", b"x");
        let bytes = w.finish();
        assert!(SectionReader::parse(*b"ELSE", 3, &bytes).is_err());
        // Reader supporting only up to version 2 must refuse version 3.
        assert!(SectionReader::parse(*b"TEST", 2, &bytes).is_err());
        assert!(SectionReader::parse(*b"TEST", 3, &bytes).is_ok());
    }

    #[test]
    fn container_rejects_duplicate_sections() {
        let mut w = SectionWriter::new(*b"TEST", 1);
        w.section("twin", b"a");
        w.section("twin", b"b");
        let bytes = w.finish();
        assert!(SectionReader::parse(*b"TEST", 1, &bytes).is_err());
    }

    #[test]
    fn container_detects_every_single_byte_corruption() {
        let mut w = SectionWriter::new(*b"TEST", 1);
        w.section("alpha", b"some payload worth protecting");
        w.section("beta", &[1, 2, 3, 4, 5]);
        let bytes = w.finish();
        assert!(SectionReader::parse(*b"TEST", 1, &bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                SectionReader::parse(*b"TEST", 1, &bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncations at every length are also rejected.
        for cut in 0..bytes.len() {
            assert!(SectionReader::parse(*b"TEST", 1, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn byte_reader_validates_counts() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert!(r.len(4, "items").is_err(), "huge count must not pass");
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(&2u64.to_le_bytes());
        buf2.extend_from_slice(&[0u8; 8]);
        let mut r2 = ByteReader::new(&buf2);
        assert_eq!(r2.len(4, "items").unwrap(), 2);
        assert_eq!(r2.u64s(1, "words").unwrap(), vec![0]);
        assert!(r2.finish("buf").is_ok());
    }
}

//! Compact binary serialization for datasets.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"HAMD"
//! version u32     = 1
//! dim     u64
//! len     u64
//! words   [u64]   = len * words_for(dim) raw words
//! ```
//!
//! The format is intentionally dumb: datasets here are synthetic and
//! regenerable, so the only goals are speed and exact round-tripping.

use crate::dataset::Dataset;
use crate::error::{HammingError, Result};
use crate::partition::Partitioning;
use crate::words_for;
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"HAMD";
const VERSION: u32 = 1;

/// Encodes `ds` into a byte buffer.
pub fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let wpv = words_for(ds.dim());
    let mut buf = Vec::with_capacity(24 + ds.len() * wpv * 8);
    buf.put_slice(&MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(ds.dim() as u64);
    buf.put_u64_le(ds.len() as u64);
    for row in ds.iter_rows() {
        for &w in row {
            buf.put_u64_le(w);
        }
    }
    buf
}

/// Decodes a dataset from bytes produced by [`encode_dataset`].
pub fn decode_dataset(mut bytes: &[u8]) -> Result<Dataset> {
    if bytes.len() < 24 {
        return Err(HammingError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(HammingError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(HammingError::Corrupt(format!("unsupported version {version}")));
    }
    let dim = bytes.get_u64_le() as usize;
    let len = bytes.get_u64_le() as usize;
    let wpv = words_for(dim);
    let need = len
        .checked_mul(wpv)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| HammingError::Corrupt("size overflow".into()))?;
    if bytes.remaining() != need {
        return Err(HammingError::Corrupt(format!(
            "payload is {} bytes, expected {need}",
            bytes.remaining()
        )));
    }
    let mut ds = Dataset::with_capacity(dim, len);
    let tail_mask = if dim.is_multiple_of(64) { u64::MAX } else { (1u64 << (dim % 64)) - 1 };
    let mut row = vec![0u64; wpv];
    for _ in 0..len {
        for w in row.iter_mut() {
            *w = bytes.get_u64_le();
        }
        if let Some(last) = row.last() {
            if *last & !tail_mask != 0 {
                return Err(HammingError::Corrupt(
                    "trailing bits set beyond dimensionality".into(),
                ));
            }
        }
        ds.push_words(&row);
    }
    Ok(ds)
}

/// Writes `ds` to `path`.
pub fn write_dataset<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_dataset(ds))?;
    w.flush()?;
    Ok(())
}

/// Reads a dataset from `path`.
pub fn read_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_dataset(&bytes)
}

const PART_MAGIC: [u8; 4] = *b"HAMP";

/// Encodes a partitioning (the expensive offline artifact of GPH's GR
/// strategy, worth persisting across runs and τ settings).
///
/// Format: magic `HAMP`, version u32, dim u64, m u64, then per partition
/// a u32 length and u32 dimension ids.
pub fn encode_partitioning(p: &Partitioning) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + p.dim() * 4);
    buf.put_slice(&PART_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(p.dim() as u64);
    buf.put_u64_le(p.num_parts() as u64);
    for part in p.parts() {
        buf.put_u32_le(part.len() as u32);
        for &d in part {
            buf.put_u32_le(d);
        }
    }
    buf
}

/// Decodes a partitioning written by [`encode_partitioning`], re-running
/// full disjoint-cover validation.
pub fn decode_partitioning(mut bytes: &[u8]) -> Result<Partitioning> {
    if bytes.len() < 24 {
        return Err(HammingError::Corrupt("partitioning header truncated".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if magic != PART_MAGIC {
        return Err(HammingError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(HammingError::Corrupt(format!("unsupported version {version}")));
    }
    let dim = bytes.get_u64_le() as usize;
    let m = bytes.get_u64_le() as usize;
    if m > dim.max(1) {
        return Err(HammingError::Corrupt(format!("{m} partitions for {dim} dims")));
    }
    let mut parts = Vec::with_capacity(m);
    for _ in 0..m {
        if bytes.remaining() < 4 {
            return Err(HammingError::Corrupt("partition length truncated".into()));
        }
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len * 4 {
            return Err(HammingError::Corrupt("partition body truncated".into()));
        }
        let mut part = Vec::with_capacity(len);
        for _ in 0..len {
            part.push(bytes.get_u32_le());
        }
        parts.push(part);
    }
    if bytes.has_remaining() {
        return Err(HammingError::Corrupt("trailing bytes".into()));
    }
    Partitioning::new(dim, parts)
}

/// Writes a partitioning to `path`.
pub fn write_partitioning<P: AsRef<Path>>(p: &Partitioning, path: P) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_partitioning(p))?;
    w.flush()?;
    Ok(())
}

/// Reads a partitioning from `path`.
pub fn read_partitioning<P: AsRef<Path>>(path: P) -> Result<Partitioning> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_partitioning(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;

    fn sample(dim: usize, n: usize) -> Dataset {
        let mut ds = Dataset::new(dim);
        for i in 0..n {
            let mut v = BitVector::zeros(dim);
            for d in 0..dim {
                if (i * 31 + d * 7) % 3 == 0 {
                    v.set(d, true);
                }
            }
            ds.push(&v).unwrap();
        }
        ds
    }

    #[test]
    fn roundtrip_in_memory() {
        for (dim, n) in [(8, 4), (64, 10), (130, 7), (881, 3)] {
            let ds = sample(dim, n);
            let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
            assert_eq!(decoded.dim(), dim);
            assert_eq!(decoded.len(), n);
            for i in 0..n {
                assert_eq!(decoded.row(i), ds.row(i), "dim={dim} row={i}");
            }
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let ds = sample(100, 20);
        let dir = std::env::temp_dir().join("hamming_core_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.hamd");
        write_dataset(&ds, &path).unwrap();
        let decoded = read_dataset(&path).unwrap();
        assert_eq!(decoded.len(), 20);
        assert_eq!(decoded.row(19), ds.row(19));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let ds = sample(16, 2);
        let mut bytes = encode_dataset(&ds);
        assert!(decode_dataset(&bytes[..10]).is_err()); // truncated header
        bytes[0] = b'X';
        assert!(decode_dataset(&bytes).is_err()); // bad magic
        let mut bytes2 = encode_dataset(&ds);
        bytes2.truncate(bytes2.len() - 1);
        assert!(decode_dataset(&bytes2).is_err()); // truncated payload
        let mut bytes3 = encode_dataset(&ds);
        let last = bytes3.len() - 1;
        bytes3[last] = 0xFF; // dim=16, so high bytes of the word must be 0
        assert!(decode_dataset(&bytes3).is_err());
    }

    #[test]
    fn partitioning_roundtrip() {
        let p = Partitioning::random_shuffle(100, 7, 3).unwrap();
        let decoded = decode_partitioning(&encode_partitioning(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn partitioning_rejects_corruption() {
        let p = Partitioning::equi_width(16, 4).unwrap();
        let bytes = encode_partitioning(&p);
        assert!(decode_partitioning(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_partitioning(&bad).is_err());
        // Flip a dimension id so the cover breaks (duplicate dim).
        let mut dup = bytes.clone();
        let last = dup.len() - 4;
        dup[last..].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_partitioning(&dup).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_partitioning(&trailing).is_err());
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new(32);
        let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.dim(), 32);
    }
}

//! Binary serialization: flat formats for datasets and partitionings,
//! plus the generic **section-framed container** every persistent
//! artifact in the workspace (engine snapshots, shard manifests) is built
//! from.
//!
//! Dataset format (little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"HAMD"
//! version u32     = 1
//! dim     u64
//! len     u64
//! words   [u64]   = len * words_for(dim) raw words
//! ```
//!
//! The flat formats are intentionally dumb: datasets here are synthetic
//! and regenerable, so the only goals are speed and exact round-tripping.
//!
//! The container ([`SectionWriter`] / [`SectionReader`]) frames named
//! sections behind a magic + version header; every section carries its
//! length and a CRC-32, so any single-byte corruption anywhere in the
//! file is detected at parse time (CRC-32 catches all burst errors up to
//! 32 bits) and surfaces as [`HammingError::Corrupt`] rather than a panic
//! or silently wrong data. Readers ignore unknown sections, which is the
//! forward-compatibility escape hatch: new writers may append sections
//! without breaking old readers of the same major version.

use crate::dataset::Dataset;
use crate::error::{HammingError, Result};
use crate::partition::Partitioning;
use crate::words_for;
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"HAMD";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------

/// 256-entry lookup table for the reflected IEEE 802.3 polynomial.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes` — the per-section checksum of the
/// container format, also used by the serving layer's shard manifests.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(u32::MAX, bytes)
}

/// Streaming CRC-32 step over the raw (pre-inverted) register, so a
/// checksum can cover several non-contiguous slices.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Streaming CRC-32 (IEEE 802.3) hasher for checksums that span
/// non-contiguous slices — e.g. a wire frame whose header and payload
/// are read separately. `Crc32::new().update(a).update(b).finish()`
/// equals [`crc32`] over the concatenation of `a` and `b`.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(u32::MAX)
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(mut self, bytes: &[u8]) -> Self {
        self.0 = crc32_update(self.0, bytes);
        self
    }

    /// Finalizes and returns the CRC-32 value.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 over a section's tag, length field, and payload — covering the
/// header means a corrupted tag byte cannot masquerade as a valid
/// unknown section.
fn section_crc(tag: &[u8; SECTION_TAG_LEN], payload: &[u8]) -> u32 {
    let mut crc = crc32_update(u32::MAX, tag);
    crc = crc32_update(crc, &(payload.len() as u64).to_le_bytes());
    !crc32_update(crc, payload)
}

// ---------------------------------------------------------------------
// Length-validated primitive reads
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a byte slice: every read validates the
/// remaining length and returns [`HammingError::Corrupt`] on underrun
/// instead of panicking. Section payload decoders across the workspace
/// are written against this.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(HammingError::Corrupt(format!(
                "{what}: need {n} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `u64` and validates it fits a `usize` **and** that at
    /// least `per_item` bytes per counted item remain — the guard that
    /// stops a corrupt header from driving a huge allocation.
    pub fn len(&mut self, per_item: usize, what: &str) -> Result<usize> {
        let n = self.u64(what)?;
        let n_usize =
            usize::try_from(n).map_err(|_| HammingError::Corrupt(format!("{what}: {n} items")))?;
        if n_usize.checked_mul(per_item).is_none_or(|need| need > self.buf.len()) {
            return Err(HammingError::Corrupt(format!(
                "{what}: {n} items exceed the {} remaining bytes",
                self.buf.len()
            )));
        }
        Ok(n_usize)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// Reads `n` little-endian `u32` values in one bounds check — the
    /// bulk path CSR posting decoders use instead of `n` cursor steps.
    pub fn u32s(&mut self, n: usize, what: &str) -> Result<Vec<u32>> {
        let raw = self.take(
            n.checked_mul(4).ok_or_else(|| {
                HammingError::Corrupt(format!("{what}: item count {n} overflows"))
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads `n` little-endian `u64` words.
    pub fn u64s(&mut self, n: usize, what: &str) -> Result<Vec<u64>> {
        let raw = self.take(
            n.checked_mul(8).ok_or_else(|| {
                HammingError::Corrupt(format!("{what}: word count {n} overflows"))
            })?,
            what,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Errors unless the reader is fully consumed.
    pub fn finish(self, what: &str) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(HammingError::Corrupt(format!("{what}: {} trailing bytes", self.buf.len())))
        }
    }
}

// ---------------------------------------------------------------------
// The section-framed container
// ---------------------------------------------------------------------

/// Section tags are at most this many bytes of ASCII, space-padded.
pub const SECTION_TAG_LEN: usize = 8;

fn pad_tag(tag: &str) -> [u8; SECTION_TAG_LEN] {
    assert!(
        tag.len() <= SECTION_TAG_LEN && tag.is_ascii() && !tag.is_empty(),
        "section tags are 1..=8 ASCII bytes, got {tag:?}"
    );
    let mut out = [b' '; SECTION_TAG_LEN];
    out[..tag.len()].copy_from_slice(tag.as_bytes());
    out
}

/// Builds a section-framed container:
///
/// ```text
/// magic      [u8; 4]      caller-chosen file type
/// version    u32
/// n_sections u32
/// sections   n_sections × { tag [u8; 8], len u64, crc32 u32, payload }
/// ```
///
/// Writers append sections in order; [`SectionWriter::finish`] patches
/// the count. Everything is little-endian.
pub struct SectionWriter {
    buf: Vec<u8>,
    n_sections: u32,
}

impl SectionWriter {
    /// Starts a container with the given magic and format version.
    pub fn new(magic: [u8; 4], version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.put_slice(&magic);
        buf.put_u32_le(version);
        buf.put_u32_le(0); // patched by finish()
        SectionWriter { buf, n_sections: 0 }
    }

    /// Appends a section. `tag` must be 1..=8 ASCII bytes and unique
    /// within the container (readers reject duplicates).
    pub fn section(&mut self, tag: &str, payload: &[u8]) {
        let tag = pad_tag(tag);
        self.buf.put_slice(&tag);
        self.buf.put_u64_le(payload.len() as u64);
        self.buf.put_u32_le(section_crc(&tag, payload));
        self.buf.put_slice(payload);
        self.n_sections += 1;
    }

    /// Finalizes the container and returns its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[8..12].copy_from_slice(&self.n_sections.to_le_bytes());
        self.buf
    }
}

/// Parses and validates a section-framed container written by
/// [`SectionWriter`]: checks magic, version, per-section bounds, and
/// every section's CRC-32 up front, so lookups on a parsed reader cannot
/// hit corrupt payloads.
pub struct SectionReader<'a> {
    version: u32,
    sections: Vec<([u8; SECTION_TAG_LEN], &'a [u8])>,
}

impl<'a> SectionReader<'a> {
    /// Parses `bytes`, requiring `magic` and a version in
    /// `1..=max_version`. Unknown sections are retained (and ignorable),
    /// which lets newer writers of the same major version add sections
    /// without breaking old readers.
    pub fn parse(magic: [u8; 4], max_version: u32, bytes: &'a [u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let got = r.bytes(4, "container magic")?;
        if got != magic {
            return Err(HammingError::Corrupt(format!("bad magic {got:?}, expected {magic:?}")));
        }
        let version = r.u32("container version")?;
        if version == 0 || version > max_version {
            return Err(HammingError::Corrupt(format!(
                "unsupported container version {version} (reader supports 1..={max_version})"
            )));
        }
        // Each section needs at least its 20-byte header.
        let n_sections = r.u32("section count")? as usize;
        if n_sections > r.remaining() / (SECTION_TAG_LEN + 12) {
            return Err(HammingError::Corrupt(format!(
                "{n_sections} sections exceed the {} remaining bytes",
                r.remaining()
            )));
        }
        let mut sections: Vec<([u8; SECTION_TAG_LEN], &'a [u8])> = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let tag: [u8; SECTION_TAG_LEN] =
                r.bytes(SECTION_TAG_LEN, "section tag")?.try_into().expect("8 bytes");
            let len = r.len(1, "section length")?;
            let crc = r.u32("section crc")?;
            let payload = r.bytes(len, "section payload")?;
            if section_crc(&tag, payload) != crc {
                return Err(HammingError::Corrupt(format!(
                    "checksum mismatch in section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(HammingError::Corrupt(format!(
                    "duplicate section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            sections.push((tag, payload));
        }
        r.finish("container")?;
        Ok(SectionReader { version, sections })
    }

    /// The container's format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The payload of section `tag`, if present.
    pub fn get(&self, tag: &str) -> Option<&'a [u8]> {
        let tag = pad_tag(tag);
        self.sections.iter().find(|(t, _)| *t == tag).map(|&(_, p)| p)
    }

    /// The payload of section `tag`, or [`HammingError::Corrupt`] when
    /// the section is missing.
    pub fn section(&self, tag: &str) -> Result<&'a [u8]> {
        self.get(tag).ok_or_else(|| HammingError::Corrupt(format!("missing section {tag:?}")))
    }
}

// ---------------------------------------------------------------------
// The offset-addressed container (v3 snapshot layout)
// ---------------------------------------------------------------------

/// Alignment of payload sections in an offset-addressed container, and
/// the unit the cold-path page cache reads in. 4 KiB matches the common
/// OS page, and every element size used by the v3 layout (u32 ids and
/// offsets, u64 keys) divides it, so scalar element reads never straddle
/// a page boundary.
pub const PAGE_SIZE: usize = 4096;

/// Byte length of an offset-addressed container's header:
/// `magic [u8;4] + version u32 + n_slots u32`.
pub const OFFSET_HEADER_LEN: usize = 12;

/// Trailing magic that terminates an offset-addressed container's
/// footer. A reader seeks to EOF, checks these four bytes, and walks
/// backward — no sequential decode required.
pub const FOOTER_MAGIC: [u8; 4] = *b"GPHF";

/// Bytes each footer slot occupies: `offset u64 + len u64 + crc u32`.
const SLOT_LEN: usize = 20;

/// Bytes of footer trailer after the slot table:
/// `version u32 + n_slots u32 + magic [u8;4] + crc u32 + FOOTER_MAGIC`.
const FOOTER_TRAILER_LEN: usize = 20;

/// One entry in an offset-addressed container's footer: where a section
/// lives in the file and the CRC-32 of its payload bytes. Slots are
/// positional — the format that owns the magic defines what slot `i`
/// holds (see `FORMAT.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionSlot {
    /// Absolute byte offset of the payload from the start of the
    /// container.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 ([`crc32`]) of the payload bytes.
    pub crc: u32,
}

/// Builds an offset-addressed container: a 12-byte header, sections
/// written back to back (payload sections optionally zero-padded to
/// [`PAGE_SIZE`] boundaries), and a fixed-size [`Footer`] at EOF:
///
/// ```text
/// magic    [u8; 4]      caller-chosen file type
/// version  u32
/// n_slots  u32
/// sections ...           (aligned sections padded with zeros)
/// footer   n_slots × { offset u64, len u64, crc u32 }
///          version u32, n_slots u32, magic [u8; 4]
///          crc u32       CRC-32 of every preceding footer byte
///          magic    [u8; 4] = b"GPHF"
/// ```
///
/// Unlike [`SectionWriter`], sections carry no tags: identity is the
/// slot index, fixed per container magic + version. The call order of
/// [`OffsetWriter::section`] / [`OffsetWriter::aligned_section`]
/// assigns slot indices.
pub struct OffsetWriter {
    magic: [u8; 4],
    version: u32,
    buf: Vec<u8>,
    slots: Vec<SectionSlot>,
}

impl OffsetWriter {
    /// Starts a container with the given magic and format version.
    pub fn new(magic: [u8; 4], version: u32) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.put_slice(&magic);
        buf.put_u32_le(version);
        buf.put_u32_le(0); // n_slots, patched by finish()
        OffsetWriter { magic, version, buf, slots: Vec::new() }
    }

    /// The file offset the next unaligned section would start at.
    pub fn pos(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Appends a section at the current offset and returns that offset.
    pub fn section(&mut self, payload: &[u8]) -> u64 {
        let offset = self.buf.len() as u64;
        self.slots.push(SectionSlot { offset, len: payload.len() as u64, crc: crc32(payload) });
        self.buf.put_slice(payload);
        offset
    }

    /// Zero-pads to the next [`PAGE_SIZE`] boundary, then appends a
    /// section there and returns its (page-aligned) offset. Padding is
    /// always zero bytes so containers stay byte-deterministic.
    pub fn aligned_section(&mut self, payload: &[u8]) -> u64 {
        let pos = self.buf.len();
        self.buf.resize(pos.next_multiple_of(PAGE_SIZE), 0);
        self.section(payload)
    }

    /// Finalizes the container: patches the header slot count and
    /// appends the footer.
    pub fn finish(mut self) -> Vec<u8> {
        let n = u32::try_from(self.slots.len()).expect("slot count fits u32");
        assert!(n <= Footer::MAX_SLOTS, "{n} slots exceed Footer::MAX_SLOTS");
        self.buf[8..OFFSET_HEADER_LEN].copy_from_slice(&n.to_le_bytes());
        let footer_start = self.buf.len();
        for s in &self.slots {
            self.buf.put_u64_le(s.offset);
            self.buf.put_u64_le(s.len);
            self.buf.put_u32_le(s.crc);
        }
        self.buf.put_u32_le(self.version);
        self.buf.put_u32_le(n);
        self.buf.put_slice(&self.magic);
        let crc = crc32(&self.buf[footer_start..]);
        self.buf.put_u32_le(crc);
        self.buf.put_slice(&FOOTER_MAGIC);
        self.buf
    }
}

/// The parsed footer of an offset-addressed container: the format
/// version and the slot table. Obtained via [`Footer::parse`] (from a
/// file tail, without touching payloads — the cold open path) or
/// [`Footer::parse_bytes`] (from a full in-memory container, with every
/// payload CRC and padding byte validated — the resident decode path).
#[derive(Clone, Debug)]
pub struct Footer {
    version: u32,
    slots: Vec<SectionSlot>,
}

impl Footer {
    /// Most slots any container declares. Bounds the footer length a
    /// reader will trust before validating anything else, so a corrupt
    /// slot count cannot drive a huge allocation.
    pub const MAX_SLOTS: u32 = 64;

    /// Largest possible footer length in bytes. Reading this many bytes
    /// from EOF (or the whole file if shorter) always captures the
    /// complete footer of a valid container.
    pub const MAX_LEN: usize = Self::MAX_SLOTS as usize * SLOT_LEN + FOOTER_TRAILER_LEN;

    /// Footer length in bytes for a container with `n_slots` sections.
    pub fn footer_len(n_slots: usize) -> usize {
        n_slots * SLOT_LEN + FOOTER_TRAILER_LEN
    }

    /// Parses a footer from the tail of a file of total length
    /// `file_len`, where `tail` holds the file's **last** `tail.len()`
    /// bytes (at least [`Footer::MAX_LEN`], or the whole file when
    /// shorter). Validates the trailing magic, the magic echo, the
    /// version, the footer CRC, and that every slot lies inside
    /// `[OFFSET_HEADER_LEN, file_len - footer_len)` with checked
    /// arithmetic — a corrupt offset or length yields
    /// [`HammingError::Corrupt`], never a panic or an out-of-file read.
    /// Payload CRCs are **not** checked here; cold readers verify each
    /// section as they first touch it.
    pub fn parse(magic: [u8; 4], max_version: u32, file_len: u64, tail: &[u8]) -> Result<Footer> {
        if (tail.len() as u64) > file_len {
            return Err(HammingError::Corrupt(format!(
                "footer tail of {} bytes exceeds the {file_len}-byte file",
                tail.len()
            )));
        }
        if tail.len() < FOOTER_TRAILER_LEN {
            return Err(HammingError::Corrupt(format!(
                "file tail of {} bytes cannot hold a footer trailer",
                tail.len()
            )));
        }
        let (rest, trailer) = tail.split_at(tail.len() - FOOTER_TRAILER_LEN);
        let mut r = ByteReader::new(trailer);
        let version = r.u32("footer version")?;
        let n_slots = r.u32("footer slot count")?;
        let magic_echo = r.bytes(4, "footer magic echo")?;
        let crc = r.u32("footer crc")?;
        let end_magic = r.bytes(4, "footer magic")?;
        if end_magic != FOOTER_MAGIC {
            return Err(HammingError::Corrupt(format!(
                "bad footer magic {end_magic:?}, expected {FOOTER_MAGIC:?}"
            )));
        }
        if magic_echo != magic {
            return Err(HammingError::Corrupt(format!(
                "footer for a {magic_echo:?} container, expected {magic:?}"
            )));
        }
        if version == 0 || version > max_version {
            return Err(HammingError::Corrupt(format!(
                "unsupported container version {version} (reader supports 1..={max_version})"
            )));
        }
        if n_slots > Self::MAX_SLOTS {
            return Err(HammingError::Corrupt(format!(
                "footer declares {n_slots} slots (supported: 0..={})",
                Self::MAX_SLOTS
            )));
        }
        let footer_len = Self::footer_len(n_slots as usize);
        if footer_len > tail.len() {
            return Err(HammingError::Corrupt(format!(
                "footer of {footer_len} bytes truncated to the {}-byte tail",
                tail.len()
            )));
        }
        let data_end = file_len
            .checked_sub(footer_len as u64)
            .filter(|&e| e >= OFFSET_HEADER_LEN as u64)
            .ok_or_else(|| {
                HammingError::Corrupt(format!(
                    "footer of {footer_len} bytes does not fit the {file_len}-byte file"
                ))
            })?;
        let table = &rest[rest.len() - (footer_len - FOOTER_TRAILER_LEN)..];
        // The footer CRC covers the slot table and the trailer fields
        // before the CRC itself.
        let covered_crc =
            Crc32::new().update(table).update(&trailer[..FOOTER_TRAILER_LEN - 8]).finish();
        if covered_crc != crc {
            return Err(HammingError::Corrupt("footer checksum mismatch".into()));
        }
        let mut tr = ByteReader::new(table);
        let mut slots = Vec::with_capacity(n_slots as usize);
        for i in 0..n_slots {
            let offset = tr.u64("slot offset")?;
            let len = tr.u64("slot length")?;
            let slot_crc = tr.u32("slot crc")?;
            let end = offset.checked_add(len).ok_or_else(|| {
                HammingError::Corrupt(format!("slot {i} offset+len overflows u64"))
            })?;
            if offset < OFFSET_HEADER_LEN as u64 || end > data_end {
                return Err(HammingError::Corrupt(format!(
                    "slot {i} spans {offset}..{end}, outside the data region \
                     {OFFSET_HEADER_LEN}..{data_end}"
                )));
            }
            slots.push(SectionSlot { offset, len, crc: slot_crc });
        }
        tr.finish("footer slot table")?;
        Ok(Footer { version, slots })
    }

    /// Parses and **fully validates** an in-memory container: the
    /// header (magic, version, and slot count must match the footer),
    /// the footer itself, every slot's payload CRC, and that every gap
    /// between sections is zero padding — so any single-byte corruption
    /// anywhere in the container is detected.
    pub fn parse_bytes(magic: [u8; 4], max_version: u32, bytes: &[u8]) -> Result<Footer> {
        let footer = Self::parse(magic, max_version, bytes.len() as u64, bytes)?;
        let mut h = ByteReader::new(bytes);
        let got = h.bytes(4, "container magic")?;
        if got != magic {
            return Err(HammingError::Corrupt(format!("bad magic {got:?}, expected {magic:?}")));
        }
        let h_version = h.u32("container version")?;
        let h_slots = h.u32("container slot count")?;
        if h_version != footer.version || h_slots as usize != footer.slots.len() {
            return Err(HammingError::Corrupt(format!(
                "header declares version {h_version} / {h_slots} slots, footer says {} / {}",
                footer.version,
                footer.slots.len()
            )));
        }
        for (i, slot) in footer.slots.iter().enumerate() {
            let payload = footer.payload(bytes, i)?;
            if crc32(payload) != slot.crc {
                return Err(HammingError::Corrupt(format!("checksum mismatch in slot {i}")));
            }
        }
        // Every byte outside the header, the payloads, and the footer
        // must be zero padding; anything else is corruption the CRCs
        // cannot see.
        let data_end = bytes.len() - Self::footer_len(footer.slots.len());
        let mut spans: Vec<(u64, u64)> =
            footer.slots.iter().map(|s| (s.offset, s.offset + s.len)).collect();
        spans.sort_unstable();
        let mut cursor = OFFSET_HEADER_LEN as u64;
        for (start, end) in spans.into_iter().chain([(data_end as u64, data_end as u64)]) {
            if start < cursor {
                return Err(HammingError::Corrupt(format!(
                    "slots overlap at offset {start} (previous section ends at {cursor})"
                )));
            }
            if bytes[cursor as usize..start as usize].iter().any(|&b| b != 0) {
                return Err(HammingError::Corrupt(format!("nonzero padding in {cursor}..{start}")));
            }
            cursor = cursor.max(end);
        }
        Ok(footer)
    }

    /// The container's format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of slots in the footer.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Slot `i`, or [`HammingError::Corrupt`] when the footer has fewer
    /// slots than the format requires.
    pub fn slot(&self, i: usize) -> Result<SectionSlot> {
        self.slots.get(i).copied().ok_or_else(|| {
            HammingError::Corrupt(format!(
                "footer has {} slots, slot {i} required",
                self.slots.len()
            ))
        })
    }

    /// The payload of slot `i` within an in-memory container,
    /// bounds-checked against the buffer (no CRC check — use after
    /// [`Footer::parse_bytes`], which verifies every payload).
    pub fn payload<'a>(&self, bytes: &'a [u8], i: usize) -> Result<&'a [u8]> {
        let slot = self.slot(i)?;
        let start = usize::try_from(slot.offset)
            .ok()
            .filter(|&s| s <= bytes.len())
            .ok_or_else(|| HammingError::Corrupt(format!("slot {i} offset out of range")))?;
        let len = usize::try_from(slot.len)
            .ok()
            .filter(|&l| l <= bytes.len() - start)
            .ok_or_else(|| HammingError::Corrupt(format!("slot {i} length out of range")))?;
        Ok(&bytes[start..start + len])
    }
}

/// Encodes `ds` into a byte buffer.
pub fn encode_dataset(ds: &Dataset) -> Vec<u8> {
    let wpv = words_for(ds.dim());
    let mut buf = Vec::with_capacity(24 + ds.len() * wpv * 8);
    buf.put_slice(&MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(ds.dim() as u64);
    buf.put_u64_le(ds.len() as u64);
    for row in ds.iter_rows() {
        for &w in row {
            buf.put_u64_le(w);
        }
    }
    buf
}

/// Decodes a dataset from bytes produced by [`encode_dataset`].
pub fn decode_dataset(mut bytes: &[u8]) -> Result<Dataset> {
    if bytes.len() < 24 {
        return Err(HammingError::Corrupt("header truncated".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(HammingError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(HammingError::Corrupt(format!("unsupported version {version}")));
    }
    let dim = bytes.get_u64_le() as usize;
    let len = bytes.get_u64_le() as usize;
    let wpv = words_for(dim);
    let need = len
        .checked_mul(wpv)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| HammingError::Corrupt("size overflow".into()))?;
    if bytes.remaining() != need {
        return Err(HammingError::Corrupt(format!(
            "payload is {} bytes, expected {need}",
            bytes.remaining()
        )));
    }
    let mut ds = Dataset::with_capacity(dim, len);
    let tail_mask = if dim.is_multiple_of(64) { u64::MAX } else { (1u64 << (dim % 64)) - 1 };
    let mut row = vec![0u64; wpv];
    for _ in 0..len {
        for w in row.iter_mut() {
            *w = bytes.get_u64_le();
        }
        if let Some(last) = row.last() {
            if *last & !tail_mask != 0 {
                return Err(HammingError::Corrupt(
                    "trailing bits set beyond dimensionality".into(),
                ));
            }
        }
        ds.push_words(&row);
    }
    Ok(ds)
}

/// Writes `ds` to `path`.
pub fn write_dataset<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_dataset(ds))?;
    w.flush()?;
    Ok(())
}

/// Reads a dataset from `path`.
pub fn read_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_dataset(&bytes)
}

const PART_MAGIC: [u8; 4] = *b"HAMP";

/// Encodes a partitioning (the expensive offline artifact of GPH's GR
/// strategy, worth persisting across runs and τ settings).
///
/// Format: magic `HAMP`, version u32, dim u64, m u64, then per partition
/// a u32 length and u32 dimension ids.
pub fn encode_partitioning(p: &Partitioning) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + p.dim() * 4);
    buf.put_slice(&PART_MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(p.dim() as u64);
    buf.put_u64_le(p.num_parts() as u64);
    for part in p.parts() {
        buf.put_u32_le(part.len() as u32);
        for &d in part {
            buf.put_u32_le(d);
        }
    }
    buf
}

/// Decodes a partitioning written by [`encode_partitioning`], re-running
/// full disjoint-cover validation.
pub fn decode_partitioning(mut bytes: &[u8]) -> Result<Partitioning> {
    if bytes.len() < 24 {
        return Err(HammingError::Corrupt("partitioning header truncated".into()));
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if magic != PART_MAGIC {
        return Err(HammingError::Corrupt(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(HammingError::Corrupt(format!("unsupported version {version}")));
    }
    let dim = bytes.get_u64_le() as usize;
    let m = bytes.get_u64_le() as usize;
    if m > dim.max(1) {
        return Err(HammingError::Corrupt(format!("{m} partitions for {dim} dims")));
    }
    // Validate the declared counts against the actual byte count BEFORE
    // allocating: a corrupt header could otherwise declare ~2^64 dims and
    // drive `Vec::with_capacity` into a huge allocation. Each partition
    // needs at least its 4-byte length, and the dimension ids across all
    // partitions total exactly `dim` u32s.
    if m > bytes.remaining() / 4 {
        return Err(HammingError::Corrupt(format!(
            "{m} partitions exceed the {} remaining bytes",
            bytes.remaining()
        )));
    }
    if dim > bytes.remaining() / 4 {
        return Err(HammingError::Corrupt(format!(
            "{dim} dims exceed the {} remaining bytes",
            bytes.remaining()
        )));
    }
    let mut parts = Vec::with_capacity(m);
    for _ in 0..m {
        if bytes.remaining() < 4 {
            return Err(HammingError::Corrupt("partition length truncated".into()));
        }
        let len = bytes.get_u32_le() as usize;
        if bytes.remaining() < len * 4 {
            return Err(HammingError::Corrupt("partition body truncated".into()));
        }
        let mut part = Vec::with_capacity(len);
        for _ in 0..len {
            part.push(bytes.get_u32_le());
        }
        parts.push(part);
    }
    if bytes.has_remaining() {
        return Err(HammingError::Corrupt("trailing bytes".into()));
    }
    Partitioning::new(dim, parts)
}

/// Writes a partitioning to `path`.
pub fn write_partitioning<P: AsRef<Path>>(p: &Partitioning, path: P) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_partitioning(p))?;
    w.flush()?;
    Ok(())
}

/// Reads a partitioning from `path`.
pub fn read_partitioning<P: AsRef<Path>>(path: P) -> Result<Partitioning> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_partitioning(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;

    fn sample(dim: usize, n: usize) -> Dataset {
        let mut ds = Dataset::new(dim);
        for i in 0..n {
            let mut v = BitVector::zeros(dim);
            for d in 0..dim {
                if (i * 31 + d * 7) % 3 == 0 {
                    v.set(d, true);
                }
            }
            ds.push(&v).unwrap();
        }
        ds
    }

    #[test]
    fn roundtrip_in_memory() {
        for (dim, n) in [(8, 4), (64, 10), (130, 7), (881, 3)] {
            let ds = sample(dim, n);
            let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
            assert_eq!(decoded.dim(), dim);
            assert_eq!(decoded.len(), n);
            for i in 0..n {
                assert_eq!(decoded.row(i), ds.row(i), "dim={dim} row={i}");
            }
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let ds = sample(100, 20);
        let dir = std::env::temp_dir().join("hamming_core_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.hamd");
        write_dataset(&ds, &path).unwrap();
        let decoded = read_dataset(&path).unwrap();
        assert_eq!(decoded.len(), 20);
        assert_eq!(decoded.row(19), ds.row(19));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_corruption() {
        let ds = sample(16, 2);
        let mut bytes = encode_dataset(&ds);
        assert!(decode_dataset(&bytes[..10]).is_err()); // truncated header
        bytes[0] = b'X';
        assert!(decode_dataset(&bytes).is_err()); // bad magic
        let mut bytes2 = encode_dataset(&ds);
        bytes2.truncate(bytes2.len() - 1);
        assert!(decode_dataset(&bytes2).is_err()); // truncated payload
        let mut bytes3 = encode_dataset(&ds);
        let last = bytes3.len() - 1;
        bytes3[last] = 0xFF; // dim=16, so high bytes of the word must be 0
        assert!(decode_dataset(&bytes3).is_err());
    }

    #[test]
    fn partitioning_roundtrip() {
        let p = Partitioning::random_shuffle(100, 7, 3).unwrap();
        let decoded = decode_partitioning(&encode_partitioning(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn partitioning_rejects_corruption() {
        let p = Partitioning::equi_width(16, 4).unwrap();
        let bytes = encode_partitioning(&p);
        assert!(decode_partitioning(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_partitioning(&bad).is_err());
        // Flip a dimension id so the cover breaks (duplicate dim).
        let mut dup = bytes.clone();
        let last = dup.len() - 4;
        dup[last..].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_partitioning(&dup).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_partitioning(&trailing).is_err());
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new(32);
        let decoded = decode_dataset(&encode_dataset(&ds)).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.dim(), 32);
    }

    #[test]
    fn forged_huge_headers_error_before_allocating() {
        // A corrupt header declaring ~2^64 rows/dims must be rejected by
        // byte-count validation, not by attempting the allocation.
        let mut ds_bytes = encode_dataset(&sample(16, 2));
        ds_bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // len
        assert!(decode_dataset(&ds_bytes).is_err());
        let mut ds_bytes2 = encode_dataset(&sample(16, 2));
        ds_bytes2[8..16].copy_from_slice(&u64::MAX.to_le_bytes()); // dim
        assert!(decode_dataset(&ds_bytes2).is_err());

        let p = Partitioning::equi_width(16, 4).unwrap();
        let mut p_bytes = encode_partitioning(&p);
        // dim and m both forged huge (m <= dim keeps the first check quiet).
        p_bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        p_bytes[16..24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(decode_partitioning(&p_bytes).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_crc32_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0usize, 1, 7, data.len() / 2, data.len()] {
            let (a, b) = data.split_at(split);
            assert_eq!(Crc32::new().update(a).update(b).finish(), crc32(data), "split={split}");
        }
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn container_roundtrip_and_unknown_sections() {
        let mut w = SectionWriter::new(*b"TEST", 1);
        w.section("alpha", b"hello");
        w.section("beta", &[]);
        w.section("futuresx", b"ignored by old readers");
        let bytes = w.finish();
        let r = SectionReader::parse(*b"TEST", 1, &bytes).unwrap();
        assert_eq!(r.version(), 1);
        assert_eq!(r.section("alpha").unwrap(), b"hello");
        assert_eq!(r.section("beta").unwrap(), b"");
        assert_eq!(r.get("futuresx").unwrap(), b"ignored by old readers");
        assert!(r.get("gamma").is_none());
        assert!(r.section("gamma").is_err());
    }

    #[test]
    fn container_rejects_wrong_magic_and_version() {
        let mut w = SectionWriter::new(*b"TEST", 3);
        w.section("a", b"x");
        let bytes = w.finish();
        assert!(SectionReader::parse(*b"ELSE", 3, &bytes).is_err());
        // Reader supporting only up to version 2 must refuse version 3.
        assert!(SectionReader::parse(*b"TEST", 2, &bytes).is_err());
        assert!(SectionReader::parse(*b"TEST", 3, &bytes).is_ok());
    }

    #[test]
    fn container_rejects_duplicate_sections() {
        let mut w = SectionWriter::new(*b"TEST", 1);
        w.section("twin", b"a");
        w.section("twin", b"b");
        let bytes = w.finish();
        assert!(SectionReader::parse(*b"TEST", 1, &bytes).is_err());
    }

    #[test]
    fn container_detects_every_single_byte_corruption() {
        let mut w = SectionWriter::new(*b"TEST", 1);
        w.section("alpha", b"some payload worth protecting");
        w.section("beta", &[1, 2, 3, 4, 5]);
        let bytes = w.finish();
        assert!(SectionReader::parse(*b"TEST", 1, &bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                SectionReader::parse(*b"TEST", 1, &bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncations at every length are also rejected.
        for cut in 0..bytes.len() {
            assert!(SectionReader::parse(*b"TEST", 1, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn offset_container_roundtrip_and_alignment() {
        let mut w = OffsetWriter::new(*b"TSTO", 3);
        w.section(b"meta payload");
        w.section(b"");
        let rows_off = w.aligned_section(&[0xAB; 100]);
        let keys_off = w.aligned_section(&[0xCD; 16]);
        let bytes = w.finish();
        assert_eq!(rows_off % PAGE_SIZE as u64, 0);
        assert_eq!(keys_off % PAGE_SIZE as u64, 0);
        assert!(keys_off > rows_off);
        let f = Footer::parse_bytes(*b"TSTO", 3, &bytes).unwrap();
        assert_eq!(f.version(), 3);
        assert_eq!(f.n_slots(), 4);
        assert_eq!(f.payload(&bytes, 0).unwrap(), b"meta payload");
        assert_eq!(f.payload(&bytes, 1).unwrap(), b"");
        assert_eq!(f.payload(&bytes, 2).unwrap(), &[0xAB; 100][..]);
        assert_eq!(f.payload(&bytes, 3).unwrap(), &[0xCD; 16][..]);
        assert!(f.slot(4).is_err());
        // The cold open path: footer parsed from a bounded tail only.
        let tail_start = bytes.len().saturating_sub(Footer::MAX_LEN);
        let cold = Footer::parse(*b"TSTO", 3, bytes.len() as u64, &bytes[tail_start..]).unwrap();
        assert_eq!(cold.n_slots(), 4);
        assert_eq!(cold.slot(2).unwrap(), f.slot(2).unwrap());
    }

    #[test]
    fn offset_container_detects_every_single_byte_corruption() {
        let mut w = OffsetWriter::new(*b"TSTO", 1);
        w.section(b"small meta");
        w.aligned_section(&[7u8; 64]);
        let bytes = w.finish();
        assert!(Footer::parse_bytes(*b"TSTO", 1, &bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Footer::parse_bytes(*b"TSTO", 1, &bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(Footer::parse_bytes(*b"TSTO", 1, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn footer_rejects_forged_offsets_without_panicking() {
        let mut w = OffsetWriter::new(*b"TSTO", 1);
        w.section(b"abc");
        w.aligned_section(&[1u8; 32]);
        let bytes = w.finish();
        let footer_len = Footer::footer_len(2);
        let footer_start = bytes.len() - footer_len;
        // Forge each slot field in turn, re-sealing the footer CRC so
        // only the bounds checks can catch it.
        let forge = |patch: &dyn Fn(&mut Vec<u8>)| {
            let mut bad = bytes.clone();
            patch(&mut bad);
            let crc_at = bad.len() - 8;
            let crc = crc32(&bad[footer_start..crc_at]);
            bad[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
            bad
        };
        // Slot 0 offset pushed past EOF.
        let bad = forge(&|b: &mut Vec<u8>| {
            b[footer_start..footer_start + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        });
        assert!(matches!(
            Footer::parse(*b"TSTO", 1, bad.len() as u64, &bad),
            Err(HammingError::Corrupt(_))
        ));
        // Slot 0 length forged huge (offset+len overflows / exceeds file).
        let bad = forge(&|b: &mut Vec<u8>| {
            b[footer_start + 8..footer_start + 16].copy_from_slice(&(u64::MAX - 8).to_le_bytes());
        });
        assert!(matches!(
            Footer::parse(*b"TSTO", 1, bad.len() as u64, &bad),
            Err(HammingError::Corrupt(_))
        ));
        // Slot 0 offset inside the header.
        let bad = forge(&|b: &mut Vec<u8>| {
            b[footer_start..footer_start + 8].copy_from_slice(&3u64.to_le_bytes());
        });
        assert!(matches!(
            Footer::parse(*b"TSTO", 1, bad.len() as u64, &bad),
            Err(HammingError::Corrupt(_))
        ));
        // Slot count forged beyond MAX_SLOTS: rejected before any
        // slot-table allocation.
        let mut bad = bytes.clone();
        let n_at = bad.len() - 16;
        bad[n_at..n_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Footer::parse(*b"TSTO", 1, bad.len() as u64, &bad),
            Err(HammingError::Corrupt(_))
        ));
        // A slot overlapping another is caught by full validation.
        let bad = forge(&|b: &mut Vec<u8>| {
            let second = footer_start + SLOT_LEN;
            let first_off =
                u64::from_le_bytes(b[footer_start..footer_start + 8].try_into().unwrap());
            b[second..second + 8].copy_from_slice(&first_off.to_le_bytes());
            b[second + 8..second + 16].copy_from_slice(&3u64.to_le_bytes());
            b[second + 16..second + 20].copy_from_slice(&crc32(b"abc").to_le_bytes());
        });
        assert!(Footer::parse_bytes(*b"TSTO", 1, &bad).is_err());
    }

    #[test]
    fn footer_rejects_wrong_magic_and_version() {
        let mut w = OffsetWriter::new(*b"TSTO", 3);
        w.section(b"x");
        let bytes = w.finish();
        assert!(Footer::parse(*b"ELSE", 3, bytes.len() as u64, &bytes).is_err());
        assert!(Footer::parse(*b"TSTO", 2, bytes.len() as u64, &bytes).is_err());
        assert!(Footer::parse(*b"TSTO", 3, bytes.len() as u64, &bytes).is_ok());
        // A tail longer than the declared file length is inconsistent.
        assert!(Footer::parse(*b"TSTO", 3, 4, &bytes).is_err());
    }

    #[test]
    fn byte_reader_validates_counts() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = ByteReader::new(&buf);
        assert!(r.len(4, "items").is_err(), "huge count must not pass");
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(&2u64.to_le_bytes());
        buf2.extend_from_slice(&[0u8; 8]);
        let mut r2 = ByteReader::new(&buf2);
        assert_eq!(r2.len(4, "items").unwrap(), 2);
        assert_eq!(r2.u64s(1, "words").unwrap(), vec![0]);
        assert!(r2.finish("buf").is_ok());
    }
}

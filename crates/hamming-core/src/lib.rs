//! # hamming-core
//!
//! Substrate library for similarity search in Hamming space, built for the
//! reproduction of *GPH: Similarity Search in Hamming Space* (ICDE 2018).
//!
//! This crate provides everything below the indexing algorithms themselves:
//!
//! * [`BitVector`] — an `n`-dimensional binary vector packed into 64-bit
//!   words, with trailing bits kept zero so word-wise operations are exact.
//! * [`Dataset`] — a flat, cache-friendly collection of equal-width vectors.
//! * [`distance`] — popcount Hamming distance, including the early-exit
//!   variant used during candidate verification.
//! * [`partition`] — dimension partitionings ([`Partitioning`]) and the
//!   rearrangement strategies compared in the paper (equi-width, random
//!   shuffle, OS, DD).
//! * [`project`] — pre-computed projections of a dataset onto a
//!   partitioning, the layout probed by every inverted-index method.
//! * [`enumerate`] — Hamming-ball signature enumeration (the "signature
//!   generation" step of filter-and-refine algorithms).
//! * [`stats`] — per-dimension skewness, entropy and correlation measures
//!   (Fig. 1 of the paper, and inputs to partitioning heuristics).
//! * [`io`] — a compact binary serialization for datasets.
//! * [`tombstone`] — deletion bitmaps ([`Tombstones`]) that let immutable
//!   indexes serve deletes by filtering instead of rebuilding.
//!
//! Portable builds are `#![forbid(unsafe_code)]`; all hot paths rely on
//! `u64::count_ones`. With `--features simd` (x86-64 only) the distance
//! and batch-verification kernels additionally dispatch at runtime to
//! `std::arch` AVX2/POPCNT implementations in the one `unsafe`-allowed
//! `simd` module, falling back to the portable loops elsewhere.

#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod binomial;
pub mod bitvec;
pub mod dataset;
pub mod distance;
pub mod enumerate;
pub mod error;
pub mod fasthash;
pub mod invindex;
pub mod io;
pub mod key;
pub mod partition;
pub mod project;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
pub(crate) mod simd;
pub mod stats;
pub mod tombstone;

pub use binomial::BinomialTable;
pub use bitvec::BitVector;
pub use dataset::Dataset;
pub use distance::{hamming, hamming_within};
pub use error::HammingError;
pub use fasthash::{FastMap, FastSet};
pub use invindex::InvertedIndex;
pub use partition::Partitioning;
pub use project::{PartitionShape, ProjectedDataset, Projector};
pub use tombstone::Tombstones;

/// Number of 64-bit words needed to store `dim` bits.
#[inline]
pub const fn words_for(dim: usize) -> usize {
    dim.div_ceil(64)
}

//! Hamming-ball enumeration ("signature generation").
//!
//! Every filter-and-refine method in the paper enumerates, for a partition
//! of the query, all values within the partition's allocated threshold —
//! the *signatures* — and probes an inverted index with each. This module
//! provides that enumeration for single-word (≤ 64 dimensions, the common
//! case) and multi-word partitions.

/// Calls `f(s)` for every single-word value `s` with `width` significant
/// bits such that `H(s, value) <= radius`.
///
/// Enumeration order is by increasing distance (radius 0 first), matching
/// the description in §II-C. `value` must have no bits set at or above
/// `width`. The number of calls is `Σ_{k<=radius} C(width, k)`.
pub fn for_each_in_ball_u64<F: FnMut(u64)>(value: u64, width: usize, radius: usize, mut f: F) {
    debug_assert!(width <= 64);
    debug_assert!(width == 64 || value >> width == 0, "value has bits above width");
    f(value);
    let radius = radius.min(width);
    // positions[0..k] hold the currently flipped bit indices.
    let mut positions = [0usize; 64];
    for k in 1..=radius {
        combos(value, width, k, 0, 0, &mut positions, &mut f);
    }
}

/// Recursive combination enumeration for the single-word ball: chooses
/// `remaining = k - depth` more flip positions starting at `start`.
fn combos<F: FnMut(u64)>(
    base: u64,
    width: usize,
    k: usize,
    depth: usize,
    start: usize,
    positions: &mut [usize; 64],
    f: &mut F,
) {
    if depth == k {
        let mut v = base;
        for &p in positions.iter().take(k) {
            v ^= 1u64 << p;
        }
        f(v);
        return;
    }
    // Leave room for the remaining (k - depth - 1) positions.
    let last = width - (k - depth - 1);
    for p in start..last {
        positions[depth] = p;
        combos(base, width, k, depth + 1, p + 1, positions, f);
    }
}

/// Calls `f(words)` for every multi-word value with `width` significant
/// bits within `radius` of `value`. `value.len()` must equal
/// `crate::words_for(width)`.
///
/// The buffer passed to `f` is reused between calls; callers must copy it
/// if they need to retain it (index probing hashes it immediately, so the
/// hot path never copies).
pub fn for_each_in_ball_words<F: FnMut(&[u64])>(
    value: &[u64],
    width: usize,
    radius: usize,
    mut f: F,
) {
    debug_assert_eq!(value.len(), crate::words_for(width));
    let mut buf = value.to_vec();
    f(&buf);
    let radius = radius.min(width);
    let mut positions = vec![0usize; radius];
    for k in 1..=radius {
        combos_words(width, k, 0, 0, &mut positions, &mut buf, &mut f);
    }
}

fn combos_words<F: FnMut(&[u64])>(
    width: usize,
    k: usize,
    depth: usize,
    start: usize,
    positions: &mut [usize],
    buf: &mut [u64],
    f: &mut F,
) {
    if depth == k {
        f(buf);
        return;
    }
    let last = width - (k - depth - 1);
    for p in start..last {
        positions[depth] = p;
        buf[p / 64] ^= 1u64 << (p % 64);
        combos_words(width, k, depth + 1, p + 1, positions, buf, f);
        buf[p / 64] ^= 1u64 << (p % 64);
    }
}

/// Number of signatures enumerated for a `(width, radius)` pair:
/// `Σ_{k=0}^{radius} C(width, k)`, saturating at `u64::MAX`.
///
/// Accumulation is done in `u128` so the result is *exact* for every sum
/// that fits in a `u64` — the previous u64 evaluation wrapped its
/// intermediate product near `width = 64` (e.g. `C(64, 31) * 34`
/// overflows even though `ball_size(64, 32)` is representable) and the
/// full-width ball `Σ C(64, k) = 2^64` must saturate, not wrap, or the
/// scan-vs-enumerate crossover in `Gph::search_with_stats` would pick
/// enumeration for the most expensive balls.
pub fn ball_size(width: usize, radius: usize) -> u64 {
    let mut total: u128 = 1; // k = 0
    let mut c: u128 = 1;
    for k in 1..=radius.min(width) {
        // c = C(width, k) built incrementally; the product is always
        // divisible by k, so the division is exact. `c <= total` held at
        // the previous check, so `c * width` stays far below u128::MAX.
        c = c * (width - k + 1) as u128 / k as u128;
        total += c;
        if total > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    total as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect_u64(value: u64, width: usize, radius: usize) -> Vec<u64> {
        let mut out = Vec::new();
        for_each_in_ball_u64(value, width, radius, |v| out.push(v));
        out
    }

    #[test]
    fn radius_zero_is_identity() {
        assert_eq!(collect_u64(0b101, 3, 0), vec![0b101]);
    }

    #[test]
    fn counts_match_ball_size() {
        for width in [1usize, 3, 8, 12] {
            for radius in 0..=width {
                let got = collect_u64(0, width, radius);
                assert_eq!(got.len() as u64, ball_size(width, radius), "w={width} r={radius}");
                // All distinct, all within radius, all within width.
                let set: HashSet<u64> = got.iter().copied().collect();
                assert_eq!(set.len(), got.len());
                for v in got {
                    assert!(v.count_ones() as usize <= radius);
                    assert!(width == 64 || v >> width == 0);
                }
            }
        }
    }

    #[test]
    fn ball_is_centered_on_value() {
        let center = 0b0110_1001u64;
        for v in collect_u64(center, 8, 2) {
            assert!((v ^ center).count_ones() <= 2);
        }
        assert_eq!(collect_u64(center, 8, 8).len(), 256);
    }

    #[test]
    fn multiword_matches_singleword_when_narrow() {
        let center = 0x0F0Fu64;
        let mut multi = Vec::new();
        for_each_in_ball_words(&[center], 16, 2, |w| multi.push(w[0]));
        let single = collect_u64(center, 16, 2);
        assert_eq!(multi, single);
    }

    #[test]
    fn multiword_wide_partition() {
        // 70-bit value: ball of radius 1 has 71 members.
        let value = vec![u64::MAX, 0x3F]; // all 70 bits set
        let mut seen = HashSet::new();
        for_each_in_ball_words(&value, 70, 1, |w| {
            assert!(seen.insert(w.to_vec()));
        });
        assert_eq!(seen.len(), 71);
        // Flipping bit 69 must appear.
        assert!(seen.contains(&vec![u64::MAX, 0x3F ^ (1 << 5)]));
    }

    #[test]
    fn ball_size_saturates() {
        assert_eq!(ball_size(500, 250), u64::MAX);
        assert_eq!(ball_size(8, 100), 256);
        assert_eq!(ball_size(0, 0), 1);
    }

    #[test]
    fn ball_size_width_64_near_full_radius() {
        // Σ_{k=0}^{64} C(64, k) = 2^64: one past u64::MAX, must saturate.
        assert_eq!(ball_size(64, 64), u64::MAX);
        // Σ_{k=0}^{63} C(64, k) = 2^64 − 1 = u64::MAX exactly (no wrap).
        assert_eq!(ball_size(64, 63), u64::MAX);
        // Representable mid-radius values are exact, not prematurely
        // saturated: Σ_{k=0}^{32} C(64, k) = 2^63 + C(64, 32)/2.
        let c64_32: u128 = 1_832_624_140_942_590_534;
        assert_eq!(ball_size(64, 32) as u128, (1u128 << 63) + c64_32 / 2);
        // Saturation is monotone in the radius: once saturated, larger
        // radii stay saturated, and below it the count strictly grows.
        let mut prev = 0u64;
        for r in 0..=64 {
            let b = ball_size(64, r);
            assert!(b > prev || (b == u64::MAX && prev == u64::MAX), "r={r}");
            prev = b;
        }
    }

    #[test]
    fn enumeration_is_distance_ordered() {
        let got = collect_u64(0, 6, 3);
        let mut last = 0;
        for v in got {
            let d = v.count_ones();
            assert!(d >= last.min(d)); // non-decreasing by construction
            if d > last {
                last = d;
            }
        }
        assert_eq!(last, 3);
    }
}

//! Tombstone bitmaps: logical deletion for append-only row storage.
//!
//! A [`Tombstones`] tracks, per slot of some row container, whether the
//! row is still live. Deletion flips a bit instead of moving data, which
//! is what lets an immutable index (whose postings reference row ids)
//! serve deletes without a rebuild: queries filter hits through the
//! bitmap, and compaction eventually rewrites the container without the
//! dead rows. One word per 64 slots; all operations are O(1) except
//! encoding, which is linear in the slot count.

use crate::error::{HammingError, Result};
use bytes::BufMut;

/// A growable bitmap of dead slots with a maintained dead count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tombstones {
    words: Vec<u64>,
    len: usize,
    dead: usize,
}

impl Tombstones {
    /// An empty bitmap (no slots).
    pub fn new() -> Self {
        Tombstones::default()
    }

    /// A bitmap of `len` slots, all live.
    pub fn all_live(len: usize) -> Self {
        Tombstones { words: vec![0u64; len.div_ceil(64)], len, dead: 0 }
    }

    /// Appends one live slot.
    pub fn push_live(&mut self) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
    }

    /// Total slots tracked (live + dead).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots still live.
    pub fn live(&self) -> usize {
        self.len - self.dead
    }

    /// Slots marked dead.
    pub fn dead(&self) -> usize {
        self.dead
    }

    /// Whether every slot is dead (vacuously false when empty).
    pub fn all_dead(&self) -> bool {
        self.len > 0 && self.dead == self.len
    }

    /// Whether slot `i` is dead.
    #[inline]
    pub fn is_dead(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "slot {i} out of range for {} slots", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks slot `i` dead; returns whether it was live before.
    pub fn kill(&mut self, i: usize) -> bool {
        assert!(i < self.len, "slot {i} out of range for {} slots", self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & b != 0 {
            return false;
        }
        self.words[w] |= b;
        self.dead += 1;
        true
    }

    /// Iterates the indices of live slots, ascending.
    pub fn iter_live(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| !self.is_dead(i))
    }

    /// Serializes the bitmap: slot count, dead count, then the words.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.words.len() * 8);
        buf.put_u64_le(self.len as u64);
        buf.put_u64_le(self.dead as u64);
        for &w in &self.words {
            buf.put_u64_le(w);
        }
        buf
    }

    /// Deserializes [`Tombstones::encode`] bytes, re-validating the dead
    /// count against the actual popcount so a corrupt count cannot skew
    /// live-row accounting.
    pub fn decode(bytes: &[u8]) -> Result<Tombstones> {
        let mut r = crate::io::ByteReader::new(bytes);
        let len = r.u64("tombstone slot count")? as usize;
        let dead = r.u64("tombstone dead count")? as usize;
        let words = r.u64s(len.div_ceil(64), "tombstone words")?;
        r.finish("tombstones")?;
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(&last) = words.last() {
                if last >> tail_bits != 0 {
                    return Err(HammingError::Corrupt(
                        "tombstone bits set beyond the slot count".into(),
                    ));
                }
            }
        }
        let popcount: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        if popcount != dead || dead > len {
            return Err(HammingError::Corrupt(format!(
                "tombstone dead count {dead} does not match {popcount} set bits over {len} slots"
            )));
        }
        Ok(Tombstones { words, len, dead })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_kill_and_counts() {
        let mut t = Tombstones::new();
        assert!(t.is_empty() && !t.all_dead());
        for _ in 0..70 {
            t.push_live();
        }
        assert_eq!((t.len(), t.live(), t.dead()), (70, 70, 0));
        assert!(t.kill(0));
        assert!(t.kill(69));
        assert!(!t.kill(0), "double kill is a no-op");
        assert_eq!(t.dead(), 2);
        assert!(t.is_dead(0) && t.is_dead(69) && !t.is_dead(1));
        assert_eq!(t.iter_live().count(), 68);
    }

    #[test]
    fn all_dead_detection() {
        let mut t = Tombstones::all_live(3);
        for i in 0..3 {
            assert!(!t.all_dead());
            t.kill(i);
        }
        assert!(t.all_dead());
    }

    #[test]
    fn roundtrip_and_corruption() {
        let mut t = Tombstones::all_live(130);
        t.kill(5);
        t.kill(128);
        let bytes = t.encode();
        assert_eq!(Tombstones::decode(&bytes).unwrap(), t);
        // Forged dead count.
        let mut bad = bytes.clone();
        bad[8] ^= 1;
        assert!(Tombstones::decode(&bad).is_err());
        // Bit set beyond the slot count.
        let mut tail = bytes.clone();
        let last = tail.len() - 1;
        tail[last] |= 0x80;
        assert!(Tombstones::decode(&tail).is_err());
        // Truncation.
        assert!(Tombstones::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn empty_roundtrips() {
        let t = Tombstones::new();
        assert_eq!(Tombstones::decode(&t.encode()).unwrap(), t);
    }
}

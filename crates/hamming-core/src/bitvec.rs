//! Fixed-width binary vectors packed into 64-bit words.

use crate::error::{HammingError, Result};
use crate::words_for;
use std::fmt;

/// An `n`-dimensional binary vector.
///
/// Bits are stored little-endian within a `Box<[u64]>`: dimension `i` lives
/// in word `i / 64` at bit `i % 64`. **Invariant:** bits at positions
/// `>= dim` in the last word are always zero, so word-wise operations
/// (XOR + popcount) never see garbage.
///
/// ```
/// use hamming_core::BitVector;
/// let x = BitVector::parse("10011111").unwrap();
/// let q = BitVector::parse("10000000").unwrap();
/// assert_eq!(x.distance(&q), 5);
/// assert_eq!(x.weight(), 6);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVector {
    dim: usize,
    words: Box<[u64]>,
}

impl BitVector {
    /// Creates the all-zero vector with `dim` dimensions.
    pub fn zeros(dim: usize) -> Self {
        BitVector { dim, words: vec![0u64; words_for(dim)].into_boxed_slice() }
    }

    /// Creates the all-one vector with `dim` dimensions.
    pub fn ones(dim: usize) -> Self {
        let mut v = BitVector { dim, words: vec![u64::MAX; words_for(dim)].into_boxed_slice() };
        v.mask_tail();
        v
    }

    /// Builds a vector from an iterator of booleans; the iterator length
    /// defines the dimensionality.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut dim = 0usize;
        for b in bits {
            if dim.is_multiple_of(64) {
                words.push(0u64);
            }
            if b {
                *words.last_mut().expect("just pushed") |= 1u64 << (dim % 64);
            }
            dim += 1;
        }
        BitVector { dim, words: words.into_boxed_slice() }
    }

    /// Parses a vector from an ASCII string of `0`/`1` characters, most
    /// significant dimension first matching the paper's notation, e.g.
    /// `"10011111"` is the example vector `x4`.
    ///
    /// Dimension 0 corresponds to the **leftmost** character.
    pub fn parse(s: &str) -> Result<Self> {
        let mut bits = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => {
                    return Err(HammingError::InvalidParameter(format!(
                        "unexpected character {c:?} at position {i}; expected '0' or '1'"
                    )))
                }
            }
        }
        Ok(Self::from_bits(bits))
    }

    /// Constructs a vector from raw words. Trailing bits beyond `dim` are
    /// cleared rather than rejected.
    pub fn from_words(dim: usize, words: Vec<u64>) -> Result<Self> {
        if words.len() != words_for(dim) {
            return Err(HammingError::InvalidParameter(format!(
                "expected {} words for {dim} dims, got {}",
                words_for(dim),
                words.len()
            )));
        }
        let mut v = BitVector { dim, words: words.into_boxed_slice() };
        v.mask_tail();
        Ok(v)
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The backing words (trailing bits zeroed).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of dimension `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.dim, "dimension {i} out of range {}", self.dim);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets dimension `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.dim, "dimension {i} out of range {}", self.dim);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips dimension `i`, returning the new value.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        debug_assert!(i < self.dim, "dimension {i} out of range {}", self.dim);
        self.words[i / 64] ^= 1u64 << (i % 64);
        self.get(i)
    }

    /// Number of dimensions set to 1 (the Hamming weight).
    #[inline]
    pub fn weight(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to `other`. Panics in debug builds if dimensions
    /// differ; use [`crate::distance::hamming`] on raw words for hot loops.
    #[inline]
    pub fn distance(&self, other: &BitVector) -> u32 {
        debug_assert_eq!(self.dim, other.dim);
        crate::distance::hamming(&self.words, &other.words)
    }

    /// Iterates over all dimensions as booleans.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.dim).map(move |i| self.get(i))
    }

    /// Returns the positions of set dimensions in increasing order.
    pub fn support(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.weight() as usize);
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Clears any bits at positions `>= dim` in the final word, restoring
    /// the trailing-zero invariant.
    fn mask_tail(&mut self) {
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.dim == 0 {
            debug_assert!(self.words.is_empty());
        }
    }
}

impl fmt::Debug for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVector({}d: ", self.dim)?;
        for i in 0..self.dim.min(96) {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.dim > 96 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

/// `Display` prints every dimension; handy for paper-sized examples.
impl fmt::Display for BitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.dim {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_weight() {
        for dim in [0usize, 1, 63, 64, 65, 128, 881] {
            assert_eq!(BitVector::zeros(dim).weight(), 0, "dim={dim}");
            assert_eq!(BitVector::ones(dim).weight(), dim as u32, "dim={dim}");
        }
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVector::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(128));
        assert_eq!(v.weight(), 3);
        assert!(!v.flip(0));
        assert_eq!(v.weight(), 2);
        assert!(v.flip(1));
        assert_eq!(v.support(), vec![1, 64, 129]);
    }

    #[test]
    fn parse_matches_paper_example() {
        let x4 = BitVector::parse("10011111").unwrap();
        assert_eq!(x4.dim(), 8);
        assert!(x4.get(0));
        assert!(!x4.get(1));
        assert_eq!(x4.weight(), 6);
        assert_eq!(x4.to_string(), "10011111");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BitVector::parse("01x0").is_err());
    }

    #[test]
    fn distance_of_paper_vectors() {
        let q1 = BitVector::parse("10000000").unwrap();
        let x1 = BitVector::parse("00000000").unwrap();
        let x2 = BitVector::parse("00000111").unwrap();
        let x4 = BitVector::parse("10011111").unwrap();
        assert_eq!(q1.distance(&x1), 1);
        assert_eq!(q1.distance(&x2), 4);
        assert_eq!(q1.distance(&x4), 5);
        assert_eq!(q1.distance(&q1), 0);
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BitVector::from_words(65, vec![u64::MAX, u64::MAX]).unwrap();
        assert_eq!(v.weight(), 65);
        assert_eq!(v.words()[1], 1);
    }

    #[test]
    fn from_words_rejects_wrong_len() {
        assert!(BitVector::from_words(65, vec![0]).is_err());
    }

    #[test]
    fn ones_tail_is_masked() {
        let v = BitVector::ones(70);
        assert_eq!(v.words()[1].count_ones(), 6);
    }
}

//! Signature keys for inverted indexes.
//!
//! A partition of at most 64 dimensions projects to a single word, which is
//! used *as-is* as a collision-free key. Wider partitions (possible under
//! GPH's variable partitioning) are mixed down to a 64-bit key. A key
//! collision between different wide values merely merges two postings
//! lists, adding candidates that verification discards — correctness is
//! never affected, because equal values always produce equal keys.

/// splitmix64 finalizer — a fast, well-distributed 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Key for a projected partition value.
///
/// * `width <= 64`: the identity — exact, collision-free.
/// * `width > 64`: iterated splitmix64 over the words.
#[inline]
pub fn key_of(words: &[u64], width: usize) -> u64 {
    if width <= 64 {
        debug_assert!(words.len() == 1 || (words.is_empty() && width == 0));
        if words.is_empty() {
            0
        } else {
            words[0]
        }
    } else {
        let mut h = 0x51_7C_C1_B7_27_22_0A_95u64 ^ (width as u64);
        for &w in words {
            h = mix64(h ^ w);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_keys_are_identity() {
        assert_eq!(key_of(&[42], 6), 42);
        assert_eq!(key_of(&[u64::MAX], 64), u64::MAX);
        assert_eq!(key_of(&[], 0), 0);
    }

    #[test]
    fn wide_keys_are_deterministic_and_spread() {
        let a = key_of(&[1, 2], 70);
        let b = key_of(&[1, 2], 70);
        let c = key_of(&[2, 1], 70);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Must not collide with the identity embedding trivially.
        assert_ne!(key_of(&[1, 0], 70), 1);
    }

    #[test]
    fn mix64_changes_every_zero_input() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }
}

//! Dataset statistics: skewness, entropy, correlation.
//!
//! These drive the paper's analysis (Fig. 1 plots skewness by dimension)
//! and its partitioning heuristics: GPH's greedy initialization minimizes
//! partition *entropy* (§V-C), while the OS/DD baselines balance frequency
//! and correlation across partitions.

use crate::dataset::Dataset;
use crate::key::mix64;
use std::collections::HashMap;

/// Per-dimension counts of ones over a dataset.
#[derive(Clone, Debug)]
pub struct DimStats {
    n_rows: usize,
    ones: Vec<u64>,
}

impl DimStats {
    /// Scans `ds` once and counts ones per dimension.
    pub fn compute(ds: &Dataset) -> Self {
        let mut ones = vec![0u64; ds.dim()];
        for row in ds.iter_rows() {
            for (wi, &w) in row.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    ones[wi * 64 + b] += 1;
                    bits &= bits - 1;
                }
            }
        }
        DimStats { n_rows: ds.len(), ones }
    }

    /// Number of rows scanned.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.ones.len()
    }

    /// Empirical probability that dimension `d` is 1.
    pub fn p1(&self, d: usize) -> f64 {
        if self.n_rows == 0 {
            0.5
        } else {
            self.ones[d] as f64 / self.n_rows as f64
        }
    }

    /// Skewness of dimension `d` as defined in the paper's Fig. 1:
    /// `|#1s − #0s| / #data` = `|2·p1 − 1|`.
    pub fn skewness(&self, d: usize) -> f64 {
        (2.0 * self.p1(d) - 1.0).abs()
    }

    /// Skewness of every dimension.
    pub fn skewness_profile(&self) -> Vec<f64> {
        (0..self.dim()).map(|d| self.skewness(d)).collect()
    }

    /// Mean skewness across dimensions — the dataset-level measure used
    /// when the paper labels datasets "slightly/medium/highly skewed".
    pub fn mean_skewness(&self) -> f64 {
        if self.dim() == 0 {
            return 0.0;
        }
        self.skewness_profile().iter().sum::<f64>() / self.dim() as f64
    }
}

/// Column-major bit matrix over a row sample, for fast pairwise statistics.
///
/// Column `d` packs the sampled rows' values of dimension `d` into words,
/// so co-occurrence counts are AND + popcount — cheap enough for the
/// `O(n²)` pair sweep that the DD partitioning baseline needs even at
/// `n = 881`.
#[derive(Clone, Debug)]
pub struct ColumnBits {
    n_rows: usize,
    words_per_col: usize,
    cols: Vec<u64>,
}

impl ColumnBits {
    /// Builds columns from the given sample row IDs of `ds`.
    pub fn from_sample(ds: &Dataset, sample_ids: &[usize]) -> Self {
        let n_rows = sample_ids.len();
        let words_per_col = n_rows.div_ceil(64);
        let dim = ds.dim();
        let mut cols = vec![0u64; words_per_col * dim];
        for (ri, &id) in sample_ids.iter().enumerate() {
            let row = ds.row(id);
            for (wi, &w) in row.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    let d = wi * 64 + b;
                    cols[d * words_per_col + ri / 64] |= 1u64 << (ri % 64);
                    bits &= bits - 1;
                }
            }
        }
        ColumnBits { n_rows, words_per_col, cols }
    }

    /// Builds columns from every row of `ds`.
    pub fn from_all(ds: &Dataset) -> Self {
        let ids: Vec<usize> = (0..ds.len()).collect();
        Self::from_sample(ds, &ids)
    }

    /// Number of sampled rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of dimensions (columns).
    pub fn dim(&self) -> usize {
        self.cols.len().checked_div(self.words_per_col).unwrap_or(0)
    }

    fn col(&self, d: usize) -> &[u64] {
        &self.cols[d * self.words_per_col..(d + 1) * self.words_per_col]
    }

    /// Count of rows where dimension `d` is 1.
    pub fn count1(&self, d: usize) -> u64 {
        self.col(d).iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Count of rows where dimensions `i` and `j` are both 1.
    pub fn count11(&self, i: usize, j: usize) -> u64 {
        self.col(i).iter().zip(self.col(j)).map(|(&a, &b)| (a & b).count_ones() as u64).sum()
    }

    /// Phi coefficient (Pearson correlation for binary variables) between
    /// dimensions `i` and `j`, in `[-1, 1]`. Returns 0 when either
    /// dimension is constant.
    pub fn phi(&self, i: usize, j: usize) -> f64 {
        let n = self.n_rows as f64;
        if n == 0.0 {
            return 0.0;
        }
        let n1i = self.count1(i) as f64;
        let n1j = self.count1(j) as f64;
        let n11 = self.count11(i, j) as f64;
        let n0i = n - n1i;
        let n0j = n - n1j;
        let denom = (n1i * n0i * n1j * n0j).sqrt();
        if denom == 0.0 {
            return 0.0;
        }
        (n * n11 - n1i * n1j) / denom
    }
}

/// Joint Shannon entropy (base 2) of the projected values of `dims` over
/// the rows of `ds` identified by `sample_ids` — `H(D_Pi)` of §V-C.
///
/// Projections of more than 64 dimensions are mixed to 64-bit keys first;
/// hash collisions can only *under*-estimate entropy, which biases the
/// greedy initializer toward treating wide collided groups as correlated —
/// a conservative error for its purpose.
pub fn entropy_of_dims(ds: &Dataset, dims: &[usize], sample_ids: &[usize]) -> f64 {
    if sample_ids.is_empty() || dims.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<u64, u32> = HashMap::with_capacity(sample_ids.len().min(1 << 14));
    for &id in sample_ids {
        let row = ds.row(id);
        let key = project_key(row, dims);
        *counts.entry(key).or_insert(0) += 1;
    }
    let n = sample_ids.len() as f64;
    let mut h = 0.0;
    for &c in counts.values() {
        let p = c as f64 / n;
        h -= p * p.log2();
    }
    h
}

/// Projects `row` onto `dims` and returns a 64-bit key (identity layout for
/// up to 64 dims, mixed beyond).
pub fn project_key(row: &[u64], dims: &[usize]) -> u64 {
    if dims.len() <= 64 {
        let mut v = 0u64;
        for (out_bit, &d) in dims.iter().enumerate() {
            v |= ((row[d / 64] >> (d % 64)) & 1) << out_bit;
        }
        v
    } else {
        let mut h = 0xA076_1D64_78BD_642Fu64;
        let mut acc = 0u64;
        for (out_bit, &d) in dims.iter().enumerate() {
            acc |= ((row[d / 64] >> (d % 64)) & 1) << (out_bit % 64);
            if out_bit % 64 == 63 {
                h = mix64(h ^ acc);
                acc = 0;
            }
        }
        mix64(h ^ acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;

    fn table1_dataset() -> Dataset {
        let vs = ["00000000", "00000111", "00001111", "10011111"]
            .iter()
            .map(|s| BitVector::parse(s).unwrap());
        Dataset::from_vectors(8, vs).unwrap()
    }

    #[test]
    fn dim_stats_counts_and_skewness() {
        let ds = table1_dataset();
        let st = DimStats::compute(&ds);
        assert_eq!(st.n_rows(), 4);
        // Dimension 0: only x4 has a 1 -> p1 = 0.25, skew = 0.5.
        assert_eq!(st.p1(0), 0.25);
        assert!((st.skewness(0) - 0.5).abs() < 1e-12);
        // Dimension 7: x2,x3,x4 have 1 -> p1 = 0.75, skew = 0.5.
        assert_eq!(st.p1(7), 0.75);
        // Dimension 5: 1 in x2(idx? "00000111" dims 5,6,7), x3, x4 -> p1 = 0.75.
        assert_eq!(st.p1(5), 0.75);
    }

    #[test]
    fn column_bits_pair_counts() {
        let ds = table1_dataset();
        let cb = ColumnBits::from_all(&ds);
        assert_eq!(cb.n_rows(), 4);
        assert_eq!(cb.count1(7), 3);
        // dims 6 and 7 are both 1 in x2, x3, x4.
        assert_eq!(cb.count11(6, 7), 3);
        // perfectly correlated dims 6 and 7 (identical columns): phi = 1.
        assert!((cb.phi(6, 7) - 1.0).abs() < 1e-12);
        // dimension 1 is constant zero: phi defined as 0.
        assert_eq!(cb.phi(0, 1), 0.0);
    }

    #[test]
    fn entropy_of_identical_dims_equals_single_dim() {
        let ds = table1_dataset();
        let ids: Vec<usize> = (0..ds.len()).collect();
        let h67 = entropy_of_dims(&ds, &[6, 7], &ids);
        let h7 = entropy_of_dims(&ds, &[7], &ids);
        // dims 6 and 7 carry the same information -> joint entropy equal.
        assert!((h67 - h7).abs() < 1e-12);
        // p = [1/4, 3/4] -> H ≈ 0.8113.
        assert!((h7 - 0.8112781244591328).abs() < 1e-9);
    }

    #[test]
    fn entropy_monotone_in_independent_dims() {
        let ds = table1_dataset();
        let ids: Vec<usize> = (0..ds.len()).collect();
        let h_one = entropy_of_dims(&ds, &[4], &ids);
        let h_two = entropy_of_dims(&ds, &[4, 0], &ids);
        assert!(h_two >= h_one - 1e-12);
    }

    #[test]
    fn project_key_narrow_is_positional() {
        let ds = table1_dataset();
        // x4 = 10011111; dims [0, 3] -> bits (1, 1) -> key 0b11.
        assert_eq!(project_key(ds.row(3), &[0, 3]), 0b11);
        assert_eq!(project_key(ds.row(0), &[0, 3]), 0);
    }

    #[test]
    fn project_key_wide_consistent() {
        let mut v = BitVector::zeros(100);
        v.set(99, true);
        let dims: Vec<usize> = (0..100).collect();
        let k1 = project_key(v.words(), &dims);
        let k2 = project_key(v.words(), &dims);
        assert_eq!(k1, k2);
        let z = BitVector::zeros(100);
        assert_ne!(project_key(z.words(), &dims), k1);
    }
}

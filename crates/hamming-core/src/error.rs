//! Error type shared by the substrate.

use std::fmt;

/// Errors produced by `hamming-core` constructors and I/O.
#[derive(Debug)]
pub enum HammingError {
    /// Two vectors (or a vector and a dataset) disagree on dimensionality.
    DimensionMismatch {
        /// Expected number of dimensions.
        expected: usize,
        /// Number of dimensions actually supplied.
        actual: usize,
    },
    /// A dimension index is out of the valid range `[0, dim)`.
    DimensionOutOfRange {
        /// The offending dimension index.
        index: usize,
        /// The vector dimensionality.
        dim: usize,
    },
    /// A partitioning does not form a disjoint cover of `[0, dim)`.
    InvalidPartitioning(String),
    /// A parameter is outside its documented domain.
    InvalidParameter(String),
    /// Deserialization encountered a malformed payload.
    Corrupt(String),
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for HammingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HammingError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            HammingError::DimensionOutOfRange { index, dim } => {
                write!(f, "dimension index {index} out of range for {dim}-dimensional vector")
            }
            HammingError::InvalidPartitioning(msg) => write!(f, "invalid partitioning: {msg}"),
            HammingError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            HammingError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
            HammingError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HammingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HammingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HammingError {
    fn from(e: std::io::Error) -> Self {
        HammingError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, HammingError>;

//! Projections of datasets onto dimension partitionings.
//!
//! Every index in the paper stores, per partition, the projected value of
//! each data vector. [`Projector`] gathers the (word, bit) sources for a
//! partition once; [`ProjectedDataset`] materializes the projection of a
//! whole dataset in partition-major ("column group") layout, which is what
//! candidate-number scans and index builds iterate over.

use crate::dataset::Dataset;
use crate::key::key_of;
use crate::partition::Partitioning;
use crate::words_for;

/// Shape of one partition: its source dimensions and projected width.
#[derive(Clone, Debug)]
pub struct PartitionShape {
    /// Source dimension indices, in projection bit order.
    pub dims: Vec<u32>,
    /// Number of dimensions (`n_i`).
    pub width: usize,
    /// Words needed for the projected value.
    pub words: usize,
}

/// Precomputed gather plan for projecting vectors onto a partitioning.
#[derive(Clone, Debug)]
pub struct Projector {
    dim: usize,
    shapes: Vec<PartitionShape>,
}

impl Projector {
    /// Builds the projector for `p`.
    pub fn new(p: &Partitioning) -> Self {
        let shapes = p
            .parts()
            .iter()
            .map(|dims| PartitionShape {
                dims: dims.clone(),
                width: dims.len(),
                words: words_for(dims.len()),
            })
            .collect();
        Projector { dim: p.dim(), shapes }
    }

    /// Source dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.shapes.len()
    }

    /// Shape of partition `i`.
    pub fn shape(&self, i: usize) -> &PartitionShape {
        &self.shapes[i]
    }

    /// Projects `row` onto partition `part`, writing into `out`
    /// (`out.len() >= shape.words`; bits beyond the width are cleared).
    pub fn project_into(&self, part: usize, row: &[u64], out: &mut [u64]) {
        let shape = &self.shapes[part];
        out[..shape.words].iter_mut().for_each(|w| *w = 0);
        for (out_bit, &d) in shape.dims.iter().enumerate() {
            let d = d as usize;
            let bit = (row[d / 64] >> (d % 64)) & 1;
            out[out_bit / 64] |= bit << (out_bit % 64);
        }
    }

    /// Projects `row` onto partition `part` returning a fresh buffer.
    pub fn project(&self, part: usize, row: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.shapes[part].words.max(1)];
        self.project_into(part, row, &mut out);
        out
    }

    /// Projects `row` onto every partition, returning per-partition buffers.
    pub fn project_all(&self, row: &[u64]) -> Vec<Vec<u64>> {
        (0..self.num_parts()).map(|p| self.project(p, row)).collect()
    }
}

/// A dataset's projections onto every partition, partition-major.
///
/// For partition `i` of width `w_i`, values are stored as consecutive
/// `words_for(w_i)` word groups, one per data vector, in vector-ID order.
#[derive(Clone, Debug)]
pub struct ProjectedDataset {
    len: usize,
    columns: Vec<ProjectedColumn>,
}

/// One partition's projected values for an entire dataset.
#[derive(Clone, Debug)]
pub struct ProjectedColumn {
    width: usize,
    words: usize,
    data: Vec<u64>,
}

impl ProjectedColumn {
    /// Partition width `n_i`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per value.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Projected value of vector `id`.
    #[inline]
    pub fn value(&self, id: usize) -> &[u64] {
        let s = id * self.words;
        &self.data[s..s + self.words]
    }

    /// Signature key of vector `id` (identity when width ≤ 64).
    #[inline]
    pub fn key(&self, id: usize) -> u64 {
        key_of(self.value(id), self.width)
    }

    /// Iterates over projected values in vector-ID order.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.data.chunks_exact(self.words.max(1))
    }

    /// Heap bytes held by this column.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

impl ProjectedDataset {
    /// Projects every row of `ds` onto every partition of `projector`.
    pub fn build(ds: &Dataset, projector: &Projector) -> Self {
        assert_eq!(ds.dim(), projector.dim(), "projector built for another dim");
        let len = ds.len();
        let mut columns = Vec::with_capacity(projector.num_parts());
        for part in 0..projector.num_parts() {
            let shape = projector.shape(part);
            let words = shape.words.max(1);
            let mut data = vec![0u64; len * words];
            for (id, row) in ds.iter_rows().enumerate() {
                let out = &mut data[id * words..(id + 1) * words];
                // Inline gather (avoids the bounds re-checks of project_into
                // in this hot build loop).
                for (out_bit, &d) in shape.dims.iter().enumerate() {
                    let d = d as usize;
                    let bit = (row[d / 64] >> (d % 64)) & 1;
                    out[out_bit / 64] |= bit << (out_bit % 64);
                }
            }
            columns.push(ProjectedColumn { width: shape.width, words, data });
        }
        ProjectedDataset { len, columns }
    }

    /// Number of projected vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.columns.len()
    }

    /// Column for partition `i`.
    pub fn column(&self, i: usize) -> &ProjectedColumn {
        &self.columns[i]
    }

    /// Total heap bytes across columns.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVector;
    use crate::partition::Partitioning;

    fn table1() -> Dataset {
        let vs = ["00000000", "00000111", "00001111", "10011111"]
            .iter()
            .map(|s| BitVector::parse(s).unwrap());
        Dataset::from_vectors(8, vs).unwrap()
    }

    #[test]
    fn variable_partitioning_of_table1() {
        // The paper's variable partitioning: first six dims | last two.
        let ds = table1();
        let p = Partitioning::new(8, vec![(0..6).collect::<Vec<u32>>(), vec![6, 7]]).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        assert_eq!(pd.num_parts(), 2);
        // x2 = 00000111 -> partition 1 (dims 6,7) = "11" -> bits 0b11.
        assert_eq!(pd.column(1).value(1), &[0b11]);
        // x2 partition 0 (dims 0..6) = 000001 -> only dim 5 set -> bit 5.
        assert_eq!(pd.column(0).value(1), &[1 << 5]);
        // x1 projects to zero everywhere.
        assert_eq!(pd.column(0).value(0), &[0]);
        assert_eq!(pd.column(1).value(0), &[0]);
    }

    #[test]
    fn projector_roundtrip_against_select_dims() {
        let ds = table1();
        let p = Partitioning::random_shuffle(8, 3, 7).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        for part in 0..p.num_parts() {
            let dims: Vec<usize> = p.part(part).iter().map(|&d| d as usize).collect();
            let sub = ds.select_dims(&dims).unwrap();
            for id in 0..ds.len() {
                assert_eq!(pd.column(part).value(id), sub.row(id), "part={part} id={id}");
            }
        }
    }

    #[test]
    fn keys_are_identity_for_narrow_parts() {
        let ds = table1();
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        // x4 = 10011111: partition 0 (dims 0..4) = 1001 -> key 0b1001 = 9.
        assert_eq!(pd.column(0).key(3), 0b1001);
    }

    #[test]
    fn project_single_query() {
        let _ds = table1();
        let p = Partitioning::equi_width(8, 2).unwrap();
        let proj = Projector::new(&p);
        let q = BitVector::parse("10000011").unwrap();
        let parts = proj.project_all(q.words());
        assert_eq!(parts[0], vec![0b0001]); // dims 0..4: only dim 0 set
        assert_eq!(parts[1], vec![0b1100]); // dims 4..8: dims 6,7 set
    }
}

//! Flat storage for collections of equal-width binary vectors.

use crate::bitvec::BitVector;
use crate::error::{HammingError, Result};
use crate::words_for;

/// A collection of `n`-dimensional binary vectors stored contiguously.
///
/// Row `i` occupies `words_per_vec` consecutive `u64` words, making linear
/// scans and verification cache-friendly. Vector IDs are their insertion
/// order (`0..len`), matching the postings stored by every index in this
/// workspace.
#[derive(Clone, Debug)]
pub struct Dataset {
    dim: usize,
    words_per_vec: usize,
    words: Vec<u64>,
}

impl Dataset {
    /// Creates an empty dataset of `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Dataset { dim, words_per_vec: words_for(dim), words: Vec::new() }
    }

    /// Creates an empty dataset with storage reserved for `capacity` vectors.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        Dataset {
            dim,
            words_per_vec: words_for(dim),
            words: Vec::with_capacity(capacity * words_for(dim)),
        }
    }

    /// Builds a dataset from vectors, all of which must share `dim`.
    pub fn from_vectors<I: IntoIterator<Item = BitVector>>(dim: usize, vecs: I) -> Result<Self> {
        let mut ds = Dataset::new(dim);
        for v in vecs {
            ds.push(&v)?;
        }
        Ok(ds)
    }

    /// Appends a vector, returning its ID.
    pub fn push(&mut self, v: &BitVector) -> Result<u32> {
        if v.dim() != self.dim {
            return Err(HammingError::DimensionMismatch { expected: self.dim, actual: v.dim() });
        }
        let id = self.len() as u32;
        self.words.extend_from_slice(v.words());
        Ok(id)
    }

    /// Appends a row given as raw words (must satisfy the trailing-zero
    /// invariant; [`BitVector::from_words`] enforces it if unsure).
    pub(crate) fn push_words(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.words_per_vec);
        self.words.extend_from_slice(row);
    }

    /// Appends a row given as raw words, validating the word count and
    /// the trailing-zero invariant — the checked entry point for callers
    /// holding query-shaped `&[u64]` slices (e.g. live-update inserts)
    /// rather than [`BitVector`]s.
    pub fn push_row(&mut self, row: &[u64]) -> Result<u32> {
        if row.len() != self.words_per_vec {
            return Err(HammingError::InvalidParameter(format!(
                "row has {} words, {}-dimensional rows take {}",
                row.len(),
                self.dim,
                self.words_per_vec
            )));
        }
        if !self.dim.is_multiple_of(64) {
            if let Some(&last) = row.last() {
                if last >> (self.dim % 64) != 0 {
                    return Err(HammingError::InvalidParameter(
                        "row has bits set beyond its dimensionality".into(),
                    ));
                }
            }
        }
        let id = self.len() as u32;
        self.words.extend_from_slice(row);
        Ok(id)
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len().checked_div(self.words_per_vec).unwrap_or(0)
    }

    /// Whether the dataset holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Dimensionality of every vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per row.
    #[inline]
    pub fn words_per_vec(&self) -> usize {
        self.words_per_vec
    }

    /// Raw words of row `id`.
    #[inline]
    pub fn row(&self, id: usize) -> &[u64] {
        let s = id * self.words_per_vec;
        &self.words[s..s + self.words_per_vec]
    }

    /// Materializes row `id` as a [`BitVector`].
    pub fn vector(&self, id: usize) -> BitVector {
        BitVector::from_words(self.dim, self.row(id).to_vec())
            .expect("dataset rows are well-formed by construction")
    }

    /// Iterates over rows as word slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.words.chunks_exact(self.words_per_vec.max(1))
    }

    /// Hamming distance between stored row `id` and `query` words.
    #[inline]
    pub fn distance_to(&self, id: usize, query: &[u64]) -> u32 {
        crate::distance::hamming(self.row(id), query)
    }

    /// The flat word slab backing every row — row `id` occupies
    /// `words()[id * words_per_vec() ..][.. words_per_vec()]`. Exposed
    /// for streaming kernels that want one bounds-checked slice instead
    /// of a [`Dataset::row`] call per access.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Batched phase-4 verification: streams `candidates` against the
    /// row slab in one pass and appends every ID within `tau` of `query`
    /// to `out` (input order preserved). See
    /// [`crate::distance::verify_candidates`]; candidate IDs must be
    /// valid row indices.
    #[inline]
    pub fn verify_candidates(
        &self,
        query: &[u64],
        tau: u32,
        candidates: &[u32],
        out: &mut Vec<u32>,
    ) {
        assert_eq!(query.len(), self.words_per_vec, "query width mismatch");
        crate::distance::verify_candidates(
            &self.words,
            self.words_per_vec,
            query,
            tau,
            candidates,
            out,
        );
    }

    /// Exhaustive Hamming range search: IDs of all vectors within `tau` of
    /// `query`. This is the paper's naïve algorithm and the ground truth
    /// every index is tested against.
    pub fn linear_scan(&self, query: &[u64], tau: u32) -> Vec<u32> {
        assert_eq!(query.len(), self.words_per_vec, "query width mismatch");
        let mut out = Vec::new();
        for (id, row) in self.iter_rows().enumerate() {
            if crate::distance::hamming_within(row, query, tau).is_some() {
                out.push(id as u32);
            }
        }
        out
    }

    /// Total heap size of the vector payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Builds a new dataset keeping only the given dimensions (in the given
    /// order). Used by the "varying number of dimensions" experiment
    /// (Fig. 8(a)–(c)), which samples 25–100 % of the dimensions.
    pub fn select_dims(&self, dims: &[usize]) -> Result<Dataset> {
        for &d in dims {
            if d >= self.dim {
                return Err(HammingError::DimensionOutOfRange { index: d, dim: self.dim });
            }
        }
        let mut out = Dataset::with_capacity(dims.len(), self.len());
        let wpv = words_for(dims.len());
        let mut row_buf = vec![0u64; wpv];
        for row in self.iter_rows() {
            row_buf.iter_mut().for_each(|w| *w = 0);
            for (new_i, &old_i) in dims.iter().enumerate() {
                if (row[old_i / 64] >> (old_i % 64)) & 1 == 1 {
                    row_buf[new_i / 64] |= 1u64 << (new_i % 64);
                }
            }
            out.push_words(&row_buf);
        }
        Ok(out)
    }

    /// Appends row `id` of `other`, which must have the same
    /// dimensionality. Copies raw words without materializing a
    /// [`BitVector`] — the row-sharding path of the serving layer moves
    /// whole datasets this way.
    pub fn push_row_from(&mut self, other: &Dataset, id: usize) -> Result<u32> {
        if other.dim != self.dim {
            return Err(HammingError::DimensionMismatch { expected: self.dim, actual: other.dim });
        }
        let new_id = self.len() as u32;
        self.words.extend_from_slice(other.row(id));
        Ok(new_id)
    }

    /// Splits off the rows with the given IDs into a separate dataset and
    /// returns `(remaining, extracted)`. Used to carve query workloads out
    /// of a generated dataset, as the paper does (§VII-A).
    pub fn split_off(&self, ids: &[usize]) -> (Dataset, Dataset) {
        let mut take = vec![false; self.len()];
        for &id in ids {
            take[id] = true;
        }
        let mut kept = Dataset::with_capacity(self.dim, self.len() - ids.len());
        let mut extracted = Dataset::with_capacity(self.dim, ids.len());
        for (id, row) in self.iter_rows().enumerate() {
            if take[id] {
                extracted.push_words(row);
            } else {
                kept.push_words(row);
            }
        }
        (kept, extracted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // The four vectors of Table I / Table II in the paper.
        let vs = ["00000000", "00000111", "00001111", "10011111"]
            .iter()
            .map(|s| BitVector::parse(s).unwrap());
        Dataset::from_vectors(8, vs).unwrap()
    }

    #[test]
    fn push_and_access() {
        let ds = tiny();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dim(), 8);
        assert_eq!(ds.vector(3).to_string(), "10011111");
    }

    #[test]
    fn rejects_dim_mismatch() {
        let mut ds = Dataset::new(8);
        assert!(ds.push(&BitVector::zeros(9)).is_err());
    }

    #[test]
    fn linear_scan_matches_paper_example() {
        // q1 = 10000000, tau = 2 -> only x1 (id 0) qualifies (Example 2).
        let ds = tiny();
        let q1 = BitVector::parse("10000000").unwrap();
        assert_eq!(ds.linear_scan(q1.words(), 2), vec![0]);
        // tau = 4 admits x2 as well.
        assert_eq!(ds.linear_scan(q1.words(), 4), vec![0, 1]);
    }

    #[test]
    fn select_dims_projects_correctly() {
        let ds = tiny();
        // Keep the last two dimensions (6, 7): values 00, 11, 11, 11.
        let sub = ds.select_dims(&[6, 7]).unwrap();
        assert_eq!(sub.dim(), 2);
        assert_eq!(sub.vector(0).to_string(), "00");
        assert_eq!(sub.vector(1).to_string(), "11");
        assert!(ds.select_dims(&[8]).is_err());
    }

    #[test]
    fn split_off_partitions_rows() {
        let ds = tiny();
        let (kept, extracted) = ds.split_off(&[1, 3]);
        assert_eq!(kept.len(), 2);
        assert_eq!(extracted.len(), 2);
        assert_eq!(kept.vector(0).to_string(), "00000000");
        assert_eq!(extracted.vector(1).to_string(), "10011111");
    }

    #[test]
    fn push_row_from_copies_and_validates() {
        let ds = tiny();
        let mut out = Dataset::new(8);
        out.push_row_from(&ds, 2).unwrap();
        assert_eq!(out.vector(0).to_string(), "00001111");
        let mut wrong = Dataset::new(9);
        assert!(wrong.push_row_from(&ds, 0).is_err());
    }

    #[test]
    fn push_row_validates_width_and_trailing_bits() {
        let mut ds = Dataset::new(8);
        let id = ds.push_row(&[0b1010_0101]).unwrap();
        assert_eq!(id, 0);
        assert_eq!(ds.vector(0).to_string(), "10100101");
        assert!(ds.push_row(&[0, 0]).is_err(), "too many words");
        assert!(ds.push_row(&[1 << 8]).is_err(), "bit beyond dim 8");
        // Exact-multiple dims have no trailing bits to validate.
        let mut wide = Dataset::new(64);
        assert!(wide.push_row(&[u64::MAX]).is_ok());
    }

    #[test]
    fn multiword_rows() {
        let mut ds = Dataset::new(130);
        let mut v = BitVector::zeros(130);
        v.set(129, true);
        ds.push(&v).unwrap();
        assert_eq!(ds.words_per_vec(), 3);
        assert!(ds.vector(0).get(129));
        assert_eq!(ds.linear_scan(BitVector::zeros(130).words(), 0), Vec::<u32>::new());
        assert_eq!(ds.linear_scan(BitVector::zeros(130).words(), 1), vec![0]);
    }
}

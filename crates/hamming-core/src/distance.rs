//! Popcount-based Hamming distance kernels.
//!
//! These operate on raw word slices so that [`crate::Dataset`] rows and
//! [`crate::project::ProjectedDataset`] columns can be compared without
//! materializing [`crate::BitVector`] values.

/// Hamming distance between two equal-length word slices.
///
/// Both slices must follow the trailing-zero invariant (bits beyond the
/// logical dimensionality are zero), which every type in this crate
/// maintains.
#[inline]
pub fn hamming(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut d = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        d += (x ^ y).count_ones();
    }
    d
}

/// Early-exit Hamming distance: returns `Some(distance)` if it is `<= tau`,
/// `None` as soon as the running distance exceeds `tau`.
///
/// This is the verification kernel (`C_verify` in the paper's cost model):
/// most candidates fail verification, so aborting early on wide vectors
/// (e.g. PubChem's 881 dimensions = 14 words) saves most of the popcounts.
#[inline]
pub fn hamming_within(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
    debug_assert_eq!(a.len(), b.len());
    let mut d = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        d += (x ^ y).count_ones();
        if d > tau {
            return None;
        }
    }
    Some(d)
}

/// Hamming distance between two single-word values (partitions of up to 64
/// dimensions project to one word — the common case for every algorithm in
/// the paper).
#[inline]
pub fn hamming1(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Tanimoto (Jaccard) similarity of two bit vectors:
/// `|x ∧ y| / |x ∨ y|` — the cheminformatics similarity the paper's §I
/// reduces to Hamming search. Returns 1.0 for two empty vectors.
pub fn tanimoto(a: &[u64], b: &[u64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut inter = 0u32;
    let mut union = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        inter += (x & y).count_ones();
        union += (x | y).count_ones();
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Hamming threshold equivalent to a Tanimoto threshold `t` for a query
/// of weight `w_q` (per \[43\]): with `a = |x|`, `b = |y|`,
/// `c = |x ∧ y|`, `T ≥ t` forces `b ≤ a/t` and
/// `H = a + b − 2c ≤ (1 − t)/(1 + t) · (a + b)`, so
/// `τ = ⌊(1 − t)/(1 + t) · (a + a/t)⌋` suffices. Candidates within τ are
/// then verified with the exact [`tanimoto`]. `t` must be in `(0, 1]`.
pub fn tanimoto_to_hamming_bound(w_q: u32, t: f64) -> u32 {
    assert!(t > 0.0 && t <= 1.0, "Tanimoto threshold must be in (0, 1]");
    let a = w_q as f64;
    ((1.0 - t) / (1.0 + t) * (a + a / t)).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basic() {
        assert_eq!(hamming(&[0b1010], &[0b0110]), 2);
        assert_eq!(hamming(&[u64::MAX, 0], &[0, 0]), 64);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn within_matches_full_distance() {
        let a = [0xDEAD_BEEF_u64, 0x1234_5678];
        let b = [0xFEED_FACE_u64, 0x8765_4321];
        let d = hamming(&a, &b);
        assert_eq!(hamming_within(&a, &b, d), Some(d));
        assert_eq!(hamming_within(&a, &b, d + 1), Some(d));
        assert_eq!(hamming_within(&a, &b, d - 1), None);
    }

    #[test]
    fn within_early_exit_on_first_word() {
        // First word alone exceeds tau; the answer must still be None.
        let a = [u64::MAX, 0];
        let b = [0u64, 0];
        assert_eq!(hamming_within(&a, &b, 10), None);
    }

    #[test]
    fn single_word_kernel() {
        assert_eq!(hamming1(0, u64::MAX), 64);
        assert_eq!(hamming1(0b11, 0b10), 1);
    }

    #[test]
    fn tanimoto_known_values() {
        assert_eq!(tanimoto(&[0b1100], &[0b1010]), 1.0 / 3.0);
        assert_eq!(tanimoto(&[0b11], &[0b11]), 1.0);
        assert_eq!(tanimoto(&[0], &[0]), 1.0);
        assert_eq!(tanimoto(&[0b1], &[0b10]), 0.0);
    }

    #[test]
    fn tanimoto_bound_is_safe() {
        // Any pair with T >= t must fall within the Hamming bound.
        // Exhaustive check over small vectors.
        for a_bits in 0u64..32 {
            for b_bits in 0u64..32 {
                let (a, b) = ([a_bits], [b_bits]);
                let t = 0.5;
                if tanimoto(&a, &b) >= t {
                    let tau = tanimoto_to_hamming_bound(a_bits.count_ones(), t);
                    assert!(
                        hamming(&a, &b) <= tau,
                        "a={a_bits:b} b={b_bits:b} H={} tau={tau}",
                        hamming(&a, &b)
                    );
                }
            }
        }
    }

    #[test]
    fn tanimoto_bound_tightens_with_t() {
        assert!(tanimoto_to_hamming_bound(100, 0.9) < tanimoto_to_hamming_bound(100, 0.5));
        assert_eq!(tanimoto_to_hamming_bound(100, 1.0), 0);
    }
}

//! Popcount-based Hamming distance kernels.
//!
//! These operate on raw word slices so that [`crate::Dataset`] rows and
//! [`crate::project::ProjectedDataset`] columns can be compared without
//! materializing [`crate::BitVector`] values.
//!
//! Three tiers serve the query hot path:
//!
//! * scalar kernels ([`hamming`], [`hamming_within`]) for one-off
//!   distances;
//! * the **batched verification kernel** ([`verify_candidates`]), which
//!   streams a candidate ID list against a flat row slab in one pass,
//!   with the common 1/2/4-word row widths (64/128/256-bit codes)
//!   specialized so they avoid the generic slice loop entirely;
//! * with `--features simd`, `std::arch` AVX2/POPCNT kernels (the
//!   crate-private `simd` module) behind runtime detection, falling back to the
//!   portable word loop on any other hardware — results are
//!   bit-identical by property test.

/// Hamming distance between two equal-length word slices.
///
/// Both slices must follow the trailing-zero invariant (bits beyond the
/// logical dimensionality are zero), which every type in this crate
/// maintains. With the `simd` feature, wide slices dispatch to the AVX2
/// kernel when the CPU supports it.
#[inline]
pub fn hamming(a: &[u64], b: &[u64]) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(d) = crate::simd::hamming(a, b) {
        return d;
    }
    hamming_portable(a, b)
}

/// The portable word-loop Hamming distance — the reference every
/// accelerated kernel is property-tested against.
#[inline]
pub fn hamming_portable(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut d = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        d += (x ^ y).count_ones();
    }
    d
}

/// Early-exit Hamming distance: returns `Some(distance)` if it is `<= tau`,
/// `None` as soon as the running distance exceeds `tau`.
///
/// This is the one-off verification kernel (`C_verify` in the paper's
/// cost model): most candidates fail verification, so aborting early on
/// wide vectors (e.g. PubChem's 881 dimensions = 14 words) saves most of
/// the popcounts. Batch workloads should prefer [`verify_candidates`],
/// which amortizes the per-call overhead across a whole candidate list.
#[inline]
pub fn hamming_within(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
    debug_assert_eq!(a.len(), b.len());
    let mut d = 0u32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        d += (x ^ y).count_ones();
        if d > tau {
            return None;
        }
    }
    Some(d)
}

/// Hamming distance between two single-word values (partitions of up to 64
/// dimensions project to one word — the common case for every algorithm in
/// the paper).
#[inline]
pub fn hamming1(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

// ---------------------------------------------------------------------
// Batched candidate verification
// ---------------------------------------------------------------------

/// Fixed-width 2-word distance (128-bit codes), branchless.
#[inline(always)]
fn dist2(a: &[u64], b: &[u64]) -> u32 {
    (a[0] ^ b[0]).count_ones() + (a[1] ^ b[1]).count_ones()
}

/// Fixed-width 4-word distance (256-bit codes), branchless.
#[inline(always)]
fn dist4(a: &[u64], b: &[u64]) -> u32 {
    (a[0] ^ b[0]).count_ones()
        + (a[1] ^ b[1]).count_ones()
        + (a[2] ^ b[2]).count_ones()
        + (a[3] ^ b[3]).count_ones()
}

/// Streams `candidates` against the flat row slab `words` (row `id`
/// occupies `words[id * wpv .. (id + 1) * wpv]`), appending every ID
/// within Hamming distance `tau` of `query` to `out` in input order.
///
/// This is the batch form of phase-4 verification: one pass over the
/// candidate list, no per-candidate call or bounds-check overhead, with
/// the 1/2/4-word row widths fully unrolled (branchless distance, one
/// compare per row) and the generic width falling back to an early-exit
/// word loop. With `--features simd` and a capable CPU the whole batch
/// runs on the AVX2/POPCNT kernels instead; output is identical.
///
/// Panics (in debug builds) if `query.len() != wpv`; candidate IDs must
/// be valid row indices.
pub fn verify_candidates(
    words: &[u64],
    wpv: usize,
    query: &[u64],
    tau: u32,
    candidates: &[u32],
    out: &mut Vec<u32>,
) {
    debug_assert_eq!(query.len(), wpv);
    if wpv == 0 {
        // Zero-width rows are all at distance 0.
        out.extend_from_slice(candidates);
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::verify_candidates(words, wpv, query, tau, candidates, out) {
        return;
    }
    verify_candidates_portable(words, wpv, query, tau, candidates, out);
}

/// The portable batched verifier (see [`verify_candidates`]); the
/// reference the SIMD batch kernel is property-tested against.
pub fn verify_candidates_portable(
    words: &[u64],
    wpv: usize,
    query: &[u64],
    tau: u32,
    candidates: &[u32],
    out: &mut Vec<u32>,
) {
    match wpv {
        0 => out.extend_from_slice(candidates),
        1 => {
            let q = query[0];
            for &id in candidates {
                if (words[id as usize] ^ q).count_ones() <= tau {
                    out.push(id);
                }
            }
        }
        2 => {
            for &id in candidates {
                let row = &words[id as usize * 2..id as usize * 2 + 2];
                if dist2(row, query) <= tau {
                    out.push(id);
                }
            }
        }
        4 => {
            for &id in candidates {
                let row = &words[id as usize * 4..id as usize * 4 + 4];
                if dist4(row, query) <= tau {
                    out.push(id);
                }
            }
        }
        _ => {
            for &id in candidates {
                let s = id as usize * wpv;
                if hamming_within(&words[s..s + wpv], query, tau).is_some() {
                    out.push(id);
                }
            }
        }
    }
}

/// Whether the accelerated `std::arch` kernels are compiled in **and**
/// usable on this CPU. `false` in portable builds; benchmark reports
/// record it so numbers are attributable.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        crate::simd::available()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Tanimoto (Jaccard) similarity of two bit vectors:
/// `|x ∧ y| / |x ∨ y|` — the cheminformatics similarity the paper's §I
/// reduces to Hamming search. Returns 1.0 for two empty vectors.
pub fn tanimoto(a: &[u64], b: &[u64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut inter = 0u32;
    let mut union = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        inter += (x & y).count_ones();
        union += (x | y).count_ones();
    }
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Hamming threshold equivalent to a Tanimoto threshold `t` for a query
/// of weight `w_q` (per \[43\]): with `a = |x|`, `b = |y|`,
/// `c = |x ∧ y|`, `T ≥ t` forces `b ≤ a/t` and
/// `H = a + b − 2c ≤ (1 − t)/(1 + t) · (a + b)`, so
/// `τ = ⌊(1 − t)/(1 + t) · (a + a/t)⌋` suffices. Candidates within τ are
/// then verified with the exact [`tanimoto`]. `t` must be in `(0, 1]`.
pub fn tanimoto_to_hamming_bound(w_q: u32, t: f64) -> u32 {
    assert!(t > 0.0 && t <= 1.0, "Tanimoto threshold must be in (0, 1]");
    let a = w_q as f64;
    ((1.0 - t) / (1.0 + t) * (a + a / t)).floor() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basic() {
        assert_eq!(hamming(&[0b1010], &[0b0110]), 2);
        assert_eq!(hamming(&[u64::MAX, 0], &[0, 0]), 64);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn within_matches_full_distance() {
        let a = [0xDEAD_BEEF_u64, 0x1234_5678];
        let b = [0xFEED_FACE_u64, 0x8765_4321];
        let d = hamming(&a, &b);
        assert_eq!(hamming_within(&a, &b, d), Some(d));
        assert_eq!(hamming_within(&a, &b, d + 1), Some(d));
        assert_eq!(hamming_within(&a, &b, d - 1), None);
    }

    #[test]
    fn within_early_exit_on_first_word() {
        // First word alone exceeds tau; the answer must still be None.
        let a = [u64::MAX, 0];
        let b = [0u64, 0];
        assert_eq!(hamming_within(&a, &b, 10), None);
    }

    #[test]
    fn within_exact_boundary() {
        // d == tau is a hit (the predicate is <=, not <), at every width.
        for w in [1usize, 2, 3, 4, 7] {
            let a = vec![0u64; w];
            let mut b = vec![0u64; w];
            b[w - 1] = 0b111; // distance exactly 3, in the last word
            assert_eq!(hamming_within(&a, &b, 3), Some(3), "w={w}");
            assert_eq!(hamming_within(&a, &b, 2), None, "w={w}");
        }
    }

    #[test]
    fn empty_slices_are_distance_zero() {
        assert_eq!(hamming(&[], &[]), 0);
        assert_eq!(hamming_portable(&[], &[]), 0);
        assert_eq!(hamming_within(&[], &[], 0), Some(0));
        let mut out = Vec::new();
        verify_candidates(&[], 0, &[], 0, &[0, 1, 2], &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn single_word_kernel() {
        assert_eq!(hamming1(0, u64::MAX), 64);
        assert_eq!(hamming1(0b11, 0b10), 1);
    }

    #[test]
    fn batch_verify_matches_scalar_at_every_width() {
        // Deterministic pseudo-random slab; widths cover the specialized
        // fast paths (1, 2, 4) and the generic loop (3, 5).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for wpv in [1usize, 2, 3, 4, 5] {
            let n = 257;
            let words: Vec<u64> = (0..n * wpv).map(|_| next()).collect();
            let query: Vec<u64> = (0..wpv).map(|_| next()).collect();
            let candidates: Vec<u32> = (0..n as u32).rev().collect();
            for tau in [0u32, 3, 31, 64 * wpv as u32] {
                let expect: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let s = id as usize * wpv;
                        hamming_within(&words[s..s + wpv], &query, tau).is_some()
                    })
                    .collect();
                let mut got = Vec::new();
                verify_candidates(&words, wpv, &query, tau, &candidates, &mut got);
                assert_eq!(got, expect, "wpv={wpv} tau={tau}");
                let mut portable = Vec::new();
                verify_candidates_portable(&words, wpv, &query, tau, &candidates, &mut portable);
                assert_eq!(portable, expect, "portable wpv={wpv} tau={tau}");
            }
        }
    }

    #[test]
    fn batch_verify_empty_candidates() {
        let mut out = Vec::new();
        verify_candidates(&[0u64; 8], 2, &[0, 0], 5, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tanimoto_known_values() {
        assert_eq!(tanimoto(&[0b1100], &[0b1010]), 1.0 / 3.0);
        assert_eq!(tanimoto(&[0b11], &[0b11]), 1.0);
        assert_eq!(tanimoto(&[0], &[0]), 1.0);
        assert_eq!(tanimoto(&[0b1], &[0b10]), 0.0);
    }

    #[test]
    fn tanimoto_bound_is_safe() {
        // Any pair with T >= t must fall within the Hamming bound.
        // Exhaustive check over small vectors.
        for a_bits in 0u64..32 {
            for b_bits in 0u64..32 {
                let (a, b) = ([a_bits], [b_bits]);
                let t = 0.5;
                if tanimoto(&a, &b) >= t {
                    let tau = tanimoto_to_hamming_bound(a_bits.count_ones(), t);
                    assert!(
                        hamming(&a, &b) <= tau,
                        "a={a_bits:b} b={b_bits:b} H={} tau={tau}",
                        hamming(&a, &b)
                    );
                }
            }
        }
    }

    #[test]
    fn tanimoto_bound_tightens_with_t() {
        assert!(tanimoto_to_hamming_bound(100, 0.9) < tanimoto_to_hamming_bound(100, 0.5));
        assert_eq!(tanimoto_to_hamming_bound(100, 1.0), 0);
    }
}

//! A fast `u64` hasher for postings maps.
//!
//! Signature keys are already well-mixed (or identity) `u64` values; the
//! default SipHash is needless overhead on the hottest lookup path of
//! every index in this workspace. `FastMap` finalizes with splitmix64,
//! which is ample for hash-table bucketing and immune to the degenerate
//! identity-key clustering that `HashMap<u64, _, Identity>` would suffer
//! on low-entropy signatures.

use crate::key::mix64;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher state: accumulates the written words, finalizes with splitmix64.
#[derive(Default)]
pub struct Mix64Hasher(u64);

impl Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.0)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (rarely hit: keys here are u64/u32).
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0 ^ u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = self.0.rotate_left(29) ^ v;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed by pre-mixed integers.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<Mix64Hasher>>;
/// `HashSet` counterpart of [`FastMap`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<Mix64Hasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32); // low-entropy keys
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&640], 10);
    }

    #[test]
    fn hasher_differs_on_close_keys() {
        let h = |v: u64| {
            let mut hh = Mix64Hasher::default();
            hh.write_u64(v);
            hh.finish()
        };
        assert_ne!(h(1), h(2));
        assert_ne!(h(0), h(64));
    }
}

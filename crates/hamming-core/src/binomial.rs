//! Binomial coefficient tables.
//!
//! Signature enumeration cost (`C_sig_gen` in the paper, §IV-A) and
//! Hamming-ball sizes are sums of binomials; a precomputed Pascal triangle
//! keeps those O(1).

/// Precomputed `C(n, k)` values, saturating at `u64::MAX`.
///
/// Saturation is safe for this workload: ball sizes only feed cost models
/// and capacity pre-allocation, and any saturated value dwarfs every
/// realistic candidate count, steering optimizers away exactly as an exact
/// value would.
#[derive(Clone, Debug)]
pub struct BinomialTable {
    max_n: usize,
    rows: Vec<u64>, // (max_n+1) x (max_n+1) lower-triangular, row-major
}

impl BinomialTable {
    /// Builds the table for all `0 <= k <= n <= max_n`.
    pub fn new(max_n: usize) -> Self {
        let w = max_n + 1;
        let mut rows = vec![0u64; w * w];
        for n in 0..=max_n {
            rows[n * w] = 1;
            for k in 1..=n {
                let a = rows[(n - 1) * w + k - 1];
                let b = if k < n { rows[(n - 1) * w + k] } else { 0 };
                rows[n * w + k] = a.saturating_add(b);
            }
        }
        BinomialTable { max_n, rows }
    }

    /// `C(n, k)`; zero when `k > n`. Panics if `n > max_n`.
    #[inline]
    pub fn c(&self, n: usize, k: usize) -> u64 {
        assert!(n <= self.max_n, "n={n} exceeds table max {}", self.max_n);
        if k > n {
            0
        } else {
            self.rows[n * (self.max_n + 1) + k]
        }
    }

    /// Size of a Hamming ball of radius `r` in `{0,1}^n`:
    /// `Σ_{k=0}^{r} C(n, k)` (saturating).
    pub fn ball(&self, n: usize, r: usize) -> u64 {
        let mut s = 0u64;
        for k in 0..=r.min(n) {
            s = s.saturating_add(self.c(n, k));
        }
        s
    }

    /// Largest `n` the table covers.
    pub fn max_n(&self) -> usize {
        self.max_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        let t = BinomialTable::new(10);
        assert_eq!(t.c(0, 0), 1);
        assert_eq!(t.c(5, 2), 10);
        assert_eq!(t.c(10, 5), 252);
        assert_eq!(t.c(7, 9), 0);
    }

    #[test]
    fn ball_sizes() {
        let t = BinomialTable::new(8);
        // |B(8, 1)| = 1 + 8 = 9 ; |B(8, 8)| = 2^8.
        assert_eq!(t.ball(8, 1), 9);
        assert_eq!(t.ball(8, 8), 256);
        assert_eq!(t.ball(8, 100), 256);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let t = BinomialTable::new(200);
        assert_eq!(t.c(200, 100), u64::MAX);
        // Symmetry holds where exact.
        assert_eq!(t.c(200, 1), 200);
        assert_eq!(t.c(200, 199), 200);
    }

    #[test]
    fn row_sum_is_power_of_two() {
        let t = BinomialTable::new(20);
        let sum: u64 = (0..=20).map(|k| t.c(20, k)).sum();
        assert_eq!(sum, 1 << 20);
    }
}

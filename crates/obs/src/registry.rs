//! A registry of named metrics with a Prometheus text-format encoder.
//!
//! Registration takes a mutex once; the handles it returns
//! ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`'d atomics, so
//! recording on the hot path is lock-free. Registering the same
//! `(name, labels)` pair again returns the existing handle, which keeps
//! the exposition free of duplicate series by construction.

use crate::hist::LogHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that is set, not accumulated.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger — for high-water marks kept
    /// directly in the gauge (e.g. peak write-buffer bytes).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds one — for occupancy gauges (e.g. active connections).
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        // fetch_update never fails with a Relaxed/Relaxed pair.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to a [`LogHistogram`], exposed as a Prometheus
/// summary (p50/p95/p99 + `_sum` + `_count`).
#[derive(Clone)]
pub struct Histogram(Arc<LogHistogram>);

impl Histogram {
    /// A histogram not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Histogram(Arc::new(LogHistogram::new()))
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// The underlying histogram (quantiles, mean, max).
    pub fn inner(&self) -> &LogHistogram {
        &self.0
    }
}

enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(_) => "summary",
        }
    }
}

struct Metric {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: Kind,
}

/// A set of named metrics. Cheap to clone handles out of; rendering
/// walks every registered series in registration order, grouped by
/// family name.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b.is_ascii_alphabetic() || b == b'_' || (i > 0 && b.is_ascii_digit()))
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Kind,
    ) -> Kind {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut metrics = self.metrics.lock().unwrap();
        if let Some(existing) = metrics.iter().find(|m| m.name == name && m.labels == labels) {
            return match &existing.kind {
                Kind::Counter(c) => Kind::Counter(c.clone()),
                Kind::Gauge(g) => Kind::Gauge(g.clone()),
                Kind::Histogram(h) => Kind::Histogram(h.clone()),
            };
        }
        let kind = make();
        let handle = match &kind {
            Kind::Counter(c) => Kind::Counter(c.clone()),
            Kind::Gauge(g) => Kind::Gauge(g.clone()),
            Kind::Histogram(h) => Kind::Histogram(h.clone()),
        };
        metrics.push(Metric { name: name.to_string(), help: help.to_string(), labels, kind });
        handle
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Kind::Counter(Counter::detached())) {
            Kind::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Kind::Gauge(Gauge::detached())) {
            Kind::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) a histogram series (rendered as a
    /// Prometheus summary).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, || Kind::Histogram(Histogram::detached())) {
            Kind::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (version 0.0.4). Series sharing a family name are emitted
    /// under one `# HELP`/`# TYPE` header, in registration order.
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::with_capacity(256 * metrics.len().max(1));
        let mut done: Vec<&str> = Vec::new();
        for (i, m) in metrics.iter().enumerate() {
            if done.contains(&m.name.as_str()) {
                continue;
            }
            done.push(&m.name);
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(&m.help)));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.type_name()));
            for fam in metrics[i..].iter().filter(|f| f.name == m.name) {
                match &fam.kind {
                    Kind::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            render_labels(&fam.labels, None),
                            c.get()
                        ));
                    }
                    Kind::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            render_labels(&fam.labels, None),
                            g.get()
                        ));
                    }
                    Kind::Histogram(h) => {
                        let hist = h.inner();
                        for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                            out.push_str(&format!(
                                "{}{} {}\n",
                                fam.name,
                                render_labels(&fam.labels, Some(("quantile", tag))),
                                hist.quantile(q)
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            render_labels(&fam.labels, None),
                            hist.sum()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            render_labels(&fam.labels, None),
                            hist.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn golden_exposition() {
        let r = MetricsRegistry::new();
        let c = r.counter("gph_requests_total", "Requests handled.", &[]);
        c.add(3);
        let g = r.gauge("gph_cache_len", "Entries resident in the result cache.", &[]);
        g.set(7);
        let sharded = r.counter("gph_shard_queries_total", "Per-shard queries.", &[("shard", "0")]);
        sharded.inc();
        let h = r.histogram("gph_latency_ns", "End-to-end latency.", &[]);
        for v in 1..=10u64 {
            h.record(v);
        }
        let expect = "\
# HELP gph_requests_total Requests handled.
# TYPE gph_requests_total counter
gph_requests_total 3
# HELP gph_cache_len Entries resident in the result cache.
# TYPE gph_cache_len gauge
gph_cache_len 7
# HELP gph_shard_queries_total Per-shard queries.
# TYPE gph_shard_queries_total counter
gph_shard_queries_total{shard=\"0\"} 1
# HELP gph_latency_ns End-to-end latency.
# TYPE gph_latency_ns summary
gph_latency_ns{quantile=\"0.5\"} 5
gph_latency_ns{quantile=\"0.95\"} 10
gph_latency_ns{quantile=\"0.99\"} 10
gph_latency_ns_sum 55
gph_latency_ns_count 10
";
        assert_eq!(r.render(), expect);
    }

    #[test]
    fn families_group_under_one_header() {
        let r = MetricsRegistry::new();
        r.counter("gph_shard_rows", "Rows per shard.", &[("shard", "0")]).add(10);
        r.gauge("gph_other", "Interleaved family.", &[]).set(1);
        r.counter("gph_shard_rows", "Rows per shard.", &[("shard", "1")]).add(20);
        let text = r.render();
        assert_eq!(text.matches("# TYPE gph_shard_rows counter").count(), 1);
        assert!(text.contains("gph_shard_rows{shard=\"0\"} 10"));
        assert!(text.contains("gph_shard_rows{shard=\"1\"} 20"));
    }

    #[test]
    fn reregistration_returns_the_same_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("gph_dup_total", "x", &[]);
        let b = r.counter("gph_dup_total", "x", &[]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.render().matches("\ngph_dup_total 2\n").count(), 1);
    }

    #[test]
    fn label_escaping() {
        let r = MetricsRegistry::new();
        r.counter("gph_esc_total", "x", &[("path", "a\\b\"c\nd")]).inc();
        let text = r.render();
        assert!(text.contains("gph_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1"), "got: {text}");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::new().counter("9bad name", "x", &[]);
    }

    /// Characters a label value may draw from — printable ASCII plus
    /// everything that needs escaping.
    const LABEL_CHARS: &[char] = &['a', 'Z', '9', ' ', '{', '}', ',', '=', '\\', '"', '\n'];

    proptest! {
        /// Every registered series appears exactly once in the
        /// exposition, with its label value escaped, no matter what the
        /// label values contain.
        #[test]
        fn every_metric_appears_exactly_once(
            picks in proptest::collection::vec(
                proptest::collection::vec(0usize..LABEL_CHARS.len(), 0..12),
                1..8,
            ),
        ) {
            let values: Vec<String> = picks
                .iter()
                .map(|idx| idx.iter().map(|&i| LABEL_CHARS[i]).collect())
                .collect();
            let r = MetricsRegistry::new();
            for (i, v) in values.iter().enumerate() {
                let name = format!("gph_prop_{i}_total");
                r.counter(&name, "prop series", &[("v", v)]).add(i as u64 + 1);
            }
            let text = r.render();
            for (i, v) in values.iter().enumerate() {
                let line = format!(
                    "gph_prop_{i}_total{{v=\"{}\"}} {}\n",
                    super::escape_label(v),
                    i + 1
                );
                prop_assert_eq!(text.matches(line.as_str()).count(), 1, "series {} in:\n{}", i, text);
                // No unescaped newline may survive inside a sample line.
                prop_assert_eq!(
                    text.matches(&format!("# TYPE gph_prop_{i}_total counter")).count(), 1
                );
            }
        }
    }
}

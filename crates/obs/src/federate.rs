//! Metrics federation: parsing and merging Prometheus text
//! expositions.
//!
//! The metastore's `AggregateMetrics` op scrapes every live node's
//! `Metrics` exposition and folds them into one fleet-wide view with
//! [`merge_expositions`]. Merge rules, per family type:
//!
//! * **counter** — values sum across nodes.
//! * **gauge** — values sum, except families whose name ends in
//!   `_peak`, which merge by max (a fleet-wide high-water mark summed
//!   across nodes would be meaningless).
//! * **summary** — `_sum`/`_count` samples sum; quantile samples merge
//!   by max, a conservative upper bound (exact cross-node quantiles
//!   cannot be recovered from pre-rendered summaries).
//! * untyped samples sum.
//!
//! [`Exposition::parse`] is also the CLI's reader: `gph-store stats`
//! and `fleettop` pull individual series out of a scrape with
//! [`Exposition::value`].

use std::collections::HashMap;

/// One metric family: the `# HELP`/`# TYPE` header plus its samples in
/// first-seen order.
#[derive(Clone, Debug, Default)]
struct Family {
    name: String,
    help: String,
    type_name: String,
    /// `(series key, value)` — the series key is the full sample name
    /// including any label block (e.g. `gph_latency_ns{quantile="0.5"}`
    /// or `gph_latency_ns_sum`).
    samples: Vec<(String, f64)>,
}

/// A parsed Prometheus text exposition (version 0.0.4, the dialect
/// [`crate::MetricsRegistry::render`] emits).
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    families: Vec<Family>,
}

/// The base metric name of a sample series: everything before the label
/// block.
fn sample_name(series: &str) -> &str {
    series.split('{').next().unwrap_or(series)
}

impl Exposition {
    /// Parses an exposition. Unknown lines are skipped (never an
    /// error): a scrape is best-effort telemetry, not a checksummed
    /// payload. Samples appearing before any `# TYPE` header form
    /// untyped single-sample families.
    pub fn parse(text: &str) -> Exposition {
        let mut families: Vec<Family> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                if let Some((name, help)) = rest.split_once(' ') {
                    let i = *index.entry(name.to_string()).or_insert_with(|| {
                        families.push(Family { name: name.to_string(), ..Family::default() });
                        families.len() - 1
                    });
                    families[i].help = help.to_string();
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, t)) = rest.split_once(' ') {
                    let i = *index.entry(name.to_string()).or_insert_with(|| {
                        families.push(Family { name: name.to_string(), ..Family::default() });
                        families.len() - 1
                    });
                    families[i].type_name = t.to_string();
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            // A sample: `series value` — the value is the last
            // space-separated token (label values may contain spaces).
            let Some((series, value)) = line.rsplit_once(' ') else { continue };
            let Ok(value) = value.parse::<f64>() else { continue };
            let name = sample_name(series);
            // Summary `_sum`/`_count` samples belong to their base
            // family when one is declared.
            let family = [name]
                .into_iter()
                .chain(name.strip_suffix("_sum"))
                .chain(name.strip_suffix("_count"))
                .find(|base| index.contains_key(*base))
                .unwrap_or(name);
            let i = *index.entry(family.to_string()).or_insert_with(|| {
                families.push(Family { name: family.to_string(), ..Family::default() });
                families.len() - 1
            });
            families[i].samples.push((series.to_string(), value));
        }
        Exposition { families }
    }

    /// Looks up one sample by its full series key (name plus label
    /// block, exactly as rendered).
    pub fn value(&self, series: &str) -> Option<f64> {
        self.families
            .iter()
            .flat_map(|f| f.samples.iter())
            .find(|(s, _)| s == series)
            .map(|(_, v)| *v)
    }

    /// Every `(series, value)` sample, in exposition order.
    pub fn samples(&self) -> impl Iterator<Item = (&str, f64)> {
        self.families.iter().flat_map(|f| f.samples.iter().map(|(s, v)| (s.as_str(), *v)))
    }
}

/// How one sample merges across nodes.
enum MergeRule {
    Sum,
    Max,
}

fn rule_for(family: &Family, series: &str) -> MergeRule {
    match family.type_name.as_str() {
        "gauge" if family.name.ends_with("_peak") => MergeRule::Max,
        "summary" if sample_name(series) == family.name && series.contains("quantile=") => {
            MergeRule::Max
        }
        _ => MergeRule::Sum,
    }
}

/// Formats a merged value the way the registry renders: integers stay
/// integers.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Merges expositions from many nodes into one (see the module docs
/// for the per-type rules). Family and sample order follow first
/// appearance across the sources.
pub fn merge_expositions(texts: &[&str]) -> String {
    let mut merged: Vec<Family> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for text in texts {
        for fam in Exposition::parse(text).families {
            let i = *index.entry(fam.name.clone()).or_insert_with(|| {
                merged.push(Family { samples: Vec::new(), ..fam.clone() });
                merged.len() - 1
            });
            if merged[i].help.is_empty() {
                merged[i].help = fam.help.clone();
            }
            if merged[i].type_name.is_empty() {
                merged[i].type_name = fam.type_name.clone();
            }
            for (series, value) in fam.samples {
                let rule = rule_for(&merged[i], &series);
                match merged[i].samples.iter_mut().find(|(s, _)| *s == series) {
                    Some((_, acc)) => match rule {
                        MergeRule::Sum => *acc += value,
                        MergeRule::Max => *acc = acc.max(value),
                    },
                    None => merged[i].samples.push((series, value)),
                }
            }
        }
    }
    let mut out = String::new();
    for fam in &merged {
        if !fam.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
        }
        if !fam.type_name.is_empty() {
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.type_name));
        }
        for (series, value) in &fam.samples {
            out.push_str(&format!("{series} {}\n", format_value(*value)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn node(requests: u64, peak: u64, lat: &[u64]) -> String {
        let r = MetricsRegistry::new();
        r.counter("gph_requests_total", "Requests handled.", &[]).add(requests);
        r.gauge("gph_net_write_buffer_peak", "High-water mark.", &[]).set(peak);
        r.gauge("gph_cache_len", "Cache entries.", &[]).set(requests / 2);
        let h = r.histogram("gph_latency_ns", "Latency.", &[]);
        for &v in lat {
            h.record(v);
        }
        r.render()
    }

    #[test]
    fn parse_reads_back_rendered_samples() {
        let text = node(10, 7, &[100, 200]);
        let e = Exposition::parse(&text);
        assert_eq!(e.value("gph_requests_total"), Some(10.0));
        assert_eq!(e.value("gph_net_write_buffer_peak"), Some(7.0));
        assert_eq!(e.value("gph_latency_ns_count"), Some(2.0));
        assert!(e.value("gph_latency_ns{quantile=\"0.99\"}").is_some());
        assert_eq!(e.value("gph_missing"), None);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let a = node(10, 7, &[100]);
        let b = node(5, 90, &[300]);
        let merged = merge_expositions(&[&a, &b]);
        let e = Exposition::parse(&merged);
        assert_eq!(e.value("gph_requests_total"), Some(15.0), "counters sum");
        assert_eq!(e.value("gph_net_write_buffer_peak"), Some(90.0), "peaks max");
        assert_eq!(e.value("gph_cache_len"), Some(7.0), "plain gauges sum");
        assert_eq!(e.value("gph_latency_ns_count"), Some(2.0), "summary counts sum");
        assert_eq!(e.value("gph_latency_ns_sum"), Some(400.0));
        // Quantiles merge by max — the conservative upper bound.
        let q = e.value("gph_latency_ns{quantile=\"0.5\"}").unwrap();
        assert!(q >= 300.0 * 0.9, "p50 upper bound covers the slower node, got {q}");
        // Headers render once per family.
        assert_eq!(merged.matches("# TYPE gph_requests_total counter").count(), 1);
    }

    #[test]
    fn merge_keeps_disjoint_families_from_every_source() {
        let r = MetricsRegistry::new();
        r.counter("gph_only_here_total", "One-node family.", &[]).add(3);
        let merged = merge_expositions(&[&node(1, 1, &[]), &r.render()]);
        let e = Exposition::parse(&merged);
        assert_eq!(e.value("gph_only_here_total"), Some(3.0));
        assert_eq!(e.value("gph_requests_total"), Some(1.0));
    }

    #[test]
    fn merge_of_one_source_is_value_preserving() {
        let a = node(10, 7, &[100, 200, 300]);
        let merged = merge_expositions(&[&a]);
        let ea = Exposition::parse(&a);
        let em = Exposition::parse(&merged);
        for (series, value) in ea.samples() {
            assert_eq!(em.value(series), Some(value), "series {series}");
        }
    }

    #[test]
    fn labeled_series_merge_per_label_set() {
        let mk = |n: u64| {
            let r = MetricsRegistry::new();
            r.counter("gph_shard_queries_total", "Per-shard.", &[("shard", "0")]).add(n);
            r.counter("gph_shard_queries_total", "Per-shard.", &[("shard", "1")]).add(n * 10);
            r.render()
        };
        let merged = merge_expositions(&[&mk(1), &mk(2)]);
        let e = Exposition::parse(&merged);
        assert_eq!(e.value("gph_shard_queries_total{shard=\"0\"}"), Some(3.0));
        assert_eq!(e.value("gph_shard_queries_total{shard=\"1\"}"), Some(30.0));
    }
}

//! `gph-obs`: the observability layer of the GPH suite.
//!
//! Three pieces, deliberately dependency-light (only `hamming-core`, for
//! the shared binary-codec plumbing):
//!
//! * [`LogHistogram`] — a lock-free log-linear histogram (promoted and
//!   generalized from `gph-serve`'s latency histogram) whose quantiles
//!   carry ≈ ±6 % relative error at any magnitude.
//! * [`MetricsRegistry`] — a registry of named counters, gauges, and
//!   histograms. Handles are `Arc`'d atomics, so the hot path never
//!   takes a lock; [`MetricsRegistry::render`] encodes everything in the
//!   Prometheus text exposition format.
//! * [`QueryTrace`] and [`Tracer`] — structured per-query traces: wall
//!   time and counters for each engine phase, per segment and per shard,
//!   sampled at a configurable rate, with a fixed-size slow-query ring
//!   buffer. Traces carry a versioned binary codec so they can travel
//!   over the `GPHN` wire protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::LogHistogram;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{PhaseNanos, QueryTrace, SegmentTrace, ShardTrace, TraceConfig, Tracer};

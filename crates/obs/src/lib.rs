//! `gph-obs`: the observability layer of the GPH suite.
//!
//! Three pieces, deliberately dependency-light (only `hamming-core`, for
//! the shared binary-codec plumbing):
//!
//! * [`LogHistogram`] — a lock-free log-linear histogram (promoted and
//!   generalized from `gph-serve`'s latency histogram) whose quantiles
//!   carry ≈ ±6 % relative error at any magnitude.
//! * [`MetricsRegistry`] — a registry of named counters, gauges, and
//!   histograms. Handles are `Arc`'d atomics, so the hot path never
//!   takes a lock; [`MetricsRegistry::render`] encodes everything in the
//!   Prometheus text exposition format.
//! * [`QueryTrace`] and [`Tracer`] — structured per-query traces: wall
//!   time and counters for each engine phase, per segment and per shard,
//!   sampled at a configurable rate, with a fixed-size slow-query ring
//!   buffer. Traces carry a versioned binary codec so they can travel
//!   over the `GPHN` wire protocol; since codec v2 each trace also
//!   carries its hop context (trace id, node, start timestamp).
//! * [`FleetTrace`] — per-node [`QueryTrace`]s merged into one
//!   fleet-wide view attributing engine vs. network+queue time per hop.
//! * [`federate`] — Prometheus-exposition parsing and cross-node
//!   merging for the metastore's `AggregateMetrics` fan-out scrape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod federate;
pub mod fleettrace;
pub mod hist;
pub mod registry;
pub mod trace;

pub use federate::{merge_expositions, Exposition};
pub use fleettrace::{FleetTrace, HopTrace};
pub use hist::LogHistogram;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{PhaseNanos, QueryTrace, SegmentTrace, ShardTrace, TraceConfig, Tracer};

//! Fleet-wide trace merging.
//!
//! A fleet query scatter-gathers over every node group; each node
//! answers with its own [`QueryTrace`] (codec v2 carries the hop
//! context: trace id, node identity, start timestamp). The client
//! measures, per hop, its own end-to-end time — submit to response —
//! and [`FleetTrace::merge`] folds the hops into one view that
//! attributes where the time went: node-side engine time
//! (`trace.total_ns`) vs. network + queue time
//! ([`HopTrace::network_ns`], the client e2e minus the node total).
//!
//! Merging normalizes each hop so the per-hop invariant
//! `sum(phases) ≤ node total_ns ≤ hop e2e_ns` holds by construction
//! (coarse client timers or node-side clock granularity can otherwise
//! leave a node total a hair over the client's measurement), and sorts
//! hops into a canonical order so the merge is invariant under hop
//! arrival order.

use crate::trace::{PhaseNanos, QueryTrace};

/// One node's contribution to a fleet query: the node-side trace plus
/// the client-side end-to-end measurement for that hop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HopTrace {
    /// The node answering this hop (the address the client dialed).
    pub node: String,
    /// Client-measured wall time for the hop: submit → response,
    /// including serialization, network, and server queueing.
    pub e2e_ns: u64,
    /// The node-side trace.
    pub trace: QueryTrace,
}

impl HopTrace {
    /// Time the hop spent outside the node's engine: network transfer
    /// plus server-side queueing (client e2e minus node total).
    pub fn network_ns(&self) -> u64 {
        self.e2e_ns.saturating_sub(self.trace.total_ns)
    }
}

/// A merged fleet-wide trace: one hop per node group, normalized and
/// canonically ordered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetTrace {
    /// The distributed trace id the client stamped on every hop.
    pub trace_id: u64,
    /// The threshold the fleet query ran at.
    pub tau: u32,
    /// Client end-to-end wall time of the whole scatter-gather (at
    /// least the slowest hop's e2e, by construction).
    pub total_ns: u64,
    /// Per-node hops, sorted by node identity (ties broken by the full
    /// hop content, so merging is arrival-order invariant).
    pub hops: Vec<HopTrace>,
}

impl FleetTrace {
    /// Merges per-node hops into a fleet trace. Each hop is normalized
    /// so `sum(phases) ≤ node total_ns ≤ hop e2e_ns` holds, the fleet
    /// total is raised to cover the slowest hop, and hops are sorted
    /// into a canonical order independent of arrival order.
    pub fn merge(trace_id: u64, tau: u32, total_ns: u64, hops: Vec<HopTrace>) -> FleetTrace {
        let mut hops: Vec<HopTrace> = hops
            .into_iter()
            .map(|mut hop| {
                hop.trace.total_ns = hop.trace.total_ns.max(hop.trace.phase_totals().total());
                hop.e2e_ns = hop.e2e_ns.max(hop.trace.total_ns);
                hop
            })
            .collect();
        hops.sort_by_cached_key(|h| (h.node.clone(), h.e2e_ns, h.trace.encode()));
        let slowest = hops.iter().map(|h| h.e2e_ns).max().unwrap_or(0);
        FleetTrace { trace_id, tau, total_ns: total_ns.max(slowest), hops }
    }

    /// The slowest hop — the straggler that bounded the fleet query's
    /// tail. `None` only for an empty trace.
    pub fn straggler(&self) -> Option<&HopTrace> {
        self.hops.iter().max_by_key(|h| h.e2e_ns)
    }

    /// Sum of engine-phase times across every hop (CPU-time view; wall
    /// time is bounded by the straggler, not this sum).
    pub fn phase_totals(&self) -> PhaseNanos {
        let mut acc = PhaseNanos::default();
        for hop in &self.hops {
            acc.add(&hop.trace.phase_totals());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SegmentTrace, ShardTrace};
    use proptest::prelude::*;

    fn hop(node: &str, e2e_ns: u64, node_total: u64, verify_ns: u64) -> HopTrace {
        HopTrace {
            node: node.into(),
            e2e_ns,
            trace: QueryTrace {
                trace_id: 42,
                node: node.into(),
                started_unix_ns: 1,
                tau: 4,
                total_ns: node_total,
                shards: vec![ShardTrace {
                    shard: 0,
                    total_ns: node_total,
                    segments: vec![SegmentTrace {
                        segment: 0,
                        rows: 10,
                        phases: PhaseNanos { verify_ns, ..PhaseNanos::default() },
                        ..SegmentTrace::default()
                    }],
                }],
            },
        }
    }

    #[test]
    fn merge_orders_hops_and_finds_the_straggler() {
        let hops = vec![hop("c", 900, 700, 100), hop("a", 300, 200, 50), hop("b", 500, 400, 80)];
        let fleet = FleetTrace::merge(42, 4, 1000, hops);
        let order: Vec<&str> = fleet.hops.iter().map(|h| h.node.as_str()).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(fleet.straggler().unwrap().node, "c");
        assert_eq!(fleet.total_ns, 1000);
        assert_eq!(fleet.phase_totals().verify_ns, 230);
        assert_eq!(fleet.hops[0].network_ns(), 100, "e2e 300 minus node total 200");
    }

    #[test]
    fn merge_normalizes_clock_skew() {
        // A node whose total came back above the client's e2e (clock
        // granularity) is normalized, not rejected.
        let fleet = FleetTrace::merge(1, 4, 0, vec![hop("a", 100, 250, 300)]);
        let h = &fleet.hops[0];
        assert_eq!(h.trace.total_ns, 300, "node total raised to the phase sum");
        assert_eq!(h.e2e_ns, 300, "hop e2e raised to the node total");
        assert_eq!(fleet.total_ns, 300, "fleet total covers the slowest hop");
        assert_eq!(h.network_ns(), 0);
    }

    fn arb_hop() -> impl Strategy<Value = HopTrace> {
        (0usize..6, 0u64..5_000, 0u64..5_000, 0u64..2_000, 0u64..2_000).prop_map(
            |(node, e2e_ns, node_total, verify_ns, probe_ns)| {
                let mut h = hop(&format!("node-{node}:90{node}0"), e2e_ns, node_total, verify_ns);
                h.trace.shards[0].segments[0].phases.probe_ns = probe_ns;
                h
            },
        )
    }

    proptest! {
        /// The per-hop invariant holds after merge, for arbitrary
        /// (inconsistent) raw measurements.
        #[test]
        fn merge_preserves_per_hop_invariant(
            hops in proptest::collection::vec(arb_hop(), 0..8),
            total in 0u64..10_000,
        ) {
            let fleet = FleetTrace::merge(7, 4, total, hops);
            for h in &fleet.hops {
                prop_assert!(h.trace.phase_totals().total() <= h.trace.total_ns);
                prop_assert!(h.trace.total_ns <= h.e2e_ns);
                prop_assert!(h.e2e_ns <= fleet.total_ns);
            }
        }

        /// Merging is invariant under hop arrival order.
        #[test]
        fn merge_is_arrival_order_invariant(
            hops in proptest::collection::vec(arb_hop(), 0..8),
            rot in 0usize..8,
        ) {
            let mut shuffled = hops.clone();
            let pivot = rot.min(shuffled.len().saturating_sub(1));
            shuffled.rotate_left(pivot);
            shuffled.reverse();
            let a = FleetTrace::merge(7, 4, 0, hops);
            let b = FleetTrace::merge(7, 4, 0, shuffled);
            prop_assert_eq!(a, b);
        }
    }
}

//! Structured per-query traces.
//!
//! A [`QueryTrace`] records, for one query, the wall time and counters
//! of every engine phase — threshold allocation, signature enumeration,
//! postings probe (including candidate dedup), batched verification, and
//! memtable/fallback scan — broken down per segment and per shard. The
//! engines fill these through a caller-provided sink (an
//! `Option<&mut Vec<SegmentTrace>>` at the segment layer), so the
//! disabled path costs one branch.
//!
//! [`Tracer`] owns the runtime policy: a sampling counter (trace 1 in
//! `sample_every` queries), a fixed-size ring buffer of slow queries,
//! and per-phase histograms registered in a [`MetricsRegistry`].

use crate::registry::{Histogram, MetricsRegistry};
use hamming_core::error::Result;
use hamming_core::io::ByteReader;
use hamming_core::HammingError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Wall time per engine phase, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Threshold allocation: CN estimation + DP allocation lookup.
    pub alloc_ns: u64,
    /// Signature-ball enumeration.
    pub enumerate_ns: u64,
    /// Postings probe + candidate dedup (includes the sealed-segment
    /// scan fallback when the ball outgrows the segment).
    pub probe_ns: u64,
    /// Batched candidate verification.
    pub verify_ns: u64,
    /// Memtable linear scan.
    pub scan_ns: u64,
}

impl PhaseNanos {
    /// Sum of all phases.
    pub fn total(&self) -> u64 {
        self.alloc_ns + self.enumerate_ns + self.probe_ns + self.verify_ns + self.scan_ns
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &PhaseNanos) {
        self.alloc_ns += other.alloc_ns;
        self.enumerate_ns += other.enumerate_ns;
        self.probe_ns += other.probe_ns;
        self.verify_ns += other.verify_ns;
        self.scan_ns += other.scan_ns;
    }
}

/// The sentinel segment id a memtable trace carries.
pub const MEMTABLE_SEGMENT: u32 = u32::MAX;

/// One segment's contribution to a query (a sealed engine, or the
/// memtable when `segment == MEMTABLE_SEGMENT`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SegmentTrace {
    /// Segment ordinal within its shard; [`MEMTABLE_SEGMENT`] for the
    /// memtable scan.
    pub segment: u32,
    /// Rows the segment held when the query ran.
    pub rows: u64,
    /// Per-phase wall time.
    pub phases: PhaseNanos,
    /// Signatures enumerated.
    pub n_signatures: u64,
    /// Σ postings-list lengths probed.
    pub sum_postings: u64,
    /// Rows examined by linear scan (fallback or memtable).
    pub n_scanned: u64,
    /// Distinct candidates verified.
    pub n_candidates: u64,
    /// Results produced.
    pub n_results: u64,
}

/// One shard's contribution: its segments plus the shard-local wall
/// time (which includes engine work the phases don't cover, e.g. result
/// sorting).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardTrace {
    /// Shard ordinal.
    pub shard: u32,
    /// Wall time of the whole shard-local search.
    pub total_ns: u64,
    /// Per-segment breakdown, memtable last.
    pub segments: Vec<SegmentTrace>,
}

/// A complete per-query trace.
///
/// Since codec v2 a trace also carries its **hop context** — which
/// distributed trace it belongs to ([`QueryTrace::trace_id`]), which
/// node produced it ([`QueryTrace::node`]), and when that node started
/// executing ([`QueryTrace::started_unix_ns`]) — so per-node traces can
/// be merged into a fleet-wide view (see [`crate::fleettrace`]). All
/// three default to "unset" (`0` / empty) for purely local traces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryTrace {
    /// Distributed trace id shared by every hop of one fleet query;
    /// `0` when the trace never crossed a process boundary.
    pub trace_id: u64,
    /// Identity of the node that executed the query (its listen
    /// address); empty for purely local traces.
    pub node: String,
    /// Wall-clock nanoseconds since the UNIX epoch when the node
    /// started executing; `0` when unset. Clocks are per-node, so this
    /// orders hops only approximately — durations stay authoritative.
    pub started_unix_ns: u64,
    /// The threshold the query executed at.
    pub tau: u32,
    /// Wall time of the whole (scatter-gather) search.
    pub total_ns: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardTrace>,
}

/// Codec version of the [`QueryTrace`] payload. v2 added the hop
/// context (trace id, node, start timestamp); v1 blobs still decode,
/// with the context defaulted to unset.
const TRACE_VERSION: u8 = 2;
/// Allocation guard: no real deployment has this many shards/segments.
const MAX_TRACE_ITEMS: u32 = 1 << 16;
/// Allocation guard on the node-identity string.
const MAX_NODE_LEN: u32 = 1 << 10;

fn read_count(r: &mut ByteReader<'_>, what: &str) -> Result<u32> {
    let n = r.u32(what)?;
    if n > MAX_TRACE_ITEMS {
        return Err(HammingError::Corrupt(format!("{what} count {n} implausible")));
    }
    Ok(n)
}

impl QueryTrace {
    /// Sum of the per-phase times across all shards and segments.
    pub fn phase_totals(&self) -> PhaseNanos {
        let mut acc = PhaseNanos::default();
        for sh in &self.shards {
            for seg in &sh.segments {
                acc.add(&seg.phases);
            }
        }
        acc
    }

    /// Encodes the trace (leading version byte, little-endian fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 96 * self.shards.len());
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the encoding to `buf` (the composition point for wire
    /// payloads that embed a trace).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(TRACE_VERSION);
        buf.extend_from_slice(&self.trace_id.to_le_bytes());
        buf.extend_from_slice(&(self.node.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.node.as_bytes());
        buf.extend_from_slice(&self.started_unix_ns.to_le_bytes());
        buf.extend_from_slice(&self.tau.to_le_bytes());
        buf.extend_from_slice(&self.total_ns.to_le_bytes());
        buf.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for sh in &self.shards {
            buf.extend_from_slice(&sh.shard.to_le_bytes());
            buf.extend_from_slice(&sh.total_ns.to_le_bytes());
            buf.extend_from_slice(&(sh.segments.len() as u32).to_le_bytes());
            for seg in &sh.segments {
                buf.extend_from_slice(&seg.segment.to_le_bytes());
                buf.extend_from_slice(&seg.rows.to_le_bytes());
                let p = &seg.phases;
                for v in [p.alloc_ns, p.enumerate_ns, p.probe_ns, p.verify_ns, p.scan_ns] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                for v in [
                    seg.n_signatures,
                    seg.sum_postings,
                    seg.n_scanned,
                    seg.n_candidates,
                    seg.n_results,
                ] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a trace produced by [`QueryTrace::encode`], requiring
    /// full consumption of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.finish("query trace")?;
        Ok(out)
    }

    /// Decodes a trace from the reader's current position. Accepts the
    /// current codec (v2) and v1 blobs (pre-context), whose hop context
    /// decodes as unset; any other version is a typed error.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.u8("trace version")?;
        if version != 1 && version != TRACE_VERSION {
            return Err(HammingError::Corrupt(format!("unsupported trace version {version}")));
        }
        let (trace_id, node, started_unix_ns) = if version >= 2 {
            let trace_id = r.u64("trace id")?;
            let node_len = r.u32("trace node len")?;
            if node_len > MAX_NODE_LEN {
                return Err(HammingError::Corrupt(format!(
                    "trace node length {node_len} implausible"
                )));
            }
            let node = String::from_utf8(r.bytes(node_len as usize, "trace node")?.to_vec())
                .map_err(|_| HammingError::Corrupt("trace node is not UTF-8".into()))?;
            (trace_id, node, r.u64("trace started")?)
        } else {
            (0, String::new(), 0)
        };
        let tau = r.u32("trace tau")?;
        let total_ns = r.u64("trace total")?;
        let n_shards = read_count(r, "trace shards")?;
        let mut shards = Vec::with_capacity(n_shards as usize);
        for _ in 0..n_shards {
            let shard = r.u32("shard id")?;
            let sh_total = r.u64("shard total")?;
            let n_segs = read_count(r, "trace segments")?;
            let mut segments = Vec::with_capacity(n_segs as usize);
            for _ in 0..n_segs {
                segments.push(SegmentTrace {
                    segment: r.u32("segment id")?,
                    rows: r.u64("segment rows")?,
                    phases: PhaseNanos {
                        alloc_ns: r.u64("alloc ns")?,
                        enumerate_ns: r.u64("enumerate ns")?,
                        probe_ns: r.u64("probe ns")?,
                        verify_ns: r.u64("verify ns")?,
                        scan_ns: r.u64("scan ns")?,
                    },
                    n_signatures: r.u64("n signatures")?,
                    sum_postings: r.u64("sum postings")?,
                    n_scanned: r.u64("n scanned")?,
                    n_candidates: r.u64("n candidates")?,
                    n_results: r.u64("n results")?,
                });
            }
            shards.push(ShardTrace { shard, total_ns: sh_total, segments });
        }
        Ok(QueryTrace { trace_id, node, started_unix_ns, tau, total_ns, shards })
    }
}

/// Runtime tracing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Trace 1 in `sample_every` queries; `0` disables sampling
    /// entirely (explicitly requested traces still run).
    pub sample_every: u64,
    /// Traces whose total wall time is at least this enter the
    /// slow-query ring.
    pub slow_threshold_ns: u64,
    /// Capacity of the slow-query ring buffer.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { sample_every: 0, slow_threshold_ns: 0, ring_capacity: 64 }
    }
}

/// Sampling + retention for query traces, with per-phase summaries
/// registered in a [`MetricsRegistry`].
pub struct Tracer {
    cfg: TraceConfig,
    tick: AtomicU64,
    sampled: crate::registry::Counter,
    slow: crate::registry::Counter,
    ring: Mutex<VecDeque<QueryTrace>>,
    phase_hists: [Histogram; 5],
}

const PHASE_NAMES: [&str; 5] = ["alloc", "enumerate", "probe", "verify", "scan"];

impl Tracer {
    /// Creates a tracer, registering its per-phase time summaries
    /// (`gph_query_phase_ns{phase=...}`) and recording counters
    /// (`gph_trace_sampled_total`, `gph_trace_slow_total`) in
    /// `registry`.
    pub fn new(cfg: TraceConfig, registry: &MetricsRegistry) -> Self {
        let phase_hists = PHASE_NAMES.map(|phase| {
            registry.histogram(
                "gph_query_phase_ns",
                "Per-phase wall time of traced queries.",
                &[("phase", phase)],
            )
        });
        Tracer {
            cfg,
            tick: AtomicU64::new(0),
            sampled: registry.counter(
                "gph_trace_sampled_total",
                "Query traces recorded (sampled or explicitly requested).",
                &[],
            ),
            slow: registry.counter(
                "gph_trace_slow_total",
                "Recorded traces that entered the slow-query ring.",
                &[],
            ),
            ring: Mutex::new(VecDeque::new()),
            phase_hists,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Whether this query should be traced by the sampling policy. One
    /// relaxed `fetch_add` when sampling is on; a constant `false` when
    /// it is off.
    pub fn should_sample(&self) -> bool {
        match self.cfg.sample_every {
            0 => false,
            1 => true,
            n => self.tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(n),
        }
    }

    /// Traces recorded since start.
    pub fn sampled(&self) -> u64 {
        self.sampled.get()
    }

    /// Recorded traces that entered the slow-query ring since start.
    pub fn slow_total(&self) -> u64 {
        self.slow.get()
    }

    /// Records a completed trace: feeds the per-phase summaries and,
    /// when the query was slow enough, the ring buffer.
    pub fn record(&self, trace: &QueryTrace) {
        self.sampled.inc();
        let phases = trace.phase_totals();
        for (h, v) in self.phase_hists.iter().zip([
            phases.alloc_ns,
            phases.enumerate_ns,
            phases.probe_ns,
            phases.verify_ns,
            phases.scan_ns,
        ]) {
            h.record(v);
        }
        if self.cfg.ring_capacity > 0 && trace.total_ns >= self.cfg.slow_threshold_ns {
            self.slow.inc();
            let mut ring = self.ring.lock().unwrap();
            if ring.len() == self.cfg.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(trace.clone());
        }
    }

    /// The retained slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<QueryTrace> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(total_ns: u64) -> QueryTrace {
        QueryTrace {
            trace_id: 0xDEC0DE,
            node: "127.0.0.1:7471".into(),
            started_unix_ns: 1_700_000_000_000_000_000,
            tau: 8,
            total_ns,
            shards: vec![ShardTrace {
                shard: 1,
                total_ns,
                segments: vec![
                    SegmentTrace {
                        segment: 0,
                        rows: 1000,
                        phases: PhaseNanos {
                            alloc_ns: 10,
                            enumerate_ns: 20,
                            probe_ns: 30,
                            verify_ns: 40,
                            scan_ns: 0,
                        },
                        n_signatures: 5,
                        sum_postings: 50,
                        n_scanned: 0,
                        n_candidates: 12,
                        n_results: 2,
                    },
                    SegmentTrace {
                        segment: MEMTABLE_SEGMENT,
                        rows: 17,
                        phases: PhaseNanos { scan_ns: 7, ..PhaseNanos::default() },
                        n_scanned: 17,
                        n_candidates: 17,
                        n_results: 1,
                        ..SegmentTrace::default()
                    },
                ],
            }],
        }
    }

    #[test]
    fn trace_codec_roundtrip_is_canonical() {
        let t = sample_trace(123_456);
        let bytes = t.encode();
        let back = QueryTrace::decode(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.encode(), bytes, "re-encoding must be byte-identical");
    }

    #[test]
    fn trace_codec_rejects_corruption() {
        let t = sample_trace(1);
        let bytes = t.encode();
        assert!(QueryTrace::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut versioned = bytes.clone();
        versioned[0] = 9;
        assert!(QueryTrace::decode(&versioned).is_err(), "unknown version");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(QueryTrace::decode(&trailing).is_err(), "trailing bytes");
        // Implausible node length must fail before allocating.
        let mut long_node = bytes.clone();
        long_node[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(QueryTrace::decode(&long_node).is_err(), "implausible node length");
        // Implausible shard count must fail before allocating. Offset:
        // version + trace_id + node (len prefix + bytes) + started +
        // tau + total_ns.
        let off = 1 + 8 + 4 + t.node.len() + 8 + 4 + 8;
        let mut huge = bytes;
        huge[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(QueryTrace::decode(&huge).is_err(), "implausible count");
    }

    /// Encodes `t` in the v1 (pre-context) layout.
    fn encode_v1(t: &QueryTrace) -> Vec<u8> {
        let mut buf = t.encode();
        // v2 = version byte, 20 bytes of context + node, then the v1
        // body verbatim; rewrite the prefix to the v1 form.
        let body = buf.split_off(1 + 8 + 4 + t.node.len() + 8);
        vec![1u8].into_iter().chain(body).collect()
    }

    /// Pins the compatibility choice: v1 blobs (no hop context) still
    /// decode, with trace id / node / start timestamp defaulting to
    /// unset.
    #[test]
    fn trace_codec_decodes_v1_blobs_with_default_context() {
        let t = sample_trace(123_456);
        let v1 = encode_v1(&t);
        assert_eq!(v1[0], 1);
        let back = QueryTrace::decode(&v1).unwrap();
        assert_eq!(back.trace_id, 0);
        assert_eq!(back.node, "");
        assert_eq!(back.started_unix_ns, 0);
        let expect = QueryTrace { trace_id: 0, node: String::new(), started_unix_ns: 0, ..t };
        assert_eq!(back, expect, "v1 body fields survive unchanged");
        // Re-encoding a decoded v1 blob produces the current version.
        assert_eq!(back.encode()[0], 2);
    }

    #[test]
    fn phase_totals_sum_segments() {
        let t = sample_trace(1);
        let p = t.phase_totals();
        assert_eq!(p.total(), 10 + 20 + 30 + 40 + 7);
    }

    #[test]
    fn sampler_rates() {
        let reg = MetricsRegistry::new();
        let off = Tracer::new(TraceConfig::default(), &reg);
        assert!(!off.should_sample());
        let always = Tracer::new(TraceConfig { sample_every: 1, ..TraceConfig::default() }, &reg);
        assert!(always.should_sample() && always.should_sample());
        let sparse = Tracer::new(TraceConfig { sample_every: 4, ..TraceConfig::default() }, &reg);
        let hits = (0..100).filter(|_| sparse.should_sample()).count();
        assert_eq!(hits, 25);
    }

    #[test]
    fn slow_ring_is_bounded_and_thresholded() {
        let reg = MetricsRegistry::new();
        let tracer = Tracer::new(
            TraceConfig { sample_every: 1, slow_threshold_ns: 100, ring_capacity: 3 },
            &reg,
        );
        for total in [50u64, 150, 250, 350, 450] {
            tracer.record(&sample_trace(total));
        }
        let slow = tracer.slow_queries();
        let totals: Vec<u64> = slow.iter().map(|t| t.total_ns).collect();
        assert_eq!(totals, vec![250, 350, 450], "fast query skipped, oldest slow evicted");
        assert_eq!(tracer.sampled(), 5);
        // The phase summaries saw every recorded trace.
        assert!(reg.render().contains("gph_query_phase_ns_count{phase=\"alloc\"} 5"));
    }
}

//! A lock-free log-linear histogram of `u64` observations.
//!
//! Promoted from `gph-serve`'s latency histogram and generalized: the
//! unit is whatever the caller records (the serving layer records
//! nanoseconds, the tracer records per-phase nanoseconds, counters of
//! candidates work just as well).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 16 sub-buckets per power of two (≈ ±6 %
/// relative error on reported quantiles).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values up to `u64::MAX` land in-range; bucket count ≈ 16 · 61 octaves.
const BUCKETS: usize = SUB * 61;

/// Lock-free log-linear histogram.
///
/// HDR-style bucketing: values below 16 map to themselves; larger values
/// keep their top 4 mantissa bits per octave. Recording is a single
/// relaxed `fetch_add`. Quantiles report the inclusive lower bound of
/// the bucket holding the ⌈q·n⌉-th observation, clamped to the observed
/// maximum so a quantile can never exceed any recorded value.
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        let idx = ((octave - SUB_BITS + 1) as usize) * SUB + sub;
        idx.min(BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `idx` (the value quantiles report).
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = idx / SUB;
        let sub = (idx % SUB) as u64;
        (SUB as u64 + sub) << (octave - 1)
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`): the floor of the bucket holding
    /// the ⌈q·n⌉-th observation, clamped to [`LogHistogram::max`].
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(idx).min(self.max());
            }
        }
        // Unreachable when counts are quiescent (Σ buckets == n ≥ rank),
        // but a racing recorder can leave `count` ahead of the buckets.
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = LogHistogram::bucket_of(v);
            assert!(idx >= prev || v < 32, "bucket index regressed at {v}");
            prev = idx;
            let floor = LogHistogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // Log-linear guarantee: floor within 1/16 relative error.
            assert!((v - floor) as f64 <= (v as f64 / 16.0).max(0.0) + 1e-9, "v={v} floor={floor}");
        }
    }

    #[test]
    fn exact_quantiles_on_small_values() {
        let h = LogHistogram::new();
        for v in 1..=10u64 {
            h.record(v); // values < 16 are bucketed exactly
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LogHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = LogHistogram::new();
        h.record(12_345);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v <= 12_345, "q={q} reported {v} above the only sample");
            assert!(v as f64 >= 12_345.0 * (1.0 - 1.0 / 16.0), "q={q} reported {v}, too low");
        }
        assert_eq!(h.max(), 12_345);
        assert!((h.mean() - 12_345.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_values_return_sane_quantiles() {
        // Values at the top of the u64 range share the last bucket; the
        // quantile must stay positive, ≤ max, and within one octave.
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(u64::MAX / 2 + 1);
        for q in [0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v <= h.max(), "q={q}: {v} exceeds max {}", h.max());
            assert!(v >= u64::MAX / 4, "q={q}: {v} collapsed");
        }
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn skewed_distribution_quantiles() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!((937..=1000).contains(&p50), "p50={p50}");
        assert!((937..=1000).contains(&p99), "p99={p99}");
        assert!(p999 > 900_000, "p999={p999}");
    }
}

//! # datagen
//!
//! Synthetic binary-vector datasets reproducing the *distributional*
//! properties of the GPH paper's evaluation datasets (§VII-A): per-
//! dimension skewness profiles (Fig. 1) and correlations among dimensions.
//!
//! The paper's real datasets (SIFT, GIST, PubChem, FastText, UQVideo) are
//! multi-gigabyte downloads of third-party data; what GPH's results depend
//! on is not the image/chemistry content but the *skew* and *correlation*
//! structure of the binary codes. Each [`Profile`] constructor documents
//! which dataset it stands in for and which property it preserves; the
//! substitutions are also catalogued in `DESIGN.md`.
//!
//! Generation model: dimensions are grouped into disjoint *blocks*. Each
//! block has a latent Bernoulli bit per row; each dimension copies the
//! block's latent bit with probability `coupling` and otherwise samples
//! its own marginal. This produces datasets with controllable per-
//! dimension marginals (skew) and intra-block correlation — exactly the
//! two levers the paper's partitioning study manipulates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binarize;
pub mod cluster;
pub mod profile;
pub mod workload;

pub use binarize::{median_threshold, FloatVectors, RandomHyperplanes};
pub use cluster::plant_near_duplicates;
pub use profile::{Block, Profile};
pub use workload::{sample_queries, QuerySet};

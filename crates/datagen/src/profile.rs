//! Dataset profiles: per-dimension marginals plus correlation blocks.

use hamming_core::{words_for, Dataset};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A group of dimensions sharing a latent bit.
///
/// For each generated row, the block draws one latent bit with probability
/// equal to the mean marginal of its dimensions; each member dimension
/// copies that bit with probability `coupling`, otherwise it samples its
/// own marginal independently. `coupling = 0` gives fully independent
/// dimensions; `coupling = 1` makes the whole block one repeated bit.
#[derive(Clone, Debug)]
pub struct Block {
    /// Member dimensions.
    pub dims: Vec<u32>,
    /// Probability that a member copies the block's latent bit.
    pub coupling: f64,
}

/// A generative profile for synthetic binary datasets.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Human-readable name, used by the experiment harness.
    pub name: String,
    /// Dimensionality `n`.
    pub dim: usize,
    /// Per-dimension marginal probability of a 1.
    pub p1: Vec<f64>,
    /// Disjoint correlation blocks (dimensions not listed in any block are
    /// independent).
    pub blocks: Vec<Block>,
}

impl Profile {
    /// Independent uniform bits: skewness 0 on every dimension.
    pub fn uniform(dim: usize) -> Self {
        Profile { name: format!("uniform{dim}"), dim, p1: vec![0.5; dim], blocks: Vec::new() }
    }

    /// Stand-in for **SIFT** (128-d binary codes of the BIGANN features):
    /// the least skewed real dataset in Fig. 1 — per-dimension skewness
    /// roughly uniform in [0, 0.12], light correlation.
    pub fn sift_like() -> Self {
        Self::ramped("sift-like", 128, 0.0, 0.12, 4, 0.10, 11)
    }

    /// Stand-in for **GIST** (256-d descriptors of tiny images): medium
    /// skew — Fig. 1 shows a near-linear skewness ramp up to ≈ 0.6 — and
    /// moderate correlation between neighbouring descriptor dimensions.
    pub fn gist_like() -> Self {
        Self::ramped("gist-like", 256, 0.0, 0.60, 8, 0.35, 23)
    }

    /// Stand-in for **PubChem** (881-bit chemical fingerprints): highly
    /// skewed — most substructure keys are rare, so most dimensions are
    /// nearly constant 0 — with strong block correlation (related
    /// substructures co-occur). This is the regime where the paper reports
    /// its largest speedups (135×).
    pub fn pubchem_like() -> Self {
        let dim = 881;
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut p1 = Vec::with_capacity(dim);
        for d in 0..dim {
            if d % 7 == 0 {
                // A minority of common substructure keys: mildly skewed.
                p1.push(rng.random_range(0.30..0.50));
            } else {
                // Rare keys: p1 in [0.005, 0.15] → skewness 0.7–0.99.
                p1.push(rng.random_range(0.005..0.15));
            }
        }
        let blocks = contiguous_blocks(dim, 16, 0.50);
        Profile { name: "pubchem-like".into(), dim, p1, blocks }
    }

    /// Stand-in for **FastText** (128-d spectral-hashed word vectors):
    /// heavy-tailed skew; at larger τ a big share of the dataset falls
    /// within the threshold (the paper observes > 59 % of objects become
    /// results at τ ≥ 16), which we reproduce with strong global
    /// correlation concentrating vectors around a few modes.
    pub fn fasttext_like() -> Self {
        let dim = 128;
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        let mut p1 = Vec::with_capacity(dim);
        for _ in 0..dim {
            // Heavy tail: many dims with high skew, a few balanced.
            let u: f64 = rng.random();
            let skew = (u * u) * 0.9; // density concentrated near 0.9
            let sign: bool = rng.random();
            p1.push(if sign { (1.0 - skew) / 2.0 } else { (1.0 + skew) / 2.0 });
        }
        let blocks = contiguous_blocks(dim, 32, 0.45);
        Profile { name: "fasttext-like".into(), dim, p1, blocks }
    }

    /// Stand-in for **UQVideo** (256-d multiple-feature-hashed keyframes):
    /// bimodal skew — roughly half the dimensions balanced, half skewed.
    pub fn uqvideo_like() -> Self {
        let dim = 256;
        let mut rng = ChaCha8Rng::seed_from_u64(59);
        let mut p1 = Vec::with_capacity(dim);
        for d in 0..dim {
            let skew = if d % 2 == 0 {
                rng.random_range(0.02..0.15)
            } else {
                rng.random_range(0.40..0.65)
            };
            let sign: bool = rng.random();
            p1.push(if sign { (1.0 - skew) / 2.0 } else { (1.0 + skew) / 2.0 });
        }
        let blocks = contiguous_blocks(dim, 8, 0.25);
        Profile { name: "uqvideo-like".into(), dim, p1, blocks }
    }

    /// The paper's own synthetic generator (§VII-G): 128 dimensions whose
    /// skewnesses range linearly from 0 to 2γ (mean skew γ).
    pub fn synthetic_gamma(gamma: f64) -> Self {
        assert!((0.0..=0.5).contains(&gamma), "gamma must be in [0, 0.5]");
        Self::ramped(&format!("synthetic-g{:.2}", gamma), 128, 0.0, 2.0 * gamma, 8, 0.20, 101)
    }

    /// Profile with skewness ramping linearly from `skew_lo` to `skew_hi`
    /// across dimensions, grouped into blocks of `block_size` dims with the
    /// given coupling. Skew signs alternate pseudo-randomly so the all-zero
    /// vector is not a universal near-neighbour.
    pub fn ramped(
        name: &str,
        dim: usize,
        skew_lo: f64,
        skew_hi: f64,
        block_size: usize,
        coupling: f64,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut p1 = Vec::with_capacity(dim);
        // One skew sign per block: keeps each block's latent-bit marginal
        // aligned with its members, so coupling does not wash out the
        // target skewness (and within-block correlation stays positive).
        let n_blocks = dim.div_ceil(block_size);
        let signs: Vec<bool> = (0..n_blocks).map(|_| rng.random()).collect();
        for d in 0..dim {
            let t = if dim > 1 { d as f64 / (dim - 1) as f64 } else { 0.0 };
            let skew = (skew_lo + t * (skew_hi - skew_lo)).clamp(0.0, 0.999);
            let sign = signs[d / block_size];
            p1.push(if sign { (1.0 - skew) / 2.0 } else { (1.0 + skew) / 2.0 });
        }
        let blocks = contiguous_blocks(dim, block_size, coupling);
        Profile { name: name.into(), dim, p1, blocks }
    }

    /// Generates `n_rows` vectors deterministically from `seed`.
    pub fn generate(&self, n_rows: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let wpv = words_for(self.dim);
        let mut ds = Dataset::with_capacity(self.dim, n_rows);
        // block index per dim (usize::MAX = independent)
        let mut block_of = vec![usize::MAX; self.dim];
        for (bi, b) in self.blocks.iter().enumerate() {
            for &d in &b.dims {
                block_of[d as usize] = bi;
            }
        }
        // Mean marginal per block = latent bit probability.
        let block_p: Vec<f64> = self
            .blocks
            .iter()
            .map(|b| {
                let s: f64 = b.dims.iter().map(|&d| self.p1[d as usize]).sum();
                s / b.dims.len().max(1) as f64
            })
            .collect();
        let mut row = vec![0u64; wpv];
        let mut latent = vec![false; self.blocks.len()];
        let mut vectors = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            row.iter_mut().for_each(|w| *w = 0);
            for (bi, b) in self.blocks.iter().enumerate() {
                let _ = b;
                latent[bi] = rng.random_bool(block_p[bi]);
            }
            for d in 0..self.dim {
                let bit = match block_of[d] {
                    usize::MAX => rng.random_bool(self.p1[d]),
                    bi => {
                        if rng.random_bool(self.blocks[bi].coupling) {
                            latent[bi]
                        } else {
                            rng.random_bool(self.p1[d])
                        }
                    }
                };
                if bit {
                    row[d / 64] |= 1u64 << (d % 64);
                }
            }
            vectors.push(
                hamming_core::BitVector::from_words(self.dim, row.clone())
                    .expect("row buffer sized for dim"),
            );
        }
        for v in vectors {
            ds.push(&v).expect("dimensions match by construction");
        }
        ds
    }

    /// Target skewness of dimension `d` (`|2·p1 − 1|`).
    pub fn target_skewness(&self, d: usize) -> f64 {
        (2.0 * self.p1[d] - 1.0).abs()
    }

    /// The five real-dataset stand-ins in the paper's order.
    pub fn paper_suite() -> Vec<Profile> {
        vec![
            Self::sift_like(),
            Self::gist_like(),
            Self::pubchem_like(),
            Self::fasttext_like(),
            Self::uqvideo_like(),
        ]
    }

    /// Looks a profile up by name (`sift`, `gist`, `pubchem`, `fasttext`,
    /// `uqvideo`, `uniform<d>`, `gamma<g>`); used by the CLI harness.
    pub fn by_name(name: &str) -> Option<Profile> {
        match name {
            "sift" | "sift-like" => Some(Self::sift_like()),
            "gist" | "gist-like" => Some(Self::gist_like()),
            "pubchem" | "pubchem-like" => Some(Self::pubchem_like()),
            "fasttext" | "fasttext-like" => Some(Self::fasttext_like()),
            "uqvideo" | "uqvideo-like" => Some(Self::uqvideo_like()),
            _ => {
                if let Some(d) = name.strip_prefix("uniform") {
                    d.parse().ok().map(Self::uniform)
                } else if let Some(g) = name.strip_prefix("gamma") {
                    g.parse().ok().map(Self::synthetic_gamma)
                } else {
                    None
                }
            }
        }
    }
}

/// Splits `dim` dimensions into contiguous blocks of `block_size` with a
/// common coupling.
fn contiguous_blocks(dim: usize, block_size: usize, coupling: f64) -> Vec<Block> {
    assert!(block_size >= 1);
    (0..dim)
        .step_by(block_size)
        .map(|start| Block {
            dims: (start..(start + block_size).min(dim)).map(|d| d as u32).collect(),
            coupling,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::stats::{ColumnBits, DimStats};

    #[test]
    fn generation_is_deterministic() {
        let p = Profile::sift_like();
        let a = p.generate(50, 7);
        let b = p.generate(50, 7);
        let c = p.generate(50, 8);
        assert_eq!(a.row(49), b.row(49));
        assert_ne!(
            (0..50).map(|i| a.row(i).to_vec()).collect::<Vec<_>>(),
            (0..50).map(|i| c.row(i).to_vec()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_profile_has_low_skew() {
        let ds = Profile::uniform(64).generate(4000, 1);
        let st = DimStats::compute(&ds);
        assert!(st.mean_skewness() < 0.06, "mean skew {}", st.mean_skewness());
    }

    #[test]
    fn pubchem_like_is_highly_skewed() {
        let ds = Profile::pubchem_like().generate(2000, 2);
        let st = DimStats::compute(&ds);
        assert!(st.mean_skewness() > 0.5, "mean skew {}", st.mean_skewness());
        assert_eq!(ds.dim(), 881);
    }

    #[test]
    fn synthetic_gamma_mean_skew_tracks_gamma() {
        for gamma in [0.1, 0.3, 0.5] {
            let prof = Profile::synthetic_gamma(gamma);
            let ds = prof.generate(4000, 3);
            let st = DimStats::compute(&ds);
            let got = st.mean_skewness();
            // Coupling perturbs marginals slightly; allow a loose band.
            assert!((got - gamma).abs() < 0.08, "gamma={gamma} measured mean skew {got}");
        }
    }

    #[test]
    fn marginals_track_targets() {
        let prof = Profile::gist_like();
        let ds = prof.generate(6000, 4);
        let st = DimStats::compute(&ds);
        // Spot-check a few dimensions across the ramp.
        for d in [0usize, 64, 128, 255] {
            let got = st.p1(d);
            // Block coupling pulls marginals toward the block mean; GIST
            // blocks are 8 wide with a local ramp, so drift is small.
            assert!((got - prof.p1[d]).abs() < 0.12, "dim {d}: target {} got {got}", prof.p1[d]);
        }
    }

    #[test]
    fn blocks_induce_correlation() {
        // Strongly coupled profile: dims in the same block correlate.
        let prof = Profile::ramped("corr-test", 32, 0.0, 0.0, 8, 0.8, 5);
        let ds = prof.generate(3000, 6);
        let cb = ColumnBits::from_all(&ds);
        let within = cb.phi(0, 1).abs();
        let across = cb.phi(0, 16).abs();
        assert!(within > 0.3, "within-block phi {within}");
        assert!(across < 0.15, "across-block phi {across}");
    }

    #[test]
    fn by_name_resolves() {
        assert_eq!(Profile::by_name("pubchem").unwrap().dim, 881);
        assert_eq!(Profile::by_name("uniform96").unwrap().dim, 96);
        assert!(Profile::by_name("gamma0.3").unwrap().name.contains("0.30"));
        assert!(Profile::by_name("nope").is_none());
    }

    #[test]
    fn paper_suite_has_five_profiles() {
        let suite = Profile::paper_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[2].dim, 881);
    }
}

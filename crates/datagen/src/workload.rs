//! Query workload sampling.
//!
//! The paper's protocol (§VII-A): sample 100 vectors as the partitioning
//! workload `Q`, sample 1000 *different* vectors as real queries, take the
//! rest as data objects. [`sample_queries`] reproduces that split
//! deterministically.

use hamming_core::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A query set carved out of a generated dataset.
#[derive(Clone, Debug)]
pub struct QuerySet {
    /// The remaining data objects (indexed by every algorithm).
    pub data: Dataset,
    /// Queries used for measurement.
    pub queries: Dataset,
    /// The (smaller) workload used by GPH's offline partitioner.
    pub workload: Dataset,
}

/// Splits `ds` into data / measurement queries / partitioning workload.
///
/// The two query groups are disjoint (the paper stresses the partitioning
/// workload differs from the measured queries). Panics if `ds` has fewer
/// than `n_queries + n_workload + 1` rows.
pub fn sample_queries(ds: &Dataset, n_queries: usize, n_workload: usize, seed: u64) -> QuerySet {
    assert!(
        ds.len() > n_queries + n_workload,
        "dataset of {} rows cannot yield {n_queries}+{n_workload} queries",
        ds.len()
    );
    let mut ids: Vec<usize> = (0..ds.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let query_ids = &ids[..n_queries];
    let workload_ids = &ids[n_queries..n_queries + n_workload];
    let mut carved: Vec<usize> = query_ids.iter().chain(workload_ids).copied().collect();
    carved.sort_unstable();
    let (data, extracted) = ds.split_off(&carved);
    // `extracted` holds carved rows in ascending original-ID order; map
    // back to which group each row belongs to.
    let mut is_query = std::collections::HashSet::new();
    for &id in query_ids {
        is_query.insert(id);
    }
    let mut queries = Dataset::new(ds.dim());
    let mut workload = Dataset::new(ds.dim());
    for (pos, &orig_id) in carved.iter().enumerate() {
        let v = extracted.vector(pos);
        if is_query.contains(&orig_id) {
            queries.push(&v).expect("same dim");
        } else {
            workload.push(&v).expect("same dim");
        }
    }
    QuerySet { data, queries, workload }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    #[test]
    fn split_sizes_add_up() {
        let ds = Profile::uniform(32).generate(500, 1);
        let qs = sample_queries(&ds, 50, 20, 9);
        assert_eq!(qs.data.len(), 430);
        assert_eq!(qs.queries.len(), 50);
        assert_eq!(qs.workload.len(), 20);
    }

    #[test]
    fn groups_are_disjoint_and_cover() {
        use std::collections::HashSet;
        let ds = Profile::uniform(32).generate(200, 2);
        let qs = sample_queries(&ds, 30, 10, 3);
        let mut all: HashSet<Vec<u64>> = HashSet::new();
        for part in [&qs.data, &qs.queries, &qs.workload] {
            for row in part.iter_rows() {
                all.insert(row.to_vec());
            }
        }
        // Random 32-bit uniform rows may collide occasionally, so compare
        // against the source multiset size loosely.
        assert!(all.len() >= 195, "lost rows: {}", all.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = Profile::uniform(32).generate(300, 4);
        let a = sample_queries(&ds, 10, 5, 7);
        let b = sample_queries(&ds, 10, 5, 7);
        assert_eq!(a.queries.row(0), b.queries.row(0));
        assert_eq!(a.data.len(), b.data.len());
    }

    #[test]
    #[should_panic(expected = "cannot yield")]
    fn panics_when_too_small() {
        let ds = Profile::uniform(8).generate(10, 1);
        let _ = sample_queries(&ds, 8, 2, 1);
    }
}

//! Near-duplicate cluster planting.
//!
//! The introduction's motivating applications (near-duplicate Web pages at
//! Hamming distance ≤ 3 on 64-bit SimHashes, image near-duplicates at
//! distance ≤ 16) involve datasets where true positives form tight
//! clusters. This module plants such clusters into a background dataset so
//! examples and recall tests have known ground truth.

use hamming_core::{BitVector, Dataset};
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Ground truth for planted clusters.
#[derive(Clone, Debug)]
pub struct PlantedClusters {
    /// For each cluster: the IDs of its members in the output dataset
    /// (the first member is the seed).
    pub clusters: Vec<Vec<u32>>,
    /// Planting radius: every member is within this distance of its seed.
    pub radius: u32,
}

/// Appends `n_clusters` clusters of `cluster_size` near-duplicates to
/// `background`, each member within `radius` bit-flips of a fresh random
/// seed vector. Returns the combined dataset plus ground truth.
pub fn plant_near_duplicates(
    background: &Dataset,
    n_clusters: usize,
    cluster_size: usize,
    radius: u32,
    seed: u64,
) -> (Dataset, PlantedClusters) {
    assert!(cluster_size >= 1);
    let dim = background.dim();
    assert!(radius as usize <= dim, "radius exceeds dimensionality");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Dataset::with_capacity(dim, background.len() + n_clusters * cluster_size);
    for row in background.iter_rows() {
        let v = BitVector::from_words(dim, row.to_vec()).expect("well-formed row");
        out.push(&v).expect("same dim");
    }
    let mut clusters = Vec::with_capacity(n_clusters);
    for _ in 0..n_clusters {
        let mut seed_vec = BitVector::zeros(dim);
        for d in 0..dim {
            if rng.random_bool(0.5) {
                seed_vec.set(d, true);
            }
        }
        let mut members = Vec::with_capacity(cluster_size);
        members.push(out.push(&seed_vec).expect("same dim"));
        for _ in 1..cluster_size {
            let flips = rng.random_range(0..=radius) as usize;
            let mut dup = seed_vec.clone();
            for pos in sample(&mut rng, dim, flips) {
                dup.flip(pos);
            }
            members.push(out.push(&dup).expect("same dim"));
        }
        clusters.push(members);
    }
    (out, PlantedClusters { clusters, radius })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;
    use hamming_core::distance::hamming;

    #[test]
    fn planted_members_are_within_radius() {
        let bg = Profile::uniform(64).generate(100, 1);
        let (ds, truth) = plant_near_duplicates(&bg, 5, 4, 3, 42);
        assert_eq!(ds.len(), 120);
        assert_eq!(truth.clusters.len(), 5);
        for cluster in &truth.clusters {
            let seed_row = ds.row(cluster[0] as usize);
            for &m in &cluster[1..] {
                let d = hamming(seed_row, ds.row(m as usize));
                assert!(d <= 3, "member at distance {d}");
            }
        }
    }

    #[test]
    fn background_rows_are_preserved() {
        let bg = Profile::uniform(32).generate(50, 2);
        let (ds, _) = plant_near_duplicates(&bg, 2, 3, 1, 7);
        for i in 0..50 {
            assert_eq!(ds.row(i), bg.row(i));
        }
    }

    #[test]
    fn deterministic() {
        let bg = Profile::uniform(32).generate(10, 3);
        let (a, _) = plant_near_duplicates(&bg, 2, 2, 2, 9);
        let (b, _) = plant_near_duplicates(&bg, 2, 2, 2, 9);
        assert_eq!(a.row(12), b.row(12));
    }
}

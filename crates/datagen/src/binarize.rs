//! Binarization of real-valued feature vectors.
//!
//! The paper's datasets are binary codes *derived from* float features
//! (SIFT/GIST descriptors via thresholding or spectral hashing, word
//! vectors via spectral hashing). This module lets a user bring real
//! float data to the same pipeline:
//!
//! * [`median_threshold`] — per-dimension median binarization (the
//!   method \[25\] uses for SIFT: bit `i` = feature `i` above its median).
//! * [`RandomHyperplanes`] — SimHash-style random-projection codes with
//!   an arbitrary output width (the LSH-family construction behind
//!   learned binary codes).
//! * [`read_fvecs`] / [`write_fvecs`] — the TexMex `.fvecs` format the
//!   BIGANN/SIFT corpora ship in.

use hamming_core::error::{HammingError, Result};
use hamming_core::{BitVector, Dataset};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A set of real-valued vectors, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct FloatVectors {
    /// Dimensionality of every row.
    pub dim: usize,
    /// Row-major values, `len = rows * dim`.
    pub data: Vec<f32>,
}

impl FloatVectors {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Per-dimension median binarization: bit `d` of row `i` is 1 iff
/// `x[i][d] > median(column d)`. Produces balanced (skew ≈ 0) codes on
/// continuous data — the SIFT conversion of \[25\].
pub fn median_threshold(x: &FloatVectors) -> Dataset {
    let n = x.len();
    let dim = x.dim;
    let mut medians = vec![0f32; dim];
    let mut col = vec![0f32; n];
    for (d, median) in medians.iter_mut().enumerate() {
        for (i, slot) in col.iter_mut().enumerate() {
            *slot = x.row(i)[d];
        }
        col.sort_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
        *median = if n == 0 { 0.0 } else { col[n / 2] };
    }
    let mut ds = Dataset::with_capacity(dim, n);
    for i in 0..n {
        let row = x.row(i);
        let v = BitVector::from_bits((0..dim).map(|d| row[d] > medians[d]));
        ds.push(&v).expect("same dim");
    }
    ds
}

/// SimHash-style random hyperplane binarizer: bit `j` of the code is the
/// sign of `⟨x, h_j⟩` for a fixed random Gaussian-ish direction `h_j`.
/// Cosine-similar vectors get Hamming-close codes.
#[derive(Clone, Debug)]
pub struct RandomHyperplanes {
    in_dim: usize,
    out_bits: usize,
    /// Row-major `out_bits × in_dim` projection matrix.
    planes: Vec<f32>,
}

impl RandomHyperplanes {
    /// Samples `out_bits` random directions for `in_dim`-dimensional
    /// inputs (deterministic in `seed`). Uses a sum-of-uniforms
    /// approximation to the normal distribution — adequate for sign
    /// projections.
    pub fn new(in_dim: usize, out_bits: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let planes = (0..in_dim * out_bits)
            .map(|_| {
                let s: f32 = (0..4).map(|_| rng.random::<f32>() - 0.5).sum();
                s
            })
            .collect();
        RandomHyperplanes { in_dim, out_bits, planes }
    }

    /// Output code width.
    pub fn out_bits(&self) -> usize {
        self.out_bits
    }

    /// Encodes one vector.
    pub fn encode(&self, x: &[f32]) -> BitVector {
        assert_eq!(x.len(), self.in_dim, "input dimensionality mismatch");
        BitVector::from_bits((0..self.out_bits).map(|j| {
            let h = &self.planes[j * self.in_dim..(j + 1) * self.in_dim];
            let dot: f32 = h.iter().zip(x).map(|(&a, &b)| a * b).sum();
            dot > 0.0
        }))
    }

    /// Encodes a whole float set into a binary dataset.
    pub fn encode_all(&self, x: &FloatVectors) -> Dataset {
        let mut ds = Dataset::with_capacity(self.out_bits, x.len());
        for i in 0..x.len() {
            ds.push(&self.encode(x.row(i))).expect("same dim");
        }
        ds
    }
}

/// Reads TexMex `.fvecs`: each row is a little-endian `u32` dimension
/// followed by that many `f32`s. All rows must agree on the dimension.
pub fn read_fvecs<P: AsRef<Path>>(path: P) -> Result<FloatVectors> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_fvecs(&bytes)
}

/// Decodes `.fvecs` from a byte buffer.
pub fn decode_fvecs(bytes: &[u8]) -> Result<FloatVectors> {
    let mut data = Vec::new();
    let mut dim: Option<usize> = None;
    let mut at = 0usize;
    while at < bytes.len() {
        if at + 4 > bytes.len() {
            return Err(HammingError::Corrupt("fvecs: truncated header".into()));
        }
        let d = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        match dim {
            None => {
                if d == 0 || d > 1 << 20 {
                    return Err(HammingError::Corrupt(format!("fvecs: bad dim {d}")));
                }
                dim = Some(d);
            }
            Some(expected) if expected != d => {
                return Err(HammingError::Corrupt(format!("fvecs: row dim {d} != {expected}")));
            }
            _ => {}
        }
        if at + d * 4 > bytes.len() {
            return Err(HammingError::Corrupt("fvecs: truncated row".into()));
        }
        for _ in 0..d {
            data.push(f32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")));
            at += 4;
        }
    }
    Ok(FloatVectors { dim: dim.unwrap_or(0), data })
}

/// Writes `.fvecs` to `path`.
pub fn write_fvecs<P: AsRef<Path>>(x: &FloatVectors, path: P) -> Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for i in 0..x.len() {
        w.write_all(&(x.dim as u32).to_le_bytes())?;
        for &v in x.row(i) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::stats::DimStats;

    fn synth_floats(n: usize, dim: usize, seed: u64) -> FloatVectors {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..n * dim).map(|_| rng.random::<f32>() * 4.0 - 1.0).collect();
        FloatVectors { dim, data }
    }

    #[test]
    fn median_threshold_balances_bits() {
        let x = synth_floats(500, 16, 1);
        let ds = median_threshold(&x);
        assert_eq!(ds.len(), 500);
        let st = DimStats::compute(&ds);
        // Median split: every dimension near p = 0.5.
        assert!(st.mean_skewness() < 0.05, "mean skew {}", st.mean_skewness());
    }

    #[test]
    fn hyperplanes_preserve_similarity_order() {
        // Codes of a vector and its slightly-perturbed copy must be
        // closer than codes of two independent vectors (on average).
        let rh = RandomHyperplanes::new(32, 64, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut close_sum = 0u32;
        let mut far_sum = 0u32;
        for _ in 0..20 {
            let a: Vec<f32> = (0..32).map(|_| rng.random::<f32>() - 0.5).collect();
            let mut a2 = a.clone();
            for v in a2.iter_mut().take(4) {
                *v += 0.05;
            }
            let b: Vec<f32> = (0..32).map(|_| rng.random::<f32>() - 0.5).collect();
            close_sum += rh.encode(&a).distance(&rh.encode(&a2));
            far_sum += rh.encode(&a).distance(&rh.encode(&b));
        }
        assert!(close_sum < far_sum / 2, "close {close_sum} vs far {far_sum}");
    }

    #[test]
    fn encode_all_matches_encode() {
        let x = synth_floats(10, 8, 4);
        let rh = RandomHyperplanes::new(8, 32, 5);
        let ds = rh.encode_all(&x);
        for i in 0..10 {
            assert_eq!(ds.vector(i), rh.encode(x.row(i)), "row {i}");
        }
    }

    #[test]
    fn fvecs_roundtrip() {
        let x = synth_floats(7, 12, 6);
        let dir = std::env::temp_dir().join("gph_fvecs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fvecs");
        write_fvecs(&x, &path).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, x);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fvecs_rejects_corruption() {
        let x = synth_floats(2, 4, 7);
        let mut bytes = Vec::new();
        for i in 0..x.len() {
            bytes.extend_from_slice(&(x.dim as u32).to_le_bytes());
            for &v in x.row(i) {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        assert!(decode_fvecs(&bytes).is_ok());
        assert!(decode_fvecs(&bytes[..bytes.len() - 2]).is_err()); // truncated row
        let mut bad = bytes.clone();
        bad[20] = 9; // second row's dim header becomes inconsistent
        assert!(decode_fvecs(&bad).is_err());
        assert!(decode_fvecs(&bytes[..2]).is_err()); // truncated header
    }

    #[test]
    fn full_pipeline_floats_to_search() {
        // Floats -> codes -> GPH-ready dataset: spot-check the search
        // substrate accepts the output (scan only; engines tested
        // elsewhere).
        let x = synth_floats(200, 16, 8);
        let rh = RandomHyperplanes::new(16, 64, 9);
        let ds = rh.encode_all(&x);
        let q = ds.row(0).to_vec();
        let hits = ds.linear_scan(&q, 10);
        assert!(hits.contains(&0));
    }
}

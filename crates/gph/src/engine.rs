//! The GPH engine — §VI.
//!
//! Ties together the offline phase (partitioning → projection → inverted
//! index → CN estimator) and the online phase (CN estimation → threshold
//! allocation → signature enumeration → index probing → verification).
//! Per-query [`QueryStats`] decompose the time exactly as Fig. 2(a)
//! does: threshold allocation, signature enumeration, candidate
//! generation, verification.

use crate::alloc::{allocate, AllocatorKind};
use crate::cn::{build_estimator, CnEstimator, CnTable, EstimatorKind};
use crate::cost::CostModel;
use crate::index::InvertedIndex;
use crate::partition_opt::{build_partitioning, PartitionStrategy, WorkloadSpec};
use crate::pigeonhole::ThresholdVector;
use hamming_core::enumerate::{ball_size, for_each_in_ball_u64, for_each_in_ball_words};
use hamming_core::error::{HammingError, Result};
use hamming_core::key::key_of;
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::{Dataset, Partitioning};
use parking_lot::Mutex;
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct GphConfig {
    /// Number of partitions `m` (the paper suggests `m ≈ n/24` as a
    /// starting point, Fig. 5).
    pub m: usize,
    /// Largest threshold the engine must serve (sizes the CN tables).
    pub tau_max: usize,
    /// Per-query threshold allocator.
    pub allocator: AllocatorKind,
    /// Candidate-number estimator.
    pub estimator: EstimatorKind,
    /// Offline partitioning strategy.
    pub strategy: PartitionStrategy,
    /// Workload for the GR strategy (auto-sampled from the data when
    /// `None` — the paper's fallback when no history is available).
    pub workload: Option<WorkloadSpec>,
    /// Cost model used for reported cost estimates.
    pub cost_model: CostModel,
}

impl GphConfig {
    /// Defaults per the paper: DP allocation, SP estimation with two
    /// sub-partitions, GR partitioning.
    pub fn new(m: usize, tau_max: usize) -> Self {
        GphConfig {
            m,
            tau_max,
            allocator: AllocatorKind::Dp,
            estimator: EstimatorKind::default(),
            strategy: PartitionStrategy::default(),
            workload: None,
            cost_model: CostModel::default(),
        }
    }

    /// Suggested partition count `m ≈ n/24` (§VII-D), clamped to `[1, n]`.
    pub fn suggested_m(dim: usize) -> usize {
        (dim / 24).clamp(1, dim.max(1))
    }
}

/// Offline build timings (Table IV decomposes partitioning vs indexing).
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Time spent choosing the partitioning (GR's 5026 s column).
    pub partition_ms: u64,
    /// Time spent projecting and building the inverted index.
    pub index_ms: u64,
    /// Time spent building the CN estimator (GPH's extra 560 s column).
    pub estimator_ms: u64,
}

/// Per-query instrumentation (Fig. 2's decomposition and Fig. 7's
/// candidate counts).
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Allocated threshold vector.
    pub thresholds: Vec<i32>,
    /// Time estimating CN tables + running the allocator.
    pub alloc_ns: u64,
    /// Time enumerating signatures.
    pub enumerate_ns: u64,
    /// Time probing postings + deduplicating candidates.
    pub candgen_ns: u64,
    /// Time verifying candidates.
    pub verify_ns: u64,
    /// Signatures enumerated.
    pub n_signatures: u64,
    /// `Σ_s |I_s|` — postings touched (Fig. 2(b)'s upper bound). Only
    /// index probes count here; rows examined by the scan fallback are
    /// reported in [`QueryStats::n_scanned`] so this keeps its paper
    /// meaning.
    pub sum_postings: u64,
    /// Rows examined by the projected-column scan fallback (the path
    /// taken when a partition's signature ball outnumbers the data).
    /// Zero for queries answered purely through the index.
    pub n_scanned: u64,
    /// Distinct candidates verified (`|S_cand|`).
    pub n_candidates: u64,
    /// Results returned.
    pub n_results: u64,
    /// The optimizer's estimated `Σ CN` for the chosen allocation.
    pub estimated_cost: f64,
}

impl QueryStats {
    /// Total measured time.
    pub fn total_ns(&self) -> u64 {
        self.alloc_ns + self.enumerate_ns + self.candgen_ns + self.verify_ns
    }
}

/// IDs plus instrumentation.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Matching vector IDs, ascending.
    pub ids: Vec<u32>,
    /// Query instrumentation.
    pub stats: QueryStats,
}

/// Query-time scratch (visited stamps + buffers), pooled to keep
/// `search(&self)` allocation-free after warm-up.
pub(crate) struct Scratch {
    stamps: Vec<u32>,
    epoch: u32,
    candidates: Vec<u32>,
    keys: Vec<u64>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch { stamps: vec![0; n], epoch: 0, candidates: Vec::new(), keys: Vec::new() }
    }
}

/// The built GPH index.
///
/// Field visibility is `pub(crate)` so the [`crate::snapshot`] module can
/// persist and restore engines without re-running the offline phase. The
/// index is frozen once built; for insert/delete/upsert workloads wrap it
/// in [`crate::segment::SegmentedGph`].
///
/// # Example
///
/// ```
/// use gph::engine::{Gph, GphConfig};
/// use gph::partition_opt::PartitionStrategy;
/// use hamming_core::{BitVector, Dataset};
///
/// // Index the four example vectors of the paper's Table I.
/// let rows = ["00000000", "00000111", "00001111", "10011111"];
/// let data =
///     Dataset::from_vectors(8, rows.iter().map(|s| BitVector::parse(s).unwrap())).unwrap();
/// let mut cfg = GphConfig::new(2, 4);
/// cfg.strategy = PartitionStrategy::Original;
/// let engine = Gph::build(data, &cfg).unwrap();
///
/// // Example 2 of the paper: q1 = 10000000 matches only x1 at tau = 2.
/// let q1 = BitVector::parse("10000000").unwrap();
/// assert_eq!(engine.search(q1.words(), 2), vec![0]);
/// // The two nearest rows, with exact distances.
/// assert_eq!(engine.search_topk(q1.words(), 2), vec![(0, 1), (1, 4)]);
/// ```
pub struct Gph {
    pub(crate) data: Dataset,
    pub(crate) partitioning: Partitioning,
    pub(crate) projector: Projector,
    pub(crate) index: InvertedIndex,
    pub(crate) projected: ProjectedDataset,
    pub(crate) estimator: Box<dyn CnEstimator>,
    pub(crate) estimator_kind: EstimatorKind,
    pub(crate) allocator: AllocatorKind,
    pub(crate) cost_model: CostModel,
    pub(crate) tau_max: usize,
    pub(crate) build_stats: BuildStats,
    pub(crate) scratch_pool: Mutex<Vec<Scratch>>,
}

impl Gph {
    /// Builds the index over `data` (offline phase of §VI).
    pub fn build(data: Dataset, cfg: &GphConfig) -> Result<Self> {
        if data.dim() == 0 {
            return Err(HammingError::InvalidParameter("zero-dimensional data".into()));
        }
        let mut stats = BuildStats::default();

        let t0 = Instant::now();
        let auto_wl;
        let workload = match (&cfg.workload, &cfg.strategy) {
            (Some(wl), _) => Some(wl),
            (None, PartitionStrategy::Heuristic(_)) => {
                // §V-B fallback: sample data objects as a surrogate
                // workload, spanning a range of thresholds.
                let taus: Vec<u32> = default_workload_taus(cfg.tau_max);
                auto_wl = WorkloadSpec::from_sample(&data, 50.min(data.len()), taus, 0xA11C);
                Some(&auto_wl)
            }
            _ => None,
        };
        let partitioning = build_partitioning(&data, cfg.m, &cfg.strategy, workload)?;
        stats.partition_ms = t0.elapsed().as_millis() as u64;

        let t1 = Instant::now();
        let projector = Projector::new(&partitioning);
        let projected = ProjectedDataset::build(&data, &projector);
        let index = InvertedIndex::build(&projected);
        stats.index_ms = t1.elapsed().as_millis() as u64;

        let t2 = Instant::now();
        let estimator = build_estimator(&cfg.estimator, &projected, cfg.tau_max)?;
        stats.estimator_ms = t2.elapsed().as_millis() as u64;

        Ok(Gph {
            data,
            partitioning,
            projector,
            index,
            projected,
            estimator,
            estimator_kind: cfg.estimator.clone(),
            allocator: cfg.allocator,
            cost_model: cfg.cost_model.clone(),
            tau_max: cfg.tau_max,
            build_stats: stats,
            scratch_pool: Mutex::new(Vec::new()),
        })
    }

    /// Serializes the built engine into a checksummed snapshot: the
    /// dataset, the partitioning (the expensive GR artifact), the
    /// inverted index, the estimator state, and the cost-model
    /// statistics. See [`crate::snapshot`] for the format.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::snapshot::encode_engine(self)
    }

    /// Restores an engine from [`Gph::to_bytes`] bytes without re-running
    /// partition optimization, index construction, or (for the
    /// table-based kinds) estimator construction. The loaded engine is
    /// query-for-query identical to the engine that was saved.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        crate::snapshot::decode_engine(bytes)
    }

    /// Writes [`Gph::to_bytes`] to `path`.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        crate::snapshot::write_atomic(path.as_ref(), &self.to_bytes())
    }

    /// Reads an engine snapshot from `path` — the warm-start path: every
    /// offline artifact is loaded, not rebuilt.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        Gph::from_bytes(&std::fs::read(path)?)
    }

    /// The estimator kind this engine was built with.
    pub fn estimator_kind(&self) -> &EstimatorKind {
        &self.estimator_kind
    }

    /// All vectors within `tau` of `query` (exact; ascending IDs).
    pub fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).ids
    }

    /// Search with per-phase instrumentation.
    pub fn search_with_stats(&self, query: &[u64], tau: u32) -> SearchResult {
        assert!(
            tau as usize <= self.tau_max,
            "tau {tau} exceeds the configured tau_max {}",
            self.tau_max
        );
        assert_eq!(
            query.len(),
            self.data.words_per_vec(),
            "query width mismatch with indexed data"
        );
        let mut stats = QueryStats::default();
        let m = self.partitioning.num_parts();

        // --- Phase 1: CN estimation + threshold allocation ------------
        let t0 = Instant::now();
        let q_proj: Vec<Vec<u64>> = (0..m).map(|i| self.projector.project(i, query)).collect();
        let thresholds = if m == 1 {
            ThresholdVector(vec![tau as i32])
        } else {
            let cn = CnTable::compute(self.estimator.as_ref(), &q_proj, tau as usize);
            let tv = allocate(self.allocator, &cn, tau);
            stats.estimated_cost = cn.sum_for(&tv);
            tv
        };
        stats.alloc_ns = t0.elapsed().as_nanos() as u64;
        stats.thresholds = thresholds.0.clone();

        // --- Phases 2+3: signature enumeration + candidate generation --
        let mut scratch =
            self.scratch_pool.lock().pop().unwrap_or_else(|| Scratch::new(self.data.len()));
        if scratch.stamps.len() < self.data.len() {
            scratch.stamps.resize(self.data.len(), 0);
        }
        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamps.iter_mut().for_each(|s| *s = u32::MAX);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;
        scratch.candidates.clear();

        for (i, &ti) in thresholds.0.iter().enumerate() {
            if ti < 0 {
                continue;
            }
            let shape = self.projector.shape(i);
            let width = shape.width;
            let radius = (ti as usize).min(width);
            // When the signature ball outnumbers the data, scanning the
            // projected column is strictly cheaper than enumerating and
            // probing; equivalent output, bounded worst case.
            let ball = ball_size(width, radius);
            if ball > self.data.len() as u64 && !self.data.is_empty() {
                let t2 = Instant::now();
                let col = self.projected.column(i);
                let qv = &q_proj[i];
                stats.n_scanned += self.data.len() as u64;
                for id in 0..self.data.len() {
                    if hamming_core::distance::hamming(col.value(id), qv) as usize <= radius
                        && scratch.stamps[id] != epoch
                    {
                        scratch.stamps[id] = epoch;
                        scratch.candidates.push(id as u32);
                    }
                }
                stats.candgen_ns += t2.elapsed().as_nanos() as u64;
                continue;
            }
            // Enumerate signatures first (timed separately, as the paper
            // decomposes), then probe.
            let t1 = Instant::now();
            scratch.keys.clear();
            if width <= 64 {
                let center = q_proj[i].first().copied().unwrap_or(0);
                for_each_in_ball_u64(center, width, radius, |v| scratch.keys.push(v));
            } else {
                for_each_in_ball_words(&q_proj[i], width, radius, |w| {
                    scratch.keys.push(key_of(w, width))
                });
            }
            stats.n_signatures += scratch.keys.len() as u64;
            stats.enumerate_ns += t1.elapsed().as_nanos() as u64;

            let t2 = Instant::now();
            for &key in &scratch.keys {
                let postings = self.index.postings(i, key);
                stats.sum_postings += postings.len() as u64;
                for &id in postings {
                    let idu = id as usize;
                    if scratch.stamps[idu] != epoch {
                        scratch.stamps[idu] = epoch;
                        scratch.candidates.push(id);
                    }
                }
            }
            stats.candgen_ns += t2.elapsed().as_nanos() as u64;
        }
        stats.n_candidates = scratch.candidates.len() as u64;

        // --- Phase 4: verification -------------------------------------
        // The deduplicated candidate buffer goes to the batched kernel in
        // one streaming pass (width-specialized, SIMD when enabled)
        // instead of a per-candidate `hamming_within` call.
        let t3 = Instant::now();
        let mut ids: Vec<u32> = Vec::with_capacity(scratch.candidates.len());
        self.data.verify_candidates(query, tau, &scratch.candidates, &mut ids);
        ids.sort_unstable();
        stats.verify_ns = t3.elapsed().as_nanos() as u64;
        stats.n_results = ids.len() as u64;

        self.scratch_pool.lock().push(scratch);
        SearchResult { ids, stats }
    }

    /// Estimated query-processing cost for `(query, tau)` without running
    /// the search — Equation 1 applied to the allocation the DP would
    /// choose. §VI notes this enables service-level guarantees: the
    /// provider can predict response cost from the allocator alone.
    pub fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        assert!(tau as usize <= self.tau_max, "tau exceeds tau_max");
        let m = self.partitioning.num_parts();
        let q_proj: Vec<Vec<u64>> = (0..m).map(|i| self.projector.project(i, query)).collect();
        if m == 1 {
            let mut row = vec![0.0; tau as usize + 2];
            self.estimator.fill(0, &q_proj[0], tau as usize, &mut row);
            return self.cost_model.query_cost(row[tau as usize + 1], tau);
        }
        let cn = CnTable::compute(self.estimator.as_ref(), &q_proj, tau as usize);
        let tv = allocate(self.allocator, &cn, tau);
        self.cost_model.query_cost(cn.sum_for(&tv), tau)
    }

    /// Top-k search by threshold escalation: grows τ until at least `k`
    /// results exist (or `tau_max` is reached), then returns the `k`
    /// nearest by exact distance. The common retrieval mode of MIH-style
    /// systems, reused by the image-retrieval example.
    pub fn search_topk(&self, query: &[u64], k: usize) -> Vec<(u32, u32)> {
        self.search_topk_within(query, k, self.tau_max as u32)
    }

    /// Top-k with the escalation radius capped at `tau_cap ≤ tau_max`:
    /// the `k` nearest among records within `tau_cap` of `query`. With
    /// `tau_cap == tau_max` this is [`Gph::search_topk`]; smaller caps
    /// are the serving layer's degraded mode — admission control bounds
    /// the worst-case escalation cost by shrinking the radius.
    pub fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        assert!(
            tau_cap as usize <= self.tau_max,
            "tau_cap {tau_cap} exceeds the configured tau_max {}",
            self.tau_max
        );
        let mut tau = 0u32;
        loop {
            let ids = self.search(query, tau);
            if ids.len() >= k || tau >= tau_cap {
                let mut scored: Vec<(u32, u32)> =
                    ids.iter().map(|&id| (id, self.data.distance_to(id as usize, query))).collect();
                scored.sort_by_key(|&(id, d)| (d, id));
                scored.truncate(k);
                return scored;
            }
            tau = (tau * 2).max(tau + 1).min(tau_cap);
        }
    }

    /// Similarity self-join: every unordered pair `(a, b)`, `a < b`, of
    /// indexed vectors with `H(a, b) ≤ tau` — the set-similarity-join
    /// workload PartAlloc was designed for, answered with the GPH index
    /// by querying each vector and keeping pairs `(id, hit)` with
    /// `hit > id`. `threads > 1` splits the probe loop with scoped
    /// threads.
    pub fn self_join(&self, tau: u32, threads: usize) -> Vec<(u32, u32)> {
        let n = self.data.len();
        let threads = threads.max(1).min(n.max(1));
        let chunk = n.div_ceil(threads);
        let mut shards: Vec<Vec<(u32, u32)>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                handles.push(scope.spawn(move |_| {
                    let mut out: Vec<(u32, u32)> = Vec::new();
                    for id in lo..hi {
                        let q = self.data.row(id);
                        for hit in self.search(q, tau) {
                            if hit > id as u32 {
                                out.push((id as u32, hit));
                            }
                        }
                    }
                    out
                }));
            }
            shards = handles.into_iter().map(|h| h.join().expect("no panics")).collect();
        })
        .expect("join workers never panic");
        let mut pairs: Vec<(u32, u32)> = shards.into_iter().flatten().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Batched parallel search over `queries` with `threads` workers
    /// (crossbeam scoped threads; each worker owns its scratch). Order of
    /// results matches query order. The paper lists the parallel case as
    /// future work — this is the straightforward data-parallel reading.
    pub fn par_search(&self, queries: &[&[u64]], tau: u32, threads: usize) -> Vec<Vec<u32>> {
        // Clamp before computing the chunk size: an empty batch would
        // otherwise give `chunk == 0`, which `chunks_mut` rejects, and
        // `threads > queries.len()` would strand workers on empty ranges.
        let threads = threads.max(1).min(queries.len());
        if threads <= 1 {
            return queries.iter().map(|q| self.search(q, tau)).collect();
        }
        let mut results: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        let chunk = queries.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            // `chunks_mut` pairs each output chunk with its query range;
            // the final chunk carries the remainder (`len % chunk`), so
            // every query is covered exactly once.
            for (ci, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let qs = &queries[ci * chunk..(ci * chunk + out_chunk.len())];
                scope.spawn(move |_| {
                    for (slot, q) in out_chunk.iter_mut().zip(qs) {
                        *slot = self.search(q, tau);
                    }
                });
            }
        })
        .expect("search workers never panic");
        results
    }

    /// The partitioning in use.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Largest threshold the engine serves.
    pub fn tau_max(&self) -> usize {
        self.tau_max
    }

    /// The indexed data.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Offline build timing decomposition.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Cost model (for experiment reporting).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Index + estimator heap size (Fig. 6 accounting: GPH is charged for
    /// its estimator state on top of the postings).
    pub fn size_bytes(&self) -> usize {
        self.index.size_bytes() + self.estimator.size_bytes() + self.projected.size_bytes()
    }

    /// Size of the inverted index alone.
    pub fn index_size_bytes(&self) -> usize {
        self.index.size_bytes()
    }
}

/// Threshold spread used for auto-sampled workloads: covers
/// `{2, τ_max/4, τ_max/2, 3τ_max/4, τ_max}` so one partitioning serves
/// every runtime τ (§V-B).
pub fn default_workload_taus(tau_max: usize) -> Vec<u32> {
    let t = tau_max as u32;
    let mut v = vec![2.min(t), (t / 4).max(1), (t / 2).max(1), (3 * t / 4).max(1), t.max(1)];
    // `dedup` only removes *consecutive* duplicates; for small tau_max the
    // anchors are out of order (e.g. tau_max = 4 gives [2, 1, 2, 3, 4]),
    // so sort first to make deduplication total.
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, p: f64, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = hamming_core::BitVector::from_bits((0..dim).map(|_| rng.random_bool(p)));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn check_against_scan(cfg: &GphConfig, dim: usize, n: usize, taus: &[u32], seed: u64) {
        let ds = random_dataset(dim, n, 0.35, seed);
        let queries = random_dataset(dim, 12, 0.35, seed ^ 1);
        let gph = Gph::build(ds.clone(), cfg).unwrap();
        for tau in taus {
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                let got = gph.search(q, *tau);
                let expect = ds.linear_scan(q, *tau);
                assert_eq!(got, expect, "tau={tau} qi={qi} cfg={cfg:?}");
            }
        }
    }

    #[test]
    fn exact_results_with_default_config() {
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 5 };
        check_against_scan(&cfg, 64, 400, &[0, 1, 4, 8], 42);
    }

    #[test]
    fn exact_results_with_rr_allocator() {
        let mut cfg = GphConfig::new(4, 8);
        cfg.allocator = AllocatorKind::RoundRobin;
        cfg.strategy = PartitionStrategy::Original;
        check_against_scan(&cfg, 64, 300, &[3, 6], 43);
    }

    #[test]
    fn exact_results_with_heuristic_partitioning() {
        let mut cfg = GphConfig::new(4, 6);
        cfg.strategy = PartitionStrategy::Heuristic(crate::partition_opt::HeuristicConfig {
            max_iters: 3,
            move_budget: Some(64),
            sample_rows: 200,
            ..Default::default()
        });
        check_against_scan(&cfg, 48, 250, &[2, 6], 44);
    }

    #[test]
    fn exact_results_with_exact_estimator() {
        let mut cfg = GphConfig::new(4, 8);
        cfg.estimator = EstimatorKind::Exact { max_width: 16 };
        cfg.strategy = PartitionStrategy::Original;
        check_against_scan(&cfg, 48, 300, &[5], 45);
    }

    #[test]
    fn exact_results_single_partition() {
        let mut cfg = GphConfig::new(1, 4);
        cfg.strategy = PartitionStrategy::Original;
        check_against_scan(&cfg, 24, 150, &[0, 2, 4], 46);
    }

    #[test]
    fn stats_are_consistent() {
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 7 };
        let ds = random_dataset(64, 500, 0.4, 47);
        let gph = Gph::build(ds.clone(), &cfg).unwrap();
        let q = ds.row(0).to_vec();
        let res = gph.search_with_stats(&q, 6);
        assert!(res.ids.contains(&0), "query is a data vector");
        let st = &res.stats;
        assert_eq!(st.thresholds.len(), 4);
        assert_eq!(st.thresholds.iter().map(|&t| t as i64).sum::<i64>(), 6 - 4 + 1);
        assert!(st.n_candidates <= st.sum_postings + st.n_scanned);
        assert!(st.n_results <= st.n_candidates);
        assert_eq!(st.n_results as usize, res.ids.len());
    }

    #[test]
    fn scan_fallback_reports_n_scanned_not_postings() {
        // A single wide partition at a large radius makes the signature
        // ball outnumber the data, forcing the scan fallback for every
        // query. Scanned rows must land in `n_scanned`; `sum_postings`
        // keeps its Σ|I_s| meaning (zero — no postings were probed).
        let ds = random_dataset(32, 60, 0.5, 54);
        let mut cfg = GphConfig::new(1, 12);
        cfg.strategy = PartitionStrategy::Original;
        let gph = Gph::build(ds.clone(), &cfg).unwrap();
        let q = ds.row(0).to_vec();
        let res = gph.search_with_stats(&q, 12);
        let st = &res.stats;
        assert_eq!(st.n_scanned, ds.len() as u64, "one full pass over the data");
        assert_eq!(st.sum_postings, 0, "no index probes on the fallback path");
        assert!(st.n_candidates <= st.sum_postings + st.n_scanned);
        assert_eq!(res.ids, ds.linear_scan(&q, 12), "fallback stays exact");
    }

    #[test]
    fn topk_returns_nearest() {
        let ds = random_dataset(32, 300, 0.5, 48);
        let mut cfg = GphConfig::new(2, 16);
        cfg.strategy = PartitionStrategy::Original;
        let gph = Gph::build(ds.clone(), &cfg).unwrap();
        let q = ds.row(5).to_vec();
        let top = gph.search_topk(&q, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (5, 0), "self is nearest");
        assert!(top[1].1 <= top[2].1);
        // Cross-check the 2nd nearest against a scan.
        let mut all: Vec<(u32, u32)> =
            (0..ds.len()).map(|i| (i as u32, ds.distance_to(i, &q))).collect();
        all.sort_by_key(|&(id, d)| (d, id));
        assert_eq!(top[1], all[1]);
    }

    #[test]
    fn topk_within_caps_the_radius() {
        let ds = random_dataset(32, 300, 0.5, 48);
        let mut cfg = GphConfig::new(2, 16);
        cfg.strategy = PartitionStrategy::Original;
        let gph = Gph::build(ds.clone(), &cfg).unwrap();
        let q = ds.row(5).to_vec();
        // Cap == tau_max is exactly search_topk.
        assert_eq!(gph.search_topk_within(&q, 4, 16), gph.search_topk(&q, 4));
        // A capped search never returns a hit beyond the cap, and within
        // the cap it is exhaustive (matches a brute-force scan).
        for cap in [0u32, 2, 7] {
            let got = gph.search_topk_within(&q, 10, cap);
            assert!(got.iter().all(|&(_, d)| d <= cap), "cap={cap} got={got:?}");
            let mut expect: Vec<(u32, u32)> = (0..ds.len())
                .map(|i| (i as u32, ds.distance_to(i, &q)))
                .filter(|&(_, d)| d <= cap)
                .collect();
            expect.sort_by_key(|&(id, d)| (d, id));
            expect.truncate(10);
            assert_eq!(got, expect, "cap={cap}");
        }
    }

    #[test]
    fn par_search_matches_serial() {
        let ds = random_dataset(64, 400, 0.45, 49);
        let queries = random_dataset(64, 9, 0.45, 50);
        let mut cfg = GphConfig::new(4, 6);
        cfg.strategy = PartitionStrategy::Original;
        let gph = Gph::build(ds, &cfg).unwrap();
        let qrefs: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();
        let par = gph.par_search(&qrefs, 5, 3);
        for (i, q) in qrefs.iter().enumerate() {
            assert_eq!(par[i], gph.search(q, 5), "query {i}");
        }
    }

    #[test]
    fn par_search_handles_empty_remainder_and_oversubscription() {
        let ds = random_dataset(32, 200, 0.5, 61);
        let queries = random_dataset(32, 5, 0.5, 62);
        let mut cfg = GphConfig::new(2, 6);
        cfg.strategy = PartitionStrategy::Original;
        let gph = Gph::build(ds, &cfg).unwrap();
        let qrefs: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();
        // No queries: must return an empty batch, not panic on a
        // zero-sized chunk.
        assert!(gph.par_search(&[], 4, 3).is_empty());
        // More threads than queries: clamped, every query answered.
        let serial: Vec<Vec<u32>> = qrefs.iter().map(|q| gph.search(q, 4)).collect();
        assert_eq!(gph.par_search(&qrefs, 4, 64), serial);
        // Remainder smaller than the chunk (5 queries over 2 workers →
        // chunks of 3 + 2): nothing dropped.
        assert_eq!(gph.par_search(&qrefs, 4, 2), serial);
        // threads == 0 degrades to serial.
        assert_eq!(gph.par_search(&qrefs, 4, 0), serial);
    }

    #[test]
    fn engine_is_send_and_sync() {
        // The serving layer (gph-serve) shares one engine across shard
        // builders and worker threads; this pins the auto-trait bounds so
        // a future field can't silently revoke them.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gph>();
        assert_send_sync::<QueryStats>();
        assert_send_sync::<SearchResult>();
    }

    #[test]
    #[should_panic(expected = "exceeds the configured tau_max")]
    fn tau_above_max_panics() {
        let ds = random_dataset(32, 50, 0.5, 51);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let gph = Gph::build(ds, &cfg).unwrap();
        let q = vec![0u64; 1];
        let _ = gph.search(&q, 5);
    }

    #[test]
    fn build_stats_and_sizes_populated() {
        let ds = random_dataset(32, 200, 0.5, 52);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let gph = Gph::build(ds, &cfg).unwrap();
        assert!(gph.size_bytes() > 0);
        assert!(gph.index_size_bytes() <= gph.size_bytes());
    }

    #[test]
    fn self_join_matches_bruteforce() {
        let ds = random_dataset(32, 120, 0.5, 60);
        let mut cfg = GphConfig::new(2, 8);
        cfg.strategy = PartitionStrategy::Original;
        let gph = Gph::build(ds.clone(), &cfg).unwrap();
        let tau = 8u32;
        let got = gph.self_join(tau, 3);
        let mut expect = Vec::new();
        for a in 0..ds.len() {
            for b in (a + 1)..ds.len() {
                if hamming_core::distance::hamming(ds.row(a), ds.row(b)) <= tau {
                    expect.push((a as u32, b as u32));
                }
            }
        }
        assert_eq!(got, expect);
        // Single-threaded agrees.
        assert_eq!(gph.self_join(tau, 1), expect);
    }

    #[test]
    fn estimate_cost_tracks_candidate_work() {
        let ds = random_dataset(64, 800, 0.35, 53);
        let mut cfg = GphConfig::new(4, 16);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 3 };
        let gph = Gph::build(ds.clone(), &cfg).unwrap();
        let q = ds.row(0).to_vec();
        // Cost estimates grow with tau and are finite/non-negative.
        let c4 = gph.estimate_cost(&q, 4);
        let c16 = gph.estimate_cost(&q, 16);
        assert!(c4 >= 0.0 && c16.is_finite());
        assert!(c16 >= c4, "c4={c4} c16={c16}");
    }

    #[test]
    fn default_workload_taus_cover_range() {
        let taus = default_workload_taus(32);
        assert!(taus.contains(&2));
        assert!(taus.contains(&32));
        let taus1 = default_workload_taus(1);
        assert!(!taus1.is_empty());
    }

    #[test]
    fn default_workload_taus_sorted_and_distinct_for_small_tau_max() {
        for tau_max in 1..=5 {
            let taus = default_workload_taus(tau_max);
            assert!(!taus.is_empty(), "tau_max={tau_max} produced no taus");
            assert!(
                taus.windows(2).all(|w| w[0] < w[1]),
                "tau_max={tau_max} gave unsorted or duplicate thresholds: {taus:?}"
            );
            assert!(
                taus.iter().all(|&t| t >= 1 && t <= tau_max.max(1) as u32),
                "tau_max={tau_max} gave out-of-range thresholds: {taus:?}"
            );
            // The largest workload threshold is always tau_max itself.
            assert_eq!(taus.last(), Some(&(tau_max.max(1) as u32)));
        }
        // The regression the sort fixes: tau_max = 4 used to yield
        // [2, 1, 2, 3, 4] because dedup only removes adjacent repeats.
        assert_eq!(default_workload_taus(4), vec![1, 2, 3, 4]);
    }
}

//! # gph
//!
//! The primary contribution of *GPH: Similarity Search in Hamming Space*
//! (Qin et al., ICDE 2018): exact Hamming-threshold search built on the
//! **general pigeonhole principle** with per-query, cost-optimal threshold
//! allocation and data-aware dimension partitioning.
//!
//! ## Pipeline
//!
//! * Offline ([`engine::Gph::build`]):
//!   1. choose a [`hamming_core::Partitioning`] of the `n` dimensions into
//!      `m` parts — by default the paper's **GR** heuristic
//!      ([`partition_opt`]): entropy-minimizing greedy initialization
//!      (§V-C) refined by cost-driven hill climbing (Algorithm 2);
//!   2. build an inverted [`index::InvertedIndex`] mapping each partition
//!      projection of each data vector to its ID;
//!   3. build a candidate-number estimator ([`cn`]) used by the online
//!      optimizer: exact tables, sub-partition combination, or the learned
//!      regressors of §IV-C.
//! * Online ([`engine::Gph::search`]):
//!   1. estimate `CN(q_i, e)` for every partition and threshold;
//!   2. allocate the threshold vector `T` with `‖T‖₁ = τ − m + 1` by
//!      dynamic programming ([`alloc::allocate_dp`], Algorithm 1);
//!   3. enumerate signatures within `T[i]` of each partition projection
//!      (skipping partitions with `T[i] = −1`), probe the index, dedup;
//!   4. verify candidates with early-exit Hamming distance.
//!
//! The [`pigeonhole`] module states the paper's Lemmas 2–4 and Theorem 1
//! as executable predicates; property tests exercise them directly.
//!
//! ## Example
//!
//! ```
//! use gph::engine::{Gph, GphConfig};
//! use hamming_core::{BitVector, Dataset};
//!
//! // Index a few 16-dimensional vectors.
//! let rows = ["0000111100001111", "0000111100001010", "1111000011110000"];
//! let data = Dataset::from_vectors(
//!     16,
//!     rows.iter().map(|s| BitVector::parse(s).unwrap()),
//! )
//! .unwrap();
//! let engine = Gph::build(data, &GphConfig::new(2, 4)).unwrap();
//!
//! // Everything within Hamming distance 3 of the first row:
//! let q = BitVector::parse("0000111100001111").unwrap();
//! assert_eq!(engine.search(q.words(), 3), vec![0, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cn;
pub mod coldstore;
pub mod cost;
pub mod engine;
pub mod partition_opt;
pub mod pigeonhole;
pub mod segment;
pub mod snapshot;

pub use alloc::{allocate_dp, allocate_round_robin, AllocatorKind};
pub use cn::{CnEstimator, CnTable, EstimatorKind};
pub use coldstore::{PageCache, PageCacheStats, SegmentFile, SpillStore, StorageMode};
pub use cost::CostModel;
pub use engine::{Gph, GphConfig, QueryStats, SearchResult};
pub use hamming_core::{fasthash, invindex as index};
pub use partition_opt::{HeuristicConfig, InitKind, PartitionStrategy, WorkloadSpec};
pub use pigeonhole::ThresholdVector;
pub use segment::{SegmentConfig, SegmentedGph};
pub use snapshot::{ENGINE_MAGIC, SNAPSHOT_VERSION};

//! Offline dimension partitioning — §V (Algorithm 2) plus every baseline
//! strategy compared in Fig. 4.
//!
//! The dimension partitioning problem (minimize workload query cost under
//! the general pigeonhole principle) is NP-hard (Lemma 5, by reduction
//! from number partitioning), so GPH uses a heuristic:
//!
//! 1. **Initialization** (§V-C): greedy *entropy minimization* — grow each
//!    partition by repeatedly adding the dimension that keeps the
//!    partition's projected-value entropy lowest. Correlated dimensions
//!    end up together, the *opposite* of prior work, so the online
//!    allocator can exploit per-partition selectivity differences.
//! 2. **Refinement** (Algorithm 2): hill climbing over single-dimension
//!    moves; each candidate partitioning is scored by the summed
//!    DP-allocated cost of a query workload (Equation 2), with candidate
//!    numbers from distance histograms over a data sample.
//!
//! Scoring is incremental: a move touches two partitions, so only their
//! distance arrays are rebuilt (per-dimension query/sample bit diffs make
//! that an O(|S|) update), though the DP re-runs per workload query.

use crate::alloc::dp_min_cost_rows;
use hamming_core::error::{HammingError, Result};
use hamming_core::stats::{ColumnBits, DimStats};
use hamming_core::{Dataset, Partitioning};
use rand::seq::index::sample as rand_sample;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How the engine obtains its partitioning (Fig. 4's strategies).
#[derive(Clone, Debug)]
pub enum PartitionStrategy {
    /// **OR**: equi-width over the original dimension order.
    Original,
    /// **RS**: random shuffle, then equi-width.
    RandomShuffle {
        /// Shuffle seed.
        seed: u64,
    },
    /// **OS**: skew-balancing rearrangement (HmSearch-style).
    Os,
    /// **DD**: correlation-minimizing rearrangement (data-driven MIH).
    Dd,
    /// **GR**: the paper's heuristic (greedy entropy init + cost-driven
    /// hill climbing).
    Heuristic(HeuristicConfig),
    /// A caller-supplied partitioning (bypasses all strategies).
    Fixed(Partitioning),
}

impl Default for PartitionStrategy {
    fn default() -> Self {
        PartitionStrategy::Heuristic(HeuristicConfig::default())
    }
}

/// Initial state for the hill climber (Fig. 4(b)'s comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitKind {
    /// Entropy-minimizing greedy (the paper's **GreedyInit**).
    Greedy,
    /// Equi-width over the original order (**OriginalInit**).
    Original,
    /// Equi-width after a random shuffle (**RandomInit**).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

/// Configuration of the GR heuristic.
#[derive(Clone, Debug)]
pub struct HeuristicConfig {
    /// Initialization strategy.
    pub init: InitKind,
    /// Maximum hill-climbing iterations (each applies one best move; the
    /// paper iterates to a local optimum — cap for laptop-scale runs).
    pub max_iters: usize,
    /// Maximum candidate `(dimension, target)` moves evaluated per
    /// iteration. `None` evaluates all `n·(m−1)` (paper-faithful); large
    /// `n·m` products want a sampled sweep.
    pub move_budget: Option<usize>,
    /// Rows sampled from the data for CN histograms.
    pub sample_rows: usize,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            init: InitKind::Greedy,
            max_iters: 6,
            move_budget: Some(2048),
            sample_rows: 1000,
            seed: 0xF00D,
        }
    }
}

/// A query workload `Q` with per-query thresholds (Equation 2).
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Workload queries (the paper samples 100 data vectors).
    pub queries: Dataset,
    /// Thresholds, cycled over the queries; covering a range of τ values
    /// lets one partitioning serve all runtime thresholds (§V-B).
    pub taus: Vec<u32>,
}

impl WorkloadSpec {
    /// Builds a workload by sampling `count` rows from `data` and cycling
    /// the given thresholds.
    pub fn from_sample(data: &Dataset, count: usize, taus: Vec<u32>, seed: u64) -> Self {
        assert!(!taus.is_empty(), "need at least one threshold");
        let take = count.min(data.len());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ids: Vec<usize> = rand_sample(&mut rng, data.len(), take).into_iter().collect();
        let mut queries = Dataset::new(data.dim());
        for id in ids {
            queries.push(&data.vector(id)).expect("same dimensionality");
        }
        WorkloadSpec { queries, taus }
    }

    /// Builds a workload from an explicit query set.
    pub fn new(queries: Dataset, taus: Vec<u32>) -> Self {
        assert!(!taus.is_empty(), "need at least one threshold");
        WorkloadSpec { queries, taus }
    }

    /// Threshold for workload query `qi`.
    pub fn tau_of(&self, qi: usize) -> u32 {
        self.taus[qi % self.taus.len()]
    }
}

/// Builds a partitioning for `data` under the chosen strategy.
///
/// `workload` is required by [`PartitionStrategy::Heuristic`]; other
/// strategies ignore it.
pub fn build_partitioning(
    data: &Dataset,
    m: usize,
    strategy: &PartitionStrategy,
    workload: Option<&WorkloadSpec>,
) -> Result<Partitioning> {
    let dim = data.dim();
    match strategy {
        PartitionStrategy::Original => Partitioning::equi_width(dim, m),
        PartitionStrategy::RandomShuffle { seed } => Partitioning::random_shuffle(dim, m, *seed),
        PartitionStrategy::Os => {
            let stats = DimStats::compute(data);
            Partitioning::os_rearrangement(&stats, m)
        }
        PartitionStrategy::Dd => {
            let sample = sample_ids(data.len(), 2000, 0xDD);
            let cols = ColumnBits::from_sample(data, &sample);
            Partitioning::dd_rearrangement(&cols, m)
        }
        PartitionStrategy::Heuristic(cfg) => {
            let wl = workload.ok_or_else(|| {
                HammingError::InvalidParameter(
                    "the GR heuristic needs a query workload (WorkloadSpec)".into(),
                )
            })?;
            heuristic_partition(data, wl, m, cfg)
        }
        PartitionStrategy::Fixed(p) => {
            if p.dim() != dim {
                return Err(HammingError::DimensionMismatch { expected: dim, actual: p.dim() });
            }
            Ok(p.clone())
        }
    }
}

fn sample_ids(n: usize, cap: usize, seed: u64) -> Vec<usize> {
    if n <= cap {
        (0..n).collect()
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ids: Vec<usize> = rand_sample(&mut rng, n, cap).into_iter().collect();
        ids.sort_unstable();
        ids
    }
}

/// Packs, per dimension, the sampled rows' bits into `⌈s/64⌉` words.
fn pack_dim_bits(data: &Dataset, ids: &[usize]) -> Vec<Vec<u64>> {
    let s = ids.len();
    let words = s.div_ceil(64);
    let dim = data.dim();
    let mut dim_bits: Vec<Vec<u64>> = vec![vec![0u64; words]; dim];
    for (r, &id) in ids.iter().enumerate() {
        let row = data.row(id);
        for (wi, &w) in row.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                dim_bits[wi * 64 + b][r / 64] |= 1u64 << (r % 64);
                bits &= bits - 1;
            }
        }
    }
    dim_bits
}

// ---------------------------------------------------------------------
// Greedy entropy initialization (§V-C)
// ---------------------------------------------------------------------

/// Greedy equi-width initialization minimizing per-partition entropy.
///
/// Maintains, per sample row, its equivalence class under the partition's
/// current dimensions; adding a candidate dimension refines classes by the
/// row's bit, so each candidate is scored in `O(|S|)` without hashing.
pub fn greedy_entropy_init(
    data: &Dataset,
    m: usize,
    sample_rows: usize,
    seed: u64,
) -> Result<Partitioning> {
    let dim = data.dim();
    if m == 0 || m > dim.max(1) {
        return Err(HammingError::InvalidParameter(format!(
            "partition count m={m} invalid for dim={dim}"
        )));
    }
    let ids = sample_ids(data.len(), sample_rows, seed);
    let s = ids.len();
    let dim_bits = pack_dim_bits(data, &ids);
    let base = dim / m;
    let extra = dim % m;
    let mut unassigned: Vec<usize> = (0..dim).collect();
    let mut parts: Vec<Vec<u32>> = Vec::with_capacity(m);
    for pi in 0..m {
        let target = base + usize::from(pi < extra);
        let mut classes: Vec<u32> = vec![0; s];
        let mut n_classes = 1usize;
        let mut part: Vec<u32> = Vec::with_capacity(target);
        for _ in 0..target {
            // Score each candidate dimension by the refined entropy.
            let mut best_d_pos = 0usize;
            let mut best_h = f64::INFINITY;
            let mut counts = vec![0u32; 2 * n_classes];
            for (pos, &d) in unassigned.iter().enumerate() {
                counts.iter_mut().for_each(|c| *c = 0);
                let bits = &dim_bits[d];
                for (r, &cl) in classes.iter().enumerate() {
                    let b = (bits[r / 64] >> (r % 64)) & 1;
                    counts[cl as usize * 2 + b as usize] += 1;
                }
                let mut h = 0.0f64;
                for &c in &counts {
                    if c > 0 {
                        let p = c as f64 / s.max(1) as f64;
                        h -= p * p.log2();
                    }
                }
                if h < best_h {
                    best_h = h;
                    best_d_pos = pos;
                }
            }
            let d = unassigned.swap_remove(best_d_pos);
            part.push(d as u32);
            // Refine classes with the chosen dimension, renumber densely.
            let bits = &dim_bits[d];
            let mut remap = vec![u32::MAX; 2 * n_classes];
            let mut next = 0u32;
            for (r, cl) in classes.iter_mut().enumerate() {
                let b = (bits[r / 64] >> (r % 64)) & 1;
                let key = (*cl as usize) * 2 + b as usize;
                if remap[key] == u32::MAX {
                    remap[key] = next;
                    next += 1;
                }
                *cl = remap[key];
            }
            n_classes = next as usize;
        }
        parts.push(part);
    }
    debug_assert!(unassigned.is_empty());
    Partitioning::new(dim, parts)
}

// ---------------------------------------------------------------------
// Workload cost evaluation + hill climbing (Algorithm 2)
// ---------------------------------------------------------------------

/// Cached per-(query, dimension) difference masks against the data
/// sample, from which per-partition distance arrays, CN rows, and the DP
/// cost are derived.
struct Evaluator {
    /// Sample row count.
    s: usize,
    /// Data cardinality (scale factor numerator).
    n_total: usize,
    /// `diff[q][d]`: packed bitmask over sample rows where query `q` and
    /// the row differ on dimension `d`.
    diff: Vec<Vec<Vec<u64>>>,
    /// Per-query thresholds.
    taus: Vec<u32>,
}

impl Evaluator {
    fn new(data: &Dataset, wl: &WorkloadSpec, sample_rows: usize, seed: u64) -> Self {
        let ids = sample_ids(data.len(), sample_rows, seed);
        let s = ids.len();
        let words = s.div_ceil(64);
        let dim_bits = pack_dim_bits(data, &ids);
        let nq = wl.queries.len();
        let tail_mask = if s.is_multiple_of(64) { u64::MAX } else { (1u64 << (s % 64)) - 1 };
        let mut diff = Vec::with_capacity(nq);
        for qi in 0..nq {
            let qrow = wl.queries.row(qi);
            let mut per_dim = Vec::with_capacity(data.dim());
            for (d, col) in dim_bits.iter().enumerate() {
                let qbit = (qrow[d / 64] >> (d % 64)) & 1 == 1;
                let mut v = col.clone();
                if qbit {
                    for (wi, w) in v.iter_mut().enumerate() {
                        *w = !*w;
                        if wi == words.saturating_sub(1) {
                            *w &= tail_mask;
                        }
                    }
                }
                per_dim.push(v);
            }
            diff.push(per_dim);
        }
        let taus = (0..nq).map(|qi| wl.tau_of(qi)).collect();
        Evaluator { s, n_total: data.len(), diff, taus }
    }

    /// Distance array of query `q` to every sample row over the given
    /// partition dimensions.
    fn distances(&self, q: usize, dims: &[u32], out: &mut [u16]) {
        out.iter_mut().for_each(|d| *d = 0);
        for &d in dims {
            for (wi, &bits0) in self.diff[q][d as usize].iter().enumerate() {
                let mut bits = bits0;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    out[wi * 64 + b] += 1;
                    bits &= bits - 1;
                }
            }
        }
    }

    /// CN row (cumulative scaled histogram) from a distance array.
    fn cn_row(&self, dist: &[u16], tau: u32, out: &mut Vec<f64>) {
        out.clear();
        out.resize(tau as usize + 2, 0.0);
        let mut hist = vec![0u32; tau as usize + 1];
        for &d in dist {
            if (d as usize) < hist.len() {
                hist[d as usize] += 1;
            }
        }
        let scale = if self.s == 0 { 0.0 } else { self.n_total as f64 / self.s as f64 };
        let mut acc = 0u32;
        for e in 0..=tau as usize {
            acc += hist[e];
            out[e + 1] = acc as f64 * scale;
        }
    }

    /// Workload cost (Eq. 2) of a full partitioning: Σ_q DP-min Σ CN.
    fn full_cost(&self, p: &Partitioning, cache: &mut CostCache) -> f64 {
        let m = p.num_parts();
        cache.resize(self.diff.len(), m, self.s);
        let mut total = 0.0;
        for q in 0..self.diff.len() {
            let tau = self.taus[q];
            for i in 0..m {
                let (dist, row) = cache.slot(q, i);
                self.distances(q, p.part(i), dist);
                self.cn_row(dist, tau, row);
            }
            total += self.dp_for(q, m, cache, tau);
        }
        total
    }

    fn dp_for(&self, q: usize, m: usize, cache: &CostCache, tau: u32) -> f64 {
        let rows: Vec<&[f64]> = (0..m).map(|i| cache.row(q, i)).collect();
        dp_min_cost_rows(&rows, tau)
    }

    /// Cost after hypothetically moving dimension `d` from partition
    /// `from` to `to`. Only those two partitions' rows are recomputed;
    /// scratch buffers avoid allocation.
    fn move_cost(
        &self,
        p: &Partitioning,
        cache: &CostCache,
        mv: (u32, usize, usize),
        scratch_dist: &mut [u16],
        scratch_rows: &mut (Vec<f64>, Vec<f64>),
    ) -> f64 {
        let (d, from, to) = mv;
        let m = p.num_parts();
        let mut total = 0.0;
        for q in 0..self.diff.len() {
            let tau = self.taus[q];
            let mask = &self.diff[q][d as usize];
            let (row_from, row_to) = (&mut scratch_rows.0, &mut scratch_rows.1);
            // from': subtract d's diffs.
            {
                let dist = &mut scratch_dist[..self.s];
                dist.copy_from_slice(cache.dist(q, from));
                for (wi, &bits0) in mask.iter().enumerate() {
                    let mut bits = bits0;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        dist[wi * 64 + b] -= 1;
                        bits &= bits - 1;
                    }
                }
                self.cn_row(dist, tau, row_from);
            }
            // to': add d's diffs.
            {
                let dist = &mut scratch_dist[..self.s];
                dist.copy_from_slice(cache.dist(q, to));
                for (wi, &bits0) in mask.iter().enumerate() {
                    let mut bits = bits0;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        dist[wi * 64 + b] += 1;
                        bits &= bits - 1;
                    }
                }
                self.cn_row(dist, tau, row_to);
            }
            let rows: Vec<&[f64]> = (0..m)
                .map(|i| -> &[f64] {
                    if i == from {
                        row_from
                    } else if i == to {
                        row_to
                    } else {
                        cache.row(q, i)
                    }
                })
                .collect();
            total += dp_min_cost_rows(&rows, tau);
        }
        total
    }
}

/// Per-(query, partition) distance and CN-row cache.
struct CostCache {
    m: usize,
    s: usize,
    dists: Vec<u16>,
    rows: Vec<Vec<f64>>,
}

impl CostCache {
    fn new() -> Self {
        CostCache { m: 0, s: 0, dists: Vec::new(), rows: Vec::new() }
    }

    fn resize(&mut self, nq: usize, m: usize, s: usize) {
        self.m = m;
        self.s = s;
        self.dists.clear();
        self.dists.resize(nq * m * s, 0);
        self.rows.resize(nq * m, Vec::new());
    }

    fn slot(&mut self, q: usize, i: usize) -> (&mut [u16], &mut Vec<f64>) {
        let off = (q * self.m + i) * self.s;
        (&mut self.dists[off..off + self.s], &mut self.rows[q * self.m + i])
    }

    fn dist(&self, q: usize, i: usize) -> &[u16] {
        let off = (q * self.m + i) * self.s;
        &self.dists[off..off + self.s]
    }

    fn row(&self, q: usize, i: usize) -> &[f64] {
        &self.rows[q * self.m + i]
    }
}

/// Algorithm 2: hill-climbing partition refinement over a workload.
pub fn heuristic_partition(
    data: &Dataset,
    wl: &WorkloadSpec,
    m: usize,
    cfg: &HeuristicConfig,
) -> Result<Partitioning> {
    if wl.queries.is_empty() {
        return Err(HammingError::InvalidParameter("workload has no queries".into()));
    }
    if wl.queries.dim() != data.dim() {
        return Err(HammingError::DimensionMismatch {
            expected: data.dim(),
            actual: wl.queries.dim(),
        });
    }
    let mut p = match cfg.init {
        InitKind::Greedy => greedy_entropy_init(data, m, cfg.sample_rows, cfg.seed)?,
        InitKind::Original => Partitioning::equi_width(data.dim(), m)?,
        InitKind::Random { seed } => Partitioning::random_shuffle(data.dim(), m, seed)?,
    };
    let eval = Evaluator::new(data, wl, cfg.sample_rows, cfg.seed ^ 0x5151);
    let mut cache = CostCache::new();
    let mut cmin = eval.full_cost(&p, &mut cache);
    let _dim = data.dim();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xC11B);
    let mut scratch_dist = vec![0u16; eval.s];
    let mut scratch_rows = (Vec::new(), Vec::new());
    for _iter in 0..cfg.max_iters {
        // Enumerate candidate moves: (dim, source, target partition).
        let assignment = p.assignment();
        let mut moves: Vec<(u32, usize, usize)> = Vec::new();
        for (d, &from) in assignment.iter().enumerate() {
            if p.part(from).len() <= 1 {
                continue; // keep partitions nonempty
            }
            for to in 0..m {
                if to != from {
                    moves.push((d as u32, from, to));
                }
            }
        }
        if let Some(budget) = cfg.move_budget {
            if moves.len() > budget {
                // Sampled sweep: uniformly choose `budget` moves.
                for i in 0..budget {
                    let j = rng.random_range(i..moves.len());
                    moves.swap(i, j);
                }
                moves.truncate(budget);
            }
        }
        let mut best: Option<((u32, usize, usize), f64)> = None;
        for &mv in &moves {
            let c = eval.move_cost(&p, &cache, mv, &mut scratch_dist, &mut scratch_rows);
            if c < cmin - 1e-9 && best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                best = Some((mv, c));
            }
        }
        let Some(((d, from, to), _)) = best else {
            break; // local optimum
        };
        p.move_dim(d, from, to).expect("move was derived from assignment");
        // Rebuild the cache for the new base partitioning.
        cmin = eval.full_cost(&p, &mut cache);
    }
    Ok(p)
}

/// Workload cost of an arbitrary partitioning under the evaluator's model
/// (public for the Fig. 3/4 experiments, which report estimated costs).
pub fn workload_cost(
    data: &Dataset,
    wl: &WorkloadSpec,
    p: &Partitioning,
    sample_rows: usize,
    seed: u64,
) -> f64 {
    let eval = Evaluator::new(data, wl, sample_rows, seed);
    let mut cache = CostCache::new();
    eval.full_cost(p, &mut cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::BitVector;

    /// Dataset with two perfectly correlated halves: dims 0..8 follow a
    /// latent bit, dims 8..16 are independent coin flips.
    fn correlated_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(16);
        for _ in 0..n {
            let latent = rng.random_bool(0.5);
            let v = BitVector::from_bits((0..16).map(|d| {
                if d < 8 {
                    latent
                } else {
                    rng.random_bool(0.5)
                }
            }));
            ds.push(&v).unwrap();
        }
        ds
    }

    #[test]
    fn greedy_init_separates_correlated_blocks() {
        // Two perfectly correlated blocks: dims 0..8 copy latent A, dims
        // 8..16 copy latent B. Once the greedy places any dim, the rest
        // of its block adds zero entropy and is swept up, so each
        // partition must be exactly one block.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut ds = Dataset::new(16);
        for _ in 0..600 {
            let a = rng.random_bool(0.5);
            let b = rng.random_bool(0.5);
            let v = BitVector::from_bits((0..16).map(|d| if d < 8 { a } else { b }));
            ds.push(&v).unwrap();
        }
        let p = greedy_entropy_init(&ds, 2, 600, 2).unwrap();
        let assign = p.assignment();
        for d in 1..8 {
            assert_eq!(assign[d], assign[0], "block A split: {assign:?}");
        }
        for d in 9..16 {
            assert_eq!(assign[d], assign[8], "block B split: {assign:?}");
        }
        assert_ne!(assign[0], assign[8]);
    }

    #[test]
    fn greedy_init_entropy_no_worse_than_random() {
        use hamming_core::stats::entropy_of_dims;
        let ds = correlated_dataset(600, 1);
        let ids: Vec<usize> = (0..ds.len()).collect();
        let entropy_of = |p: &Partitioning| -> f64 {
            p.parts()
                .iter()
                .map(|dims| {
                    let d: Vec<usize> = dims.iter().map(|&x| x as usize).collect();
                    entropy_of_dims(&ds, &d, &ids)
                })
                .sum()
        };
        let greedy = greedy_entropy_init(&ds, 2, 600, 2).unwrap();
        let random = Partitioning::random_shuffle(16, 2, 99).unwrap();
        assert!(
            entropy_of(&greedy) <= entropy_of(&random) + 1e-9,
            "greedy {} vs random {}",
            entropy_of(&greedy),
            entropy_of(&random)
        );
    }

    #[test]
    fn evaluator_full_cost_positive_and_stable() {
        let ds = correlated_dataset(300, 3);
        let wl = WorkloadSpec::from_sample(&ds, 8, vec![2, 4], 4);
        let p = Partitioning::equi_width(16, 2).unwrap();
        let c1 = workload_cost(&ds, &wl, &p, 300, 9);
        let c2 = workload_cost(&ds, &wl, &p, 300, 9);
        assert!(c1 > 0.0);
        assert_eq!(c1, c2, "deterministic");
    }

    #[test]
    fn move_cost_matches_full_recompute() {
        let ds = correlated_dataset(200, 5);
        let wl = WorkloadSpec::from_sample(&ds, 6, vec![3], 6);
        let p = Partitioning::equi_width(16, 2).unwrap();
        let eval = Evaluator::new(&ds, &wl, 200, 7);
        let mut cache = CostCache::new();
        let _ = eval.full_cost(&p, &mut cache);
        let mut scratch = vec![0u16; eval.s];
        let mut rows = (Vec::new(), Vec::new());
        // Move dim 3 from partition 0 to 1 and compare against a fresh
        // full evaluation of the moved partitioning.
        let inc = eval.move_cost(&p, &cache, (3, 0, 1), &mut scratch, &mut rows);
        let mut p2 = p.clone();
        p2.move_dim(3, 0, 1).unwrap();
        let mut cache2 = CostCache::new();
        let full = eval.full_cost(&p2, &mut cache2);
        assert!((inc - full).abs() < 1e-9, "inc={inc} full={full}");
    }

    #[test]
    fn hill_climbing_never_increases_cost() {
        let ds = correlated_dataset(400, 8);
        let wl = WorkloadSpec::from_sample(&ds, 10, vec![2, 4], 9);
        let cfg = HeuristicConfig {
            init: InitKind::Random { seed: 1 },
            max_iters: 6,
            move_budget: Some(64),
            sample_rows: 400,
            seed: 10,
        };
        let p0 = Partitioning::random_shuffle(16, 2, 1).unwrap();
        let before = workload_cost(&ds, &wl, &p0, 400, cfg.seed ^ 0x5151);
        let p = heuristic_partition(&ds, &wl, 2, &cfg).unwrap();
        let after = workload_cost(&ds, &wl, &p, 400, cfg.seed ^ 0x5151);
        assert!(after <= before + 1e-9, "before={before} after={after}");
    }

    #[test]
    fn build_partitioning_strategies_all_valid() {
        let ds = correlated_dataset(150, 11);
        let wl = WorkloadSpec::from_sample(&ds, 5, vec![2], 12);
        for strat in [
            PartitionStrategy::Original,
            PartitionStrategy::RandomShuffle { seed: 3 },
            PartitionStrategy::Os,
            PartitionStrategy::Dd,
            PartitionStrategy::Heuristic(HeuristicConfig {
                max_iters: 2,
                move_budget: Some(32),
                sample_rows: 150,
                ..Default::default()
            }),
        ] {
            let p = build_partitioning(&ds, 4, &strat, Some(&wl)).unwrap();
            assert_eq!(p.dim(), 16);
            assert_eq!(p.parts().iter().map(|x| x.len()).sum::<usize>(), 16);
        }
    }

    #[test]
    fn heuristic_requires_workload() {
        let ds = correlated_dataset(50, 13);
        let strat = PartitionStrategy::Heuristic(HeuristicConfig::default());
        assert!(build_partitioning(&ds, 2, &strat, None).is_err());
    }

    #[test]
    fn fixed_strategy_checks_dim() {
        let ds = correlated_dataset(50, 14);
        let good = Partitioning::equi_width(16, 4).unwrap();
        let bad = Partitioning::equi_width(8, 2).unwrap();
        assert!(build_partitioning(&ds, 4, &PartitionStrategy::Fixed(good), None).is_ok());
        assert!(build_partitioning(&ds, 4, &PartitionStrategy::Fixed(bad), None).is_err());
    }
}

//! The pigeonhole principles of §II–III as executable artifacts.
//!
//! * Basic (Lemma 1): `m` equi-width parts, threshold `⌊τ/m⌋` each.
//! * Flexible (Lemma 2): arbitrary integer thresholds with `‖T‖₁ = τ`.
//! * General (Lemma 4): integer thresholds in `[−1, τ]` with
//!   `‖T‖₁ = τ − m + 1` — obtained from the flexible form by the
//!   ε-transformation + integer reduction, and proven *tight*
//!   (Theorem 1): no dominating vector is correct.
//!
//! [`ThresholdVector`] carries the allocation; the free functions state
//! the lemmas as predicates so property tests can exercise them verbatim.

use hamming_core::distance::hamming;
use hamming_core::project::Projector;

/// A per-partition threshold allocation `T`.
///
/// Entry `T[i] = −1` means partition `i` is ignored during candidate
/// generation (no Hamming distance is ≤ −1). The paper restricts negative
/// entries to exactly −1 since lower values filter identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThresholdVector(pub Vec<i32>);

impl ThresholdVector {
    /// The basic-pigeonhole allocation `[⌊τ/m⌋; m]` (Lemma 1 / MIH).
    pub fn basic(tau: u32, m: usize) -> Self {
        ThresholdVector(vec![(tau as usize / m) as i32; m])
    }

    /// Sum of thresholds `‖T‖₁`.
    pub fn sum(&self) -> i64 {
        self.0.iter().map(|&t| t as i64).sum()
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Checks the general-pigeonhole budget `‖T‖₁ = τ − m + 1` with every
    /// entry in `[−1, τ]`.
    pub fn satisfies_general_budget(&self, tau: u32) -> bool {
        let m = self.0.len() as i64;
        self.sum() == tau as i64 - m + 1 && self.0.iter().all(|&t| (-1..=tau as i32).contains(&t))
    }

    /// Dominance (§II-D): `self ≺ other` iff element-wise `≤` with at least
    /// one strict `<`, and each interval `[self[i], other[i]]` intersects
    /// the *effective* range `[−1, nᵢ − 1]` (outside it, thresholds filter
    /// identically, so differing there is vacuous).
    pub fn dominates(&self, other: &ThresholdVector, widths: &[usize]) -> bool {
        if self.0.len() != other.0.len() || self.0.len() != widths.len() {
            return false;
        }
        let mut strict = false;
        for ((&a, &b), &w) in self.0.iter().zip(&other.0).zip(widths) {
            if a > b {
                return false;
            }
            // [a, b] must intersect [-1, n_i - 1].
            if b < -1 || a > w as i32 - 1 {
                return false;
            }
            if a < b {
                strict = true;
            }
        }
        strict
    }
}

/// Lemma 2/4 filtering predicate: does any partition of `x` lie within
/// `t[i]` of the corresponding partition of `q`? `x` and `q` are full
/// vectors (as words); `projector` supplies the partitioning.
pub fn passes_filter(projector: &Projector, t: &ThresholdVector, x: &[u64], q: &[u64]) -> bool {
    debug_assert_eq!(t.len(), projector.num_parts());
    for i in 0..projector.num_parts() {
        if t.0[i] < 0 {
            continue;
        }
        let xi = projector.project(i, x);
        let qi = projector.project(i, q);
        if hamming(&xi, &qi) as i32 <= t.0[i] {
            return true;
        }
    }
    false
}

/// The ε-transformation of §III: given `T` with `‖T‖₁ = τ` (flexible
/// form), subtract 1 from the `m − 1` partitions *not* named `keep`,
/// producing a general-form vector with `‖T‖₁ = τ − m + 1` that still
/// guarantees correctness (Lemma 4's proof).
pub fn epsilon_transform(t: &ThresholdVector, keep: usize) -> ThresholdVector {
    assert!(keep < t.len());
    ThresholdVector(
        t.0.iter().enumerate().map(|(i, &v)| if i == keep { v } else { v - 1 }).collect(),
    )
}

/// Integer reduction (Definition 1): floor a real-valued threshold vector.
/// Hamming distances are integers, so candidates are unchanged.
pub fn integer_reduction(real: &[f64]) -> ThresholdVector {
    ThresholdVector(real.iter().map(|&v| v.floor() as i32).collect())
}

/// Theorem 1's adversarial witness: given a *correct* tight vector `t`
/// (general budget) and any `t_dom` dominating it, construct partition
/// distances `d[i] = max(0, t_dom[i] + 1)` clamped to `[0, nᵢ]`. The
/// returned distances satisfy `Σ d[i] ≤ τ` (so a true result exists at
/// those distances) yet **no** partition passes `t_dom` — proving `t_dom`
/// incorrect. Returns `None` if the construction's premises fail (i.e.,
/// `t_dom` does not actually dominate within effective ranges).
pub fn tightness_witness(
    t: &ThresholdVector,
    t_dom: &ThresholdVector,
    widths: &[usize],
    tau: u32,
) -> Option<Vec<u32>> {
    if !t_dom.dominates(t, widths) || !t.satisfies_general_budget(tau) {
        return None;
    }
    let d: Vec<u32> =
        t_dom.0.iter().zip(widths).map(|(&td, &w)| (td + 1).max(0).min(w as i32) as u32).collect();
    // By the proof: Σ d ≤ ‖T‖₁ + m − 1 = τ, and every d[i] > t_dom[i].
    let total: i64 = d.iter().map(|&x| x as i64).sum();
    debug_assert!(total <= tau as i64, "witness construction exceeds tau");
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::{BitVector, Partitioning};

    #[test]
    fn basic_vector_matches_lemma1() {
        // τ = 9, m = 3 -> [3, 3, 3] (Example 1).
        assert_eq!(ThresholdVector::basic(9, 3).0, vec![3, 3, 3]);
        assert_eq!(ThresholdVector::basic(2, 2).0, vec![1, 1]);
    }

    #[test]
    fn general_budget_check() {
        // Example 3: [2, 2, 3] for τ = 9, m = 3: sum = 7 = 9 - 3 + 1.
        assert!(ThresholdVector(vec![2, 2, 3]).satisfies_general_budget(9));
        assert!(!ThresholdVector(vec![3, 3, 3]).satisfies_general_budget(9));
        // Example 4: [2, -1] for τ = 2, m = 2: sum = 1 = 2 - 2 + 1.
        assert!(ThresholdVector(vec![2, -1]).satisfies_general_budget(2));
        // Entries below -1 are rejected.
        assert!(!ThresholdVector(vec![4, -2]).satisfies_general_budget(3));
    }

    #[test]
    fn dominance_examples() {
        let widths = [4usize, 4, 4];
        let tight = ThresholdVector(vec![2, 2, 3]);
        let basic = ThresholdVector(vec![3, 3, 3]);
        assert!(tight.dominates(&basic, &widths));
        assert!(!basic.dominates(&tight, &widths));
        // A vector never dominates itself (needs a strict inequality).
        assert!(!tight.dominates(&tight.clone(), &widths));
        // Intervals entirely outside [-1, n_i - 1] are vacuous: lowering a
        // threshold from n_i to n_i - 1 + ... beyond range doesn't count.
        let a = ThresholdVector(vec![4, 3, 3]); // 4 >= n_0 = 4 -> [4,9] misses [-1,3]
        let b = ThresholdVector(vec![9, 3, 3]);
        assert!(!a.dominates(&b, &widths));
    }

    #[test]
    fn epsilon_transform_keeps_budget() {
        let t = ThresholdVector(vec![3, 3, 3]); // flexible: sum = 9 = τ
        let g = epsilon_transform(&t, 2);
        assert_eq!(g.0, vec![2, 2, 3]);
        assert!(g.satisfies_general_budget(9));
        let g0 = epsilon_transform(&t, 0);
        assert_eq!(g0.0, vec![3, 2, 2]);
    }

    #[test]
    fn integer_reduction_floors() {
        // Example 3: [2.9, 2.9, 3.2] -> [2, 2, 3].
        assert_eq!(integer_reduction(&[2.9, 2.9, 3.2]).0, vec![2, 2, 3]);
        assert_eq!(integer_reduction(&[-0.1]).0, vec![-1]);
    }

    #[test]
    fn filter_passes_table2_examples() {
        // Table II: variable partitioning {dims 0..6}, {dims 6..8}.
        let p = Partitioning::new(8, vec![(0..6).collect(), vec![6, 7]]).unwrap();
        let proj = Projector::new(&p);
        let q2 = BitVector::parse("10000011").unwrap();
        let x1 = BitVector::parse("00000000").unwrap();
        let x3 = BitVector::parse("00001111").unwrap();
        // T = [2, -1]: x1 has partition distances (1, 2) -> passes via p0.
        let t = ThresholdVector(vec![2, -1]);
        assert!(passes_filter(&proj, &t, x1.words(), q2.words()));
        // x3: distances (3, 0); p0 fails (3 > 2), p1 ignored -> filtered out.
        assert!(!passes_filter(&proj, &t, x3.words(), q2.words()));
        // T = [1, 0]: x3 passes via p1 (distance 0 <= 0).
        let t2 = ThresholdVector(vec![1, 0]);
        assert!(passes_filter(&proj, &t2, x3.words(), q2.words()));
    }

    #[test]
    fn witness_defeats_dominating_vector() {
        let widths = [6usize, 2];
        let tau = 2u32;
        let t = ThresholdVector(vec![2, -1]);
        assert!(t.satisfies_general_budget(tau));
        // t_dom = [1, -1] dominates t.
        let t_dom = ThresholdVector(vec![1, -1]);
        let d = tightness_witness(&t, &t_dom, &widths, tau).expect("dominates");
        // d = [2, 0]: total 2 <= τ, but partition 0 distance 2 > 1 and
        // partition 1 ignored -> t_dom misses a true result.
        assert_eq!(d, vec![2, 0]);
        assert!(d.iter().map(|&x| x as i64).sum::<i64>() <= tau as i64);
        for (i, &di) in d.iter().enumerate() {
            assert!(di as i32 > t_dom.0[i]);
        }
    }

    #[test]
    fn witness_requires_dominance() {
        let widths = [4usize, 4];
        let t = ThresholdVector(vec![1, 0]); // τ=2, m=2: sum 1 = 2-2+1 ✓
        let not_dom = ThresholdVector(vec![2, 0]);
        assert!(tightness_witness(&t, &not_dom, &widths, 2).is_none());
    }
}

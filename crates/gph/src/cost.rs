//! The query-processing cost model of §IV-A (Equation 1).
//!
//! `Ĉ(q, T) = Σᵢ CN(qᵢ, τᵢ) · (c_access + α · c_verify)`
//!
//! The coefficient is constant across allocations, so the DP of §IV-B
//! minimizes only `Σ CN`; this model turns that sum into an absolute cost
//! for reporting (Fig. 3's "estimated cost") and for workload-level
//! partitioning decisions. `α` — the measured ratio of distinct
//! candidates to summed postings (`|S_cand| / Σ|I_s|`, Fig. 2(b)) — is
//! stored per-τ and interpolated.

/// Cost coefficients plus the per-τ α calibration table.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cost of accessing one postings entry (`c_access`).
    pub c_access: f64,
    /// Cost of verifying one candidate (`c_verify`).
    pub c_verify: f64,
    /// Cost of enumerating one signature dimension (`c_enum`; §IV-A notes
    /// it is negligible and it is excluded from the optimization, but it
    /// is kept for completeness in decomposition reports).
    pub c_enum: f64,
    /// Measured `(τ, α)` points, τ ascending.
    alpha: Vec<(u32, f64)>,
}

impl Default for CostModel {
    fn default() -> Self {
        // Unit-relative defaults: verification of an n-word vector costs a
        // few postings accesses; α between 0.69 and 0.98 per Fig. 2(b) —
        // 0.85 is the midpoint until calibrated.
        CostModel { c_access: 1.0, c_verify: 4.0, c_enum: 0.05, alpha: vec![(0, 0.85)] }
    }
}

impl CostModel {
    /// Replaces the α table with measured `(τ, α)` points (sorted by τ).
    pub fn with_alpha_table(mut self, mut pts: Vec<(u32, f64)>) -> Self {
        assert!(!pts.is_empty(), "alpha table cannot be empty");
        pts.sort_by_key(|&(t, _)| t);
        self.alpha = pts;
        self
    }

    /// The calibration points backing [`CostModel::alpha_for`], τ
    /// ascending — exposed so engine snapshots can persist the measured
    /// statistics alongside the index.
    pub fn alpha_table(&self) -> &[(u32, f64)] {
        &self.alpha
    }

    /// α for a given τ: linear interpolation between calibration points,
    /// clamped at the ends.
    pub fn alpha_for(&self, tau: u32) -> f64 {
        let pts = &self.alpha;
        if tau <= pts[0].0 {
            return pts[0].1;
        }
        if tau >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let hi = pts.iter().position(|&(t, _)| t >= tau).expect("clamped above");
        let (t0, a0) = pts[hi - 1];
        let (t1, a1) = pts[hi];
        let w = (tau - t0) as f64 / (t1 - t0) as f64;
        a0 + w * (a1 - a0)
    }

    /// Equation 1: estimated query cost from the summed per-partition
    /// candidate numbers.
    pub fn query_cost(&self, sum_cn: f64, tau: u32) -> f64 {
        sum_cn * (self.c_access + self.alpha_for(tau) * self.c_verify)
    }

    /// Estimated signature-generation cost `Σ C(nᵢ, τᵢ) · c_enum` given the
    /// per-partition enumeration counts (kept for decomposition reports).
    pub fn signature_cost(&self, n_signatures: u64) -> f64 {
        n_signatures as f64 * self.c_enum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_interpolation() {
        let m = CostModel::default().with_alpha_table(vec![(4, 0.7), (8, 0.9)]);
        assert_eq!(m.alpha_for(2), 0.7); // clamp low
        assert_eq!(m.alpha_for(100), 0.9); // clamp high
        assert!((m.alpha_for(6) - 0.8).abs() < 1e-12); // midpoint
        assert_eq!(m.alpha_for(4), 0.7); // exact point
    }

    #[test]
    fn query_cost_scales_linearly() {
        let m = CostModel::default().with_alpha_table(vec![(0, 0.5)]);
        // coefficient = 1 + 0.5*4 = 3
        assert!((m.query_cost(10.0, 0) - 30.0).abs() < 1e-12);
        assert!((m.query_cost(0.0, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha table cannot be empty")]
    fn empty_alpha_table_rejected() {
        let _ = CostModel::default().with_alpha_table(vec![]);
    }
}

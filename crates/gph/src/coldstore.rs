//! Out-of-core storage for sealed segments.
//!
//! A sealed segment is normally decoded into heap memory ([`crate::engine::Gph`]).
//! This module provides the *file-backed* alternative: the GPHE v3
//! container (see `FORMAT.md`) lays the dataset row slab and the CSR
//! postings arrays out as page-aligned, offset-addressed sections, so a
//! segment can answer probes and verification by paging fixed-size
//! blocks through a shared [`PageCache`] instead of holding the payload
//! resident.
//!
//! The pieces:
//!
//! * [`SegmentFile`] — a read-only handle to one container file, with
//!   bounds-checked positioned reads.
//! * [`PageCache`] — a clock-evicted page cache shared by every cold
//!   segment of an index (or of all shards), bounded by a byte budget.
//! * [`StorageMode`] — the configuration knob threaded through
//!   `SegmentConfig`, `ShardedIndex`, and `ServiceConfig`.
//! * [`SpillStore`] — the directory where seal/compaction spill freshly
//!   encoded segments when running file-backed.
//! * [`ColdSegment`] — the query backend itself: mirrors
//!   [`Gph::search_with_stats`](crate::engine::Gph::search_with_stats)
//!   over paged reads, bit-identical in its result set.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hamming_core::error::{HammingError, Result};

// ---------------------------------------------------------------------------
// Positioned reads
// ---------------------------------------------------------------------------

#[cfg(unix)]
fn read_exact_at_impl(file: &File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at_impl(file: &File, offset: u64, buf: &mut [u8]) -> io::Result<()> {
    // No positioned-read primitive: serialize seek+read pairs so
    // concurrent readers cannot interleave and corrupt each other's
    // cursor. Cold reads on these targets are correct, just slower.
    use std::io::{Read, Seek, SeekFrom};
    static SEEK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = SEEK_LOCK.lock().unwrap();
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

// ---------------------------------------------------------------------------
// SegmentFile
// ---------------------------------------------------------------------------

static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(1);

/// A read-only handle to an offset-addressed container file.
///
/// Every handle gets a process-unique id used as the [`PageCache`] key
/// prefix, so two files never alias each other's pages. A handle opened
/// with `owns = true` deletes the underlying file when dropped — spill
/// files written during seal/compaction are cleaned up this way, while
/// snapshot files opened for a file-backed restore are left alone.
pub struct SegmentFile {
    file: File,
    path: PathBuf,
    len: u64,
    id: u64,
    owns: bool,
}

impl SegmentFile {
    /// Opens `path` read-only. `owns` transfers deletion responsibility
    /// to this handle (the file is removed when the handle drops).
    pub fn open(path: impl AsRef<Path>, owns: bool) -> Result<SegmentFile> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        let id = NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed);
        Ok(SegmentFile { file, path, len, id, owns })
    }

    /// File length in bytes, captured at open time.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Process-unique id used as the page-cache key prefix.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The path this handle was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads exactly `buf.len()` bytes starting at `offset`, rejecting
    /// reads past the end of the file as [`HammingError::Corrupt`]
    /// (a forged section offset must never turn into a panic or an
    /// unbounded read).
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset.checked_add(buf.len() as u64).filter(|&e| e <= self.len);
        if end.is_none() {
            return Err(HammingError::Corrupt(format!(
                "read of {} bytes at offset {} exceeds segment file of {} bytes",
                buf.len(),
                offset,
                self.len
            )));
        }
        read_exact_at_impl(&self.file, offset, buf)?;
        Ok(())
    }
}

impl std::fmt::Debug for SegmentFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentFile")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("id", &self.id)
            .field("owns", &self.owns)
            .finish()
    }
}

impl Drop for SegmentFile {
    fn drop(&mut self) {
        if self.owns {
            let _ = fs::remove_file(&self.path);
        }
    }
}

// ---------------------------------------------------------------------------
// PageCache
// ---------------------------------------------------------------------------

/// Default page size: 16 KiB, in the 4–64 KiB range the container's
/// 4 KiB section alignment supports.
pub const DEFAULT_PAGE_BYTES: usize = 16 * 1024;

/// Smallest / largest accepted page size (both powers of two).
pub const MIN_PAGE_BYTES: usize = 4 * 1024;
/// See [`MIN_PAGE_BYTES`].
pub const MAX_PAGE_BYTES: usize = 64 * 1024;

/// Counter snapshot returned by [`PageCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Page lookups served from the cache.
    pub hits: u64,
    /// Page lookups that went to disk.
    pub misses: u64,
    /// Pages dropped by clock eviction.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
}

struct Slot {
    key: (u64, u64),
    data: Arc<Vec<u8>>,
    referenced: bool,
}

struct Inner {
    map: HashMap<(u64, u64), usize>,
    slots: Vec<Slot>,
    hand: usize,
    bytes: u64,
}

/// A shared page cache with clock (second-chance) eviction under a byte
/// budget.
///
/// All cold segments of an index — across shards, when the service
/// shares one store — read through a single `PageCache`, so the budget
/// bounds total paged-in bytes regardless of corpus size. Counters are
/// plain atomics so metric scrapes never contend with the read path.
///
/// ```
/// use gph::coldstore::{PageCache, SegmentFile};
///
/// let dir = std::env::temp_dir().join(format!("gph-doc-pc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("blob.bin");
/// std::fs::write(&path, vec![7u8; 10_000]).unwrap();
///
/// let file = SegmentFile::open(&path, false).unwrap();
/// let cache = PageCache::new(64 * 1024);
/// let mut buf = [0u8; 16];
/// cache.read_into(&file, 4096, &mut buf).unwrap();
/// assert_eq!(buf, [7u8; 16]);
/// assert_eq!(cache.stats().misses, 1);
///
/// cache.read_into(&file, 4100, &mut buf).unwrap(); // same page: a hit
/// assert_eq!(cache.stats().hits, 1);
///
/// drop(file);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct PageCache {
    budget: u64,
    page_size: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident: AtomicU64,
}

impl PageCache {
    /// Creates a cache bounded by `budget_bytes` with the default page
    /// size ([`DEFAULT_PAGE_BYTES`]). The cache always retains at least
    /// one page so progress is possible under any budget.
    pub fn new(budget_bytes: u64) -> PageCache {
        PageCache::with_page_size(budget_bytes, DEFAULT_PAGE_BYTES)
            .expect("default page size is valid")
    }

    /// Creates a cache with an explicit page size, which must be a
    /// power of two in `[MIN_PAGE_BYTES, MAX_PAGE_BYTES]`. Powers of
    /// two at least 4 KiB keep pages aligned with the container's
    /// section alignment, so fixed-width elements never straddle a
    /// page boundary.
    pub fn with_page_size(budget_bytes: u64, page_size: usize) -> Result<PageCache> {
        if !page_size.is_power_of_two() || !(MIN_PAGE_BYTES..=MAX_PAGE_BYTES).contains(&page_size) {
            return Err(HammingError::InvalidParameter(format!(
                "page size {page_size} must be a power of two in \
                 [{MIN_PAGE_BYTES}, {MAX_PAGE_BYTES}]"
            )));
        }
        Ok(PageCache {
            budget: budget_bytes,
            page_size,
            inner: Mutex::new(Inner { map: HashMap::new(), slots: Vec::new(), hand: 0, bytes: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        })
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Snapshot of the hit/miss/eviction/residency counters.
    pub fn stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
        }
    }

    /// Returns page `page_no` of `file`, loading and caching it on miss.
    /// The final page of a file may be shorter than the page size.
    fn page(&self, file: &SegmentFile, page_no: u64) -> Result<Arc<Vec<u8>>> {
        let key = (file.id(), page_no);
        let mut inner = self.inner.lock().unwrap();
        if let Some(&idx) = inner.map.get(&key) {
            inner.slots[idx].referenced = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(inner.slots[idx].data.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let off = page_no
            .checked_mul(self.page_size as u64)
            .filter(|&o| o < file.len())
            .ok_or_else(|| {
                HammingError::Corrupt(format!(
                    "page {page_no} out of range for segment file of {} bytes",
                    file.len()
                ))
            })?;
        let n = (file.len() - off).min(self.page_size as u64) as usize;
        let mut data = vec![0u8; n];
        file.read_at(off, &mut data)?;
        let data = Arc::new(data);

        let idx = inner.slots.len();
        inner.slots.push(Slot { key, data: data.clone(), referenced: true });
        inner.map.insert(key, idx);
        inner.bytes += n as u64;

        // Clock sweep: clear reference bits until an unreferenced slot
        // is found, evict it, repeat while over budget. At least one
        // page is always retained.
        while inner.bytes > self.budget && inner.slots.len() > 1 {
            let i = inner.hand % inner.slots.len();
            if inner.slots[i].referenced {
                inner.slots[i].referenced = false;
                inner.hand = i + 1;
                continue;
            }
            let victim = inner.slots.swap_remove(i);
            inner.map.remove(&victim.key);
            if i < inner.slots.len() {
                let moved = inner.slots[i].key;
                inner.map.insert(moved, i);
            }
            inner.bytes -= victim.data.len() as u64;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.resident.store(inner.bytes, Ordering::Relaxed);
        Ok(data)
    }

    /// Fills `out` from `file` starting at `offset`, paging blocks in
    /// as needed. Reads crossing page boundaries are stitched together;
    /// reads past the end of the file are [`HammingError::Corrupt`].
    pub fn read_into(&self, file: &SegmentFile, offset: u64, out: &mut [u8]) -> Result<()> {
        if offset.checked_add(out.len() as u64).filter(|&e| e <= file.len()).is_none() {
            return Err(HammingError::Corrupt(format!(
                "read of {} bytes at offset {} exceeds segment file of {} bytes",
                out.len(),
                offset,
                file.len()
            )));
        }
        let ps = self.page_size as u64;
        let mut off = offset;
        let mut pos = 0usize;
        while pos < out.len() {
            let page = self.page(file, off / ps)?;
            let in_page = (off % ps) as usize;
            if in_page >= page.len() {
                return Err(HammingError::Corrupt(format!(
                    "offset {off} points into truncated page of segment file"
                )));
            }
            let n = (out.len() - pos).min(page.len() - in_page);
            out[pos..pos + n].copy_from_slice(&page[in_page..in_page + n]);
            pos += n;
            off += n as u64;
        }
        Ok(())
    }

    /// Reads one little-endian `u32` at `offset`.
    pub fn read_u32(&self, file: &SegmentFile, offset: u64) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_into(file, offset, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads one little-endian `u64` at `offset`.
    pub fn read_u64(&self, file: &SegmentFile, offset: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_into(file, offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads `n` little-endian `u32`s starting at `offset`.
    pub fn read_u32s(&self, file: &SegmentFile, offset: u64, n: usize) -> Result<Vec<u32>> {
        self.check_run(file, offset, n, 4)?;
        let mut bytes = vec![0u8; n * 4];
        self.read_into(file, offset, &mut bytes)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Reads `n` little-endian `u64`s starting at `offset`.
    pub fn read_u64s(&self, file: &SegmentFile, offset: u64, n: usize) -> Result<Vec<u64>> {
        self.check_run(file, offset, n, 8)?;
        let mut bytes = vec![0u8; n * 8];
        self.read_into(file, offset, &mut bytes)?;
        Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Bounds-checks an `n × per_item` run *before* allocating for it,
    /// so a forged element count cannot trigger a huge allocation.
    fn check_run(&self, file: &SegmentFile, offset: u64, n: usize, per_item: usize) -> Result<()> {
        let total = (n as u64).checked_mul(per_item as u64);
        if total.and_then(|t| offset.checked_add(t)).filter(|&e| e <= file.len()).is_none() {
            return Err(HammingError::Corrupt(format!(
                "run of {n} x {per_item}-byte items at offset {offset} exceeds \
                 segment file of {} bytes",
                file.len()
            )));
        }
        Ok(())
    }
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("budget", &self.budget)
            .field("page_size", &self.page_size)
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// StorageMode
// ---------------------------------------------------------------------------

/// Where sealed segments live.
///
/// `Resident` (the default) decodes every sealed segment fully into
/// heap. `FileBacked` keeps sealed segments as offset-addressed files
/// and serves probes/verification through a [`PageCache`] bounded by
/// `budget_bytes` — the corpus may then exceed RAM. Query *results* are
/// identical in both modes; only latency and memory footprint differ.
///
/// ```
/// use gph::coldstore::StorageMode;
///
/// assert_eq!(StorageMode::default(), StorageMode::Resident);
/// let cold = StorageMode::FileBacked { budget_bytes: 64 << 20 };
/// assert!(matches!(cold, StorageMode::FileBacked { budget_bytes } if budget_bytes == 64 << 20));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageMode {
    /// Sealed segments are decoded into heap memory (the historical
    /// behaviour).
    #[default]
    Resident,
    /// Sealed segments stay on disk; reads go through a shared
    /// [`PageCache`] holding at most `budget_bytes` of paged-in data.
    FileBacked {
        /// Page-cache byte budget shared by all cold segments.
        budget_bytes: u64,
    },
}

// ---------------------------------------------------------------------------
// SpillStore
// ---------------------------------------------------------------------------

static NEXT_SPILL_DIR: AtomicU64 = AtomicU64::new(0);

/// Directory + shared [`PageCache`] backing a file-backed index.
///
/// Seal and compaction write freshly encoded GPHE v3 blobs here
/// ("spill files") and immediately reopen them cold. A store created
/// with [`SpillStore::temp`] owns its directory and removes it on drop;
/// one created with [`SpillStore::at`] leaves the directory in place.
pub struct SpillStore {
    dir: PathBuf,
    owned: bool,
    cache: Arc<PageCache>,
    counter: AtomicU64,
}

impl SpillStore {
    /// Creates a store in a fresh process-unique temp directory, owned
    /// (removed on drop), with a cache bounded by `budget_bytes`.
    pub fn temp(budget_bytes: u64) -> Result<Arc<SpillStore>> {
        let dir = std::env::temp_dir().join(format!(
            "gph-spill-{}-{}",
            std::process::id(),
            NEXT_SPILL_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(Arc::new(SpillStore {
            dir,
            owned: true,
            cache: Arc::new(PageCache::new(budget_bytes)),
            counter: AtomicU64::new(0),
        }))
    }

    /// Creates (or reuses) a store at an explicit directory, not owned.
    pub fn at(dir: impl AsRef<Path>, budget_bytes: u64) -> Result<Arc<SpillStore>> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Arc::new(SpillStore {
            dir,
            owned: false,
            cache: Arc::new(PageCache::new(budget_bytes)),
            counter: AtomicU64::new(0),
        }))
    }

    /// The shared page cache.
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `bytes` as a new spill file and reopens it as an owned
    /// [`SegmentFile`] (deleted when the last handle drops).
    pub fn write_blob(&self, bytes: &[u8]) -> Result<SegmentFile> {
        let path =
            self.dir.join(format!("seg-{}.gphe", self.counter.fetch_add(1, Ordering::Relaxed)));
        fs::write(&path, bytes)?;
        SegmentFile::open(path, true)
    }
}

impl std::fmt::Debug for SpillStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillStore").field("dir", &self.dir).field("owned", &self.owned).finish()
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        if self.owned {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

// ---------------------------------------------------------------------------
// FlatCn — estimator fallback for cold segments
// ---------------------------------------------------------------------------

/// Closed-form CN estimator used when a cold segment's configured
/// estimator kind has no snapshot state (`Learned`, `SampleScan`) —
/// rebuilding those would require the full dataset, defeating the lazy
/// open. Models each partition as uniform random bits:
/// `CN(e) = n · P[Binom(width, 1/2) ≤ e]`. Thresholds derived from it
/// may differ from the resident engine's, but the pigeonhole filter is
/// exact under *any* valid allocation, so query results are unaffected.
pub(crate) struct FlatCn {
    n: usize,
    /// `cdf[part][e]`, clamped to `[0, 1]`, for `e ∈ 0..=min(width, tau_max)`.
    cdf: Vec<Vec<f64>>,
}

impl FlatCn {
    pub(crate) fn new(n: usize, widths: &[usize], tau_max: usize) -> FlatCn {
        let cdf = widths
            .iter()
            .map(|&w| {
                let cap = w.min(tau_max);
                let mut out = Vec::with_capacity(cap + 1);
                // term = C(w, j) / 2^w, iteratively; underflows to 0 for
                // very wide partitions, which still yields a valid
                // (monotone, clamped) estimate.
                let mut term = (-(w as f64)).exp2();
                let mut acc = term;
                out.push(acc.min(1.0));
                for j in 1..=cap {
                    term *= (w - j + 1) as f64 / j as f64;
                    acc += term;
                    out.push(acc.min(1.0));
                }
                out
            })
            .collect();
        FlatCn { n, cdf }
    }
}

impl crate::cn::CnEstimator for FlatCn {
    fn fill(&self, part: usize, _q_val: &[u64], tau: usize, out: &mut [f64]) {
        let cdf = &self.cdf[part];
        out[0] = 0.0;
        for e in 0..=tau {
            let p = cdf[e.min(cdf.len() - 1)];
            out[e + 1] = self.n as f64 * p;
        }
    }

    fn size_bytes(&self) -> usize {
        self.cdf.iter().map(|c| c.len() * 8).sum::<usize>() + 16
    }
}

// ---------------------------------------------------------------------------
// ColdSegment
// ---------------------------------------------------------------------------

use crate::alloc::{allocate, AllocatorKind};
use crate::cn::{CnTable, EstimatorKind};
use crate::cost::CostModel;
use crate::engine::{QueryStats, SearchResult};
use crate::pigeonhole::ThresholdVector;
use crate::snapshot::{
    decode_config, decode_est_state, decode_parttab, decode_rowmeta, DecodedConfig, ENGINE_MAGIC,
    N_ENGINE_SLOTS, SLOT_CONFIG, SLOT_ESTKIND, SLOT_ESTSTATE, SLOT_IDS, SLOT_KEYS, SLOT_OFFS,
    SLOT_PARTIT, SLOT_PARTTAB, SLOT_ROWMETA, SLOT_ROWS, SNAPSHOT_VERSION,
};
use hamming_core::enumerate::{ball_size, for_each_in_ball_u64, for_each_in_ball_words};
use hamming_core::io::{crc32, decode_partitioning, Footer, OFFSET_HEADER_LEN};
use hamming_core::key::key_of;
use hamming_core::project::Projector;
use hamming_core::{hamming, hamming_within, words_for, Partitioning};
use std::time::Instant;

/// Keys scanned per paged batch on the cold scan-fallback path.
const KEY_SCAN_BATCH: usize = 1024;

/// One partition's on-disk CSR geometry, resolved to absolute file
/// offsets at open time (every offset below is pre-validated against
/// the footer's section bounds, so probe-time arithmetic cannot escape
/// the file).
struct ColdPart {
    width: usize,
    n_keys: u64,
    keys_off: u64,
    offs_off: u64,
    ids_off: u64,
}

/// Reusable per-query scratch, pooled like the resident engine's.
struct ColdScratch {
    stamps: Vec<u32>,
    epoch: u32,
    candidates: Vec<u32>,
    keys: Vec<u64>,
    row: Vec<u64>,
}

impl ColdScratch {
    fn new(n: usize, wpv: usize) -> ColdScratch {
        ColdScratch {
            stamps: vec![0; n],
            epoch: 0,
            candidates: Vec::new(),
            keys: Vec::new(),
            row: vec![0; wpv],
        }
    }
}

/// A sealed segment served directly from its offset-addressed GPHE v3
/// container, without decoding the payload into heap.
///
/// `open` reads and CRC-verifies only the *metadata* sections (config,
/// partitioning, estimator, row/partition geometry — a few KiB) with
/// direct positional reads, so opening is near-constant in segment
/// size; the row slab and CSR postings stay on disk and are paged in
/// through the shared [`PageCache`] as queries touch them. Query
/// results are bit-identical to the resident engine's: the pigeonhole
/// filter is exact under any valid allocation, and verification reads
/// the same row bytes the resident `Dataset` would hold.
///
/// Payload CRCs are deliberately *deferred* (validating them would read
/// the whole file, defeating the lazy open); probe-time reads are
/// bounds-checked, and out-of-range values decoded from an unverified
/// payload are skipped rather than trusted. A mid-query I/O failure
/// from the operating system (e.g. the file truncated externally)
/// panics with context — the same contract as a faulted mmap.
pub struct ColdSegment {
    file: Arc<SegmentFile>,
    cache: Arc<PageCache>,
    blob_off: u64,
    blob_len: u64,
    partitioning: Partitioning,
    projector: Projector,
    estimator: Box<dyn crate::cn::CnEstimator>,
    estimator_kind: EstimatorKind,
    allocator: AllocatorKind,
    cost_model: CostModel,
    tau_max: usize,
    dim: usize,
    wpv: usize,
    n_rows: usize,
    rows_off: u64,
    parts: Vec<ColdPart>,
    scratch_pool: Mutex<Vec<ColdScratch>>,
}

impl ColdSegment {
    /// Opens the GPHE v3 blob at `[blob_off, blob_off + blob_len)` of
    /// `file`: parses and CRC-verifies the footer and every metadata
    /// section, resolves section geometry to absolute offsets, and
    /// restores the estimator — without touching the row slab or the
    /// postings arrays.
    pub fn open(
        file: Arc<SegmentFile>,
        cache: Arc<PageCache>,
        blob_off: u64,
        blob_len: u64,
    ) -> Result<ColdSegment> {
        if blob_off.checked_add(blob_len).filter(|&e| e <= file.len()).is_none() {
            return Err(HammingError::Corrupt(format!(
                "engine blob {blob_off}+{blob_len} exceeds segment file of {} bytes",
                file.len()
            )));
        }
        // Footer first: it indexes everything else. Open-time metadata
        // uses direct reads (not the page cache) so a freshly restored
        // index starts with zero resident payload bytes.
        let tail_len = (Footer::MAX_LEN as u64).min(blob_len) as usize;
        let mut tail = vec![0u8; tail_len];
        file.read_at(blob_off + blob_len - tail_len as u64, &mut tail)?;
        let footer = Footer::parse(ENGINE_MAGIC, SNAPSHOT_VERSION, blob_len, &tail)?;
        if footer.version() < 3 {
            return Err(HammingError::Corrupt(format!(
                "version {} snapshots are not offset-addressed; load resident",
                footer.version()
            )));
        }
        if footer.n_slots() != N_ENGINE_SLOTS {
            return Err(HammingError::Corrupt(format!(
                "engine snapshot has {} sections, expected {N_ENGINE_SLOTS}",
                footer.n_slots()
            )));
        }
        // Header cross-check (Footer::parse only saw the tail).
        let mut header = [0u8; OFFSET_HEADER_LEN];
        file.read_at(blob_off, &mut header)?;
        if header[..4] != ENGINE_MAGIC
            || u32::from_le_bytes(header[4..8].try_into().unwrap()) != footer.version()
            || u32::from_le_bytes(header[8..12].try_into().unwrap()) != footer.n_slots() as u32
        {
            return Err(HammingError::Corrupt("header does not match footer".into()));
        }

        // Metadata sections: read directly, verify each CRC.
        let meta = |slot: usize| -> Result<Vec<u8>> {
            let s = footer.slot(slot)?;
            let mut buf = vec![0u8; s.len as usize];
            file.read_at(blob_off + s.offset, &mut buf)?;
            if crc32(&buf) != s.crc {
                return Err(HammingError::Corrupt(format!("section {slot} checksum mismatch")));
            }
            Ok(buf)
        };
        let cfg: DecodedConfig = decode_config(&meta(SLOT_CONFIG)?)?;
        let partitioning = decode_partitioning(&meta(SLOT_PARTIT)?)?;
        let estimator_kind = crate::cn::decode_kind(&meta(SLOT_ESTKIND)?)?;
        let est_state_buf = meta(SLOT_ESTSTATE)?;
        let est_state = decode_est_state(&est_state_buf)?;
        let (dim, n_rows) = decode_rowmeta(&meta(SLOT_ROWMETA)?)?;
        let extents = decode_parttab(&meta(SLOT_PARTTAB)?)?;

        if partitioning.dim() != dim {
            return Err(HammingError::Corrupt(format!(
                "partitioning covers {} dims but the rows have {dim}",
                partitioning.dim()
            )));
        }
        if extents.len() != partitioning.num_parts() {
            return Err(HammingError::Corrupt(format!(
                "partition table has {} rows but the partitioning has {} parts",
                extents.len(),
                partitioning.num_parts()
            )));
        }
        let projector = Projector::new(&partitioning);
        let wpv = words_for(dim);

        // Resolve section geometry to absolute offsets, validating the
        // declared extents tile each section exactly.
        let rows_slot = footer.slot(SLOT_ROWS)?;
        let keys_slot = footer.slot(SLOT_KEYS)?;
        let offs_slot = footer.slot(SLOT_OFFS)?;
        let ids_slot = footer.slot(SLOT_IDS)?;
        let expect_rows = (n_rows as u64)
            .checked_mul(wpv as u64)
            .and_then(|w| w.checked_mul(8))
            .ok_or_else(|| HammingError::Corrupt("row slab size overflow".into()))?;
        if rows_slot.len != expect_rows {
            return Err(HammingError::Corrupt(format!(
                "row slab is {} bytes, expected {expect_rows} for {n_rows} rows of dim {dim}",
                rows_slot.len
            )));
        }
        let mut parts = Vec::with_capacity(extents.len());
        let (mut koff, mut ooff, mut ioff) = (0u64, 0u64, 0u64);
        for (p, ext) in extents.iter().enumerate() {
            if ext.width != projector.shape(p).width {
                return Err(HammingError::Corrupt(format!(
                    "partition {p} width mismatch: table {} vs partitioning {}",
                    ext.width,
                    projector.shape(p).width
                )));
            }
            if ext.n_ids != n_rows {
                return Err(HammingError::Corrupt(format!(
                    "partition {p} posts {} ids for {n_rows} rows",
                    ext.n_ids
                )));
            }
            let n_keys = ext.n_keys as u64;
            parts.push(ColdPart {
                width: ext.width,
                n_keys,
                keys_off: blob_off + keys_slot.offset + koff,
                offs_off: blob_off + offs_slot.offset + ooff,
                ids_off: blob_off + ids_slot.offset + ioff,
            });
            koff = n_keys
                .checked_mul(8)
                .and_then(|b| koff.checked_add(b))
                .filter(|&e| e <= keys_slot.len)
                .ok_or_else(|| {
                    HammingError::Corrupt(format!("partition {p} keys exceed the keys section"))
                })?;
            ooff = (n_keys + 1)
                .checked_mul(4)
                .and_then(|b| ooff.checked_add(b))
                .filter(|&e| e <= offs_slot.len)
                .ok_or_else(|| {
                    HammingError::Corrupt(format!("partition {p} offsets exceed the offs section"))
                })?;
            ioff = (ext.n_ids as u64)
                .checked_mul(4)
                .and_then(|b| ioff.checked_add(b))
                .filter(|&e| e <= ids_slot.len)
                .ok_or_else(|| {
                    HammingError::Corrupt(format!("partition {p} ids exceed the ids section"))
                })?;
        }
        if koff != keys_slot.len || ooff != offs_slot.len || ioff != ids_slot.len {
            return Err(HammingError::Corrupt(
                "CSR sections have trailing bytes beyond the partition table".into(),
            ));
        }
        let widths: Vec<usize> = extents.iter().map(|e| e.width).collect();
        let estimator = crate::cn::restore_estimator_cold(
            &estimator_kind,
            est_state,
            n_rows,
            cfg.tau_max,
            &widths,
        )?;
        Ok(ColdSegment {
            rows_off: blob_off + rows_slot.offset,
            file,
            cache,
            blob_off,
            blob_len,
            partitioning,
            projector,
            estimator,
            estimator_kind,
            allocator: cfg.allocator,
            cost_model: cfg.cost_model,
            tau_max: cfg.tau_max,
            dim,
            wpv,
            n_rows,
            parts,
            scratch_pool: Mutex::new(Vec::new()),
        })
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Largest supported query threshold.
    pub fn tau_max(&self) -> usize {
        self.tau_max
    }

    /// The estimator kind the segment was built with.
    pub fn estimator_kind(&self) -> &EstimatorKind {
        &self.estimator_kind
    }

    /// The cost model the segment was built with.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Resident heap footprint: metadata only — the payload lives in
    /// the shared page cache, accounted there.
    pub fn size_bytes(&self) -> usize {
        self.estimator.size_bytes() + self.parts.len() * std::mem::size_of::<ColdPart>() + 256
    }

    /// Counters of the page cache this segment reads through (shared
    /// with every other segment on the same [`SpillStore`]).
    pub fn cache_stats(&self) -> PageCacheStats {
        self.cache.stats()
    }

    /// The raw GPHE v3 blob, read back verbatim (for re-snapshotting a
    /// file-backed index without decoding it).
    pub fn engine_blob(&self) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.blob_len as usize];
        self.file.read_at(self.blob_off, &mut buf)?;
        Ok(buf)
    }

    fn pread(&self, offset: u64, out: &mut [u8]) {
        self.cache
            .read_into(&self.file, offset, out)
            .expect("cold segment read failed mid-query (file truncated or I/O error)")
    }

    /// Copies row `id` out of the paged row slab.
    pub fn row(&self, id: usize) -> Vec<u64> {
        assert!(id < self.n_rows, "row {id} out of range for {} rows", self.n_rows);
        let mut buf = vec![0u8; self.wpv * 8];
        self.pread(self.rows_off + (id * self.wpv * 8) as u64, &mut buf);
        buf.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// Exact Hamming distance from `query` to row `id`.
    pub fn distance_to(&self, id: usize, query: &[u64]) -> u32 {
        hamming(&self.row(id), query)
    }

    /// All vectors within `tau` of `query` (exact; ascending IDs).
    pub fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).ids
    }

    /// Search with per-phase instrumentation, mirroring
    /// [`Gph::search_with_stats`](crate::engine::Gph::search_with_stats)
    /// phase for phase over paged reads.
    pub fn search_with_stats(&self, query: &[u64], tau: u32) -> SearchResult {
        assert!(
            tau as usize <= self.tau_max,
            "tau {tau} exceeds the configured tau_max {}",
            self.tau_max
        );
        assert_eq!(query.len(), self.wpv, "query width mismatch with indexed data");
        let mut stats = QueryStats::default();
        let m = self.partitioning.num_parts();

        // --- Phase 1: CN estimation + threshold allocation ------------
        let t0 = Instant::now();
        let q_proj: Vec<Vec<u64>> = (0..m).map(|i| self.projector.project(i, query)).collect();
        let thresholds = if m == 1 {
            ThresholdVector(vec![tau as i32])
        } else {
            let cn = CnTable::compute(self.estimator.as_ref(), &q_proj, tau as usize);
            let tv = allocate(self.allocator, &cn, tau);
            stats.estimated_cost = cn.sum_for(&tv);
            tv
        };
        stats.alloc_ns = t0.elapsed().as_nanos() as u64;
        stats.thresholds = thresholds.0.clone();

        // --- Phases 2+3: signature enumeration + candidate generation --
        let mut scratch = self
            .scratch_pool
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| ColdScratch::new(self.n_rows, self.wpv));
        if scratch.stamps.len() < self.n_rows {
            scratch.stamps.resize(self.n_rows, 0);
        }
        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamps.iter_mut().for_each(|s| *s = u32::MAX);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;
        scratch.candidates.clear();

        for (i, &ti) in thresholds.0.iter().enumerate() {
            if ti < 0 {
                continue;
            }
            let part = &self.parts[i];
            let width = part.width;
            let radius = (ti as usize).min(width);
            let ball = ball_size(width, radius);
            if ball > self.n_rows as u64 && self.n_rows > 0 {
                // Scan fallback. The resident engine scans the projected
                // column; cold, the distinct-keys array plays that role
                // for narrow partitions (key == projected value, and the
                // postings of all matching keys are exactly the rows
                // within `radius`). Wide partitions store hashed keys,
                // so distance on keys is meaningless — flood every row
                // as a candidate and let verification (which is exact)
                // keep the result set identical.
                let t2 = Instant::now();
                stats.n_scanned += self.n_rows as u64;
                if width <= 64 {
                    let qk = q_proj[i].first().copied().unwrap_or(0);
                    self.scan_keys(part, qk, radius, epoch, &mut scratch, &mut stats);
                } else {
                    for id in 0..self.n_rows {
                        if scratch.stamps[id] != epoch {
                            scratch.stamps[id] = epoch;
                            scratch.candidates.push(id as u32);
                        }
                    }
                }
                stats.candgen_ns += t2.elapsed().as_nanos() as u64;
                continue;
            }
            let t1 = Instant::now();
            scratch.keys.clear();
            if width <= 64 {
                let center = q_proj[i].first().copied().unwrap_or(0);
                for_each_in_ball_u64(center, width, radius, |v| scratch.keys.push(v));
            } else {
                for_each_in_ball_words(&q_proj[i], width, radius, |w| {
                    scratch.keys.push(key_of(w, width))
                });
            }
            stats.n_signatures += scratch.keys.len() as u64;
            stats.enumerate_ns += t1.elapsed().as_nanos() as u64;

            let t2 = Instant::now();
            // Probe each signature: binary search the paged keys array,
            // then read the postings range. (Borrow juggling: the key
            // list moves out of scratch while postings mutate it.)
            let keys = std::mem::take(&mut scratch.keys);
            for &key in &keys {
                if let Some(slot) = self.find_key(part, key) {
                    self.push_postings(part, slot, epoch, &mut scratch, &mut stats);
                }
            }
            scratch.keys = keys;
            stats.candgen_ns += t2.elapsed().as_nanos() as u64;
        }
        stats.n_candidates = scratch.candidates.len() as u64;

        // --- Phase 4: verification -------------------------------------
        // Candidates are verified in ascending id order for page
        // locality; the result set is identical to the resident
        // engine's (same candidates, same exact distance test).
        let t3 = Instant::now();
        scratch.candidates.sort_unstable();
        let mut ids: Vec<u32> = Vec::with_capacity(scratch.candidates.len());
        let mut row_buf = vec![0u8; self.wpv * 8];
        for &id in &scratch.candidates {
            self.pread(self.rows_off + (id as usize * self.wpv * 8) as u64, &mut row_buf);
            for (w, c) in scratch.row.iter_mut().zip(row_buf.chunks_exact(8)) {
                *w = u64::from_le_bytes(c.try_into().unwrap());
            }
            if hamming_within(&scratch.row, query, tau).is_some() {
                ids.push(id);
            }
        }
        stats.verify_ns = t3.elapsed().as_nanos() as u64;
        stats.n_results = ids.len() as u64;

        self.scratch_pool.lock().unwrap().push(scratch);
        SearchResult { ids, stats }
    }

    /// Binary search for `key` in partition `part`'s paged keys array.
    fn find_key(&self, part: &ColdPart, key: u64) -> Option<u64> {
        let (mut lo, mut hi) = (0u64, part.n_keys);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let k = self
                .cache
                .read_u64(&self.file, part.keys_off + mid * 8)
                .expect("cold segment read failed mid-query (file truncated or I/O error)");
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Reads the postings range of key slot `slot` and stamps its ids
    /// into the candidate set. Range values come from the (deferred-CRC)
    /// payload, so they are checked, not trusted: a corrupt range or id
    /// is skipped instead of panicking or reading out of bounds.
    fn push_postings(
        &self,
        part: &ColdPart,
        slot: u64,
        epoch: u32,
        scratch: &mut ColdScratch,
        stats: &mut QueryStats,
    ) {
        let eread = |r: Result<u32>| -> u32 {
            r.expect("cold segment read failed mid-query (file truncated or I/O error)")
        };
        let start = eread(self.cache.read_u32(&self.file, part.offs_off + slot * 4)) as u64;
        let end = eread(self.cache.read_u32(&self.file, part.offs_off + (slot + 1) * 4)) as u64;
        if start > end || end > self.n_rows as u64 {
            return;
        }
        let ids = self
            .cache
            .read_u32s(&self.file, part.ids_off + start * 4, (end - start) as usize)
            .expect("cold segment read failed mid-query (file truncated or I/O error)");
        stats.sum_postings += ids.len() as u64;
        for id in ids {
            let idu = id as usize;
            if idu < self.n_rows && scratch.stamps[idu] != epoch {
                scratch.stamps[idu] = epoch;
                scratch.candidates.push(id);
            }
        }
    }

    /// Scan fallback for narrow partitions: walk the distinct-keys
    /// array in paged batches, and take the postings of every key
    /// within `radius` of the query key.
    fn scan_keys(
        &self,
        part: &ColdPart,
        qk: u64,
        radius: usize,
        epoch: u32,
        scratch: &mut ColdScratch,
        stats: &mut QueryStats,
    ) {
        let mut slot = 0u64;
        while slot < part.n_keys {
            let n = (part.n_keys - slot).min(KEY_SCAN_BATCH as u64) as usize;
            let keys = self
                .cache
                .read_u64s(&self.file, part.keys_off + slot * 8, n)
                .expect("cold segment read failed mid-query (file truncated or I/O error)");
            for (j, &k) in keys.iter().enumerate() {
                if (k ^ qk).count_ones() as usize <= radius {
                    self.push_postings(part, slot + j as u64, epoch, scratch, stats);
                }
            }
            slot += n as u64;
        }
    }

    /// Estimated query cost, mirroring
    /// [`Gph::estimate_cost`](crate::engine::Gph::estimate_cost).
    pub fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        assert!(tau as usize <= self.tau_max, "tau exceeds tau_max");
        let m = self.partitioning.num_parts();
        let q_proj: Vec<Vec<u64>> = (0..m).map(|i| self.projector.project(i, query)).collect();
        if m == 1 {
            let mut row = vec![0.0; tau as usize + 2];
            self.estimator.fill(0, &q_proj[0], tau as usize, &mut row);
            return self.cost_model.query_cost(row[tau as usize + 1], tau);
        }
        let cn = CnTable::compute(self.estimator.as_ref(), &q_proj, tau as usize);
        let tv = allocate(self.allocator, &cn, tau);
        self.cost_model.query_cost(cn.sum_for(&tv), tau)
    }

    /// Top-k within a capped escalation radius, mirroring
    /// [`Gph::search_topk_within`](crate::engine::Gph::search_topk_within).
    pub fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        assert!(
            tau_cap as usize <= self.tau_max,
            "tau_cap {tau_cap} exceeds the configured tau_max {}",
            self.tau_max
        );
        let mut tau = 0u32;
        loop {
            let ids = self.search(query, tau);
            if ids.len() >= k || tau >= tau_cap {
                let mut scored: Vec<(u32, u32)> =
                    ids.iter().map(|&id| (id, self.distance_to(id as usize, query))).collect();
                scored.sort_by_key(|&(id, d)| (d, id));
                scored.truncate(k);
                return scored;
            }
            tau = (tau * 2).max(tau + 1).min(tau_cap);
        }
    }
}

impl std::fmt::Debug for ColdSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColdSegment")
            .field("path", &self.file.path())
            .field("rows", &self.n_rows)
            .field("dim", &self.dim)
            .field("blob_len", &self.blob_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::CnEstimator;

    fn temp_file(name: &str, bytes: &[u8]) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gph-coldstore-test-{}-{name}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn page_cache_reads_across_page_boundaries() {
        let bytes: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let path = temp_file("boundaries", &bytes);
        let file = SegmentFile::open(&path, false).unwrap();
        let cache = PageCache::with_page_size(1 << 20, MIN_PAGE_BYTES).unwrap();

        // A read spanning three pages comes back stitched correctly.
        let mut buf = vec![0u8; 9000];
        cache.read_into(&file, 3000, &mut buf).unwrap();
        assert_eq!(&buf[..], &bytes[3000..12_000]);

        // Typed runs agree with a direct decode.
        let words = cache.read_u64s(&file, 4096, 512).unwrap();
        for (i, w) in words.iter().enumerate() {
            let off = 4096 + i * 8;
            assert_eq!(*w, u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
        }
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn page_cache_evicts_under_budget_and_counts() {
        let bytes = vec![3u8; 64 * 1024];
        let path = temp_file("evict", &bytes);
        let file = SegmentFile::open(&path, false).unwrap();
        // Budget of two 4 KiB pages; touch 16 distinct pages.
        let cache = PageCache::with_page_size(2 * 4096, MIN_PAGE_BYTES).unwrap();
        for p in 0..16u64 {
            let mut b = [0u8; 8];
            cache.read_into(&file, p * 4096, &mut b).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 16);
        assert!(s.evictions >= 14, "evictions: {}", s.evictions);
        assert!(s.resident_bytes <= 2 * 4096, "resident: {}", s.resident_bytes);

        // Re-reading a recently touched page can hit.
        let mut b = [0u8; 8];
        cache.read_into(&file, 15 * 4096, &mut b).unwrap();
        assert!(cache.stats().hits >= 1);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn reads_past_eof_are_corrupt_not_panics() {
        let path = temp_file("eof", &[1u8; 100]);
        let file = SegmentFile::open(&path, false).unwrap();
        let cache = PageCache::new(1 << 20);
        let mut buf = [0u8; 8];
        assert!(matches!(cache.read_into(&file, 96, &mut buf), Err(HammingError::Corrupt(_))));
        assert!(matches!(
            cache.read_into(&file, u64::MAX - 2, &mut buf),
            Err(HammingError::Corrupt(_))
        ));
        // A forged count cannot allocate before the bounds check.
        assert!(matches!(cache.read_u64s(&file, 0, usize::MAX / 2), Err(HammingError::Corrupt(_))));
        assert!(matches!(file.read_at(101, &mut []), Err(HammingError::Corrupt(_))));
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn owned_segment_files_are_deleted_on_drop() {
        let path = temp_file("owned", &[0u8; 10]);
        let file = SegmentFile::open(&path, true).unwrap();
        assert!(path.exists());
        drop(file);
        assert!(!path.exists());
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn spill_store_owns_its_temp_dir() {
        let store = SpillStore::temp(1 << 20).unwrap();
        let dir = store.dir().to_path_buf();
        let seg = store.write_blob(&[9u8; 128]).unwrap();
        assert!(dir.exists());
        assert_eq!(seg.len(), 128);
        let mut b = [0u8; 4];
        store.cache().read_into(&seg, 64, &mut b).unwrap();
        assert_eq!(b, [9u8; 4]);
        drop(seg);
        drop(store);
        assert!(!dir.exists());
    }

    #[test]
    fn page_size_validation() {
        assert!(PageCache::with_page_size(0, 4096).is_ok());
        assert!(PageCache::with_page_size(0, 5000).is_err());
        assert!(PageCache::with_page_size(0, 2048).is_err());
        assert!(PageCache::with_page_size(0, 128 * 1024).is_err());
    }

    #[test]
    fn flat_cn_is_monotone_and_clamped() {
        let est = FlatCn::new(1000, &[8, 64, 2000], 16);
        for part in 0..3 {
            let mut out = vec![0.0; 18];
            est.fill(part, &[0], 16, &mut out);
            assert_eq!(out[0], 0.0);
            for e in 1..out.len() {
                assert!(out[e] >= out[e - 1], "monotone at part {part} e {e}");
                assert!(out[e] <= 1000.0);
            }
        }
        // Width 8, tau 16: the CDF saturates at 1, so CN = n.
        let mut out = vec![0.0; 18];
        est.fill(0, &[0], 16, &mut out);
        assert!((out[17] - 1000.0).abs() < 1e-6);
    }

    use crate::engine::{Gph, GphConfig};
    use crate::partition_opt::PartitionStrategy;
    use hamming_core::{BitVector, Dataset};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4)));
            ds.push(&v).unwrap();
        }
        ds
    }

    /// Spill a built engine and reopen it cold under the given cache budget.
    fn spill(engine: &Gph, budget: u64) -> (Arc<SpillStore>, ColdSegment) {
        let store = SpillStore::temp(budget).unwrap();
        let file = Arc::new(store.write_blob(&engine.to_bytes()).unwrap());
        let len = file.len();
        let cold = ColdSegment::open(file, store.cache().clone(), 0, len).unwrap();
        (store, cold)
    }

    fn assert_cold_matches(engine: &Gph, cold: &ColdSegment, queries: &Dataset, taus: &[u32]) {
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            for &tau in taus {
                let hot = engine.search(q, tau);
                let cold_ids = cold.search(q, tau);
                assert_eq!(hot, cold_ids, "qi={qi} tau={tau}");
            }
        }
    }

    #[test]
    fn cold_segment_answers_exactly_like_the_resident_engine() {
        let ds = random_dataset(64, 300, 41);
        let queries = random_dataset(64, 8, 42);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 5 };
        let engine = Gph::build(ds, &cfg).unwrap();
        // Budget of a single page forces constant eviction churn.
        let (_store, cold) = spill(&engine, DEFAULT_PAGE_BYTES as u64);
        assert_eq!(cold.len(), engine.data().len());
        assert_eq!(cold.dim(), 64);
        assert_eq!(cold.tau_max(), engine.tau_max());
        assert_cold_matches(&engine, &cold, &queries, &[0, 1, 3, 8]);
        // The default SubPartition estimator snapshots its state, so the
        // cold side restores the identical tables: thresholds and cost
        // estimates agree too, not just result sets.
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let hot = engine.search_with_stats(q, 5);
            let chill = cold.search_with_stats(q, 5);
            assert_eq!(hot.stats.thresholds, chill.stats.thresholds, "qi={qi}");
            assert_eq!(engine.estimate_cost(q, 5), cold.estimate_cost(q, 5), "qi={qi}");
            assert_eq!(
                engine.search_topk_within(q, 3, 8),
                cold.search_topk_within(q, 3, 8),
                "qi={qi}"
            );
        }
        let stats = cold.cache_stats();
        assert!(stats.evictions > 0, "a 1-page budget must evict: {stats:?}");
        assert!(stats.resident_bytes <= DEFAULT_PAGE_BYTES as u64);
    }

    #[test]
    fn cold_segment_scan_fallback_matches_on_tiny_corpora() {
        // 40 rows with tau up to 8: every partition's signature ball
        // dwarfs the corpus, forcing the key-scan fallback.
        let ds = random_dataset(64, 40, 43);
        let queries = random_dataset(64, 6, 44);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 6 };
        let engine = Gph::build(ds, &cfg).unwrap();
        let (_store, cold) = spill(&engine, 1 << 20);
        assert_cold_matches(&engine, &cold, &queries, &[4, 8]);
    }

    #[test]
    fn cold_segment_wide_partitions_match() {
        // dim 160 over 2 parts: 80-bit partitions exercise the
        // multi-word enumeration path and the wide-scan candidate flood.
        let ds = random_dataset(160, 120, 45);
        let queries = random_dataset(160, 5, 46);
        let mut cfg = GphConfig::new(2, 6);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 7 };
        let engine = Gph::build(ds, &cfg).unwrap();
        let (_store, cold) = spill(&engine, 1 << 20);
        assert_cold_matches(&engine, &cold, &queries, &[1, 4, 6]);
    }

    #[test]
    fn cold_segment_single_partition_matches() {
        let ds = random_dataset(32, 150, 47);
        let queries = random_dataset(32, 5, 48);
        let mut cfg = GphConfig::new(1, 4);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 8 };
        let engine = Gph::build(ds, &cfg).unwrap();
        let (_store, cold) = spill(&engine, 1 << 20);
        assert_cold_matches(&engine, &cold, &queries, &[0, 2, 4]);
    }

    #[test]
    fn cold_segment_without_estimator_state_still_answers_exactly() {
        // SampleScan snapshots no state; the cold side falls back to the
        // closed-form FlatCn. Allocations may differ — results must not.
        let ds = random_dataset(64, 200, 49);
        let queries = random_dataset(64, 6, 50);
        let mut cfg = GphConfig::new(4, 6);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 9 };
        cfg.estimator = crate::cn::EstimatorKind::SampleScan { sample_cap: 64, seed: 3 };
        let engine = Gph::build(ds, &cfg).unwrap();
        let (_store, cold) = spill(&engine, 1 << 20);
        assert_cold_matches(&engine, &cold, &queries, &[0, 3, 6]);
    }

    #[test]
    fn cold_segment_round_trips_its_blob() {
        let ds = random_dataset(64, 100, 51);
        let mut cfg = GphConfig::new(4, 6);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 10 };
        let engine = Gph::build(ds, &cfg).unwrap();
        let bytes = engine.to_bytes();
        let (_store, cold) = spill(&engine, 1 << 20);
        assert_eq!(cold.engine_blob().unwrap(), bytes);
        let reloaded = Gph::from_bytes(&cold.engine_blob().unwrap()).unwrap();
        assert_eq!(reloaded.data().len(), engine.data().len());
        // Row reads come back verbatim.
        for id in [0usize, 57, 99] {
            assert_eq!(cold.row(id), reloaded.data().row(id));
        }
    }

    #[test]
    fn cold_open_rejects_corrupt_metadata() {
        let ds = random_dataset(64, 80, 52);
        let mut cfg = GphConfig::new(4, 6);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 11 };
        let engine = Gph::build(ds, &cfg).unwrap();
        let bytes = engine.to_bytes();
        let store = SpillStore::temp(1 << 20).unwrap();
        // Flip one byte in the partitioning section (slot 1): the cold
        // open CRC-checks every metadata slot even though payload slots
        // stay deferred.
        let foot = hamming_core::io::Footer::parse_bytes(
            crate::snapshot::ENGINE_MAGIC,
            crate::snapshot::SNAPSHOT_VERSION,
            &bytes,
        )
        .unwrap();
        let target = foot.slot(SLOT_PARTIT).unwrap().offset as usize;
        let mut bad = bytes.clone();
        bad[target] ^= 0x40;
        let file = Arc::new(store.write_blob(&bad).unwrap());
        let len = file.len();
        let err = ColdSegment::open(file, store.cache().clone(), 0, len).unwrap_err();
        assert!(matches!(err, HammingError::Corrupt(_)), "{err:?}");
        // Truncated files fail footer parsing, not panic.
        let file = Arc::new(store.write_blob(&bytes[..bytes.len() - 9]).unwrap());
        let len = file.len();
        assert!(ColdSegment::open(file, store.cache().clone(), 0, len).is_err());
    }
}

//! Live updates for GPH: an LSM-style segmented engine.
//!
//! [`crate::Gph`] is build-once: its postings reference dense row ids and
//! its partitioning is the product of an expensive offline optimization,
//! so per-insert rebuilds are untenable. [`SegmentedGph`] makes the
//! engine mutable the way log-structured stores do:
//!
//! * a mutable front **memtable** — rows appended to a [`Dataset`] with a
//!   [`Tombstones`] bitmap for deletes, answered by early-exit linear
//!   scan (exact, and cheap while the memtable is small);
//! * a list of sealed **immutable [`Gph`] segments**, each with its own
//!   id map and tombstone bitmap; deletes flip a bit, queries filter;
//! * a size-triggered **seal**: when the memtable reaches
//!   [`SegmentConfig::seal_rows`] live rows it is rebuilt into a sealed
//!   segment (dead rows dropped on the way) using the configured
//!   partition optimizer;
//! * a **compaction policy**: all-dead segments are dropped outright, and
//!   whenever more than [`SegmentConfig::max_sealed`] segments exist the
//!   two smallest are merged into one freshly built segment, bounding
//!   per-query segment fan-out the way LSM level merges bound sstable
//!   counts.
//!
//! Rows are addressed by caller-chosen `u32` ids, stable across seals and
//! compactions. Every query is **provably identical** to a fresh [`Gph`]
//! built over the surviving rows (the pigeonhole filter is exact for any
//! partitioning, and tombstone filtering removes exactly the dead rows);
//! `tests/segment_properties.rs` pins this over arbitrary
//! insert/delete/seal/compact interleavings, including through a
//! snapshot/restore round-trip.

use crate::engine::{Gph, GphConfig, QueryStats};
use crate::snapshot::{decode_gph_config, encode_gph_config};
use bytes::BufMut;
use gph_obs::{PhaseNanos, SegmentTrace};
use hamming_core::error::{HammingError, Result};
use hamming_core::io::{ByteReader, SectionReader, SectionWriter};
use hamming_core::tombstone::Tombstones;
use hamming_core::{words_for, Dataset};
use std::collections::HashMap;

/// Magic of a segmented-engine snapshot.
pub const SEGMENT_MAGIC: [u8; 4] = *b"GPHS";

/// Current segmented-snapshot format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Knobs of the segment lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct SegmentConfig {
    /// Live memtable rows that trigger a seal (build into an immutable
    /// segment). Smaller values keep scans short but build more often.
    pub seal_rows: usize,
    /// Sealed segments tolerated before compaction merges the two
    /// smallest; bounds per-query fan-out.
    pub max_sealed: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig { seal_rows: 4096, max_sealed: 6 }
    }
}

/// Where a live id currently resides.
#[derive(Clone, Copy, Debug)]
struct Loc {
    /// Sealed-segment index, or `usize::MAX` for the memtable.
    seg: usize,
    /// Row index within that segment's dataset.
    row: usize,
}

const MEMTABLE: usize = usize::MAX;

/// The mutable front segment.
struct Memtable {
    data: Dataset,
    ids: Vec<u32>,
    dead: Tombstones,
}

impl Memtable {
    fn new(dim: usize) -> Self {
        Memtable { data: Dataset::new(dim), ids: Vec::new(), dead: Tombstones::new() }
    }
}

/// One sealed, immutable segment: a frozen [`Gph`] engine plus the map
/// from its dense local row ids to external ids, and the tombstones
/// accumulated since it was built.
struct Sealed {
    engine: Gph,
    ids: Vec<u32>,
    dead: Tombstones,
}

/// Segment-level diagnostics ([`SegmentedGph::segment_info`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Rows stored (live + tombstoned).
    pub rows: usize,
    /// Rows still live.
    pub live: usize,
    /// Whether this is the mutable memtable (always the last entry).
    pub memtable: bool,
}

/// A live-updatable GPH engine: a scan-served memtable in front of
/// sealed immutable [`Gph`] segments, merged at query time.
///
/// # Example
///
/// ```
/// use gph::engine::GphConfig;
/// use gph::partition_opt::PartitionStrategy;
/// use gph::segment::{SegmentConfig, SegmentedGph};
///
/// let mut cfg = GphConfig::new(2, 4);
/// cfg.strategy = PartitionStrategy::Original;
/// let mut engine =
///     SegmentedGph::new(16, cfg, SegmentConfig { seal_rows: 2, max_sealed: 2 }).unwrap();
///
/// // Insert rows under caller-chosen ids; seals happen automatically.
/// engine.insert(7, &[0b0000_0000_1111_0000]).unwrap();
/// engine.insert(3, &[0b0000_0000_1111_0001]).unwrap();
/// engine.insert(9, &[0b1111_0000_0000_0000]).unwrap();
/// assert_eq!(engine.search(&[0b0000_0000_1111_0000], 1), vec![3, 7]);
///
/// // Delete and upsert keep queries exact.
/// assert!(engine.delete(7));
/// engine.upsert(9, &[0b0000_0000_1111_0011]).unwrap();
/// assert_eq!(engine.search(&[0b0000_0000_1111_0000], 2), vec![3, 9]);
/// assert_eq!(engine.len(), 2);
/// ```
pub struct SegmentedGph {
    cfg: GphConfig,
    seg_cfg: SegmentConfig,
    dim: usize,
    words_per_vec: usize,
    mem: Memtable,
    sealed: Vec<Sealed>,
    /// External id → current location, live rows only.
    loc: HashMap<u32, Loc>,
}

impl SegmentedGph {
    /// Creates an empty engine for `dim`-dimensional rows.
    pub fn new(dim: usize, cfg: GphConfig, seg_cfg: SegmentConfig) -> Result<Self> {
        if dim == 0 {
            return Err(HammingError::InvalidParameter("zero-dimensional data".into()));
        }
        if seg_cfg.seal_rows == 0 || seg_cfg.max_sealed == 0 {
            return Err(HammingError::InvalidParameter(
                "seal_rows and max_sealed must be positive".into(),
            ));
        }
        Ok(SegmentedGph {
            cfg,
            seg_cfg,
            dim,
            words_per_vec: words_for(dim),
            mem: Memtable::new(dim),
            sealed: Vec::new(),
            loc: HashMap::new(),
        })
    }

    /// Builds an engine whose initial contents are `data` under external
    /// ids `ids`, sealed immediately into one segment — the bulk-load
    /// path the serving layer uses when constructing a fleet from a
    /// frozen dataset.
    pub fn build_sealed(
        data: Dataset,
        ids: Vec<u32>,
        cfg: GphConfig,
        seg_cfg: SegmentConfig,
    ) -> Result<Self> {
        if data.len() != ids.len() {
            return Err(HammingError::InvalidParameter(format!(
                "{} rows but {} ids",
                data.len(),
                ids.len()
            )));
        }
        let mut out = SegmentedGph::new(data.dim(), cfg, seg_cfg)?;
        if !data.is_empty() {
            out.push_built_segment(data, ids)?;
        }
        Ok(out)
    }

    /// Builds a sealed segment over `data` without touching any engine
    /// state — the build-then-commit half of every seal/compaction, so a
    /// failed `Gph::build` (e.g. an invalid config) leaves the engine
    /// fully consistent.
    fn build_segment(&self, data: Dataset, ids: Vec<u32>) -> Result<Sealed> {
        let n = data.len();
        let engine = Gph::build(data, &self.cfg)?;
        Ok(Sealed { engine, ids, dead: Tombstones::all_live(n) })
    }

    /// Registers a built segment's ids in the location map (overwriting
    /// any stale entries, e.g. memtable rows that just sealed) and
    /// appends it.
    fn commit_segment(&mut self, seg: Sealed) {
        let seg_idx = self.sealed.len();
        for (row, &id) in seg.ids.iter().enumerate() {
            self.loc.insert(id, Loc { seg: seg_idx, row });
        }
        self.sealed.push(seg);
    }

    /// Builds a `Gph` over `data` and appends it as a sealed segment,
    /// registering its ids (which must be globally fresh and distinct).
    fn push_built_segment(&mut self, data: Dataset, ids: Vec<u32>) -> Result<()> {
        let mut seen = std::collections::HashSet::with_capacity(ids.len());
        for &id in &ids {
            if self.loc.contains_key(&id) || !seen.insert(id) {
                return Err(HammingError::InvalidParameter(format!("duplicate live id {id}")));
            }
        }
        let seg = self.build_segment(data, ids)?;
        self.commit_segment(seg);
        Ok(())
    }

    /// Dimensionality of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per row.
    pub fn words_per_vec(&self) -> usize {
        self.words_per_vec
    }

    /// Largest threshold the engine serves.
    pub fn tau_max(&self) -> usize {
        self.cfg.tau_max
    }

    /// The build configuration (used for every seal and compaction).
    pub fn config(&self) -> &GphConfig {
        &self.cfg
    }

    /// The segment-lifecycle knobs.
    pub fn segment_config(&self) -> SegmentConfig {
        self.seg_cfg
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.loc.len()
    }

    /// Whether no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.loc.is_empty()
    }

    /// Rows held in storage, including tombstoned ones awaiting
    /// compaction.
    pub fn stored_rows(&self) -> usize {
        self.mem.data.len() + self.sealed.iter().map(|s| s.ids.len()).sum::<usize>()
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: u32) -> bool {
        self.loc.contains_key(&id)
    }

    /// The live ids, ascending.
    pub fn live_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.loc.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The stored row for a live `id`.
    pub fn get(&self, id: u32) -> Option<&[u64]> {
        let loc = self.loc.get(&id)?;
        Some(if loc.seg == MEMTABLE {
            self.mem.data.row(loc.row)
        } else {
            self.sealed[loc.seg].engine.data().row(loc.row)
        })
    }

    /// Per-segment diagnostics, sealed segments first, memtable last.
    pub fn segment_info(&self) -> Vec<SegmentInfo> {
        let mut out: Vec<SegmentInfo> = self
            .sealed
            .iter()
            .map(|s| SegmentInfo { rows: s.ids.len(), live: s.dead.live(), memtable: false })
            .collect();
        out.push(SegmentInfo {
            rows: self.mem.data.len(),
            live: self.mem.dead.live(),
            memtable: true,
        });
        out
    }

    /// Sealed segments currently held.
    pub fn num_sealed(&self) -> usize {
        self.sealed.len()
    }

    /// Heap size of all segment engines plus the memtable payload.
    pub fn size_bytes(&self) -> usize {
        self.mem.data.size_bytes()
            + self.sealed.iter().map(|s| s.engine.size_bytes()).sum::<usize>()
    }

    fn assert_query(&self, query: &[u64], tau: u32) {
        assert!(
            tau as usize <= self.cfg.tau_max,
            "tau {tau} exceeds the configured tau_max {}",
            self.cfg.tau_max
        );
        assert_eq!(query.len(), self.words_per_vec, "query width mismatch with indexed data");
    }

    // -----------------------------------------------------------------
    // Mutations
    // -----------------------------------------------------------------

    /// Inserts `row` under `id`. Errors if `id` is already live (use
    /// [`SegmentedGph::upsert`] to replace) or the row is malformed. May
    /// trigger a seal (and then compaction) when the memtable fills; if
    /// that seal fails the error propagates but the inserted row stays
    /// live in the memtable and the engine remains consistent.
    pub fn insert(&mut self, id: u32, row: &[u64]) -> Result<()> {
        if self.loc.contains_key(&id) {
            return Err(HammingError::InvalidParameter(format!(
                "id {id} is already live; use upsert to replace it"
            )));
        }
        let slot = self.mem.data.push_row(row)? as usize;
        self.mem.ids.push(id);
        self.mem.dead.push_live();
        self.loc.insert(id, Loc { seg: MEMTABLE, row: slot });
        if self.mem.dead.live() >= self.seg_cfg.seal_rows {
            self.seal()?;
        }
        Ok(())
    }

    /// Tombstones `id`; returns whether it was live. All-dead segments
    /// are dropped immediately.
    pub fn delete(&mut self, id: u32) -> bool {
        let Some(loc) = self.loc.remove(&id) else {
            return false;
        };
        if loc.seg == MEMTABLE {
            let was_live = self.mem.dead.kill(loc.row);
            debug_assert!(was_live, "loc map pointed at a dead memtable row");
            if self.mem.dead.all_dead() {
                self.mem = Memtable::new(self.dim);
            }
        } else {
            let was_live = self.sealed[loc.seg].dead.kill(loc.row);
            debug_assert!(was_live, "loc map pointed at a dead sealed row");
            if self.sealed[loc.seg].dead.all_dead() {
                self.sealed.remove(loc.seg);
                // Removing a segment shifts the indices of its successors.
                for l in self.loc.values_mut() {
                    if l.seg != MEMTABLE && l.seg > loc.seg {
                        l.seg -= 1;
                    }
                }
            }
        }
        true
    }

    /// Inserts `row` under `id`, replacing any live row with that id.
    /// Returns whether a replacement happened.
    pub fn upsert(&mut self, id: u32, row: &[u64]) -> Result<bool> {
        // Validate before deleting so a malformed row cannot half-apply.
        if row.len() != self.words_per_vec {
            return Err(HammingError::InvalidParameter(format!(
                "row has {} words, {}-dimensional rows take {}",
                row.len(),
                self.dim,
                self.words_per_vec
            )));
        }
        let replaced = self.delete(id);
        self.insert(id, row)?;
        Ok(replaced)
    }

    /// Flushes the memtable into a sealed segment (dropping its dead
    /// rows) and runs the compaction policy. A no-op when the memtable
    /// holds no live rows. On error (a failing `Gph::build`) the engine
    /// is left untouched and fully consistent.
    pub fn seal(&mut self) -> Result<()> {
        if self.mem.dead.live() > 0 {
            let mut data = Dataset::with_capacity(self.dim, self.mem.dead.live());
            let mut ids = Vec::with_capacity(self.mem.dead.live());
            for row in self.mem.dead.iter_live() {
                data.push_row_from(&self.mem.data, row)?;
                ids.push(self.mem.ids[row]);
            }
            // Build before mutating: commit_segment overwrites the ids'
            // memtable locations only once the segment exists.
            let seg = self.build_segment(data, ids)?;
            self.commit_segment(seg);
        }
        self.mem = Memtable::new(self.dim);
        self.maybe_compact()
    }

    /// Rebuilds everything — memtable and every sealed segment — into a
    /// single sealed segment over the live rows. The heavyweight path a
    /// deployment runs off-peak; [`SegmentedGph::seal`]'s incremental
    /// policy keeps day-to-day fan-out bounded without it.
    pub fn compact(&mut self) -> Result<()> {
        let mut data = Dataset::with_capacity(self.dim, self.len());
        let mut ids = Vec::with_capacity(self.len());
        for seg in &self.sealed {
            for row in seg.dead.iter_live() {
                data.push_row_from(seg.engine.data(), row)?;
                ids.push(seg.ids[row]);
            }
        }
        for row in self.mem.dead.iter_live() {
            data.push_row_from(&self.mem.data, row)?;
            ids.push(self.mem.ids[row]);
        }
        // Build the merged segment before dropping anything, so a failed
        // build cannot lose rows.
        let merged = if data.is_empty() { None } else { Some(self.build_segment(data, ids)?) };
        self.sealed.clear();
        self.mem = Memtable::new(self.dim);
        self.loc.clear();
        if let Some(seg) = merged {
            self.commit_segment(seg);
        }
        Ok(())
    }

    /// The compaction policy: drop all-dead segments, then while more
    /// than `max_sealed` segments exist merge the two with the fewest
    /// live rows into one freshly built segment. Merged segments are
    /// built before their sources are removed, so an error leaves every
    /// row reachable.
    fn maybe_compact(&mut self) -> Result<()> {
        let before = self.sealed.len();
        self.sealed.retain(|s| !s.dead.all_dead());
        let mut changed = self.sealed.len() != before;
        while self.sealed.len() > self.seg_cfg.max_sealed {
            let (a, b) = smallest_two(&self.sealed);
            let (hi, lo) = (a.max(b), a.min(b));
            let live = self.sealed[lo].dead.live() + self.sealed[hi].dead.live();
            let mut data = Dataset::with_capacity(self.dim, live);
            let mut ids = Vec::with_capacity(live);
            for idx in [lo, hi] {
                let seg = &self.sealed[idx];
                for row in seg.dead.iter_live() {
                    data.push_row_from(seg.engine.data(), row)?;
                    ids.push(seg.ids[row]);
                }
            }
            let merged = self.build_segment(data, ids)?;
            // Remove the higher index first so the lower stays valid.
            self.sealed.remove(hi);
            self.sealed.remove(lo);
            self.sealed.push(merged);
            changed = true;
        }
        if changed {
            // Segment indices shifted; recompute every location once.
            self.rebuild_loc();
        }
        Ok(())
    }

    /// Recomputes the id → location map from the segments (used after
    /// compaction reshuffles segment indices).
    fn rebuild_loc(&mut self) {
        self.loc.clear();
        for (seg, s) in self.sealed.iter().enumerate() {
            for row in s.dead.iter_live() {
                self.loc.insert(s.ids[row], Loc { seg, row });
            }
        }
        for row in self.mem.dead.iter_live() {
            self.loc.insert(self.mem.ids[row], Loc { seg: MEMTABLE, row });
        }
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// All live rows within `tau` of `query` — external ids, ascending.
    /// Identical to a fresh [`Gph`] over the surviving rows.
    pub fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).0
    }

    /// [`SegmentedGph::search`] with instrumentation summed across
    /// segments. `thresholds` is left empty: each segment allocates its
    /// own vector, so no single allocation describes the query.
    pub fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, QueryStats) {
        self.search_with_trace(query, tau, None)
    }

    /// [`SegmentedGph::search_with_stats`] with an optional trace sink:
    /// when `sink` is `Some`, one [`SegmentTrace`] per sealed segment
    /// (plus one for the memtable scan, tagged
    /// [`gph_obs::trace::MEMTABLE_SEGMENT`]) is appended to it. The
    /// `None` path costs one branch per segment — tracing off is free.
    pub fn search_with_trace(
        &self,
        query: &[u64],
        tau: u32,
        mut sink: Option<&mut Vec<SegmentTrace>>,
    ) -> (Vec<u32>, QueryStats) {
        self.assert_query(query, tau);
        let mut out = Vec::new();
        let mut agg = QueryStats::default();
        for (seg_idx, seg) in self.sealed.iter().enumerate() {
            let res = seg.engine.search_with_stats(query, tau);
            agg.alloc_ns += res.stats.alloc_ns;
            agg.enumerate_ns += res.stats.enumerate_ns;
            agg.candgen_ns += res.stats.candgen_ns;
            agg.verify_ns += res.stats.verify_ns;
            agg.n_signatures += res.stats.n_signatures;
            agg.sum_postings += res.stats.sum_postings;
            agg.n_scanned += res.stats.n_scanned;
            agg.n_candidates += res.stats.n_candidates;
            agg.estimated_cost += res.stats.estimated_cost;
            if let Some(traces) = sink.as_deref_mut() {
                traces.push(Self::trace_of(seg_idx as u32, seg.engine.data().len(), &res.stats));
            }
            for local in res.ids {
                if !seg.dead.is_dead(local as usize) {
                    out.push(seg.ids[local as usize]);
                }
            }
        }
        let t = std::time::Instant::now();
        let mut mem_rows = 0u64;
        let mut mem_results = 0u64;
        for row in self.mem.dead.iter_live() {
            // Memtable rows are found by scanning, not by index probes:
            // they count toward both `n_scanned` and `n_candidates`.
            mem_rows += 1;
            if hamming_core::distance::hamming_within(self.mem.data.row(row), query, tau).is_some()
            {
                out.push(self.mem.ids[row]);
                mem_results += 1;
            }
        }
        agg.n_scanned += mem_rows;
        agg.n_candidates += mem_rows;
        let scan_ns = t.elapsed().as_nanos() as u64;
        agg.verify_ns += scan_ns;
        if let Some(traces) = sink {
            traces.push(SegmentTrace {
                segment: gph_obs::trace::MEMTABLE_SEGMENT,
                rows: mem_rows,
                phases: PhaseNanos { scan_ns, ..PhaseNanos::default() },
                n_scanned: mem_rows,
                n_candidates: mem_rows,
                n_results: mem_results,
                ..SegmentTrace::default()
            });
        }
        out.sort_unstable();
        agg.n_results = out.len() as u64;
        (out, agg)
    }

    /// Maps one sealed engine's [`QueryStats`] onto a trace entry. The
    /// engine's candidate-generation time (probe + dedup, or the scan
    /// fallback when the signature ball outgrows the segment) lands in
    /// `probe_ns`; memtable scans are traced separately under `scan_ns`.
    fn trace_of(segment: u32, rows: usize, st: &QueryStats) -> SegmentTrace {
        SegmentTrace {
            segment,
            rows: rows as u64,
            phases: PhaseNanos {
                alloc_ns: st.alloc_ns,
                enumerate_ns: st.enumerate_ns,
                probe_ns: st.candgen_ns,
                verify_ns: st.verify_ns,
                scan_ns: 0,
            },
            n_signatures: st.n_signatures,
            sum_postings: st.sum_postings,
            n_scanned: st.n_scanned,
            n_candidates: st.n_candidates,
            n_results: st.n_results,
        }
    }

    /// Live rows within `tau` of `query` as `(id, distance)` pairs,
    /// ascending by `(distance, id)` — the refinement primitive the
    /// sharded top-k merge uses.
    pub fn search_with_distances(&self, query: &[u64], tau: u32) -> Vec<(u32, u32)> {
        self.assert_query(query, tau);
        let mut out = Vec::new();
        for seg in &self.sealed {
            for local in seg.engine.search(query, tau) {
                if !seg.dead.is_dead(local as usize) {
                    let d = seg.engine.data().distance_to(local as usize, query);
                    out.push((seg.ids[local as usize], d));
                }
            }
        }
        for row in self.mem.dead.iter_live() {
            if let Some(d) =
                hamming_core::distance::hamming_within(self.mem.data.row(row), query, tau)
            {
                out.push((self.mem.ids[row], d));
            }
        }
        out.sort_unstable_by_key(|&(id, d)| (d, id));
        out
    }

    /// The `k` nearest live rows within `tau_max`, ties broken by id —
    /// identical to [`Gph::search_topk`] over the surviving rows.
    pub fn search_topk(&self, query: &[u64], k: usize) -> Vec<(u32, u32)> {
        self.search_topk_within(query, k, self.cfg.tau_max as u32)
    }

    /// [`SegmentedGph::search_topk`] with the escalation radius capped at
    /// `tau_cap` — identical to [`Gph::search_topk_within`] over the
    /// surviving rows.
    pub fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        self.assert_query(query, tau_cap);
        if k == 0 {
            return Vec::new();
        }
        let mut hits: Vec<(u32, u32)> = Vec::new();
        for seg in &self.sealed {
            // Over-fetch by the segment's dead count: at most that many
            // tombstoned rows can occupy top slots, so k live survivors
            // (when they exist within the cap) are always retained.
            for (local, d) in seg.engine.search_topk_within(query, k + seg.dead.dead(), tau_cap) {
                if !seg.dead.is_dead(local as usize) {
                    hits.push((seg.ids[local as usize], d));
                }
            }
        }
        for row in self.mem.dead.iter_live() {
            if let Some(d) =
                hamming_core::distance::hamming_within(self.mem.data.row(row), query, tau_cap)
            {
                hits.push((self.mem.ids[row], d));
            }
        }
        hits.sort_unstable_by_key(|&(id, d)| (d, id));
        hits.truncate(k);
        hits
    }

    /// Estimated query cost: the sealed engines' allocator estimates plus
    /// the memtable's scan cost (every live row is verified).
    pub fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        self.assert_query(query, tau);
        let sealed: f64 = self.sealed.iter().map(|s| s.engine.estimate_cost(query, tau)).sum();
        sealed + self.mem.dead.live() as f64 * self.cfg.cost_model.c_verify
    }

    /// Estimated cost of the *next* insert: the memtable append plus, if
    /// it would trigger a seal, the cost of building a segment over the
    /// memtable (every row indexed and verified once). The admission
    /// controller prices mutations with this.
    pub fn next_insert_cost(&self) -> f64 {
        let base = self.cfg.cost_model.c_verify;
        if self.mem.dead.live() + 1 >= self.seg_cfg.seal_rows {
            base + self.seg_cfg.seal_rows as f64
                * (self.cfg.cost_model.c_access + self.cfg.cost_model.c_verify)
        } else {
            base
        }
    }

    /// Estimated cost of a delete (an id lookup plus a bit flip).
    pub fn delete_cost(&self) -> f64 {
        self.cfg.cost_model.c_access
    }

    // -----------------------------------------------------------------
    // Snapshots
    // -----------------------------------------------------------------

    /// Serializes the engine: the build config, the memtable (rows, ids,
    /// tombstones), and every sealed segment (ids + tombstones + the
    /// segment's full [`Gph`] snapshot) as one CRC-protected section
    /// each. Pending tombstones round-trip; nothing is compacted away.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new(SEGMENT_MAGIC, SEGMENT_VERSION);
        w.section("config", &encode_gph_config(&self.cfg));
        let mut hdr = Vec::with_capacity(32);
        hdr.put_u64_le(self.dim as u64);
        hdr.put_u64_le(self.seg_cfg.seal_rows as u64);
        hdr.put_u64_le(self.seg_cfg.max_sealed as u64);
        hdr.put_u64_le(self.sealed.len() as u64);
        w.section("seghdr", &hdr);
        w.section("memdata", &hamming_core::io::encode_dataset(&self.mem.data));
        let mut mem_ids = Vec::with_capacity(8 + self.mem.ids.len() * 4);
        mem_ids.put_u64_le(self.mem.ids.len() as u64);
        for &id in &self.mem.ids {
            mem_ids.put_u32_le(id);
        }
        w.section("memids", &mem_ids);
        w.section("memdead", &self.mem.dead.encode());
        for (i, seg) in self.sealed.iter().enumerate() {
            let engine = seg.engine.to_bytes();
            let dead = seg.dead.encode();
            let mut body = Vec::with_capacity(24 + seg.ids.len() * 4 + dead.len() + engine.len());
            body.put_u64_le(seg.ids.len() as u64);
            for &id in &seg.ids {
                body.put_u32_le(id);
            }
            body.put_u64_le(dead.len() as u64);
            body.put_slice(&dead);
            body.put_u64_le(engine.len() as u64);
            body.put_slice(&engine);
            w.section(&format!("seg{i}"), &body);
        }
        w.finish()
    }

    /// Restores an engine from [`SegmentedGph::to_bytes`] bytes. The
    /// restored engine is query-for-query identical to the saved one, and
    /// — because the build config travels with the data — behaves
    /// identically under further mutations too.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let r = SectionReader::parse(SEGMENT_MAGIC, SEGMENT_VERSION, bytes)?;
        let cfg = decode_gph_config(r.section("config")?)?;
        let mut hr = ByteReader::new(r.section("seghdr")?);
        let dim = hr.u64("dim")? as usize;
        let seal_rows = hr.u64("seal_rows")? as usize;
        let max_sealed = hr.u64("max_sealed")? as usize;
        let n_sealed = hr.u64("sealed segment count")? as usize;
        hr.finish("segment header")?;
        let mut out = SegmentedGph::new(dim, cfg, SegmentConfig { seal_rows, max_sealed })?;

        let mem_data = hamming_core::io::decode_dataset(r.section("memdata")?)?;
        if mem_data.dim() != dim {
            return Err(HammingError::Corrupt(format!(
                "memtable holds {}-dimensional rows, header says {dim}",
                mem_data.dim()
            )));
        }
        let mut ir = ByteReader::new(r.section("memids")?);
        let n_ids = ir.len(4, "memtable id count")?;
        let mut mem_ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            mem_ids.push(ir.u32("memtable id")?);
        }
        ir.finish("memtable ids")?;
        let mem_dead = Tombstones::decode(r.section("memdead")?)?;
        if mem_ids.len() != mem_data.len() || mem_dead.len() != mem_data.len() {
            return Err(HammingError::Corrupt(format!(
                "memtable sections disagree: {} rows, {} ids, {} tombstone slots",
                mem_data.len(),
                mem_ids.len(),
                mem_dead.len()
            )));
        }
        out.mem = Memtable { data: mem_data, ids: mem_ids, dead: mem_dead };

        for i in 0..n_sealed {
            let mut sr = ByteReader::new(r.section(&format!("seg{i}"))?);
            let n = sr.len(4, "segment id count")?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(sr.u32("segment id")?);
            }
            let dead_len = sr.len(1, "segment tombstone length")?;
            let dead = Tombstones::decode(sr.bytes(dead_len, "segment tombstones")?)?;
            let eng_len = sr.len(1, "segment engine length")?;
            let engine = Gph::from_bytes(sr.bytes(eng_len, "segment engine")?)?;
            sr.finish("sealed segment")?;
            if engine.data().len() != ids.len() || dead.len() != ids.len() {
                return Err(HammingError::Corrupt(format!(
                    "segment {i} sections disagree: {} rows, {} ids, {} tombstone slots",
                    engine.data().len(),
                    ids.len(),
                    dead.len()
                )));
            }
            if engine.data().dim() != dim {
                return Err(HammingError::Corrupt(format!(
                    "segment {i} indexes {}-dimensional rows, header says {dim}",
                    engine.data().dim()
                )));
            }
            if engine.tau_max() != out.cfg.tau_max {
                return Err(HammingError::Corrupt(format!(
                    "segment {i} serves tau_max {}, config says {}",
                    engine.tau_max(),
                    out.cfg.tau_max
                )));
            }
            out.sealed.push(Sealed { engine, ids, dead });
        }
        out.rebuild_loc();
        // Duplicate live ids would collide in the map; the live count
        // must match the per-segment live sums exactly.
        let live_sum =
            out.mem.dead.live() + out.sealed.iter().map(|s| s.dead.live()).sum::<usize>();
        if out.loc.len() != live_sum {
            return Err(HammingError::Corrupt(format!(
                "{} distinct live ids across segments, but {} live rows",
                out.loc.len(),
                live_sum
            )));
        }
        Ok(out)
    }

    /// Writes [`SegmentedGph::to_bytes`] to `path` atomically.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        crate::snapshot::write_atomic(path.as_ref(), &self.to_bytes())
    }

    /// Reads an engine snapshot from `path`.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        SegmentedGph::from_bytes(&std::fs::read(path)?)
    }
}

/// Indices of the two segments with the fewest live rows. Caller ensures
/// `sealed.len() >= 2`.
fn smallest_two(sealed: &[Sealed]) -> (usize, usize) {
    let mut order: Vec<usize> = (0..sealed.len()).collect();
    order.sort_by_key(|&i| (sealed[i].dead.live(), i));
    (order[0], order[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_opt::PartitionStrategy;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> GphConfig {
        let mut cfg = GphConfig::new(3, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 11 };
        cfg
    }

    fn seg_cfg() -> SegmentConfig {
        SegmentConfig { seal_rows: 8, max_sealed: 2 }
    }

    fn random_rows(dim: usize, n: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4))).words().to_vec())
            .collect()
    }

    /// Reference: a fresh Gph over the surviving rows, ids mapped back.
    fn reference_search(eng: &SegmentedGph, query: &[u64], tau: u32) -> Vec<u32> {
        let ids = eng.live_ids();
        let mut ds = Dataset::new(eng.dim());
        for &id in &ids {
            ds.push_row(eng.get(id).unwrap()).unwrap();
        }
        if ds.is_empty() {
            return Vec::new();
        }
        let fresh = Gph::build(ds, eng.config()).unwrap();
        fresh.search(query, tau).into_iter().map(|local| ids[local as usize]).collect()
    }

    #[test]
    fn inserts_seal_and_stay_exact() {
        let rows = random_rows(48, 40, 1);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32 * 3, row).unwrap();
        }
        // 40 inserts at seal_rows=8 and max_sealed=2 forced seals and
        // compactions along the way.
        assert!(eng.num_sealed() >= 1 && eng.num_sealed() <= 2);
        assert_eq!(eng.len(), 40);
        for (qi, q) in rows.iter().enumerate().step_by(7) {
            for tau in [0u32, 3, 8] {
                assert_eq!(eng.search(q, tau), reference_search(&eng, q, tau), "qi={qi} tau={tau}");
            }
        }
    }

    #[test]
    fn delete_unknown_id_is_a_noop() {
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        assert!(!eng.delete(99));
        eng.insert(1, &random_rows(32, 1, 2)[0]).unwrap();
        assert!(!eng.delete(2));
        assert_eq!(eng.len(), 1);
        assert!(eng.delete(1));
        assert!(!eng.delete(1), "second delete of the same id is a no-op");
    }

    #[test]
    fn delete_all_then_query_returns_nothing() {
        let rows = random_rows(32, 20, 3);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.seal().unwrap();
        for i in 0..20 {
            assert!(eng.delete(i));
        }
        assert!(eng.is_empty());
        assert_eq!(eng.num_sealed(), 0, "all-dead segments are dropped");
        assert!(eng.search(&rows[0], 8).is_empty());
        assert!(eng.search_topk(&rows[0], 5).is_empty());
        // The engine keeps working after total deletion.
        eng.insert(7, &rows[7]).unwrap();
        assert_eq!(eng.search(&rows[7], 0), vec![7]);
    }

    #[test]
    fn insert_of_live_id_errors_and_upsert_replaces() {
        let rows = random_rows(32, 3, 4);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        eng.insert(5, &rows[0]).unwrap();
        assert!(eng.insert(5, &rows[1]).is_err(), "duplicate insert must error");
        assert!(eng.upsert(5, &rows[1]).unwrap(), "upsert of a live id replaces");
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.get(5).unwrap(), rows[1].as_slice());
        assert_eq!(eng.search(&rows[0], 0), Vec::<u32>::new());
        assert_eq!(eng.search(&rows[1], 0), vec![5]);
        assert!(!eng.upsert(6, &rows[2]).unwrap(), "upsert of a fresh id inserts");
        assert_eq!(eng.len(), 2);
    }

    #[test]
    fn upsert_of_sealed_row_replaces_across_segments() {
        let rows = random_rows(32, 10, 5);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.seal().unwrap();
        // id 3 now lives in a sealed segment; replace it.
        assert!(eng.upsert(3, &rows[9]).unwrap());
        let hits = eng.search(&rows[9], 0);
        assert!(hits.contains(&3));
        assert!(!eng.search(&rows[3], 0).contains(&3));
    }

    #[test]
    fn topk_filters_tombstones_exactly() {
        let rows = random_rows(32, 30, 6);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.seal().unwrap();
        let q = rows[0].clone();
        // Delete the nearest rows so tombstoned hits would dominate a
        // naive per-segment top-k.
        let nearest = eng.search_topk(&q, 5);
        for &(id, _) in &nearest {
            eng.delete(id);
        }
        let got = eng.search_topk(&q, 5);
        let ids = eng.live_ids();
        let mut expect: Vec<(u32, u32)> = ids
            .iter()
            .map(|&id| (id, hamming_core::distance::hamming(eng.get(id).unwrap(), &q)))
            .filter(|&(_, d)| d <= 8)
            .collect();
        expect.sort_unstable_by_key(|&(id, d)| (d, id));
        expect.truncate(5);
        assert_eq!(got, expect);
    }

    #[test]
    fn snapshot_with_pending_tombstones_roundtrips() {
        let rows = random_rows(48, 25, 7);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        // Leave tombstones pending in both a sealed segment and the
        // memtable (25 rows over seal_rows=8 leaves a partial memtable).
        eng.delete(2);
        eng.delete(24);
        let restored = SegmentedGph::from_bytes(&eng.to_bytes()).unwrap();
        assert_eq!(restored.len(), eng.len());
        assert_eq!(restored.live_ids(), eng.live_ids());
        assert_eq!(restored.num_sealed(), eng.num_sealed());
        for q in rows.iter().step_by(5) {
            for tau in [0u32, 4, 8] {
                assert_eq!(restored.search(q, tau), eng.search(q, tau));
            }
            assert_eq!(restored.search_topk(q, 6), eng.search_topk(q, 6));
        }
        // Further mutations behave identically on both copies.
        let mut a = eng;
        let mut b = restored;
        let extra = random_rows(48, 10, 8);
        for (i, row) in extra.iter().enumerate() {
            a.upsert(100 + i as u32, row).unwrap();
            b.upsert(100 + i as u32, row).unwrap();
        }
        a.delete(5);
        b.delete(5);
        for q in extra.iter() {
            assert_eq!(a.search(q, 8), b.search(q, 8));
        }
    }

    #[test]
    fn corrupt_segment_snapshots_are_rejected() {
        let rows = random_rows(32, 12, 9);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.delete(3);
        let bytes = eng.to_bytes();
        assert!(SegmentedGph::from_bytes(&bytes).is_ok());
        for i in (0..bytes.len()).step_by(53) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            match SegmentedGph::from_bytes(&bad) {
                Err(HammingError::Corrupt(_)) => {}
                Err(other) => panic!("flip at {i}: unexpected error kind {other}"),
                Ok(_) => panic!("flip at {i} went undetected"),
            }
        }
        for cut in (0..bytes.len()).step_by(61) {
            assert!(SegmentedGph::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn explicit_compact_preserves_results() {
        let rows = random_rows(48, 30, 10);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.delete(1);
        eng.delete(17);
        let before: Vec<Vec<u32>> = rows.iter().map(|q| eng.search(q, 6)).collect();
        eng.compact().unwrap();
        assert_eq!(eng.num_sealed(), 1);
        assert_eq!(eng.stored_rows(), eng.len(), "compaction drops dead rows");
        let after: Vec<Vec<u32>> = rows.iter().map(|q| eng.search(q, 6)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn failed_seal_leaves_engine_consistent() {
        // m > dim makes every Gph::build fail; the seal must error
        // without corrupting the location map or losing rows.
        let mut bad_cfg = GphConfig::new(64, 4);
        bad_cfg.strategy = PartitionStrategy::Original;
        let mut eng =
            SegmentedGph::new(16, bad_cfg, SegmentConfig { seal_rows: 2, max_sealed: 2 }).unwrap();
        let rows = random_rows(16, 3, 11);
        eng.insert(1, &rows[0]).unwrap();
        // The second insert triggers a seal, which fails.
        assert!(eng.insert(2, &rows[1]).is_err());
        // Both rows stay live and addressable in the memtable; no panic,
        // no phantom segment.
        assert_eq!(eng.len(), 2);
        assert_eq!(eng.num_sealed(), 0);
        assert_eq!(eng.get(1).unwrap(), rows[0].as_slice());
        assert_eq!(eng.get(2).unwrap(), rows[1].as_slice());
        assert_eq!(eng.search(&rows[1], 0), vec![2]);
        assert!(eng.compact().is_err(), "compaction fails too, but harmlessly");
        assert_eq!(eng.len(), 2);
        assert!(eng.delete(2));
        assert_eq!(eng.len(), 1);
    }

    #[test]
    fn empty_engine_serves_and_roundtrips() {
        let eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        assert!(eng.search(&[0u64], 4).is_empty());
        assert!(eng.search_topk(&[0u64], 3).is_empty());
        assert_eq!(eng.estimate_cost(&[0u64], 4), 0.0);
        let restored = SegmentedGph::from_bytes(&eng.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }
}

//! Live updates for GPH: an LSM-style segmented engine.
//!
//! [`crate::Gph`] is build-once: its postings reference dense row ids and
//! its partitioning is the product of an expensive offline optimization,
//! so per-insert rebuilds are untenable. [`SegmentedGph`] makes the
//! engine mutable the way log-structured stores do:
//!
//! * a mutable front **memtable** — rows appended to a [`Dataset`] with a
//!   [`Tombstones`] bitmap for deletes, answered by early-exit linear
//!   scan (exact, and cheap while the memtable is small);
//! * a list of sealed **immutable [`Gph`] segments**, each with its own
//!   id map and tombstone bitmap; deletes flip a bit, queries filter;
//! * a size-triggered **seal**: when the memtable reaches
//!   [`SegmentConfig::seal_rows`] live rows it is rebuilt into a sealed
//!   segment (dead rows dropped on the way) using the configured
//!   partition optimizer;
//! * a **compaction policy**: all-dead segments are dropped outright, and
//!   whenever more than [`SegmentConfig::max_sealed`] segments exist the
//!   two smallest are merged into one freshly built segment, bounding
//!   per-query segment fan-out the way LSM level merges bound sstable
//!   counts.
//!
//! Rows are addressed by caller-chosen `u32` ids, stable across seals and
//! compactions. Every query is **provably identical** to a fresh [`Gph`]
//! built over the surviving rows (the pigeonhole filter is exact for any
//! partitioning, and tombstone filtering removes exactly the dead rows);
//! `tests/segment_properties.rs` pins this over arbitrary
//! insert/delete/seal/compact interleavings, including through a
//! snapshot/restore round-trip.

use crate::coldstore::{ColdSegment, PageCacheStats, SegmentFile, SpillStore, StorageMode};
use crate::engine::{Gph, GphConfig, QueryStats, SearchResult};
use crate::snapshot::{decode_gph_config, encode_gph_config};
use bytes::BufMut;
use gph_obs::{PhaseNanos, SegmentTrace};
use hamming_core::error::{HammingError, Result};
use hamming_core::io::{crc32, ByteReader, Footer, OffsetWriter, SectionReader, PAGE_SIZE};
use hamming_core::tombstone::Tombstones;
use hamming_core::{words_for, Dataset};
use std::collections::HashMap;
use std::sync::Arc;

/// Magic of a segmented-engine snapshot.
pub const SEGMENT_MAGIC: [u8; 4] = *b"GPHS";

/// Current segmented-snapshot format version. Version 2 was never
/// shipped: the segmented container jumped from 1 straight to 3 so that
/// every offset-addressed format (GPHE, GPHS) shares the same
/// generation number — see `FORMAT.md`.
pub const SEGMENT_VERSION: u32 = 3;

// GPHS v3 slot indices (see `FORMAT.md`).
pub(crate) const SEG_SLOT_CONFIG: usize = 0;
pub(crate) const SEG_SLOT_SEGHDR: usize = 1;
pub(crate) const SEG_SLOT_MEMDATA: usize = 2;
pub(crate) const SEG_SLOT_MEMIDS: usize = 3;
pub(crate) const SEG_SLOT_MEMDEAD: usize = 4;
pub(crate) const SEG_SLOT_BLOBS: usize = 5;
pub(crate) const SEG_SLOT_SEGTAB: usize = 6;
pub(crate) const N_SEG_SLOTS: usize = 7;

/// Knobs of the segment lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct SegmentConfig {
    /// Live memtable rows that trigger a seal (build into an immutable
    /// segment). Smaller values keep scans short but build more often.
    pub seal_rows: usize,
    /// Sealed segments tolerated before compaction merges the two
    /// smallest; bounds per-query fan-out.
    pub max_sealed: usize,
    /// Where sealed segments live: decoded on the heap
    /// ([`StorageMode::Resident`], the default) or paged on demand from
    /// their snapshot blobs ([`StorageMode::FileBacked`]). The memtable
    /// is always resident. Runtime policy, not persisted in snapshots.
    pub storage: StorageMode,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig { seal_rows: 4096, max_sealed: 6, storage: StorageMode::Resident }
    }
}

/// Where a live id currently resides.
#[derive(Clone, Copy, Debug)]
struct Loc {
    /// Sealed-segment index, or `usize::MAX` for the memtable.
    seg: usize,
    /// Row index within that segment's dataset.
    row: usize,
}

const MEMTABLE: usize = usize::MAX;

/// The mutable front segment.
struct Memtable {
    data: Dataset,
    ids: Vec<u32>,
    dead: Tombstones,
}

impl Memtable {
    fn new(dim: usize) -> Self {
        Memtable { data: Dataset::new(dim), ids: Vec::new(), dead: Tombstones::new() }
    }
}

/// Where a sealed segment's engine actually lives: decoded on the heap,
/// or paged on demand from its GPHE v3 blob. Both answer every query
/// identically; `Cold` trades latency for a bounded memory footprint.
enum SegStore {
    Resident(Gph),
    Cold(ColdSegment),
}

impl SegStore {
    fn len(&self) -> usize {
        match self {
            SegStore::Resident(g) => g.data().len(),
            SegStore::Cold(c) => c.len(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            SegStore::Resident(g) => g.data().dim(),
            SegStore::Cold(c) => c.dim(),
        }
    }

    fn tau_max(&self) -> usize {
        match self {
            SegStore::Resident(g) => g.tau_max(),
            SegStore::Cold(c) => c.tau_max(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            SegStore::Resident(g) => g.size_bytes(),
            SegStore::Cold(c) => c.size_bytes(),
        }
    }

    fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        match self {
            SegStore::Resident(g) => g.search(query, tau),
            SegStore::Cold(c) => c.search(query, tau),
        }
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> SearchResult {
        match self {
            SegStore::Resident(g) => g.search_with_stats(query, tau),
            SegStore::Cold(c) => c.search_with_stats(query, tau),
        }
    }

    fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        match self {
            SegStore::Resident(g) => g.search_topk_within(query, k, tau_cap),
            SegStore::Cold(c) => c.search_topk_within(query, k, tau_cap),
        }
    }

    fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        match self {
            SegStore::Resident(g) => g.estimate_cost(query, tau),
            SegStore::Cold(c) => c.estimate_cost(query, tau),
        }
    }

    fn distance_to(&self, row: usize, query: &[u64]) -> u32 {
        match self {
            SegStore::Resident(g) => g.data().distance_to(row, query),
            SegStore::Cold(c) => c.distance_to(row, query),
        }
    }

    /// The segment's local row `row`, owned (cold rows are copied out of
    /// the page cache).
    fn row_of(&self, row: usize) -> Vec<u64> {
        match self {
            SegStore::Resident(g) => g.data().row(row).to_vec(),
            SegStore::Cold(c) => c.row(row),
        }
    }

    /// Appends local row `row` to `ds` (the seal/compaction merge path).
    fn append_row_to(&self, ds: &mut Dataset, row: usize) -> Result<()> {
        match self {
            SegStore::Resident(g) => ds.push_row_from(g.data(), row).map(|_| ()),
            SegStore::Cold(c) => ds.push_row(&c.row(row)).map(|_| ()),
        }
    }

    /// The segment's GPHE snapshot blob. Resident engines encode; cold
    /// segments read their backing blob back verbatim.
    fn engine_bytes(&self) -> Result<Vec<u8>> {
        match self {
            SegStore::Resident(g) => Ok(g.to_bytes()),
            SegStore::Cold(c) => c.engine_blob(),
        }
    }
}

/// One sealed, immutable segment: a frozen engine (resident or
/// file-backed) plus the map from its dense local row ids to external
/// ids, and the tombstones accumulated since it was built.
struct Sealed {
    store: SegStore,
    ids: Vec<u32>,
    dead: Tombstones,
}

/// Segment-level diagnostics ([`SegmentedGph::segment_info`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Rows stored (live + tombstoned).
    pub rows: usize,
    /// Rows still live.
    pub live: usize,
    /// Whether this is the mutable memtable (always the last entry).
    pub memtable: bool,
}

/// A live-updatable GPH engine: a scan-served memtable in front of
/// sealed immutable [`Gph`] segments, merged at query time.
///
/// # Example
///
/// ```
/// use gph::engine::GphConfig;
/// use gph::partition_opt::PartitionStrategy;
/// use gph::segment::{SegmentConfig, SegmentedGph};
///
/// let mut cfg = GphConfig::new(2, 4);
/// cfg.strategy = PartitionStrategy::Original;
/// let seg_cfg = SegmentConfig { seal_rows: 2, max_sealed: 2, ..SegmentConfig::default() };
/// let mut engine = SegmentedGph::new(16, cfg, seg_cfg).unwrap();
///
/// // Insert rows under caller-chosen ids; seals happen automatically.
/// engine.insert(7, &[0b0000_0000_1111_0000]).unwrap();
/// engine.insert(3, &[0b0000_0000_1111_0001]).unwrap();
/// engine.insert(9, &[0b1111_0000_0000_0000]).unwrap();
/// assert_eq!(engine.search(&[0b0000_0000_1111_0000], 1), vec![3, 7]);
///
/// // Delete and upsert keep queries exact.
/// assert!(engine.delete(7));
/// engine.upsert(9, &[0b0000_0000_1111_0011]).unwrap();
/// assert_eq!(engine.search(&[0b0000_0000_1111_0000], 2), vec![3, 9]);
/// assert_eq!(engine.len(), 2);
/// ```
pub struct SegmentedGph {
    cfg: GphConfig,
    seg_cfg: SegmentConfig,
    dim: usize,
    words_per_vec: usize,
    mem: Memtable,
    sealed: Vec<Sealed>,
    /// External id → current location, live rows only.
    loc: HashMap<u32, Loc>,
    /// Spill directory + shared page cache for file-backed segments,
    /// created lazily on the first cold seal (or eagerly by a
    /// file-backed restore). `None` while fully resident.
    spill: Option<Arc<SpillStore>>,
}

impl SegmentedGph {
    /// Creates an empty engine for `dim`-dimensional rows.
    pub fn new(dim: usize, cfg: GphConfig, seg_cfg: SegmentConfig) -> Result<Self> {
        if dim == 0 {
            return Err(HammingError::InvalidParameter("zero-dimensional data".into()));
        }
        if seg_cfg.seal_rows == 0 || seg_cfg.max_sealed == 0 {
            return Err(HammingError::InvalidParameter(
                "seal_rows and max_sealed must be positive".into(),
            ));
        }
        Ok(SegmentedGph {
            cfg,
            seg_cfg,
            dim,
            words_per_vec: words_for(dim),
            mem: Memtable::new(dim),
            sealed: Vec::new(),
            loc: HashMap::new(),
            spill: None,
        })
    }

    /// Builds an engine whose initial contents are `data` under external
    /// ids `ids`, sealed immediately into one segment — the bulk-load
    /// path the serving layer uses when constructing a fleet from a
    /// frozen dataset.
    pub fn build_sealed(
        data: Dataset,
        ids: Vec<u32>,
        cfg: GphConfig,
        seg_cfg: SegmentConfig,
    ) -> Result<Self> {
        if data.len() != ids.len() {
            return Err(HammingError::InvalidParameter(format!(
                "{} rows but {} ids",
                data.len(),
                ids.len()
            )));
        }
        let mut out = SegmentedGph::new(data.dim(), cfg, seg_cfg)?;
        if !data.is_empty() {
            out.push_built_segment(data, ids)?;
        }
        Ok(out)
    }

    /// Builds a sealed segment over `data` without touching any engine
    /// state — the build-then-commit half of every seal/compaction, so a
    /// failed `Gph::build` (e.g. an invalid config) leaves the engine
    /// fully consistent. (Creating the spill store early is harmless on
    /// failure: it is just an empty temp directory.)
    fn build_segment(&mut self, data: Dataset, ids: Vec<u32>) -> Result<Sealed> {
        let n = data.len();
        let engine = Gph::build(data, &self.cfg)?;
        let store = self.store_engine(engine)?;
        Ok(Sealed { store, ids, dead: Tombstones::all_live(n) })
    }

    /// Places a freshly built engine according to the configured
    /// [`StorageMode`]: kept resident, or encoded to a GPHE v3 blob in
    /// the spill store and reopened cold.
    fn store_engine(&mut self, engine: Gph) -> Result<SegStore> {
        match self.seg_cfg.storage {
            StorageMode::Resident => Ok(SegStore::Resident(engine)),
            StorageMode::FileBacked { budget_bytes } => {
                let spill = self.spill_store(budget_bytes)?;
                let file = Arc::new(spill.write_blob(&engine.to_bytes())?);
                let len = file.len();
                Ok(SegStore::Cold(ColdSegment::open(file, Arc::clone(spill.cache()), 0, len)?))
            }
        }
    }

    /// The spill store, created on first use.
    fn spill_store(&mut self, budget_bytes: u64) -> Result<Arc<SpillStore>> {
        if self.spill.is_none() {
            self.spill = Some(SpillStore::temp(budget_bytes)?);
        }
        Ok(Arc::clone(self.spill.as_ref().unwrap()))
    }

    /// Page-cache counters when any segment is file-backed; `None` while
    /// fully resident.
    pub fn page_cache_stats(&self) -> Option<PageCacheStats> {
        self.spill.as_ref().map(|s| s.cache().stats())
    }

    /// Registers a built segment's ids in the location map (overwriting
    /// any stale entries, e.g. memtable rows that just sealed) and
    /// appends it.
    fn commit_segment(&mut self, seg: Sealed) {
        let seg_idx = self.sealed.len();
        for (row, &id) in seg.ids.iter().enumerate() {
            self.loc.insert(id, Loc { seg: seg_idx, row });
        }
        self.sealed.push(seg);
    }

    /// Builds a `Gph` over `data` and appends it as a sealed segment,
    /// registering its ids (which must be globally fresh and distinct).
    fn push_built_segment(&mut self, data: Dataset, ids: Vec<u32>) -> Result<()> {
        let mut seen = std::collections::HashSet::with_capacity(ids.len());
        for &id in &ids {
            if self.loc.contains_key(&id) || !seen.insert(id) {
                return Err(HammingError::InvalidParameter(format!("duplicate live id {id}")));
            }
        }
        let seg = self.build_segment(data, ids)?;
        self.commit_segment(seg);
        Ok(())
    }

    /// Dimensionality of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per row.
    pub fn words_per_vec(&self) -> usize {
        self.words_per_vec
    }

    /// Largest threshold the engine serves.
    pub fn tau_max(&self) -> usize {
        self.cfg.tau_max
    }

    /// The build configuration (used for every seal and compaction).
    pub fn config(&self) -> &GphConfig {
        &self.cfg
    }

    /// The segment-lifecycle knobs.
    pub fn segment_config(&self) -> SegmentConfig {
        self.seg_cfg
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.loc.len()
    }

    /// Whether no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.loc.is_empty()
    }

    /// Rows held in storage, including tombstoned ones awaiting
    /// compaction.
    pub fn stored_rows(&self) -> usize {
        self.mem.data.len() + self.sealed.iter().map(|s| s.ids.len()).sum::<usize>()
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: u32) -> bool {
        self.loc.contains_key(&id)
    }

    /// The live ids, ascending.
    pub fn live_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.loc.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The stored row for a live `id`, owned (file-backed segments copy
    /// the row out of the page cache).
    pub fn get(&self, id: u32) -> Option<Vec<u64>> {
        let loc = self.loc.get(&id)?;
        Some(if loc.seg == MEMTABLE {
            self.mem.data.row(loc.row).to_vec()
        } else {
            self.sealed[loc.seg].store.row_of(loc.row)
        })
    }

    /// Per-segment diagnostics, sealed segments first, memtable last.
    pub fn segment_info(&self) -> Vec<SegmentInfo> {
        let mut out: Vec<SegmentInfo> = self
            .sealed
            .iter()
            .map(|s| SegmentInfo { rows: s.ids.len(), live: s.dead.live(), memtable: false })
            .collect();
        out.push(SegmentInfo {
            rows: self.mem.data.len(),
            live: self.mem.dead.live(),
            memtable: true,
        });
        out
    }

    /// Sealed segments currently held.
    pub fn num_sealed(&self) -> usize {
        self.sealed.len()
    }

    /// Heap size of all segment engines plus the memtable payload. For
    /// file-backed segments this counts only their resident metadata;
    /// paged bytes are accounted by the shared cache
    /// ([`SegmentedGph::page_cache_stats`]).
    pub fn size_bytes(&self) -> usize {
        self.mem.data.size_bytes() + self.sealed.iter().map(|s| s.store.size_bytes()).sum::<usize>()
    }

    fn assert_query(&self, query: &[u64], tau: u32) {
        assert!(
            tau as usize <= self.cfg.tau_max,
            "tau {tau} exceeds the configured tau_max {}",
            self.cfg.tau_max
        );
        assert_eq!(query.len(), self.words_per_vec, "query width mismatch with indexed data");
    }

    // -----------------------------------------------------------------
    // Mutations
    // -----------------------------------------------------------------

    /// Inserts `row` under `id`. Errors if `id` is already live (use
    /// [`SegmentedGph::upsert`] to replace) or the row is malformed. May
    /// trigger a seal (and then compaction) when the memtable fills; if
    /// that seal fails the error propagates but the inserted row stays
    /// live in the memtable and the engine remains consistent.
    pub fn insert(&mut self, id: u32, row: &[u64]) -> Result<()> {
        if self.loc.contains_key(&id) {
            return Err(HammingError::InvalidParameter(format!(
                "id {id} is already live; use upsert to replace it"
            )));
        }
        let slot = self.mem.data.push_row(row)? as usize;
        self.mem.ids.push(id);
        self.mem.dead.push_live();
        self.loc.insert(id, Loc { seg: MEMTABLE, row: slot });
        if self.mem.dead.live() >= self.seg_cfg.seal_rows {
            self.seal()?;
        }
        Ok(())
    }

    /// Tombstones `id`; returns whether it was live. All-dead segments
    /// are dropped immediately.
    pub fn delete(&mut self, id: u32) -> bool {
        let Some(loc) = self.loc.remove(&id) else {
            return false;
        };
        if loc.seg == MEMTABLE {
            let was_live = self.mem.dead.kill(loc.row);
            debug_assert!(was_live, "loc map pointed at a dead memtable row");
            if self.mem.dead.all_dead() {
                self.mem = Memtable::new(self.dim);
            }
        } else {
            let was_live = self.sealed[loc.seg].dead.kill(loc.row);
            debug_assert!(was_live, "loc map pointed at a dead sealed row");
            if self.sealed[loc.seg].dead.all_dead() {
                self.sealed.remove(loc.seg);
                // Removing a segment shifts the indices of its successors.
                for l in self.loc.values_mut() {
                    if l.seg != MEMTABLE && l.seg > loc.seg {
                        l.seg -= 1;
                    }
                }
            }
        }
        true
    }

    /// Inserts `row` under `id`, replacing any live row with that id.
    /// Returns whether a replacement happened.
    pub fn upsert(&mut self, id: u32, row: &[u64]) -> Result<bool> {
        // Validate before deleting so a malformed row cannot half-apply.
        if row.len() != self.words_per_vec {
            return Err(HammingError::InvalidParameter(format!(
                "row has {} words, {}-dimensional rows take {}",
                row.len(),
                self.dim,
                self.words_per_vec
            )));
        }
        let replaced = self.delete(id);
        self.insert(id, row)?;
        Ok(replaced)
    }

    /// Flushes the memtable into a sealed segment (dropping its dead
    /// rows) and runs the compaction policy. A no-op when the memtable
    /// holds no live rows. On error (a failing `Gph::build`) the engine
    /// is left untouched and fully consistent.
    pub fn seal(&mut self) -> Result<()> {
        if self.mem.dead.live() > 0 {
            let mut data = Dataset::with_capacity(self.dim, self.mem.dead.live());
            let mut ids = Vec::with_capacity(self.mem.dead.live());
            for row in self.mem.dead.iter_live() {
                data.push_row_from(&self.mem.data, row)?;
                ids.push(self.mem.ids[row]);
            }
            // Build before mutating: commit_segment overwrites the ids'
            // memtable locations only once the segment exists.
            let seg = self.build_segment(data, ids)?;
            self.commit_segment(seg);
        }
        self.mem = Memtable::new(self.dim);
        self.maybe_compact()
    }

    /// Rebuilds everything — memtable and every sealed segment — into a
    /// single sealed segment over the live rows. The heavyweight path a
    /// deployment runs off-peak; [`SegmentedGph::seal`]'s incremental
    /// policy keeps day-to-day fan-out bounded without it.
    pub fn compact(&mut self) -> Result<()> {
        let mut data = Dataset::with_capacity(self.dim, self.len());
        let mut ids = Vec::with_capacity(self.len());
        for seg in &self.sealed {
            for row in seg.dead.iter_live() {
                seg.store.append_row_to(&mut data, row)?;
                ids.push(seg.ids[row]);
            }
        }
        for row in self.mem.dead.iter_live() {
            data.push_row_from(&self.mem.data, row)?;
            ids.push(self.mem.ids[row]);
        }
        // Build the merged segment before dropping anything, so a failed
        // build cannot lose rows.
        let merged = if data.is_empty() { None } else { Some(self.build_segment(data, ids)?) };
        self.sealed.clear();
        self.mem = Memtable::new(self.dim);
        self.loc.clear();
        if let Some(seg) = merged {
            self.commit_segment(seg);
        }
        Ok(())
    }

    /// The compaction policy: drop all-dead segments, then while more
    /// than `max_sealed` segments exist merge the two with the fewest
    /// live rows into one freshly built segment. Merged segments are
    /// built before their sources are removed, so an error leaves every
    /// row reachable.
    fn maybe_compact(&mut self) -> Result<()> {
        let before = self.sealed.len();
        self.sealed.retain(|s| !s.dead.all_dead());
        let mut changed = self.sealed.len() != before;
        while self.sealed.len() > self.seg_cfg.max_sealed {
            let (a, b) = smallest_two(&self.sealed);
            let (hi, lo) = (a.max(b), a.min(b));
            let live = self.sealed[lo].dead.live() + self.sealed[hi].dead.live();
            let mut data = Dataset::with_capacity(self.dim, live);
            let mut ids = Vec::with_capacity(live);
            for idx in [lo, hi] {
                let seg = &self.sealed[idx];
                for row in seg.dead.iter_live() {
                    seg.store.append_row_to(&mut data, row)?;
                    ids.push(seg.ids[row]);
                }
            }
            let merged = self.build_segment(data, ids)?;
            // Remove the higher index first so the lower stays valid.
            self.sealed.remove(hi);
            self.sealed.remove(lo);
            self.sealed.push(merged);
            changed = true;
        }
        if changed {
            // Segment indices shifted; recompute every location once.
            self.rebuild_loc();
        }
        Ok(())
    }

    /// Recomputes the id → location map from the segments (used after
    /// compaction reshuffles segment indices).
    fn rebuild_loc(&mut self) {
        self.loc.clear();
        for (seg, s) in self.sealed.iter().enumerate() {
            for row in s.dead.iter_live() {
                self.loc.insert(s.ids[row], Loc { seg, row });
            }
        }
        for row in self.mem.dead.iter_live() {
            self.loc.insert(self.mem.ids[row], Loc { seg: MEMTABLE, row });
        }
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// All live rows within `tau` of `query` — external ids, ascending.
    /// Identical to a fresh [`Gph`] over the surviving rows.
    pub fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).0
    }

    /// [`SegmentedGph::search`] with instrumentation summed across
    /// segments. `thresholds` is left empty: each segment allocates its
    /// own vector, so no single allocation describes the query.
    pub fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, QueryStats) {
        self.search_with_trace(query, tau, None)
    }

    /// [`SegmentedGph::search_with_stats`] with an optional trace sink:
    /// when `sink` is `Some`, one [`SegmentTrace`] per sealed segment
    /// (plus one for the memtable scan, tagged
    /// [`gph_obs::trace::MEMTABLE_SEGMENT`]) is appended to it. The
    /// `None` path costs one branch per segment — tracing off is free.
    pub fn search_with_trace(
        &self,
        query: &[u64],
        tau: u32,
        mut sink: Option<&mut Vec<SegmentTrace>>,
    ) -> (Vec<u32>, QueryStats) {
        self.assert_query(query, tau);
        let mut out = Vec::new();
        let mut agg = QueryStats::default();
        for (seg_idx, seg) in self.sealed.iter().enumerate() {
            let res = seg.store.search_with_stats(query, tau);
            agg.alloc_ns += res.stats.alloc_ns;
            agg.enumerate_ns += res.stats.enumerate_ns;
            agg.candgen_ns += res.stats.candgen_ns;
            agg.verify_ns += res.stats.verify_ns;
            agg.n_signatures += res.stats.n_signatures;
            agg.sum_postings += res.stats.sum_postings;
            agg.n_scanned += res.stats.n_scanned;
            agg.n_candidates += res.stats.n_candidates;
            agg.estimated_cost += res.stats.estimated_cost;
            if let Some(traces) = sink.as_deref_mut() {
                traces.push(Self::trace_of(seg_idx as u32, seg.store.len(), &res.stats));
            }
            for local in res.ids {
                if !seg.dead.is_dead(local as usize) {
                    out.push(seg.ids[local as usize]);
                }
            }
        }
        let t = std::time::Instant::now();
        let mut mem_rows = 0u64;
        let mut mem_results = 0u64;
        for row in self.mem.dead.iter_live() {
            // Memtable rows are found by scanning, not by index probes:
            // they count toward both `n_scanned` and `n_candidates`.
            mem_rows += 1;
            if hamming_core::distance::hamming_within(self.mem.data.row(row), query, tau).is_some()
            {
                out.push(self.mem.ids[row]);
                mem_results += 1;
            }
        }
        agg.n_scanned += mem_rows;
        agg.n_candidates += mem_rows;
        let scan_ns = t.elapsed().as_nanos() as u64;
        agg.verify_ns += scan_ns;
        if let Some(traces) = sink {
            traces.push(SegmentTrace {
                segment: gph_obs::trace::MEMTABLE_SEGMENT,
                rows: mem_rows,
                phases: PhaseNanos { scan_ns, ..PhaseNanos::default() },
                n_scanned: mem_rows,
                n_candidates: mem_rows,
                n_results: mem_results,
                ..SegmentTrace::default()
            });
        }
        out.sort_unstable();
        agg.n_results = out.len() as u64;
        (out, agg)
    }

    /// Maps one sealed engine's [`QueryStats`] onto a trace entry. The
    /// engine's candidate-generation time (probe + dedup, or the scan
    /// fallback when the signature ball outgrows the segment) lands in
    /// `probe_ns`; memtable scans are traced separately under `scan_ns`.
    fn trace_of(segment: u32, rows: usize, st: &QueryStats) -> SegmentTrace {
        SegmentTrace {
            segment,
            rows: rows as u64,
            phases: PhaseNanos {
                alloc_ns: st.alloc_ns,
                enumerate_ns: st.enumerate_ns,
                probe_ns: st.candgen_ns,
                verify_ns: st.verify_ns,
                scan_ns: 0,
            },
            n_signatures: st.n_signatures,
            sum_postings: st.sum_postings,
            n_scanned: st.n_scanned,
            n_candidates: st.n_candidates,
            n_results: st.n_results,
        }
    }

    /// Live rows within `tau` of `query` as `(id, distance)` pairs,
    /// ascending by `(distance, id)` — the refinement primitive the
    /// sharded top-k merge uses.
    pub fn search_with_distances(&self, query: &[u64], tau: u32) -> Vec<(u32, u32)> {
        self.assert_query(query, tau);
        let mut out = Vec::new();
        for seg in &self.sealed {
            for local in seg.store.search(query, tau) {
                if !seg.dead.is_dead(local as usize) {
                    let d = seg.store.distance_to(local as usize, query);
                    out.push((seg.ids[local as usize], d));
                }
            }
        }
        for row in self.mem.dead.iter_live() {
            if let Some(d) =
                hamming_core::distance::hamming_within(self.mem.data.row(row), query, tau)
            {
                out.push((self.mem.ids[row], d));
            }
        }
        out.sort_unstable_by_key(|&(id, d)| (d, id));
        out
    }

    /// The `k` nearest live rows within `tau_max`, ties broken by id —
    /// identical to [`Gph::search_topk`] over the surviving rows.
    pub fn search_topk(&self, query: &[u64], k: usize) -> Vec<(u32, u32)> {
        self.search_topk_within(query, k, self.cfg.tau_max as u32)
    }

    /// [`SegmentedGph::search_topk`] with the escalation radius capped at
    /// `tau_cap` — identical to [`Gph::search_topk_within`] over the
    /// surviving rows.
    pub fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        self.assert_query(query, tau_cap);
        if k == 0 {
            return Vec::new();
        }
        let mut hits: Vec<(u32, u32)> = Vec::new();
        for seg in &self.sealed {
            // Over-fetch by the segment's dead count: at most that many
            // tombstoned rows can occupy top slots, so k live survivors
            // (when they exist within the cap) are always retained.
            for (local, d) in seg.store.search_topk_within(query, k + seg.dead.dead(), tau_cap) {
                if !seg.dead.is_dead(local as usize) {
                    hits.push((seg.ids[local as usize], d));
                }
            }
        }
        for row in self.mem.dead.iter_live() {
            if let Some(d) =
                hamming_core::distance::hamming_within(self.mem.data.row(row), query, tau_cap)
            {
                hits.push((self.mem.ids[row], d));
            }
        }
        hits.sort_unstable_by_key(|&(id, d)| (d, id));
        hits.truncate(k);
        hits
    }

    /// Estimated query cost: the sealed engines' allocator estimates plus
    /// the memtable's scan cost (every live row is verified).
    pub fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        self.assert_query(query, tau);
        let sealed: f64 = self.sealed.iter().map(|s| s.store.estimate_cost(query, tau)).sum();
        sealed + self.mem.dead.live() as f64 * self.cfg.cost_model.c_verify
    }

    /// Estimated cost of the *next* insert: the memtable append plus, if
    /// it would trigger a seal, the cost of building a segment over the
    /// memtable (every row indexed and verified once). The admission
    /// controller prices mutations with this.
    pub fn next_insert_cost(&self) -> f64 {
        let base = self.cfg.cost_model.c_verify;
        if self.mem.dead.live() + 1 >= self.seg_cfg.seal_rows {
            base + self.seg_cfg.seal_rows as f64
                * (self.cfg.cost_model.c_access + self.cfg.cost_model.c_verify)
        } else {
            base
        }
    }

    /// Estimated cost of a delete (an id lookup plus a bit flip).
    pub fn delete_cost(&self) -> f64 {
        self.cfg.cost_model.c_access
    }

    // -----------------------------------------------------------------
    // Snapshots
    // -----------------------------------------------------------------

    /// Serializes the engine as a GPHS v3 offset-addressed container:
    /// the build config, the memtable (rows, ids, tombstones), every
    /// sealed segment's GPHE blob in a page-aligned blob arena, and a
    /// segment table mapping each segment to its arena extent plus its
    /// ids and tombstones. Pending tombstones round-trip; nothing is
    /// compacted away. See `FORMAT.md` for the byte-level layout.
    ///
    /// # Panics
    ///
    /// File-backed segments read their blob back from disk here; an
    /// operating-system I/O failure doing so panics (the same contract
    /// as mid-query paged reads).
    pub fn to_bytes(&self) -> Vec<u8> {
        let blobs: Vec<Vec<u8>> = self
            .sealed
            .iter()
            .map(|s| s.store.engine_bytes().expect("segment blob read failed during snapshot"))
            .collect();
        // The arena is assembled first so the segment table can carry
        // arena-relative offsets. Each blob starts on a PAGE_SIZE
        // boundary; the arena section itself is page-aligned, so blob
        // starts are file-page-aligned too and a file-backed restore
        // can map them in place.
        let mut arena = Vec::new();
        let mut rel = Vec::with_capacity(blobs.len());
        for blob in &blobs {
            let pos = arena.len().next_multiple_of(PAGE_SIZE);
            arena.resize(pos, 0);
            rel.push(pos as u64);
            arena.extend_from_slice(blob);
        }
        let mut segtab = Vec::new();
        for (i, seg) in self.sealed.iter().enumerate() {
            segtab.put_u64_le(rel[i]);
            segtab.put_u64_le(blobs[i].len() as u64);
            segtab.put_u64_le(seg.ids.len() as u64);
            for &id in &seg.ids {
                segtab.put_u32_le(id);
            }
            let dead = seg.dead.encode();
            segtab.put_u64_le(dead.len() as u64);
            segtab.put_slice(&dead);
        }

        let mut w = OffsetWriter::new(SEGMENT_MAGIC, SEGMENT_VERSION);
        w.section(&encode_gph_config(&self.cfg));
        let mut hdr = Vec::with_capacity(32);
        hdr.put_u64_le(self.dim as u64);
        hdr.put_u64_le(self.seg_cfg.seal_rows as u64);
        hdr.put_u64_le(self.seg_cfg.max_sealed as u64);
        hdr.put_u64_le(self.sealed.len() as u64);
        w.section(&hdr);
        w.section(&hamming_core::io::encode_dataset(&self.mem.data));
        let mut mem_ids = Vec::with_capacity(8 + self.mem.ids.len() * 4);
        mem_ids.put_u64_le(self.mem.ids.len() as u64);
        for &id in &self.mem.ids {
            mem_ids.put_u32_le(id);
        }
        w.section(&mem_ids);
        w.section(&self.mem.dead.encode());
        w.aligned_section(&arena);
        w.section(&segtab);
        w.finish()
    }

    /// Restores an engine from [`SegmentedGph::to_bytes`] bytes (v3) or
    /// a legacy v1 snapshot, fully resident. The restored engine is
    /// query-for-query identical to the saved one, and — because the
    /// build config travels with the data — behaves identically under
    /// further mutations too.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Self::from_bytes_with_storage(bytes, StorageMode::Resident)
    }

    /// [`SegmentedGph::from_bytes`] with an explicit [`StorageMode`] for
    /// the restored sealed segments. Under
    /// [`StorageMode::FileBacked`] each v3 segment blob is spilled to a
    /// temp file and served through a shared page cache instead of being
    /// decoded onto the heap. Legacy v1 snapshots have no mappable
    /// blobs: their segments restore resident regardless of mode (newly
    /// sealed segments still go cold).
    pub fn from_bytes_with_storage(bytes: &[u8], storage: StorageMode) -> Result<Self> {
        if bytes.len() >= 8
            && bytes[..4] == SEGMENT_MAGIC
            && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) >= 3
        {
            Self::decode_v3(bytes, storage)
        } else {
            Self::decode_legacy(bytes, storage)
        }
    }

    /// Decodes a GPHS v3 container from memory with every payload CRC
    /// verified up front.
    fn decode_v3(bytes: &[u8], storage: StorageMode) -> Result<Self> {
        let f = Footer::parse_bytes(SEGMENT_MAGIC, SEGMENT_VERSION, bytes)?;
        if f.n_slots() != N_SEG_SLOTS {
            return Err(HammingError::Corrupt(format!(
                "segmented snapshot has {} sections, expected {N_SEG_SLOTS}",
                f.n_slots()
            )));
        }
        let cfg = decode_gph_config(f.payload(bytes, SEG_SLOT_CONFIG)?)?;
        let (dim, seal_rows, max_sealed, n_sealed) =
            Self::decode_seghdr(f.payload(bytes, SEG_SLOT_SEGHDR)?)?;
        let mut out =
            SegmentedGph::new(dim, cfg, SegmentConfig { seal_rows, max_sealed, storage })?;
        out.mem = Self::decode_memtable(
            f.payload(bytes, SEG_SLOT_MEMDATA)?,
            f.payload(bytes, SEG_SLOT_MEMIDS)?,
            f.payload(bytes, SEG_SLOT_MEMDEAD)?,
            dim,
        )?;

        let arena = f.payload(bytes, SEG_SLOT_BLOBS)?;
        let mut tr = ByteReader::new(f.payload(bytes, SEG_SLOT_SEGTAB)?);
        for i in 0..n_sealed {
            let (rel, blob_len, ids, dead) = Self::decode_segtab_entry(&mut tr)?;
            let end =
                (rel as usize).checked_add(blob_len).filter(|&e| e <= arena.len()).ok_or_else(
                    || HammingError::Corrupt(format!("segment {i} blob extent exceeds the arena")),
                )?;
            let blob = &arena[rel as usize..end];
            let store = match storage {
                StorageMode::Resident => SegStore::Resident(Gph::from_bytes(blob)?),
                StorageMode::FileBacked { budget_bytes } => {
                    let spill = out.spill_store(budget_bytes)?;
                    let file = Arc::new(spill.write_blob(blob)?);
                    let len = file.len();
                    SegStore::Cold(ColdSegment::open(file, Arc::clone(spill.cache()), 0, len)?)
                }
            };
            Self::check_segment(i, &store, &ids, &dead, dim, out.cfg.tau_max)?;
            out.sealed.push(Sealed { store, ids, dead });
        }
        tr.finish("segment table")?;
        out.finish_restore()
    }

    /// Decodes a legacy (v1, tag-addressed) snapshot. Segments always
    /// restore resident — v1 engines are not offset-addressed, so there
    /// is nothing to page against.
    fn decode_legacy(bytes: &[u8], storage: StorageMode) -> Result<Self> {
        let r = SectionReader::parse(SEGMENT_MAGIC, 1, bytes)?;
        let cfg = decode_gph_config(r.section("config")?)?;
        let (dim, seal_rows, max_sealed, n_sealed) = Self::decode_seghdr(r.section("seghdr")?)?;
        let mut out =
            SegmentedGph::new(dim, cfg, SegmentConfig { seal_rows, max_sealed, storage })?;
        out.mem = Self::decode_memtable(
            r.section("memdata")?,
            r.section("memids")?,
            r.section("memdead")?,
            dim,
        )?;

        for i in 0..n_sealed {
            let mut sr = ByteReader::new(r.section(&format!("seg{i}"))?);
            let n = sr.len(4, "segment id count")?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(sr.u32("segment id")?);
            }
            let dead_len = sr.len(1, "segment tombstone length")?;
            let dead = Tombstones::decode(sr.bytes(dead_len, "segment tombstones")?)?;
            let eng_len = sr.len(1, "segment engine length")?;
            let store = SegStore::Resident(Gph::from_bytes(sr.bytes(eng_len, "segment engine")?)?);
            sr.finish("sealed segment")?;
            Self::check_segment(i, &store, &ids, &dead, dim, out.cfg.tau_max)?;
            out.sealed.push(Sealed { store, ids, dead });
        }
        out.finish_restore()
    }

    /// Decodes the fixed segment header: dim, seal_rows, max_sealed,
    /// sealed-segment count.
    fn decode_seghdr(bytes: &[u8]) -> Result<(usize, usize, usize, usize)> {
        let mut hr = ByteReader::new(bytes);
        let dim = hr.u64("dim")? as usize;
        let seal_rows = hr.u64("seal_rows")? as usize;
        let max_sealed = hr.u64("max_sealed")? as usize;
        let n_sealed = hr.u64("sealed segment count")? as usize;
        hr.finish("segment header")?;
        Ok((dim, seal_rows, max_sealed, n_sealed))
    }

    /// Decodes the three memtable sections and cross-checks their
    /// lengths.
    fn decode_memtable(data: &[u8], ids: &[u8], dead: &[u8], dim: usize) -> Result<Memtable> {
        let mem_data = hamming_core::io::decode_dataset(data)?;
        if mem_data.dim() != dim {
            return Err(HammingError::Corrupt(format!(
                "memtable holds {}-dimensional rows, header says {dim}",
                mem_data.dim()
            )));
        }
        let mut ir = ByteReader::new(ids);
        let n_ids = ir.len(4, "memtable id count")?;
        let mut mem_ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            mem_ids.push(ir.u32("memtable id")?);
        }
        ir.finish("memtable ids")?;
        let mem_dead = Tombstones::decode(dead)?;
        if mem_ids.len() != mem_data.len() || mem_dead.len() != mem_data.len() {
            return Err(HammingError::Corrupt(format!(
                "memtable sections disagree: {} rows, {} ids, {} tombstone slots",
                mem_data.len(),
                mem_ids.len(),
                mem_dead.len()
            )));
        }
        Ok(Memtable { data: mem_data, ids: mem_ids, dead: mem_dead })
    }

    /// Decodes one v3 segment-table entry: arena-relative blob offset,
    /// blob length, external ids, tombstones.
    fn decode_segtab_entry(tr: &mut ByteReader<'_>) -> Result<(u64, usize, Vec<u32>, Tombstones)> {
        let rel = tr.u64("blob offset")?;
        let blob_len = tr.u64("blob length")? as usize;
        let n = tr.len(4, "segment id count")?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(tr.u32("segment id")?);
        }
        let dead_len = tr.len(1, "segment tombstone length")?;
        let dead = Tombstones::decode(tr.bytes(dead_len, "segment tombstones")?)?;
        Ok((rel, blob_len, ids, dead))
    }

    /// Cross-checks a restored segment against the container header.
    fn check_segment(
        i: usize,
        store: &SegStore,
        ids: &[u32],
        dead: &Tombstones,
        dim: usize,
        tau_max: usize,
    ) -> Result<()> {
        if store.len() != ids.len() || dead.len() != ids.len() {
            return Err(HammingError::Corrupt(format!(
                "segment {i} sections disagree: {} rows, {} ids, {} tombstone slots",
                store.len(),
                ids.len(),
                dead.len()
            )));
        }
        if store.dim() != dim {
            return Err(HammingError::Corrupt(format!(
                "segment {i} indexes {}-dimensional rows, header says {dim}",
                store.dim()
            )));
        }
        if store.tau_max() != tau_max {
            return Err(HammingError::Corrupt(format!(
                "segment {i} serves tau_max {}, config says {tau_max}",
                store.tau_max()
            )));
        }
        Ok(())
    }

    /// Final restore validation shared by every decode path: rebuild the
    /// location map and require the distinct live ids to match the
    /// per-segment live sums (duplicates would collide in the map).
    fn finish_restore(mut self) -> Result<Self> {
        self.rebuild_loc();
        let live_sum =
            self.mem.dead.live() + self.sealed.iter().map(|s| s.dead.live()).sum::<usize>();
        if self.loc.len() != live_sum {
            return Err(HammingError::Corrupt(format!(
                "{} distinct live ids across segments, but {} live rows",
                self.loc.len(),
                live_sum
            )));
        }
        Ok(self)
    }

    /// Writes [`SegmentedGph::to_bytes`] to `path` atomically.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        crate::snapshot::write_atomic(path.as_ref(), &self.to_bytes())
    }

    /// Reads an engine snapshot from `path`, fully resident.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        SegmentedGph::from_bytes(&std::fs::read(path)?)
    }

    /// Reads an engine snapshot from `path` under an explicit
    /// [`StorageMode`].
    ///
    /// This is the out-of-core warm-start path: under
    /// [`StorageMode::FileBacked`] a v3 snapshot is *mapped, not read* —
    /// the footer and the metadata sections (config, memtable, segment
    /// table; a few KiB) are read directly and CRC-verified, while every
    /// sealed segment's blob stays on disk, opened as a
    /// [`ColdSegment`] against the
    /// snapshot file itself. Restore time is therefore near-constant in
    /// corpus size, and no blob byte is resident until a query pages it
    /// in. Blob-payload CRCs are deferred (see `FORMAT.md` §durability);
    /// [`SegmentedGph::load`] is the fully-verified alternative.
    ///
    /// The engine keeps the snapshot file open for paging. Replacing the
    /// snapshot via [`SegmentedGph::save`] is safe on platforms where
    /// rename unlinks (the open descriptor pins the old bytes), but the
    /// file must not be truncated or rewritten in place.
    ///
    /// Legacy v1 snapshots interleave engines with metadata and cannot
    /// be mapped; they are read and restored resident, with the storage
    /// mode applied to future seals only.
    pub fn load_with_storage<P: AsRef<std::path::Path>>(
        path: P,
        storage: StorageMode,
    ) -> Result<Self> {
        let StorageMode::FileBacked { budget_bytes } = storage else {
            return SegmentedGph::load(path);
        };
        let file = Arc::new(SegmentFile::open(path.as_ref(), false)?);
        if file.len() < 8 {
            return Err(HammingError::Corrupt("snapshot shorter than its header".into()));
        }
        let mut header = [0u8; 8];
        file.read_at(0, &mut header)?;
        if header[..4] != SEGMENT_MAGIC {
            return Err(HammingError::Corrupt(format!(
                "bad magic {:?}, expected {SEGMENT_MAGIC:?}",
                &header[..4]
            )));
        }
        if u32::from_le_bytes(header[4..8].try_into().unwrap()) < 3 {
            return SegmentedGph::from_bytes_with_storage(&std::fs::read(path)?, storage);
        }

        // v3: footer + metadata slots via direct reads, blobs deferred.
        let tail_len = Footer::MAX_LEN.min(file.len() as usize);
        let mut tail = vec![0u8; tail_len];
        file.read_at(file.len() - tail_len as u64, &mut tail)?;
        let f = Footer::parse(SEGMENT_MAGIC, SEGMENT_VERSION, file.len(), &tail)?;
        if f.n_slots() != N_SEG_SLOTS {
            return Err(HammingError::Corrupt(format!(
                "segmented snapshot has {} sections, expected {N_SEG_SLOTS}",
                f.n_slots()
            )));
        }
        let meta = |slot: usize| -> Result<Vec<u8>> {
            let s = f.slot(slot)?;
            let mut buf = vec![0u8; s.len as usize];
            file.read_at(s.offset, &mut buf)?;
            if crc32(&buf) != s.crc {
                return Err(HammingError::Corrupt(format!("section {slot} checksum mismatch")));
            }
            Ok(buf)
        };
        let cfg = decode_gph_config(&meta(SEG_SLOT_CONFIG)?)?;
        let (dim, seal_rows, max_sealed, n_sealed) = Self::decode_seghdr(&meta(SEG_SLOT_SEGHDR)?)?;
        let mut out =
            SegmentedGph::new(dim, cfg, SegmentConfig { seal_rows, max_sealed, storage })?;
        out.mem = Self::decode_memtable(
            &meta(SEG_SLOT_MEMDATA)?,
            &meta(SEG_SLOT_MEMIDS)?,
            &meta(SEG_SLOT_MEMDEAD)?,
            dim,
        )?;
        // One spill store up front: snapshot-mapped segments and future
        // seals share its page cache (and its byte budget).
        let spill = out.spill_store(budget_bytes)?;

        let blobs_slot = f.slot(SEG_SLOT_BLOBS)?;
        let segtab = meta(SEG_SLOT_SEGTAB)?;
        let mut tr = ByteReader::new(&segtab);
        for i in 0..n_sealed {
            let (rel, blob_len, ids, dead) = Self::decode_segtab_entry(&mut tr)?;
            if rel.checked_add(blob_len as u64).filter(|&e| e <= blobs_slot.len).is_none() {
                return Err(HammingError::Corrupt(format!(
                    "segment {i} blob extent exceeds the arena"
                )));
            }
            let cold = ColdSegment::open(
                Arc::clone(&file),
                Arc::clone(spill.cache()),
                blobs_slot.offset + rel,
                blob_len as u64,
            )?;
            let store = SegStore::Cold(cold);
            Self::check_segment(i, &store, &ids, &dead, dim, out.cfg.tau_max)?;
            out.sealed.push(Sealed { store, ids, dead });
        }
        tr.finish("segment table")?;
        out.finish_restore()
    }
}

/// Indices of the two segments with the fewest live rows. Caller ensures
/// `sealed.len() >= 2`.
fn smallest_two(sealed: &[Sealed]) -> (usize, usize) {
    let mut order: Vec<usize> = (0..sealed.len()).collect();
    order.sort_by_key(|&i| (sealed[i].dead.live(), i));
    (order[0], order[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_opt::PartitionStrategy;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> GphConfig {
        let mut cfg = GphConfig::new(3, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 11 };
        cfg
    }

    fn seg_cfg() -> SegmentConfig {
        SegmentConfig { seal_rows: 8, max_sealed: 2, ..SegmentConfig::default() }
    }

    fn random_rows(dim: usize, n: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4))).words().to_vec())
            .collect()
    }

    /// Reference: a fresh Gph over the surviving rows, ids mapped back.
    fn reference_search(eng: &SegmentedGph, query: &[u64], tau: u32) -> Vec<u32> {
        let ids = eng.live_ids();
        let mut ds = Dataset::new(eng.dim());
        for &id in &ids {
            ds.push_row(&eng.get(id).unwrap()).unwrap();
        }
        if ds.is_empty() {
            return Vec::new();
        }
        let fresh = Gph::build(ds, eng.config()).unwrap();
        fresh.search(query, tau).into_iter().map(|local| ids[local as usize]).collect()
    }

    #[test]
    fn inserts_seal_and_stay_exact() {
        let rows = random_rows(48, 40, 1);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32 * 3, row).unwrap();
        }
        // 40 inserts at seal_rows=8 and max_sealed=2 forced seals and
        // compactions along the way.
        assert!(eng.num_sealed() >= 1 && eng.num_sealed() <= 2);
        assert_eq!(eng.len(), 40);
        for (qi, q) in rows.iter().enumerate().step_by(7) {
            for tau in [0u32, 3, 8] {
                assert_eq!(eng.search(q, tau), reference_search(&eng, q, tau), "qi={qi} tau={tau}");
            }
        }
    }

    #[test]
    fn delete_unknown_id_is_a_noop() {
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        assert!(!eng.delete(99));
        eng.insert(1, &random_rows(32, 1, 2)[0]).unwrap();
        assert!(!eng.delete(2));
        assert_eq!(eng.len(), 1);
        assert!(eng.delete(1));
        assert!(!eng.delete(1), "second delete of the same id is a no-op");
    }

    #[test]
    fn delete_all_then_query_returns_nothing() {
        let rows = random_rows(32, 20, 3);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.seal().unwrap();
        for i in 0..20 {
            assert!(eng.delete(i));
        }
        assert!(eng.is_empty());
        assert_eq!(eng.num_sealed(), 0, "all-dead segments are dropped");
        assert!(eng.search(&rows[0], 8).is_empty());
        assert!(eng.search_topk(&rows[0], 5).is_empty());
        // The engine keeps working after total deletion.
        eng.insert(7, &rows[7]).unwrap();
        assert_eq!(eng.search(&rows[7], 0), vec![7]);
    }

    #[test]
    fn insert_of_live_id_errors_and_upsert_replaces() {
        let rows = random_rows(32, 3, 4);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        eng.insert(5, &rows[0]).unwrap();
        assert!(eng.insert(5, &rows[1]).is_err(), "duplicate insert must error");
        assert!(eng.upsert(5, &rows[1]).unwrap(), "upsert of a live id replaces");
        assert_eq!(eng.len(), 1);
        assert_eq!(eng.get(5).unwrap(), rows[1].as_slice());
        assert_eq!(eng.search(&rows[0], 0), Vec::<u32>::new());
        assert_eq!(eng.search(&rows[1], 0), vec![5]);
        assert!(!eng.upsert(6, &rows[2]).unwrap(), "upsert of a fresh id inserts");
        assert_eq!(eng.len(), 2);
    }

    #[test]
    fn upsert_of_sealed_row_replaces_across_segments() {
        let rows = random_rows(32, 10, 5);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.seal().unwrap();
        // id 3 now lives in a sealed segment; replace it.
        assert!(eng.upsert(3, &rows[9]).unwrap());
        let hits = eng.search(&rows[9], 0);
        assert!(hits.contains(&3));
        assert!(!eng.search(&rows[3], 0).contains(&3));
    }

    #[test]
    fn topk_filters_tombstones_exactly() {
        let rows = random_rows(32, 30, 6);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.seal().unwrap();
        let q = rows[0].clone();
        // Delete the nearest rows so tombstoned hits would dominate a
        // naive per-segment top-k.
        let nearest = eng.search_topk(&q, 5);
        for &(id, _) in &nearest {
            eng.delete(id);
        }
        let got = eng.search_topk(&q, 5);
        let ids = eng.live_ids();
        let mut expect: Vec<(u32, u32)> = ids
            .iter()
            .map(|&id| (id, hamming_core::distance::hamming(&eng.get(id).unwrap(), &q)))
            .filter(|&(_, d)| d <= 8)
            .collect();
        expect.sort_unstable_by_key(|&(id, d)| (d, id));
        expect.truncate(5);
        assert_eq!(got, expect);
    }

    #[test]
    fn snapshot_with_pending_tombstones_roundtrips() {
        let rows = random_rows(48, 25, 7);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        // Leave tombstones pending in both a sealed segment and the
        // memtable (25 rows over seal_rows=8 leaves a partial memtable).
        eng.delete(2);
        eng.delete(24);
        let restored = SegmentedGph::from_bytes(&eng.to_bytes()).unwrap();
        assert_eq!(restored.len(), eng.len());
        assert_eq!(restored.live_ids(), eng.live_ids());
        assert_eq!(restored.num_sealed(), eng.num_sealed());
        for q in rows.iter().step_by(5) {
            for tau in [0u32, 4, 8] {
                assert_eq!(restored.search(q, tau), eng.search(q, tau));
            }
            assert_eq!(restored.search_topk(q, 6), eng.search_topk(q, 6));
        }
        // Further mutations behave identically on both copies.
        let mut a = eng;
        let mut b = restored;
        let extra = random_rows(48, 10, 8);
        for (i, row) in extra.iter().enumerate() {
            a.upsert(100 + i as u32, row).unwrap();
            b.upsert(100 + i as u32, row).unwrap();
        }
        a.delete(5);
        b.delete(5);
        for q in extra.iter() {
            assert_eq!(a.search(q, 8), b.search(q, 8));
        }
    }

    #[test]
    fn corrupt_segment_snapshots_are_rejected() {
        let rows = random_rows(32, 12, 9);
        let mut eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.delete(3);
        let bytes = eng.to_bytes();
        assert!(SegmentedGph::from_bytes(&bytes).is_ok());
        for i in (0..bytes.len()).step_by(53) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            match SegmentedGph::from_bytes(&bad) {
                Err(HammingError::Corrupt(_)) => {}
                Err(other) => panic!("flip at {i}: unexpected error kind {other}"),
                Ok(_) => panic!("flip at {i} went undetected"),
            }
        }
        for cut in (0..bytes.len()).step_by(61) {
            assert!(SegmentedGph::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn explicit_compact_preserves_results() {
        let rows = random_rows(48, 30, 10);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.delete(1);
        eng.delete(17);
        let before: Vec<Vec<u32>> = rows.iter().map(|q| eng.search(q, 6)).collect();
        eng.compact().unwrap();
        assert_eq!(eng.num_sealed(), 1);
        assert_eq!(eng.stored_rows(), eng.len(), "compaction drops dead rows");
        let after: Vec<Vec<u32>> = rows.iter().map(|q| eng.search(q, 6)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn failed_seal_leaves_engine_consistent() {
        // m > dim makes every Gph::build fail; the seal must error
        // without corrupting the location map or losing rows.
        let mut bad_cfg = GphConfig::new(64, 4);
        bad_cfg.strategy = PartitionStrategy::Original;
        let mut eng = SegmentedGph::new(
            16,
            bad_cfg,
            SegmentConfig { seal_rows: 2, max_sealed: 2, ..SegmentConfig::default() },
        )
        .unwrap();
        let rows = random_rows(16, 3, 11);
        eng.insert(1, &rows[0]).unwrap();
        // The second insert triggers a seal, which fails.
        assert!(eng.insert(2, &rows[1]).is_err());
        // Both rows stay live and addressable in the memtable; no panic,
        // no phantom segment.
        assert_eq!(eng.len(), 2);
        assert_eq!(eng.num_sealed(), 0);
        assert_eq!(eng.get(1).unwrap(), rows[0].as_slice());
        assert_eq!(eng.get(2).unwrap(), rows[1].as_slice());
        assert_eq!(eng.search(&rows[1], 0), vec![2]);
        assert!(eng.compact().is_err(), "compaction fails too, but harmlessly");
        assert_eq!(eng.len(), 2);
        assert!(eng.delete(2));
        assert_eq!(eng.len(), 1);
    }

    /// Re-encodes an engine in the retired GPHS v1 tag-addressed layout
    /// so the legacy decode path stays covered without checked-in
    /// fixtures.
    fn encode_segmented_v1(eng: &SegmentedGph) -> Vec<u8> {
        let mut w = hamming_core::io::SectionWriter::new(SEGMENT_MAGIC, 1);
        w.section("config", &encode_gph_config(&eng.cfg));
        let mut hdr = Vec::with_capacity(32);
        hdr.put_u64_le(eng.dim as u64);
        hdr.put_u64_le(eng.seg_cfg.seal_rows as u64);
        hdr.put_u64_le(eng.seg_cfg.max_sealed as u64);
        hdr.put_u64_le(eng.sealed.len() as u64);
        w.section("seghdr", &hdr);
        w.section("memdata", &hamming_core::io::encode_dataset(&eng.mem.data));
        let mut mem_ids = Vec::new();
        mem_ids.put_u64_le(eng.mem.ids.len() as u64);
        for &id in &eng.mem.ids {
            mem_ids.put_u32_le(id);
        }
        w.section("memids", &mem_ids);
        w.section("memdead", &eng.mem.dead.encode());
        for (i, seg) in eng.sealed.iter().enumerate() {
            let engine = seg.store.engine_bytes().unwrap();
            let dead = seg.dead.encode();
            let mut body = Vec::new();
            body.put_u64_le(seg.ids.len() as u64);
            for &id in &seg.ids {
                body.put_u32_le(id);
            }
            body.put_u64_le(dead.len() as u64);
            body.put_slice(&dead);
            body.put_u64_le(engine.len() as u64);
            body.put_slice(&engine);
            w.section(&format!("seg{i}"), &body);
        }
        w.finish()
    }

    fn assert_same_answers(a: &SegmentedGph, b: &SegmentedGph, queries: &[Vec<u64>]) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.live_ids(), b.live_ids());
        for q in queries {
            for tau in [0u32, 4, 8] {
                assert_eq!(a.search(q, tau), b.search(q, tau), "tau={tau}");
                assert_eq!(
                    a.search_with_distances(q, tau),
                    b.search_with_distances(q, tau),
                    "tau={tau}"
                );
            }
            assert_eq!(a.search_topk(q, 6), b.search_topk(q, 6));
        }
        for id in a.live_ids() {
            assert_eq!(a.get(id), b.get(id), "id={id}");
        }
    }

    #[test]
    fn file_backed_engine_matches_resident_through_mutations() {
        let rows = random_rows(48, 40, 20);
        let mut cold_cfg = seg_cfg();
        cold_cfg.storage = StorageMode::FileBacked { budget_bytes: 32 * 1024 };
        let mut hot = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        let mut cold = SegmentedGph::new(48, cfg(), cold_cfg).unwrap();
        for (i, row) in rows.iter().enumerate() {
            hot.insert(i as u32, row).unwrap();
            cold.insert(i as u32, row).unwrap();
        }
        for id in [3u32, 17, 31] {
            assert_eq!(hot.delete(id), cold.delete(id));
        }
        hot.upsert(5, &rows[20]).unwrap();
        cold.upsert(5, &rows[20]).unwrap();
        assert!(cold.num_sealed() >= 1, "seals must have happened");
        assert_same_answers(&hot, &cold, &rows);
        let stats = cold.page_cache_stats().expect("file-backed engine has a page cache");
        assert!(stats.hits + stats.misses > 0, "queries must have paged: {stats:?}");
        assert!(hot.page_cache_stats().is_none());
        // Compaction merges cold segments by paging their rows back.
        cold.compact().unwrap();
        hot.compact().unwrap();
        assert_same_answers(&hot, &cold, &rows);
        // Snapshots of both modes are interchangeable.
        assert_same_answers(
            &SegmentedGph::from_bytes(&cold.to_bytes()).unwrap(),
            &SegmentedGph::from_bytes_with_storage(
                &hot.to_bytes(),
                StorageMode::FileBacked { budget_bytes: 32 * 1024 },
            )
            .unwrap(),
            &rows,
        );
    }

    #[test]
    fn v1_snapshots_load_through_the_legacy_path() {
        let rows = random_rows(48, 25, 21);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.delete(7);
        let v1 = encode_segmented_v1(&eng);
        assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1);
        let loaded = SegmentedGph::from_bytes(&v1).unwrap();
        assert_same_answers(&eng, &loaded, &rows);
        // Re-saving writes the current (v3) container.
        let resaved = loaded.to_bytes();
        assert_eq!(u32::from_le_bytes(resaved[4..8].try_into().unwrap()), SEGMENT_VERSION);
        // A file-backed restore of v1 bytes stays resident (mixed mode)
        // but still answers identically.
        let mixed = SegmentedGph::from_bytes_with_storage(
            &v1,
            StorageMode::FileBacked { budget_bytes: 1 << 20 },
        )
        .unwrap();
        assert!(mixed.page_cache_stats().is_none(), "no blobs to map in a v1 container");
        assert_same_answers(&eng, &mixed, &rows);
    }

    #[test]
    fn load_with_storage_maps_blobs_lazily() {
        let rows = random_rows(48, 30, 22);
        let mut eng = SegmentedGph::new(48, cfg(), seg_cfg()).unwrap();
        for (i, row) in rows.iter().enumerate() {
            eng.insert(i as u32, row).unwrap();
        }
        eng.delete(4);
        eng.delete(19);
        let dir = std::env::temp_dir().join(format!("gph-segtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.gphs");
        eng.save(&path).unwrap();

        let restored = SegmentedGph::load_with_storage(
            &path,
            StorageMode::FileBacked { budget_bytes: 1 << 20 },
        )
        .unwrap();
        // Open-time reads go around the page cache: nothing is resident
        // until the first query.
        let stats = restored.page_cache_stats().unwrap();
        assert_eq!(stats.resident_bytes, 0, "restore must not page blob bytes: {stats:?}");
        assert_same_answers(&eng, &restored, &rows);
        // An unmodified file-backed restore re-serializes byte-for-byte:
        // cold blobs are copied out verbatim.
        assert_eq!(restored.to_bytes(), eng.to_bytes());
        // Further mutations seal into the spill store and keep working.
        let mut restored = restored;
        let extra = random_rows(48, 12, 23);
        let mut model = eng;
        for (i, row) in extra.iter().enumerate() {
            restored.upsert(200 + i as u32, row).unwrap();
            model.upsert(200 + i as u32, row).unwrap();
        }
        assert_same_answers(&model, &restored, &extra);

        drop(restored);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_engine_serves_and_roundtrips() {
        let eng = SegmentedGph::new(32, cfg(), seg_cfg()).unwrap();
        assert!(eng.search(&[0u64], 4).is_empty());
        assert!(eng.search_topk(&[0u64], 3).is_empty());
        assert_eq!(eng.estimate_cost(&[0u64], 4), 0.0);
        let restored = SegmentedGph::from_bytes(&eng.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }
}

//! Online threshold allocation — Algorithm 1 (§IV-B).
//!
//! Given the per-partition candidate-number table `CN(qᵢ, e)` of a query,
//! compute the threshold vector `T` with `‖T‖₁ = τ − m + 1`, entries in
//! `[−1, τ]`, minimizing `Σᵢ CN(qᵢ, T[i])` — by the dynamic program
//!
//! ```text
//! OPT[i, t] = min_{e = −1..t+i−1} OPT[i−1, t−e] + CN(qᵢ, e)
//! ```
//!
//! in `O(m · (τ+1)²)` time. A round-robin allocator (the paper's **RR**
//! baseline, Fig. 3) and an exhaustive reference (for tests) accompany it.

use crate::cn::CnTable;
use crate::pigeonhole::ThresholdVector;

/// Which allocator the engine runs per query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The DP of Algorithm 1 (cost-optimal, general budget `τ − m + 1`).
    Dp,
    /// Round-robin spread of the budget (the **RR** baseline of §VII-C).
    RoundRobin,
    /// Ablation: DP over the *flexible* pigeonhole budget `‖T‖₁ = τ`
    /// (Lemma 2, before the ε-transformation tightens it). Quantifies
    /// what the general principle's `−(m−1)` budget reduction buys.
    DpFlexible,
    /// Ablation: DP with thresholds restricted to `≥ 0` (no partition
    /// skipping). Quantifies what negative thresholds buy; falls back to
    /// the general DP when `τ − m + 1 < 0` makes non-negative vectors
    /// infeasible.
    DpNonNegative,
}

/// Runs the configured allocator.
pub fn allocate(kind: AllocatorKind, cn: &CnTable, tau: u32) -> ThresholdVector {
    match kind {
        AllocatorKind::Dp => allocate_dp(cn, tau),
        AllocatorKind::RoundRobin => allocate_round_robin(cn.m(), tau),
        AllocatorKind::DpFlexible => {
            allocate_dp_budget(cn, tau, tau as i64, -1).expect("flexible budget is always feasible")
        }
        AllocatorKind::DpNonNegative => {
            allocate_dp_budget(cn, tau, tau as i64 - cn.m() as i64 + 1, 0)
                .unwrap_or_else(|| allocate_dp(cn, tau))
        }
    }
}

/// Generalized allocation DP: minimizes `Σ CN(qᵢ, T[i])` subject to
/// `‖T‖₁ = budget` and `T[i] ∈ [min_e, τ]`. Returns `None` when the
/// budget is infeasible for the entry range. Used by the ablation
/// experiments; [`allocate_dp`] is the fast path for the paper's
/// general-budget case.
pub fn allocate_dp_budget(
    cn: &CnTable,
    tau: u32,
    budget: i64,
    min_e: i32,
) -> Option<ThresholdVector> {
    let m = cn.m();
    let tau_i = tau as i32;
    assert!(min_e >= -1, "entries below -1 never change the filter");
    if budget < (m as i64) * min_e as i64 || budget > (m as i64) * tau_i as i64 {
        return None;
    }
    if m == 1 {
        let e = budget as i32;
        return ((min_e..=tau_i).contains(&e)).then(|| ThresholdVector(vec![e]));
    }
    // Row i covers partial sums t ∈ [(i+1)·min_e, min(budget_hi, (i+1)·τ)]
    // where only sums that can still reach `budget` matter:
    // t ≥ budget − (m−1−i)·τ and t ≤ budget − (m−1−i)·min_e.
    let lo_of = |i: usize| -> i64 {
        ((i as i64 + 1) * min_e as i64).max(budget - (m - 1 - i) as i64 * tau_i as i64)
    };
    let hi_of = |i: usize| -> i64 {
        ((i as i64 + 1) * tau_i as i64).min(budget - (m - 1 - i) as i64 * min_e as i64)
    };
    let mut rows_opt: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rows_path: Vec<Vec<i32>> = Vec::with_capacity(m);
    for i in 0..m {
        let (lo, hi) = (lo_of(i), hi_of(i));
        let w = (hi - lo + 1).max(0) as usize;
        rows_opt.push(vec![f64::INFINITY; w]);
        rows_path.push(vec![min_e; w]);
    }
    {
        let (lo, hi) = (lo_of(0), hi_of(0));
        for t in lo..=hi {
            if (min_e as i64..=tau_i as i64).contains(&t) {
                rows_opt[0][(t - lo) as usize] = cn.get(0, t as i32);
                rows_path[0][(t - lo) as usize] = t as i32;
            }
        }
    }
    for i in 1..m {
        let (lo, hi) = (lo_of(i), hi_of(i));
        let (plo, phi) = (lo_of(i - 1), hi_of(i - 1));
        for t in lo..=hi {
            let mut best = f64::INFINITY;
            let mut best_e = min_e;
            for e in min_e..=tau_i {
                let rest = t - e as i64;
                if rest < plo || rest > phi {
                    continue;
                }
                let prior = rows_opt[i - 1][(rest - plo) as usize];
                let c = prior + cn.get(i, e);
                if c < best {
                    best = c;
                    best_e = e;
                }
            }
            rows_opt[i][(t - lo) as usize] = best;
            rows_path[i][(t - lo) as usize] = best_e;
        }
    }
    let (last_lo, last_hi) = (lo_of(m - 1), hi_of(m - 1));
    if budget < last_lo || budget > last_hi {
        return None;
    }
    if !rows_opt[m - 1][(budget - last_lo) as usize].is_finite() {
        return None;
    }
    let mut t = budget;
    let mut out = vec![0i32; m];
    for i in (0..m).rev() {
        let e = rows_path[i][(t - lo_of(i)) as usize];
        out[i] = e;
        t -= e as i64;
    }
    debug_assert_eq!(t, 0);
    Some(ThresholdVector(out))
}

/// Algorithm 1: DP threshold allocation minimizing `Σ CN(qᵢ, τᵢ)`
/// subject to `‖T‖₁ = τ − m + 1`, `T[i] ∈ [−1, τ]`.
///
/// Row `i` of `OPT` covers partial sums `t ∈ [−i, τ − i + 1]`; both
/// bounds are tight (all entries −1, resp. maximal remaining budget), so
/// each row is exactly `τ + 2` wide with offset `i`.
///
/// The paper's Example 5 (four partitions, τ = 7, budget 4):
///
/// ```
/// use gph::alloc::allocate_dp;
/// use gph::cn::{CnEstimator, CnTable};
///
/// struct PaperTable;
/// impl CnEstimator for PaperTable {
///     fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
///         let rows = [
///             [0., 5., 10., 15., 50., 100.],
///             [0., 10., 80., 90., 95., 100.],
///             [0., 5., 15., 20., 70., 100.],
///             [0., 10., 70., 80., 95., 100.],
///         ];
///         for e in 0..=tau + 1 {
///             out[e] = rows[part][e.min(5)];
///         }
///     }
///     fn size_bytes(&self) -> usize { 0 }
/// }
///
/// let q: Vec<Vec<u64>> = vec![vec![0]; 4];
/// let cn = CnTable::compute(&PaperTable, &q, 7);
/// let t = allocate_dp(&cn, 7);
/// assert_eq!(t.0, vec![2, 0, 2, 0]);     // the boldface path
/// assert_eq!(cn.sum_for(&t), 55.0);      // OPT[4, 4] = 55
/// ```
pub fn allocate_dp(cn: &CnTable, tau: u32) -> ThresholdVector {
    assert!(cn.tau() as u32 >= tau, "CN table covers tau <= {}, asked {tau}", cn.tau());
    let rows: Vec<&[f64]> = (0..cn.m()).map(|i| cn.row(i)).collect();
    let (_, path) = dp_core(&rows, tau);
    let tv = ThresholdVector(path);
    debug_assert!(tv.satisfies_general_budget(tau));
    tv
}

/// Minimum `Σ CN` over all general-budget threshold vectors, with per-
/// partition CN rows given directly (`rows[i][e + 1] = CN(qᵢ, e)`,
/// `rows[i]\[0\]` being the `e = −1` slot, conventionally 0). Rows shorter
/// than `τ + 2` are clamped at their last entry. Used by the offline
/// partitioner, which evaluates thousands of candidate partitionings and
/// cannot afford materializing a [`CnTable`] per evaluation.
pub fn dp_min_cost_rows(rows: &[&[f64]], tau: u32) -> f64 {
    dp_core(rows, tau).0
}

/// Row lookup with tail clamping.
#[inline]
fn row_cn(row: &[f64], e: i32) -> f64 {
    debug_assert!(e >= -1);
    let idx = (e + 1) as usize;
    row[idx.min(row.len() - 1)]
}

/// Shared DP: returns `(min cost, argmin threshold vector)`.
fn dp_core(rows: &[&[f64]], tau: u32) -> (f64, Vec<i32>) {
    let m = rows.len();
    assert!(m >= 1, "need at least one partition");
    let tau_i = tau as i32;
    if m == 1 {
        // Budget is τ itself.
        return (row_cn(rows[0], tau_i), vec![tau_i]);
    }
    let width = tau as usize + 2;
    // opt[i][t + i] = min cost over partitions 0..=i with partial sum t.
    let mut opt = vec![f64::INFINITY; m * width];
    let mut path = vec![0i32; m * width];
    // Row 0 (paper's i = 1): OPT[0, t] = CN(q_0, t), t ∈ [−1, τ].
    for t in -1..=tau_i {
        let idx = (t + 1) as usize;
        opt[idx] = row_cn(rows[0], t);
        path[idx] = t;
    }
    for i in 1..m {
        let (prev_opt, cur) = opt.split_at_mut(i * width);
        let prev_opt = &prev_opt[(i - 1) * width..];
        let cur = &mut cur[..width];
        let cur_path = &mut path[i * width..(i + 1) * width];
        let cn_row = rows[i];
        for t in -(i as i32 + 1)..=(tau_i - i as i32) {
            let idx = (t + i as i32 + 1) as usize;
            // e ∈ [e_lo, e_hi]: rest = t − e must lie in [−i, τ − i + 1],
            // e itself in [−1, τ].
            let e_lo = (t - (tau_i - i as i32 + 1)).max(-1);
            let e_hi = (t + i as i32).min(tau_i);
            let mut best = f64::INFINITY;
            let mut best_e = e_lo;
            for e in e_lo..=e_hi {
                // prior index for e: (t − e) + (i−1) + 1 = t − e + i.
                let prior_idx = (t - e + i as i32) as usize;
                let c = prev_opt[prior_idx] + row_cn(cn_row, e);
                if c < best {
                    best = c;
                    best_e = e;
                }
            }
            cur[idx] = best;
            cur_path[idx] = best_e;
        }
    }
    // Trace back from t = τ − m + 1.
    let mut t = tau_i - m as i32 + 1;
    let final_cost = opt[(m - 1) * width + (t + m as i32) as usize];
    let mut out = vec![0i32; m];
    for i in (0..m).rev() {
        let idx = i * width + (t + i as i32 + 1) as usize;
        let e = path[idx];
        out[i] = e;
        t -= e;
    }
    debug_assert_eq!(t, 0);
    (final_cost, out)
}

/// Minimum estimated `Σ CN` achieved by the DP (Fig. 3's "estimated
/// cost" series, up to the constant coefficient of Eq. 1).
pub fn dp_cost(cn: &CnTable, tau: u32) -> f64 {
    let t = allocate_dp(cn, tau);
    cn.sum_for(&t)
}

/// The **RR** baseline: spread the general budget `τ − m + 1` evenly.
/// Every partition starts at −1 and τ + 1 increments are dealt round-
/// robin, so `T[i] ∈ {⌈(τ+1)/m⌉ − 1, ⌊(τ+1)/m⌋ − 1}` and
/// `‖T‖₁ = τ − m + 1`.
pub fn allocate_round_robin(m: usize, tau: u32) -> ThresholdVector {
    assert!(m >= 1);
    let units = tau as usize + 1;
    let base = units / m;
    let extra = units % m;
    let t: Vec<i32> = (0..m).map(|i| base as i32 + i32::from(i < extra) - 1).collect();
    let tv = ThresholdVector(t);
    debug_assert!(tv.satisfies_general_budget(tau));
    tv
}

/// Exhaustive reference allocator: tries **every** vector with the
/// general budget and entries in `[−1, τ]`. Exponential — test use only.
pub fn allocate_exhaustive(cn: &CnTable, tau: u32) -> (ThresholdVector, f64) {
    let m = cn.m();
    let budget = tau as i32 - m as i32 + 1;
    let mut best: Option<(Vec<i32>, f64)> = None;
    let mut cur = vec![0i32; m];
    fn rec(
        cn: &CnTable,
        cur: &mut Vec<i32>,
        i: usize,
        remaining: i32,
        tau: i32,
        best: &mut Option<(Vec<i32>, f64)>,
    ) {
        let m = cn.m();
        if i == m - 1 {
            if !(-1..=tau).contains(&remaining) {
                return;
            }
            cur[i] = remaining;
            let cost: f64 = cur.iter().enumerate().map(|(j, &e)| cn.get(j, e)).sum();
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                *best = Some((cur.clone(), cost));
            }
            return;
        }
        for e in -1..=tau {
            // Remaining partitions can sum within [-(m-i-1), (m-i-1)*tau].
            let left = remaining - e;
            let parts_left = (m - i - 1) as i32;
            if left < -parts_left || left > parts_left * tau {
                continue;
            }
            cur[i] = e;
            rec(cn, cur, i + 1, left, tau, best);
        }
    }
    rec(cn, &mut cur, 0, budget, tau as i32, &mut best);
    let (v, c) = best.expect("budget is always feasible");
    (ThresholdVector(v), c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::{CnEstimator, CnTable};

    /// Builds a CnTable directly from explicit per-partition rows
    /// (`rows[i][e+1]`, e from −1).
    fn table_from(rows: &[Vec<f64>], tau: usize) -> CnTable {
        struct Fixed(Vec<Vec<f64>>);
        impl CnEstimator for Fixed {
            fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
                for e in 0..=tau + 1 {
                    let row = &self.0[part];
                    out[e] = row[e.min(row.len() - 1)];
                }
            }
            fn size_bytes(&self) -> usize {
                0
            }
        }
        let est = Fixed(rows.to_vec());
        let q: Vec<Vec<u64>> = rows.iter().map(|_| vec![0u64]).collect();
        CnTable::compute(&est, &q, tau)
    }

    /// Example 5 of the paper: 4 partitions, τ = 7, budget 4.
    fn example5() -> CnTable {
        table_from(
            &[
                vec![0., 5., 10., 15., 50., 100.],
                vec![0., 10., 80., 90., 95., 100.],
                vec![0., 5., 15., 20., 70., 100.],
                vec![0., 10., 70., 80., 95., 100.],
            ],
            7,
        )
    }

    #[test]
    fn paper_example_5() {
        let cn = example5();
        let t = allocate_dp(&cn, 7);
        assert_eq!(t.0, vec![2, 0, 2, 0], "paper's traced path");
        assert_eq!(cn.sum_for(&t), 55.0, "OPT[4, 4] = 55");
        assert!(t.satisfies_general_budget(7));
    }

    #[test]
    fn dp_matches_exhaustive_on_example5() {
        let cn = example5();
        let (_, best) = allocate_exhaustive(&cn, 7);
        assert_eq!(best, 55.0);
        assert_eq!(dp_cost(&cn, 7), best);
    }

    #[test]
    fn dp_matches_exhaustive_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        for trial in 0..60 {
            let m = rng.random_range(1..=4usize);
            let tau = rng.random_range(0..=8u32);
            let rows: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    let mut row = vec![0.0];
                    let mut acc = 0.0f64;
                    for _ in 0..=tau {
                        acc += rng.random_range(0.0..20.0);
                        row.push(acc.floor());
                    }
                    row
                })
                .collect();
            let cn = table_from(&rows, tau as usize);
            let dp = allocate_dp(&cn, tau);
            let (_, best) = allocate_exhaustive(&cn, tau);
            assert!(
                (cn.sum_for(&dp) - best).abs() < 1e-9,
                "trial {trial}: m={m} tau={tau} dp={} best={best}",
                cn.sum_for(&dp)
            );
            assert!(dp.satisfies_general_budget(tau));
        }
    }

    #[test]
    fn negative_thresholds_skip_expensive_partitions() {
        // Partition 1 is catastrophically unselective; DP should assign
        // it −1 whenever the budget allows.
        let cn = table_from(
            &[vec![0., 1., 2., 3., 4., 5.], vec![0., 1000., 1000., 1000., 1000., 1000.]],
            4,
        );
        let t = allocate_dp(&cn, 4);
        assert_eq!(t.0[1], -1);
        assert_eq!(t.0[0], 4); // budget τ−m+1 = 3 = 4 + (−1)
    }

    #[test]
    fn single_partition_gets_full_tau() {
        let cn = table_from(&[vec![0., 1., 2., 3.]], 2);
        assert_eq!(allocate_dp(&cn, 2).0, vec![2]);
    }

    #[test]
    fn flexible_budget_allocates_tau_total() {
        let cn = example5();
        let tv = allocate_dp_budget(&cn, 7, 7, -1).unwrap();
        assert_eq!(tv.sum(), 7);
        // Flexible cost can never beat the general budget's filter on
        // candidates, but its DP cost is well-defined and >= general's
        // optimum only in candidate terms — here just check feasibility
        // and entry ranges.
        assert!(tv.0.iter().all(|&e| (-1..=7).contains(&e)));
    }

    #[test]
    fn general_dominates_flexible_cost() {
        // With the same CN table, the general budget (smaller sum) can
        // only lower the optimal Σ CN.
        let cn = example5();
        let general = allocate_dp(&cn, 7);
        let flexible = allocate_dp_budget(&cn, 7, 7, -1).unwrap();
        assert!(cn.sum_for(&general) <= cn.sum_for(&flexible));
    }

    #[test]
    fn nonneg_variant_matches_exhaustive_over_nonneg_vectors() {
        let cn = example5();
        // budget = 4, entries >= 0.
        let got = allocate_dp_budget(&cn, 7, 4, 0).unwrap();
        assert_eq!(got.sum(), 4);
        assert!(got.0.iter().all(|&e| e >= 0));
        // Brute force over all non-negative vectors summing to 4.
        let mut best = f64::INFINITY;
        for a in 0..=4i32 {
            for b in 0..=4 - a {
                for c in 0..=4 - a - b {
                    let d = 4 - a - b - c;
                    let t = ThresholdVector(vec![a, b, c, d]);
                    best = best.min(cn.sum_for(&t));
                }
            }
        }
        assert_eq!(cn.sum_for(&got), best);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let cn = example5();
        // 4 partitions, entries >= 0 cannot sum to -1.
        assert!(allocate_dp_budget(&cn, 7, -1, 0).is_none());
        // Entries <= tau cannot sum past m*tau.
        assert!(allocate_dp_budget(&cn, 7, 100, -1).is_none());
    }

    #[test]
    fn allocate_dispatches_ablation_kinds() {
        let cn = example5();
        let flex = allocate(AllocatorKind::DpFlexible, &cn, 7);
        assert_eq!(flex.sum(), 7);
        let nn = allocate(AllocatorKind::DpNonNegative, &cn, 7);
        assert_eq!(nn.sum(), 4);
        assert!(nn.0.iter().all(|&e| e >= 0));
        // m > tau + 1 -> non-negative infeasible -> falls back to general.
        let cn2 = table_from(&vec![vec![0., 1., 2.]; 5], 2);
        let nn2 = allocate(AllocatorKind::DpNonNegative, &cn2, 2);
        assert!(nn2.satisfies_general_budget(2));
    }

    #[test]
    fn round_robin_budget_and_spread() {
        // τ=9, m=3 -> units=10: [4,3,3] − 1 = [3,2,2]; sum = 7 = 9−3+1.
        let t = allocate_round_robin(3, 9);
        assert_eq!(t.0, vec![3, 2, 2]);
        assert!(t.satisfies_general_budget(9));
        // τ=2, m=4 -> units 3: [0,0,0,-1]; sum = -1 = 2-4+1.
        let t2 = allocate_round_robin(4, 2);
        assert_eq!(t2.0, vec![0, 0, 0, -1]);
        assert!(t2.satisfies_general_budget(2));
    }

    #[test]
    fn dp_never_worse_than_round_robin() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        for _ in 0..40 {
            let m = rng.random_range(1..=6usize);
            let tau = rng.random_range(0..=10u32);
            let rows: Vec<Vec<f64>> = (0..m)
                .map(|_| {
                    let mut row = vec![0.0];
                    let mut acc = 0.0;
                    for _ in 0..=tau {
                        acc += rng.random_range(0.0..50.0);
                        row.push(acc);
                    }
                    row
                })
                .collect();
            let cn = table_from(&rows, tau as usize);
            let dp = allocate_dp(&cn, tau);
            let rr = allocate_round_robin(m, tau);
            assert!(cn.sum_for(&dp) <= cn.sum_for(&rr) + 1e-9);
        }
    }
}

//! Sample-scan CN estimation.
//!
//! Scans a row sample's projected values per query and partition, builds
//! the distance histogram, and scales counts by `N / |sample|`. With
//! `sample_cap >= N` this is an exact oracle — which is how the offline
//! partitioner (§V) and the calibration experiments use it. It is not an
//! online estimator in the paper (too slow per query at scale), but it is
//! the reference the approximations are tested against.

use super::CnEstimator;
use hamming_core::distance::hamming;
use hamming_core::project::ProjectedDataset;
use rand::seq::index::sample as rand_sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One partition's sampled projections, stored densely.
#[derive(Clone, Debug)]
struct SampledColumn {
    width: usize,
    words: usize,
    data: Vec<u64>,
}

/// The sample-scan estimator.
#[derive(Clone, Debug)]
pub struct SampleScanCn {
    columns: Vec<SampledColumn>,
    n_sampled: usize,
    n_total: usize,
}

impl SampleScanCn {
    /// Copies up to `sample_cap` rows' projections (uniform without
    /// replacement, seeded).
    pub fn build(pd: &ProjectedDataset, sample_cap: usize, seed: u64) -> Self {
        let n_total = pd.len();
        let take = sample_cap.min(n_total);
        let ids: Vec<usize> = if take == n_total {
            (0..n_total).collect()
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut v: Vec<usize> = rand_sample(&mut rng, n_total, take).into_iter().collect();
            v.sort_unstable();
            v
        };
        let columns = (0..pd.num_parts())
            .map(|p| {
                let col = pd.column(p);
                let words = col.words().max(1);
                let mut data = Vec::with_capacity(ids.len() * words);
                for &id in &ids {
                    data.extend_from_slice(col.value(id));
                }
                SampledColumn { width: col.width(), words, data }
            })
            .collect();
        SampleScanCn { columns, n_sampled: take, n_total }
    }

    /// Number of sampled rows.
    pub fn n_sampled(&self) -> usize {
        self.n_sampled
    }
}

impl CnEstimator for SampleScanCn {
    fn fill(&self, part: usize, q_val: &[u64], tau: usize, out: &mut [f64]) {
        let col = &self.columns[part];
        let scale =
            if self.n_sampled == 0 { 0.0 } else { self.n_total as f64 / self.n_sampled as f64 };
        let mut hist = vec![0u64; col.width + 1];
        for row in col.data.chunks_exact(col.words) {
            let d = hamming(row, q_val) as usize;
            hist[d] += 1;
        }
        out[0] = 0.0;
        let mut acc = 0u64;
        for e in 0..=tau {
            if e < hist.len() {
                acc += hist[e];
            }
            out[e + 1] = (acc as f64 * scale).min(self.n_total as f64);
        }
    }

    fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.data.len() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::project::Projector;
    use hamming_core::{BitVector, Dataset, Partitioning};

    fn table1() -> (Dataset, Projector, ProjectedDataset) {
        let ds = Dataset::from_vectors(
            8,
            ["00000000", "00000111", "00001111", "10011111"]
                .iter()
                .map(|s| BitVector::parse(s).unwrap()),
        )
        .unwrap();
        let p = Partitioning::new(8, vec![(0..6).collect(), vec![6, 7]]).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        (ds, proj, pd)
    }

    #[test]
    fn full_sample_is_exact() {
        let (_, proj, pd) = table1();
        let est = SampleScanCn::build(&pd, usize::MAX, 0);
        assert_eq!(est.n_sampled(), 4);
        let q2 = BitVector::parse("10000011").unwrap();
        let qp = proj.project(1, q2.words());
        let mut out = vec![0.0; 5];
        est.fill(1, &qp, 3, &mut out);
        // Table II: CN(q2_2, 0) = 3 (x2, x3, x4 share "11"); x1's "00" is
        // at distance 2, so the count reaches 4 only at e = 2.
        assert_eq!(out[1], 3.0);
        assert_eq!(out[2], 3.0);
        assert_eq!(out[3], 4.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn subsample_scales_counts() {
        let (_, proj, pd) = table1();
        let est = SampleScanCn::build(&pd, 2, 1);
        assert_eq!(est.n_sampled(), 2);
        let q = BitVector::parse("00000000").unwrap();
        let qp = proj.project(0, q.words());
        let mut out = vec![0.0; 8];
        est.fill(0, &qp, 6, &mut out);
        // At e = width the scaled count must equal N exactly.
        assert_eq!(out[7], 4.0);
        // Never exceeds N anywhere.
        assert!(out.iter().all(|&v| v <= 4.0));
    }
}

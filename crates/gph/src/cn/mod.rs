//! Candidate-number (CN) estimation — §IV-C.
//!
//! The threshold allocator needs `CN(qᵢ, e)`: how many data vectors fall
//! within distance `e` of the query's projection on partition `i`, for
//! every `e ∈ [−1, τ]`. Four estimators are provided:
//!
//! | Kind | Paper name | Notes |
//! |---|---|---|
//! | [`exact::ExactCn`] | "exact solution" | `O(m·2^n')` tables, width-capped |
//! | [`subpart::SubPartitionCn`] | **SP** | exact sub-tables + general-pigeonhole combination |
//! | [`learned::LearnedCn`] | **SVM / RF / DNN** | per-(partition, e) regressors on `ln CN` |
//! | [`sample_scan::SampleScanCn`] | — | scaled sample scan; the oracle used for calibration and by the offline partitioner |
//!
//! All estimates are clamped to `[0, N]` and made monotone in `e` before
//! the DP consumes them.

pub mod exact;
pub mod learned;
pub mod sample_scan;
pub mod subpart;

use bytes::BufMut;
use hamming_core::error::{HammingError, Result};
use hamming_core::io::ByteReader;
use hamming_core::project::ProjectedDataset;

/// A per-query estimator of candidate numbers.
pub trait CnEstimator: Send + Sync {
    /// Fills `out[e + 1] = ĈN(q_part, e)` for `e ∈ −1..=tau`, where
    /// `q_val` is the query's projection on partition `part`
    /// (`out.len() == tau + 2`; `out\[0\]`, the `e = −1` slot, must be 0).
    fn fill(&self, part: usize, q_val: &[u64], tau: usize, out: &mut [f64]);

    /// Heap footprint, charged to the index size in Fig. 6.
    fn size_bytes(&self) -> usize;

    /// Byte snapshot of the built state, for estimators whose
    /// construction is worth persisting (the table-based kinds). `None`
    /// means the engine snapshot stores only the [`EstimatorKind`] and
    /// the estimator is rebuilt deterministically at load time from its
    /// seeds and the restored projections.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Which estimator to build (engine configuration).
#[derive(Clone, Debug)]
pub enum EstimatorKind {
    /// Exact per-partition tables; fails if any partition is wider than
    /// the given cap (default 16) because tables are `O(2^width)`.
    Exact {
        /// Maximum partition width the tables may cover.
        max_width: usize,
    },
    /// The paper's sub-partitioning approximation (**SP**) with `mi`
    /// sub-partitions per partition (the paper evaluates `mi = 2`).
    SubPartition {
        /// Number of sub-partitions per partition.
        sub_count: usize,
        /// Apply the paper's general-pigeonhole budget shift
        /// (`Σ g ≤ τᵢ − mᵢ + 1`). As printed, that formula estimates 0
        /// for every threshold below `mᵢ − 1`, which blinds the DP at
        /// small thresholds; the default (false) uses the unshifted
        /// independence CDF (`Σ g ≤ τᵢ`). See `subpart.rs`.
        paper_shift: bool,
    },
    /// Learned regressors (**SVM**/**RF**/**DNN** of Table III).
    Learned(learned::LearnedParams),
    /// Scaled scan over a row sample (oracle-style; exact when
    /// `sample_cap >= N`).
    SampleScan {
        /// Maximum number of rows scanned per estimate.
        sample_cap: usize,
        /// Sampling seed.
        seed: u64,
    },
}

impl Default for EstimatorKind {
    fn default() -> Self {
        EstimatorKind::SubPartition { sub_count: 2, paper_shift: false }
    }
}

/// Builds the configured estimator over a projected dataset.
///
/// `tau_max` bounds the thresholds the estimator must answer for (larger
/// queries clamp to the table edge, where `CN = N` anyway).
pub fn build_estimator(
    kind: &EstimatorKind,
    pd: &ProjectedDataset,
    tau_max: usize,
) -> Result<Box<dyn CnEstimator>> {
    match kind {
        EstimatorKind::Exact { max_width } => {
            Ok(Box::new(exact::ExactCn::build(pd, tau_max, *max_width)?))
        }
        EstimatorKind::SubPartition { sub_count, paper_shift } => Ok(Box::new(
            subpart::SubPartitionCn::build_with_shift(pd, tau_max, *sub_count, *paper_shift)?,
        )),
        EstimatorKind::Learned(params) => {
            Ok(Box::new(learned::LearnedCn::build(pd, tau_max, params)?))
        }
        EstimatorKind::SampleScan { sample_cap, seed } => {
            Ok(Box::new(sample_scan::SampleScanCn::build(pd, *sample_cap, *seed)))
        }
    }
}

/// Encodes an [`EstimatorKind`] for engine snapshots (tag byte plus the
/// kind's parameters, little-endian).
pub(crate) fn encode_kind(kind: &EstimatorKind) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match kind {
        EstimatorKind::Exact { max_width } => {
            buf.put_u8(0);
            buf.put_u64_le(*max_width as u64);
        }
        EstimatorKind::SubPartition { sub_count, paper_shift } => {
            buf.put_u8(1);
            buf.put_u64_le(*sub_count as u64);
            buf.put_u8(u8::from(*paper_shift));
        }
        EstimatorKind::Learned(p) => {
            buf.put_u8(2);
            buf.put_u8(match p.model {
                learned::ModelKind::Svm => 0,
                learned::ModelKind::Rf => 1,
                learned::ModelKind::Dnn => 2,
            });
            buf.put_u64_le(p.n_train as u64);
            buf.put_u64_le(p.scan_cap as u64);
            buf.put_u64_le(p.seed);
        }
        EstimatorKind::SampleScan { sample_cap, seed } => {
            buf.put_u8(3);
            buf.put_u64_le(*sample_cap as u64);
            buf.put_u64_le(*seed);
        }
    }
    buf
}

/// Decodes an [`EstimatorKind`] written by [`encode_kind`].
pub(crate) fn decode_kind(bytes: &[u8]) -> Result<EstimatorKind> {
    let mut r = ByteReader::new(bytes);
    let kind = match r.u8("estimator kind tag")? {
        0 => EstimatorKind::Exact { max_width: r.u64("exact max_width")? as usize },
        1 => EstimatorKind::SubPartition {
            sub_count: r.u64("SP sub_count")? as usize,
            paper_shift: r.u8("SP shift flag")? != 0,
        },
        2 => {
            let model = match r.u8("learned model tag")? {
                0 => learned::ModelKind::Svm,
                1 => learned::ModelKind::Rf,
                2 => learned::ModelKind::Dnn,
                other => return Err(HammingError::Corrupt(format!("unknown model kind {other}"))),
            };
            EstimatorKind::Learned(learned::LearnedParams {
                model,
                n_train: r.u64("learned n_train")? as usize,
                scan_cap: r.u64("learned scan_cap")? as usize,
                seed: r.u64("learned seed")?,
            })
        }
        3 => EstimatorKind::SampleScan {
            sample_cap: r.u64("sample cap")? as usize,
            seed: r.u64("sample seed")?,
        },
        other => return Err(HammingError::Corrupt(format!("unknown estimator kind {other}"))),
    };
    r.finish("estimator kind")?;
    Ok(kind)
}

/// Restores an estimator for a loaded engine: from its persisted state
/// when one was snapshotted (the table-based kinds), otherwise by a
/// deterministic rebuild over the restored projections — seeds live in
/// the kind, so the rebuilt estimator answers exactly as the saved one.
///
/// `widths` are the partition widths of the snapshot's partitioning;
/// decoded state must match them exactly, so a state section that is
/// internally consistent but belongs to a different partitioning (e.g.
/// spliced from another snapshot, every CRC intact) is rejected here
/// instead of panicking on an out-of-bounds table lookup at query time.
pub(crate) fn restore_estimator(
    kind: &EstimatorKind,
    state: Option<&[u8]>,
    pd: &ProjectedDataset,
    tau_max: usize,
    widths: &[usize],
) -> Result<Box<dyn CnEstimator>> {
    match (kind, state) {
        (EstimatorKind::Exact { .. }, Some(bytes)) => {
            Ok(Box::new(exact::ExactCn::decode_state(bytes, widths)?))
        }
        (EstimatorKind::SubPartition { .. }, Some(bytes)) => {
            Ok(Box::new(subpart::SubPartitionCn::decode_state(bytes, widths)?))
        }
        _ => build_estimator(kind, pd, tau_max),
    }
}

/// Restores an estimator for a *cold* (file-backed) segment, which has
/// no resident projected dataset to rebuild from. Table-based kinds
/// restore from their persisted state exactly as in
/// [`restore_estimator`]; kinds without state (`Learned`, `SampleScan`)
/// fall back to the closed-form [`crate::coldstore::FlatCn`] — the
/// pigeonhole filter is exact under any valid allocation, so only cost
/// estimates shift, never results.
pub(crate) fn restore_estimator_cold(
    kind: &EstimatorKind,
    state: Option<&[u8]>,
    n_rows: usize,
    tau_max: usize,
    widths: &[usize],
) -> Result<Box<dyn CnEstimator>> {
    match (kind, state) {
        (EstimatorKind::Exact { .. }, Some(bytes)) => {
            Ok(Box::new(exact::ExactCn::decode_state(bytes, widths)?))
        }
        (EstimatorKind::SubPartition { .. }, Some(bytes)) => {
            Ok(Box::new(subpart::SubPartitionCn::decode_state(bytes, widths)?))
        }
        _ => Ok(Box::new(crate::coldstore::FlatCn::new(n_rows, widths, tau_max))),
    }
}

/// A query's filled CN table: `m` rows over `e ∈ [−1, τ]`.
#[derive(Clone, Debug)]
pub struct CnTable {
    m: usize,
    tau: usize,
    /// Row-major `m × (tau + 2)`; column `e + 1` holds threshold `e`.
    values: Vec<f64>,
}

impl CnTable {
    /// All-zero table.
    pub fn new(m: usize, tau: usize) -> Self {
        CnTable { m, tau, values: vec![0.0; m * (tau + 2)] }
    }

    /// Fills all rows from an estimator given the query's per-partition
    /// projections, then enforces row monotonicity in `e`.
    pub fn compute(est: &dyn CnEstimator, q_proj: &[Vec<u64>], tau: usize) -> Self {
        let m = q_proj.len();
        let mut t = CnTable::new(m, tau);
        for (i, q) in q_proj.iter().enumerate() {
            let row = t.row_mut(i);
            est.fill(i, q, tau, row);
            row[0] = 0.0; // e = -1 always filters everything
            for e in 1..row.len() {
                if row[e] < row[e - 1] {
                    row[e] = row[e - 1];
                }
            }
        }
        t
    }

    /// Number of partitions.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Largest threshold covered.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// `ĈN(qᵢ, e)`; `e` is clamped to the table range.
    #[inline]
    pub fn get(&self, part: usize, e: i32) -> f64 {
        let e = e.clamp(-1, self.tau as i32);
        self.values[part * (self.tau + 2) + (e + 1) as usize]
    }

    /// Mutable row for partition `part` (`[e=-1, e=0, …, e=τ]`).
    pub fn row_mut(&mut self, part: usize) -> &mut [f64] {
        let w = self.tau + 2;
        &mut self.values[part * w..(part + 1) * w]
    }

    /// Row for partition `part`.
    pub fn row(&self, part: usize) -> &[f64] {
        let w = self.tau + 2;
        &self.values[part * w..(part + 1) * w]
    }

    /// `Σᵢ ĈN(qᵢ, T[i])` — the quantity the allocator minimizes.
    pub fn sum_for(&self, t: &crate::pigeonhole::ThresholdVector) -> f64 {
        t.0.iter().enumerate().map(|(i, &e)| self.get(i, e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pigeonhole::ThresholdVector;

    struct Fake;
    impl CnEstimator for Fake {
        fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
            for e in -1..=(tau as i32) {
                // deliberately non-monotone to exercise the cummax
                out[(e + 1) as usize] =
                    if e == 2 { 0.0 } else { (part + 1) as f64 * (e + 1) as f64 };
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn compute_enforces_monotone_rows() {
        let t = CnTable::compute(&Fake, &[vec![0], vec![0]], 4);
        assert_eq!(t.get(0, -1), 0.0);
        for part in 0..2 {
            for e in 0..4 {
                assert!(t.get(part, e + 1) >= t.get(part, e), "part={part} e={e}");
            }
        }
        // row 0: raw values 0,1,2,0,4,5 -> cummax 0,1,2,2,4,5
        assert_eq!(t.get(0, 2), 2.0);
    }

    #[test]
    fn get_clamps_e() {
        let t = CnTable::compute(&Fake, &[vec![0]], 3);
        assert_eq!(t.get(0, -5), t.get(0, -1));
        assert_eq!(t.get(0, 99), t.get(0, 3));
    }

    #[test]
    fn sum_for_threshold_vector() {
        let t = CnTable::compute(&Fake, &[vec![0], vec![0]], 4);
        let tv = ThresholdVector(vec![-1, 1]);
        assert_eq!(t.sum_for(&tv), 0.0 + 4.0);
    }
}

//! Learned CN estimation (§IV-C "Machine Learning", Table III).
//!
//! For each partition `i` and threshold `e`, a regressor `h_e(qᵢ)` maps
//! the partition's bits (as 0/1 features) to `ln CN`. Following the
//! paper, targets are log-transformed — `⟨x, CN⟩ → ⟨x, ln CN⟩` — so a
//! squared-error fit approximates the *relative*-error objective
//! (`ln t ≈ t − 1`), and the model family is selectable:
//!
//! * [`ModelKind::Svm`] — RBF-kernel least-squares SVM (kernel ridge);
//!   the paper's choice.
//! * [`ModelKind::Rf`] — random forest.
//! * [`ModelKind::Dnn`] — 3-layer MLP.
//!
//! Training queries mix sampled data projections, perturbed projections,
//! and uniform random vectors; ground-truth `CN` comes from one distance-
//! histogram scan per training vector (all `e` at once).

use super::CnEstimator;
use hamming_core::distance::hamming;
use hamming_core::error::{HammingError, Result};
use hamming_core::project::ProjectedDataset;
use mlkit::tree::TreeParams;
use mlkit::{KernelRidge, Matrix, Mlp, RandomForest, Regressor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Model family for the learned estimator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// RBF-kernel LS-SVM (kernel ridge regression) — the paper's pick.
    Svm,
    /// Random forest regression.
    Rf,
    /// 3-layer MLP ("DNN").
    Dnn,
}

/// Configuration for [`LearnedCn`].
#[derive(Clone, Debug)]
pub struct LearnedParams {
    /// Model family.
    pub model: ModelKind,
    /// Training-set size per partition (the paper uses 1000).
    pub n_train: usize,
    /// Max rows scanned for ground truth (full scan if `>= N`).
    pub scan_cap: usize,
    /// Seed for training-query generation and model init.
    pub seed: u64,
}

impl Default for LearnedParams {
    fn default() -> Self {
        LearnedParams { model: ModelKind::Svm, n_train: 300, scan_cap: 20_000, seed: 17 }
    }
}

enum AnyModel {
    Svm(Box<KernelRidge>),
    Rf(Box<RandomForest>),
    Dnn(Box<Mlp>),
}

impl AnyModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            AnyModel::Svm(m) => m.predict(x),
            AnyModel::Rf(m) => m.predict(x),
            AnyModel::Dnn(m) => m.predict(x),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            AnyModel::Svm(m) => m.size_bytes(),
            AnyModel::Rf(m) => m.n_trees() * 512, // coarse: tree nodes
            AnyModel::Dnn(_) => 32 * 16 * 8,
        }
    }
}

struct PartModels {
    width: usize,
    /// `models[e]` predicts `ln(1 + CN(·, e))`, `e ∈ 0..=e_max`.
    models: Vec<AnyModel>,
    n: f64,
}

/// The learned estimator: `m × (e_max + 1)` regressors.
pub struct LearnedCn {
    parts: Vec<PartModels>,
}

impl LearnedCn {
    /// Trains regressors for every partition and threshold.
    pub fn build(pd: &ProjectedDataset, tau_max: usize, params: &LearnedParams) -> Result<Self> {
        if params.n_train < 8 {
            return Err(HammingError::InvalidParameter(
                "learned estimator needs at least 8 training points".into(),
            ));
        }
        let n = pd.len();
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let mut parts = Vec::with_capacity(pd.num_parts());
        for p in 0..pd.num_parts() {
            let col = pd.column(p);
            let width = col.width();
            let words = col.words().max(1);
            let e_max = tau_max.min(width);
            // --- training inputs: data / perturbed / uniform mix ---
            let mut train_vals: Vec<Vec<u64>> = Vec::with_capacity(params.n_train);
            for k in 0..params.n_train {
                let mut v = if n > 0 && k % 2 == 0 {
                    col.value(rng.random_range(0..n)).to_vec()
                } else if n > 0 && k % 4 == 1 {
                    // perturb a data projection by a few flips
                    let mut v = col.value(rng.random_range(0..n)).to_vec();
                    let flips = rng.random_range(0..=width.min(4));
                    for _ in 0..flips {
                        let b = rng.random_range(0..width.max(1));
                        v[b / 64] ^= 1u64 << (b % 64);
                    }
                    v
                } else {
                    // uniform random within width
                    let mut v = vec![0u64; words];
                    for b in 0..width {
                        if rng.random_bool(0.5) {
                            v[b / 64] |= 1u64 << (b % 64);
                        }
                    }
                    v
                };
                v.truncate(words);
                train_vals.push(v);
            }
            // --- ground truth by scanning (a cap of) the column ---
            let stride = (n / params.scan_cap.max(1)).max(1);
            let scanned: Vec<usize> = (0..n).step_by(stride).collect();
            let scale = if scanned.is_empty() { 0.0 } else { n as f64 / scanned.len() as f64 };
            // targets[k][e] = ln(1 + CN)
            let mut targets = vec![vec![0.0f64; e_max + 1]; train_vals.len()];
            for (k, tv) in train_vals.iter().enumerate() {
                let mut hist = vec![0u64; width + 1];
                for &id in &scanned {
                    hist[hamming(col.value(id), tv) as usize] += 1;
                }
                let mut acc = 0u64;
                for e in 0..=e_max {
                    acc += hist[e];
                    targets[k][e] = (1.0 + acc as f64 * scale).ln();
                }
            }
            // --- features: bits as f64 ---
            let feats: Vec<Vec<f64>> = train_vals
                .iter()
                .map(|v| (0..width).map(|b| ((v[b / 64] >> (b % 64)) & 1) as f64).collect())
                .collect();
            let x = Matrix::from_rows(&feats);
            // --- one model per threshold ---
            let mut models = Vec::with_capacity(e_max + 1);
            for e in 0..=e_max {
                let y: Vec<f64> = targets.iter().map(|t| t[e]).collect();
                let model = match params.model {
                    ModelKind::Svm => {
                        let gamma = 1.0 / width.max(1) as f64;
                        let m = KernelRidge::fit(&x, &y, gamma, 1e-3).ok_or_else(|| {
                            HammingError::InvalidParameter(
                                "kernel matrix not factorizable (NaN features?)".into(),
                            )
                        })?;
                        AnyModel::Svm(Box::new(m))
                    }
                    ModelKind::Rf => AnyModel::Rf(Box::new(RandomForest::fit(
                        &x,
                        &y,
                        20,
                        TreeParams { max_depth: 10, ..Default::default() },
                        params.seed ^ (e as u64) << 8 ^ (p as u64),
                    ))),
                    ModelKind::Dnn => AnyModel::Dnn(Box::new(Mlp::fit(
                        &x,
                        &y,
                        mlkit::mlp::MlpParams {
                            epochs: 60,
                            seed: params.seed ^ (e as u64) << 8 ^ (p as u64),
                            ..Default::default()
                        },
                    ))),
                };
                models.push(model);
            }
            parts.push(PartModels { width, models, n: n as f64 });
        }
        Ok(LearnedCn { parts })
    }
}

impl CnEstimator for LearnedCn {
    fn fill(&self, part: usize, q_val: &[u64], tau: usize, out: &mut [f64]) {
        let pm = &self.parts[part];
        let feats: Vec<f64> =
            (0..pm.width).map(|b| ((q_val[b / 64] >> (b % 64)) & 1) as f64).collect();
        out[0] = 0.0;
        for e in 0..=tau {
            let v = if e >= pm.width {
                pm.n
            } else if e < pm.models.len() {
                (pm.models[e].predict(&feats).exp() - 1.0).clamp(0.0, pm.n)
            } else {
                pm.n // beyond trained e_max: conservative
            };
            out[e + 1] = v;
        }
    }

    fn size_bytes(&self) -> usize {
        self.parts.iter().map(|pm| pm.models.iter().map(|m| m.size_bytes()).sum::<usize>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::project::Projector;
    use hamming_core::{BitVector, Dataset, Partitioning};

    fn skewed_dataset(n: usize) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ds = Dataset::new(16);
        for _ in 0..n {
            let v = BitVector::from_bits((0..16).map(|d| {
                let p = if d < 8 { 0.05 } else { 0.5 };
                rng.random_bool(p)
            }));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn relative_error_of(model: ModelKind) -> f64 {
        let ds = skewed_dataset(2000);
        let p = Partitioning::equi_width(16, 2).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        let params = LearnedParams { model, n_train: 150, ..Default::default() };
        let learned = LearnedCn::build(&pd, 8, &params).unwrap();
        let oracle = super::super::sample_scan::SampleScanCn::build(&pd, usize::MAX, 0);
        // Evaluate on held-out data projections.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut errs = Vec::new();
        for _ in 0..30 {
            let q = BitVector::from_bits((0..16).map(|_| rng.random_bool(0.3)));
            for part in 0..2 {
                let qp = proj.project(part, q.words());
                let mut est = vec![0.0; 10];
                let mut tru = vec![0.0; 10];
                learned.fill(part, &qp, 8, &mut est);
                oracle.fill(part, &qp, 8, &mut tru);
                for e in 3..=8usize {
                    errs.push((est[e + 1] - tru[e + 1]).abs() / tru[e + 1].max(1.0));
                }
            }
        }
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn svm_estimator_is_accurate() {
        let err = relative_error_of(ModelKind::Svm);
        assert!(err < 0.25, "SVM mean relative error {err}");
    }

    #[test]
    fn rf_estimator_is_sane() {
        let err = relative_error_of(ModelKind::Rf);
        assert!(err < 0.60, "RF mean relative error {err}");
    }

    #[test]
    fn fill_is_clamped_and_zero_at_minus_one() {
        let ds = skewed_dataset(500);
        let p = Partitioning::equi_width(16, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let learned =
            LearnedCn::build(&pd, 8, &LearnedParams { n_train: 50, ..Default::default() }).unwrap();
        let mut out = vec![0.0; 10];
        learned.fill(0, &[0u64], 8, &mut out);
        assert_eq!(out[0], 0.0);
        assert!(out.iter().all(|&v| (0.0..=500.0).contains(&v)));
        // e >= width ⇒ N exactly.
        assert_eq!(out[9], 500.0);
    }

    #[test]
    fn rejects_tiny_training_sets() {
        let ds = skewed_dataset(50);
        let p = Partitioning::equi_width(16, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let params = LearnedParams { n_train: 4, ..Default::default() };
        assert!(LearnedCn::build(&pd, 8, &params).is_err());
    }
}

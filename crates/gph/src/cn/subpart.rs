//! The sub-partitioning CN approximation (**SP**, §IV-C).
//!
//! Each partition is split into `mi` equi-width sub-partitions with exact
//! tables. Assuming independence across sub-partitions, the paper
//! estimates
//!
//! ```text
//! ĈN(qᵢ, τᵢ) = Σ_{g ∈ G(mᵢ, τᵢ)} Π_j ( CN(q_ij, g[j]) − CN(q_ij, g[j]−1) )
//! ```
//!
//! where `G` contains threshold vectors with entries in `[−1, τᵢ]` summing
//! to at most `τᵢ − mᵢ + 1` (the general pigeonhole budget). Terms with
//! any `g[j] = −1` vanish, so the sum equals the CDF at `τᵢ − mᵢ + 1` of
//! the *convolution* of the sub-partitions' exact-distance distributions —
//! which is how we evaluate it: one convolution per partition per query
//! yields every `e` at once. For `mᵢ = 1` the estimate is exact. By
//! default the budget is **unshifted** (CDF at `τᵢ`), fixing the printed
//! formula's degeneracy at `τᵢ < mᵢ − 1`; `paper_shift` restores it.

use super::exact::ExactPart;
use super::CnEstimator;
use bytes::BufMut;
use hamming_core::error::{HammingError, Result};
use hamming_core::io::ByteReader;
use hamming_core::project::ProjectedDataset;

/// Widest exact sub-table we allow (`2^16` rows).
const MAX_SUB_WIDTH: usize = 16;

#[derive(Clone, Debug)]
struct SubSplit {
    /// Paper-faithful budget shift (see [`SubPartitionCn::build_with_shift`]).
    paper_shift: bool,
    /// Partition width.
    width: usize,
    /// Bit ranges `[start, end)` of each sub-partition within the
    /// partition's projected value.
    ranges: Vec<(usize, usize)>,
    /// Exact tables, one per sub-partition.
    tables: Vec<ExactPart>,
    /// Dataset cardinality (upper clamp).
    n: f64,
}

/// The SP estimator.
#[derive(Clone, Debug)]
pub struct SubPartitionCn {
    parts: Vec<SubSplit>,
}

impl SubPartitionCn {
    /// Builds with the default (unshifted) combination — see
    /// [`Self::build_with_shift`].
    pub fn build(pd: &ProjectedDataset, tau_max: usize, sub_count: usize) -> Result<Self> {
        Self::build_with_shift(pd, tau_max, sub_count, false)
    }

    /// Builds sub-tables with `sub_count` sub-partitions per partition
    /// (automatically increased where needed to keep every sub-table at
    /// most `MAX_SUB_WIDTH` (16) bits wide).
    ///
    /// `paper_shift` selects the combination budget. The paper's formula
    /// sums exact-distance products over `Σ g ≤ τᵢ − mᵢ + 1`; as printed
    /// it returns 0 for every `τᵢ < mᵢ − 1` (in particular `τᵢ = 0`),
    /// which misleads the DP into treating unselective partitions as
    /// free. The paper never hits this because its main experiments use
    /// the SVM estimator; since SP is this crate's default, the default
    /// here is the unshifted independence CDF (`Σ g ≤ τᵢ`), which agrees
    /// with the exact estimator when `mᵢ = 1` and is accurate at all
    /// thresholds. Set `paper_shift = true` to reproduce the printed
    /// formula (Table III's SP row reports both).
    pub fn build_with_shift(
        pd: &ProjectedDataset,
        tau_max: usize,
        sub_count: usize,
        paper_shift: bool,
    ) -> Result<Self> {
        if sub_count == 0 {
            return Err(HammingError::InvalidParameter("sub_count must be at least 1".into()));
        }
        let mut parts = Vec::with_capacity(pd.num_parts());
        for p in 0..pd.num_parts() {
            let col = pd.column(p);
            let width = col.width();
            let mi = sub_count.max(width.div_ceil(MAX_SUB_WIDTH)).max(1);
            let ranges = split_ranges(width, mi);
            let mut tables = Vec::with_capacity(ranges.len());
            for &(start, end) in &ranges {
                let sub_w = end - start;
                // Histogram of the sub-partition's values.
                let mut freqs = vec![0u64; 1usize << sub_w];
                if sub_w > 0 {
                    for id in 0..pd.len() {
                        let v = extract_bits(col.value(id), start, end);
                        freqs[v as usize] += 1;
                    }
                } else {
                    freqs[0] = pd.len() as u64;
                }
                tables.push(ExactPart::build_from_freqs(sub_w, &freqs, tau_max.min(sub_w)));
            }
            parts.push(SubSplit { paper_shift, width, ranges, tables, n: pd.len() as f64 });
        }
        Ok(SubPartitionCn { parts })
    }

    /// Snapshot encoding: per partition the split shape plus every
    /// sub-table, so a load skips the histogram + recurrence rebuild.
    pub(crate) fn encode_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(self.parts.len() as u64);
        for sp in &self.parts {
            buf.put_u8(u8::from(sp.paper_shift));
            buf.put_u64_le(sp.width as u64);
            buf.put_u64_le(sp.n.to_bits());
            buf.put_u64_le(sp.ranges.len() as u64);
            for &(start, end) in &sp.ranges {
                buf.put_u64_le(start as u64);
                buf.put_u64_le(end as u64);
            }
            for t in &sp.tables {
                t.encode_into(&mut buf);
            }
        }
        buf
    }

    /// Restores an estimator from [`SubPartitionCn::encode_state`]
    /// bytes. `widths` are the partitioning's per-partition widths; the
    /// split shapes must match them, or query-time bit extraction could
    /// index out of bounds.
    pub(crate) fn decode_state(bytes: &[u8], widths: &[usize]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let n_parts = r.len(25, "SP part count")?;
        if n_parts != widths.len() {
            return Err(HammingError::Corrupt(format!(
                "SP estimator covers {n_parts} partitions, partitioning has {}",
                widths.len()
            )));
        }
        let mut parts = Vec::with_capacity(n_parts);
        for (p, &expected_width) in widths.iter().enumerate() {
            let paper_shift = r.u8("SP shift flag")? != 0;
            let width = r.u64("SP width")? as usize;
            if width != expected_width {
                return Err(HammingError::Corrupt(format!(
                    "SP part {p} is {width} bits wide, partition is {expected_width}"
                )));
            }
            let n = r.f64("SP cardinality")?;
            let n_sub = r.len(16, "SP sub-partition count")?;
            let mut ranges = Vec::with_capacity(n_sub);
            for _ in 0..n_sub {
                let start = r.u64("SP range start")? as usize;
                let end = r.u64("SP range end")? as usize;
                if start > end || end > width {
                    return Err(HammingError::Corrupt(format!(
                        "SP part {p} range {start}..{end} outside width {width}"
                    )));
                }
                ranges.push((start, end));
            }
            let mut tables = Vec::with_capacity(n_sub);
            for (j, &(start, end)) in ranges.iter().enumerate() {
                let t = ExactPart::decode_from(&mut r)?;
                if t.width != end - start {
                    return Err(HammingError::Corrupt(format!(
                        "SP part {p} sub-table {j} width {} mismatches range {start}..{end}",
                        t.width
                    )));
                }
                tables.push(t);
            }
            parts.push(SubSplit { paper_shift, width, ranges, tables, n });
        }
        r.finish("SP estimator state")?;
        Ok(SubPartitionCn { parts })
    }
}

/// Equi-width split of `width` bits into `mi` contiguous ranges.
fn split_ranges(width: usize, mi: usize) -> Vec<(usize, usize)> {
    let mi = mi.min(width.max(1));
    let base = width / mi;
    let extra = width % mi;
    let mut out = Vec::with_capacity(mi);
    let mut at = 0usize;
    for j in 0..mi {
        let w = base + usize::from(j < extra);
        out.push((at, at + w));
        at += w;
    }
    out
}

/// Extracts bits `[start, end)` of a multi-word value as a u64
/// (`end - start <= 64`).
fn extract_bits(words: &[u64], start: usize, end: usize) -> u64 {
    debug_assert!(end - start <= 64);
    let mut v = 0u64;
    for (out_bit, bit) in (start..end).enumerate() {
        v |= ((words[bit / 64] >> (bit % 64)) & 1) << out_bit;
    }
    v
}

impl CnEstimator for SubPartitionCn {
    fn fill(&self, part: usize, q_val: &[u64], tau: usize, out: &mut [f64]) {
        let sp = &self.parts[part];
        let mi = sp.tables.len();
        // Exact-distance distribution of each sub-partition at the query's
        // sub-values, then their convolution. The paper's product formula
        // treats sub-partitions as independent; products of *absolute*
        // counts overcount by N^(mi−1), so we normalize by that factor
        // (expected joint count under independence).
        let cap = tau + 1; // distances beyond τ never matter
        let mut conv = vec![0.0f64; 1];
        conv[0] = 1.0;
        let mut scale = 1.0f64;
        for (j, table) in sp.tables.iter().enumerate() {
            let (start, end) = sp.ranges[j];
            let qv = extract_bits(q_val, start, end);
            let max_d = (end - start).min(cap);
            let mut dist = vec![0.0f64; max_d + 1];
            for (e, slot) in dist.iter_mut().enumerate() {
                *slot = table.exact_count(qv, e as i32) as f64;
            }
            // Mass beyond `cap` is irrelevant: results there can never
            // contribute to CN at thresholds ≤ τ.
            let new_len = (conv.len() + dist.len() - 1).min(cap + 1);
            let mut next = vec![0.0f64; new_len];
            for (a, &ca) in conv.iter().enumerate() {
                if ca == 0.0 {
                    continue;
                }
                for (b, &db) in dist.iter().enumerate() {
                    if a + b < new_len {
                        next[a + b] += ca * db;
                    }
                }
            }
            conv = next;
            if j > 0 {
                scale *= sp.n.max(1.0);
            }
        }
        // ĈN(qᵢ, e) = CDF of conv at (e − mᵢ + 1), normalized.
        let mut cdf = vec![0.0f64; conv.len() + 1];
        for (d, &c) in conv.iter().enumerate() {
            cdf[d + 1] = cdf[d] + c / scale;
        }
        for e in -1..=(tau as i32) {
            let budget = if sp.paper_shift { e - mi as i32 + 1 } else { e };
            let v = if budget < 0 { 0.0 } else { cdf[(budget as usize + 1).min(cdf.len() - 1)] };
            out[(e + 1) as usize] = v.min(sp.n).max(0.0);
        }
        // e >= width means every vector qualifies; fix the tail exactly.
        for e in sp.width..=tau {
            out[e + 1] = sp.n;
        }
    }

    fn size_bytes(&self) -> usize {
        self.parts.iter().map(|sp| sp.tables.iter().map(|t| t.size_bytes()).sum::<usize>()).sum()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.encode_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::project::Projector;
    use hamming_core::{BitVector, Dataset, Partitioning};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.3)));
            ds.push(&v).unwrap();
        }
        ds
    }

    #[test]
    fn single_subpartition_is_exact() {
        let ds = random_dataset(16, 200, 1);
        let p = Partitioning::equi_width(16, 2).unwrap(); // widths 8
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        let sp = SubPartitionCn::build(&pd, 8, 1).unwrap();
        let exact = super::super::exact::ExactCn::build(&pd, 8, 16).unwrap();
        let q = BitVector::from_bits((0..16).map(|i| i % 3 == 0));
        for part in 0..2 {
            let qp = proj.project(part, q.words());
            let mut a = vec![0.0; 10];
            let mut b = vec![0.0; 10];
            sp.fill(part, &qp, 8, &mut a);
            exact.fill(part, &qp, 8, &mut b);
            assert_eq!(a, b, "part {part}");
        }
    }

    #[test]
    fn two_subpartitions_underestimate_but_track() {
        // Default (unshifted) SP: the independence-CDF estimate tracks
        // the exact value on independent data.
        let ds = random_dataset(16, 500, 2);
        let p = Partitioning::equi_width(16, 1).unwrap(); // one partition, width 16
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        let sp = SubPartitionCn::build(&pd, 16, 2).unwrap();
        let exact = super::super::exact::ExactCn::build(&pd, 16, 16).unwrap();
        let q = BitVector::from_bits((0..16).map(|i| i % 5 == 0));
        let qp = proj.project(0, q.words());
        let mut a = vec![0.0; 18];
        let mut b = vec![0.0; 18];
        sp.fill(0, &qp, 16, &mut a);
        exact.fill(0, &qp, 16, &mut b);
        // At the full width the estimate must hit N exactly.
        assert_eq!(a[17], 500.0);
        // Estimates stay within a factor band of truth at mid thresholds.
        for e in 4..12usize {
            let (est, tru) = (a[e + 1], b[e + 1]);
            assert!(est <= tru * 1.6 + 5.0, "e={e} est={est} tru={tru}");
            assert!(est >= tru * 0.4 - 5.0, "e={e} est={est} tru={tru}");
        }
        // Monotone in e.
        for e in 0..16 {
            assert!(a[e + 1] <= a[e + 2] + 1e-9);
        }
    }

    #[test]
    fn auto_splits_wide_partitions() {
        let ds = random_dataset(40, 50, 3);
        let p = Partitioning::equi_width(40, 1).unwrap(); // width 40 > 16
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        let sp = SubPartitionCn::build(&pd, 8, 2).unwrap();
        // Must have auto-raised to >= ceil(40/16) = 3 sub-partitions.
        assert!(sp.parts[0].tables.len() >= 3);
        let mut out = vec![0.0; 10];
        sp.fill(0, &[0u64], 8, &mut out);
        assert!(out[9] <= 50.0);
    }

    #[test]
    fn extract_bits_works_across_words() {
        let words = [0xFF00_0000_0000_0000u64, 0x1];
        // bits 56..65 = 8 ones then the next word's bit 0 (=1).
        assert_eq!(extract_bits(&words, 56, 65), 0x1FF);
        assert_eq!(extract_bits(&words, 0, 8), 0);
    }

    #[test]
    fn paper_shift_degenerates_at_small_e_but_unshifted_does_not() {
        let ds = random_dataset(16, 400, 9);
        let p = Partitioning::equi_width(16, 1).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        let shifted = SubPartitionCn::build_with_shift(&pd, 8, 2, true).unwrap();
        let unshifted = SubPartitionCn::build_with_shift(&pd, 8, 2, false).unwrap();
        // Query = a data row: CN(q, 0) >= 1 in truth.
        let qp = proj.project(0, ds.row(0));
        let mut a = vec![0.0; 10];
        let mut b = vec![0.0; 10];
        shifted.fill(0, &qp, 8, &mut a);
        unshifted.fill(0, &qp, 8, &mut b);
        // The printed formula cannot see anything at e = 0 with mi = 2.
        assert_eq!(a[1], 0.0);
        // The unshifted CDF reports positive mass there.
        assert!(b[1] > 0.0);
        // And the shifted estimate is exactly the unshifted one at e-1.
        for e in 1..=8usize {
            assert!((a[e + 1] - b[e]).abs() < 1e-9, "e={e}");
        }
    }

    #[test]
    fn rejects_zero_subcount() {
        let ds = random_dataset(8, 10, 4);
        let p = Partitioning::equi_width(8, 2).unwrap();
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        assert!(SubPartitionCn::build(&pd, 4, 0).is_err());
    }
}

//! Exact CN tables over whole partitions.
//!
//! For a partition of width `w ≤ max_width`, stores `CN(v, e)` for **all**
//! `2^w` values `v` and `e ∈ 0..=e_max`, so query-time estimation is a
//! table lookup — the "exact algorithm" of §IV-C with `O(m·2^{n'}·τ)`
//! space, feasible only for small widths (which is precisely why the
//! paper introduces the SP and learned approximations).
//!
//! Construction avoids the naive `O(4^w)` pairwise sweep with the
//! Krawtchouk-style recurrence on exact-distance counts `t_k`:
//!
//! ```text
//! k · t_k(v) = Σ_j t_{k−1}(v ⊕ e_j) − (w − k + 2) · t_{k−2}(v)
//! ```
//!
//! which costs `O(w · 2^w)` per radius level.

use super::CnEstimator;
use bytes::BufMut;
use hamming_core::error::{HammingError, Result};
use hamming_core::io::ByteReader;
use hamming_core::project::ProjectedDataset;

/// Exact tables for one partition.
#[derive(Clone, Debug)]
pub(crate) struct ExactPart {
    pub width: usize,
    pub e_max: usize,
    pub n: u64,
    /// Row-major `2^width × (e_max + 1)`: `table[v][e] = CN(v, e)`.
    pub table: Vec<u64>,
}

impl ExactPart {
    /// Builds cumulative ball-count tables from the value frequencies of
    /// one projected column.
    pub fn build_from_freqs(width: usize, freqs: &[u64], e_max: usize) -> Self {
        let size = 1usize << width;
        assert_eq!(freqs.len(), size);
        let n: u64 = freqs.iter().sum();
        let e_max = e_max.min(width);
        // Exact-distance levels t_{k-2}, t_{k-1} (rolling).
        let mut t_prev2: Vec<u64> = Vec::new(); // t_{k-2}
        let mut t_prev: Vec<u64> = freqs.to_vec(); // t_0
        let mut table = vec![0u64; size * (e_max + 1)];
        for v in 0..size {
            table[v * (e_max + 1)] = t_prev[v]; // CN(v, 0) = t_0(v)
        }
        for k in 1..=e_max {
            let mut t_k = vec![0u64; size];
            for (v, tk) in t_k.iter_mut().enumerate() {
                let mut s: u64 = 0;
                for j in 0..width {
                    s += t_prev[v ^ (1usize << j)];
                }
                if k >= 2 {
                    s -= (width - k + 2) as u64 * t_prev2[v];
                }
                debug_assert_eq!(s % k as u64, 0, "recurrence must divide evenly");
                *tk = s / k as u64;
            }
            for (v, &tk) in t_k.iter().enumerate() {
                let row = v * (e_max + 1);
                table[row + k] = table[row + k - 1] + tk;
            }
            t_prev2 = std::mem::replace(&mut t_prev, t_k);
        }
        ExactPart { width, e_max, n, table }
    }

    /// `CN(v, e)`; `e < 0` → 0, `e > e_max` → `N` if `e >= width` else the
    /// table edge (callers pass `e_max = min(τ_max, width)`, so the edge
    /// is only hit beyond the supported τ, where clamping is the
    /// documented behaviour).
    #[inline]
    pub fn cn(&self, v: u64, e: i32) -> u64 {
        if e < 0 {
            return 0;
        }
        let e = e as usize;
        if e >= self.width {
            return self.n;
        }
        let e = e.min(self.e_max);
        self.table[v as usize * (self.e_max + 1) + e]
    }

    /// Exact-distance count `t_e(v) = CN(v, e) − CN(v, e−1)`.
    #[inline]
    pub fn exact_count(&self, v: u64, e: i32) -> u64 {
        if e < 0 {
            0
        } else {
            self.cn(v, e) - self.cn(v, e - 1)
        }
    }

    pub fn size_bytes(&self) -> usize {
        self.table.len() * 8
    }

    /// Appends this table's snapshot encoding: `width u64, e_max u64,
    /// n u64`, then the `2^width × (e_max + 1)` table words.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.width as u64);
        buf.put_u64_le(self.e_max as u64);
        buf.put_u64_le(self.n);
        for &v in &self.table {
            buf.put_u64_le(v);
        }
    }

    /// Decodes one table written by [`ExactPart::encode_into`],
    /// validating the declared shape before reading the table words.
    pub(crate) fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let width = r.u64("exact-table width")? as usize;
        if width >= usize::BITS as usize - 1 {
            return Err(HammingError::Corrupt(format!("exact-table width {width} is absurd")));
        }
        let e_max = r.u64("exact-table e_max")? as usize;
        if e_max > width {
            return Err(HammingError::Corrupt(format!(
                "exact-table e_max {e_max} exceeds width {width}"
            )));
        }
        let n = r.u64("exact-table n")?;
        let table_len = (1usize << width)
            .checked_mul(e_max + 1)
            .filter(|&words| words <= r.remaining() / 8)
            .ok_or_else(|| {
                HammingError::Corrupt(format!(
                    "exact-table 2^{width}×{} exceeds the remaining bytes",
                    e_max + 1
                ))
            })?;
        let table = r.u64s(table_len, "exact-table words")?;
        Ok(ExactPart { width, e_max, n, table })
    }
}

/// Frequency histogram of a projected column with width ≤ 26 or so.
pub(crate) fn column_freqs(pd: &ProjectedDataset, part: usize) -> Vec<u64> {
    let col = pd.column(part);
    let width = col.width();
    assert!(width < usize::BITS as usize - 1, "width too large for table");
    let mut freqs = vec![0u64; 1usize << width];
    for id in 0..pd.len() {
        freqs[col.key(id) as usize] += 1;
    }
    freqs
}

/// The exact estimator: one table per partition.
#[derive(Clone, Debug)]
pub struct ExactCn {
    parts: Vec<ExactPart>,
}

impl ExactCn {
    /// Builds tables for every partition; errors if any partition exceeds
    /// `max_width` (the tables would need `> 2^max_width` rows).
    pub fn build(pd: &ProjectedDataset, tau_max: usize, max_width: usize) -> Result<Self> {
        let mut parts = Vec::with_capacity(pd.num_parts());
        for p in 0..pd.num_parts() {
            let width = pd.column(p).width();
            if width > max_width {
                return Err(HammingError::InvalidParameter(format!(
                    "exact CN tables need partition width <= {max_width}, got {width} \
                     (use the SP or learned estimator)"
                )));
            }
            let freqs = column_freqs(pd, p);
            parts.push(ExactPart::build_from_freqs(width, &freqs, tau_max));
        }
        Ok(ExactCn { parts })
    }

    /// Snapshot encoding of every per-partition table.
    pub(crate) fn encode_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(self.parts.len() as u64);
        for p in &self.parts {
            p.encode_into(&mut buf);
        }
        buf
    }

    /// Restores an estimator from [`ExactCn::encode_state`] bytes.
    /// `widths` are the partitioning's per-partition widths; each table
    /// must match, or query-time lookups could index out of bounds.
    pub(crate) fn decode_state(bytes: &[u8], widths: &[usize]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let n_parts = r.len(24, "exact-estimator part count")?;
        if n_parts != widths.len() {
            return Err(HammingError::Corrupt(format!(
                "exact estimator covers {n_parts} partitions, partitioning has {}",
                widths.len()
            )));
        }
        let mut parts = Vec::with_capacity(n_parts);
        for (i, &width) in widths.iter().enumerate() {
            let p = ExactPart::decode_from(&mut r)?;
            if p.width != width {
                return Err(HammingError::Corrupt(format!(
                    "exact table {i} is {} bits wide, partition is {width}",
                    p.width
                )));
            }
            parts.push(p);
        }
        r.finish("exact-estimator state")?;
        Ok(ExactCn { parts })
    }
}

impl CnEstimator for ExactCn {
    fn fill(&self, part: usize, q_val: &[u64], tau: usize, out: &mut [f64]) {
        let p = &self.parts[part];
        let v = if q_val.is_empty() { 0 } else { q_val[0] };
        for e in -1..=(tau as i32) {
            out[(e + 1) as usize] = p.cn(v, e) as f64;
        }
    }

    fn size_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(self.encode_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamming_core::project::Projector;
    use hamming_core::{BitVector, Dataset, Partitioning};

    /// Brute-force CN for cross-checking.
    fn brute_cn(freqs: &[u64], v: u64, e: i32) -> u64 {
        if e < 0 {
            return 0;
        }
        freqs
            .iter()
            .enumerate()
            .filter(|(u, _)| (*u as u64 ^ v).count_ones() as i32 <= e)
            .map(|(_, &f)| f)
            .sum()
    }

    #[test]
    fn recurrence_matches_bruteforce() {
        // Arbitrary frequency vector over width 6.
        let width = 6usize;
        let freqs: Vec<u64> = (0..(1u64 << width)).map(|v| (v * 7 + 3) % 11).collect();
        let part = ExactPart::build_from_freqs(width, &freqs, width);
        for v in 0..(1u64 << width) {
            for e in -1..=(width as i32) {
                assert_eq!(part.cn(v, e), brute_cn(&freqs, v, e), "v={v} e={e}");
            }
        }
    }

    #[test]
    fn e_beyond_width_returns_n() {
        let freqs = vec![2, 3, 0, 5];
        let part = ExactPart::build_from_freqs(2, &freqs, 2);
        assert_eq!(part.cn(1, 7), 10);
        assert_eq!(part.exact_count(0, 0), 2);
        assert_eq!(part.exact_count(0, 1), 3); // values 1 and 2
    }

    #[test]
    fn estimator_on_table1() {
        let ds = Dataset::from_vectors(
            8,
            ["00000000", "00000111", "00001111", "10011111"]
                .iter()
                .map(|s| BitVector::parse(s).unwrap()),
        )
        .unwrap();
        let p = Partitioning::new(8, vec![(0..6).collect(), vec![6, 7]]).unwrap();
        let proj = Projector::new(&p);
        let pd = ProjectedDataset::build(&ds, &proj);
        let est = ExactCn::build(&pd, 8, 16).unwrap();
        // q2 = 10000011 -> partition 1 (dims 6,7) = "11" = 0b11.
        let q2 = BitVector::parse("10000011").unwrap();
        let q2p1 = proj.project(1, q2.words());
        let mut out = vec![0.0; 10];
        est.fill(1, &q2p1, 8, &mut out);
        // CN(q2_1, 0): x2,x3,x4 share "11" -> 3.
        assert_eq!(out[1], 3.0);
        // CN(q2_1, -1) = 0; CN at e >= 2 = 4.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[3], 4.0);
    }

    #[test]
    fn build_rejects_wide_partitions() {
        let ds = Dataset::from_vectors(40, vec![BitVector::zeros(40)]).unwrap();
        let p = Partitioning::equi_width(40, 2).unwrap(); // widths 20 > 16
        let pd = ProjectedDataset::build(&ds, &Projector::new(&p));
        assert!(ExactCn::build(&pd, 4, 16).is_err());
    }
}

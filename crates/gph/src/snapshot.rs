//! Versioned, checksummed engine snapshots.
//!
//! GPH's offline phase is the expensive side of the trade: the GR
//! partitioning heuristic dominates build time (Table IV's 5026 s
//! column), with estimator construction next (the +560 s GPH column). A
//! production deployment therefore builds once and reloads many times —
//! the model of MIH's shipped index files and Faiss's `write_index` /
//! `read_index`. This module is that path for this workspace.
//!
//! A version-3 snapshot is an **offset-addressed** container (magic
//! `GPHE`, version [`SNAPSHOT_VERSION`], written by
//! [`hamming_core::io::OffsetWriter`], normative spec in the repo-root
//! `FORMAT.md`): a fixed footer of `(offset, len, crc)` slots addresses
//! every section, and the three query-hot payload sections — the raw
//! dataset row slab and the CSR postings arrays — are zero-padded to
//! 4 KiB boundaries so a file-backed segment ([`crate::coldstore`]) can
//! serve probes and verification by paged positional reads without ever
//! decoding the file. The slots, in order:
//!
//! | slot | name       | payload |
//! |------|------------|---------|
//! | 0    | `config`   | `tau_max`, allocator, build stats, cost-model statistics |
//! | 1    | `partit`   | the partitioning ([`hamming_core::io::encode_partitioning`]) |
//! | 2    | `estkind`  | the [`crate::cn::EstimatorKind`] and its parameters |
//! | 3    | `eststate` | presence byte, then the built estimator tables if any |
//! | 4    | `rowmeta`  | `dim u64, n_rows u64` |
//! | 5    | `parttab`  | per partition: `width u64, n_keys u64, n_ids u64` |
//! | 6    | `rows`     | page-aligned: the row slab, `n_rows × words_for(dim)` LE u64 |
//! | 7    | `keys`     | page-aligned: concatenated per-partition CSR key arrays |
//! | 8    | `offs`     | page-aligned: concatenated per-partition offset arrays |
//! | 9    | `ids`      | page-aligned: concatenated per-partition postings arrays |
//!
//! Loading resident reconstructs the projector and projected columns
//! from the dataset + partitioning (a cheap, deterministic bit-gather)
//! and takes everything else verbatim, so a loaded engine answers every
//! query byte-identically to the engine that was saved — the round-trip
//! property test in `tests/snapshot_roundtrip.rs` pins this down.
//!
//! **Version policy:** the reader accepts any version `1..=` the current
//! [`SNAPSHOT_VERSION`]; incompatible layout changes bump
//! `SNAPSHOT_VERSION`, and old readers reject newer files with
//! [`HammingError::Corrupt`] instead of misparsing them.
//!
//! Versions 1 and 2 were [`hamming_core::io::SectionReader`]-framed
//! (tagged sections, no alignment): version 2 stored the inverted index
//! in CSR form ([`hamming_core::InvertedIndex::encode`]), version 1 in
//! the old per-partition `(key, offset, len)` triples decoded through
//! [`hamming_core::InvertedIndex::decode_legacy`]. Both still load, into
//! engines query-for-query identical to ones saved as v3.

use crate::alloc::AllocatorKind;
use crate::cn::{decode_kind, encode_kind, restore_estimator};
use crate::cost::CostModel;
use crate::engine::{BuildStats, Gph, GphConfig};
use crate::partition_opt::{HeuristicConfig, InitKind, PartitionStrategy, WorkloadSpec};
use bytes::BufMut;
use hamming_core::dataset::Dataset;
use hamming_core::error::{HammingError, Result};
use hamming_core::io::{
    decode_dataset, decode_partitioning, encode_dataset, encode_partitioning, ByteReader, Footer,
    OffsetWriter, SectionReader, SectionWriter,
};
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::{words_for, InvertedIndex};
use parking_lot::Mutex;
use std::path::Path;

/// Magic of a single-engine snapshot file.
pub const ENGINE_MAGIC: [u8; 4] = *b"GPHE";

/// Current snapshot format version. Readers accept `1..=SNAPSHOT_VERSION`.
/// Version 3 is the offset-addressed layout (see the module docs and
/// `FORMAT.md`); versions 1–2 are the older tagged-section containers
/// and remain loadable.
pub const SNAPSHOT_VERSION: u32 = 3;

// Fixed slot indices of the v3 container (see the module-docs table).
// The cold open path (`crate::coldstore`) addresses sections by these.
pub(crate) const SLOT_CONFIG: usize = 0;
pub(crate) const SLOT_PARTIT: usize = 1;
pub(crate) const SLOT_ESTKIND: usize = 2;
pub(crate) const SLOT_ESTSTATE: usize = 3;
pub(crate) const SLOT_ROWMETA: usize = 4;
pub(crate) const SLOT_PARTTAB: usize = 5;
pub(crate) const SLOT_ROWS: usize = 6;
pub(crate) const SLOT_KEYS: usize = 7;
pub(crate) const SLOT_OFFS: usize = 8;
pub(crate) const SLOT_IDS: usize = 9;
pub(crate) const N_ENGINE_SLOTS: usize = 10;

fn encode_allocator(kind: AllocatorKind) -> u8 {
    match kind {
        AllocatorKind::Dp => 0,
        AllocatorKind::RoundRobin => 1,
        AllocatorKind::DpFlexible => 2,
        AllocatorKind::DpNonNegative => 3,
    }
}

fn decode_allocator(tag: u8) -> Result<AllocatorKind> {
    Ok(match tag {
        0 => AllocatorKind::Dp,
        1 => AllocatorKind::RoundRobin,
        2 => AllocatorKind::DpFlexible,
        3 => AllocatorKind::DpNonNegative,
        other => return Err(HammingError::Corrupt(format!("unknown allocator kind {other}"))),
    })
}

fn encode_cost_model(cm: &CostModel, buf: &mut Vec<u8>) {
    buf.put_u64_le(cm.c_access.to_bits());
    buf.put_u64_le(cm.c_verify.to_bits());
    buf.put_u64_le(cm.c_enum.to_bits());
    let alpha = cm.alpha_table();
    buf.put_u64_le(alpha.len() as u64);
    for &(tau, a) in alpha {
        buf.put_u32_le(tau);
        buf.put_u64_le(a.to_bits());
    }
}

fn decode_cost_model(r: &mut ByteReader) -> Result<CostModel> {
    let mut cost_model = CostModel::default();
    cost_model.c_access = r.f64("c_access")?;
    cost_model.c_verify = r.f64("c_verify")?;
    cost_model.c_enum = r.f64("c_enum")?;
    let n_alpha = r.len(12, "alpha table size")?;
    if n_alpha == 0 {
        return Err(HammingError::Corrupt("empty alpha table".into()));
    }
    let mut alpha = Vec::with_capacity(n_alpha);
    for _ in 0..n_alpha {
        let tau = r.u32("alpha tau")?;
        let a = r.f64("alpha value")?;
        if !a.is_finite() {
            return Err(HammingError::Corrupt(format!("non-finite alpha {a}")));
        }
        alpha.push((tau, a));
    }
    Ok(cost_model.with_alpha_table(alpha))
}

fn encode_config(g: &Gph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.put_u64_le(g.tau_max as u64);
    buf.put_u8(encode_allocator(g.allocator));
    buf.put_u64_le(g.build_stats.partition_ms);
    buf.put_u64_le(g.build_stats.index_ms);
    buf.put_u64_le(g.build_stats.estimator_ms);
    encode_cost_model(&g.cost_model, &mut buf);
    buf
}

pub(crate) struct DecodedConfig {
    pub(crate) tau_max: usize,
    pub(crate) allocator: AllocatorKind,
    pub(crate) build_stats: BuildStats,
    pub(crate) cost_model: CostModel,
}

pub(crate) fn decode_config(bytes: &[u8]) -> Result<DecodedConfig> {
    let mut r = ByteReader::new(bytes);
    let tau_max = r.u64("tau_max")? as usize;
    let allocator = decode_allocator(r.u8("allocator kind")?)?;
    let build_stats = BuildStats {
        partition_ms: r.u64("partition_ms")?,
        index_ms: r.u64("index_ms")?,
        estimator_ms: r.u64("estimator_ms")?,
    };
    let cost_model = decode_cost_model(&mut r)?;
    r.finish("engine config")?;
    Ok(DecodedConfig { tau_max, allocator, build_stats, cost_model })
}

// ---------------------------------------------------------------------
// Full build-config serialization (for engines that rebuild at runtime)
// ---------------------------------------------------------------------

fn encode_init(init: InitKind, buf: &mut Vec<u8>) {
    match init {
        InitKind::Greedy => buf.put_u8(0),
        InitKind::Original => buf.put_u8(1),
        InitKind::Random { seed } => {
            buf.put_u8(2);
            buf.put_u64_le(seed);
        }
    }
}

fn decode_init(r: &mut ByteReader) -> Result<InitKind> {
    Ok(match r.u8("init kind")? {
        0 => InitKind::Greedy,
        1 => InitKind::Original,
        2 => InitKind::Random { seed: r.u64("init seed")? },
        other => return Err(HammingError::Corrupt(format!("unknown init kind {other}"))),
    })
}

/// Serializes a full [`GphConfig`] — partitioning strategy, estimator
/// kind, allocator, cost model, and (when present) the workload. Frozen
/// engine snapshots don't need this (they never rebuild), but the
/// segmented engine does: after a restore it keeps sealing and
/// compacting, so the build recipe must travel with the data.
pub fn encode_gph_config(cfg: &GphConfig) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    buf.put_u64_le(cfg.m as u64);
    buf.put_u64_le(cfg.tau_max as u64);
    buf.put_u8(encode_allocator(cfg.allocator));
    encode_cost_model(&cfg.cost_model, &mut buf);
    let kind = encode_kind(&cfg.estimator);
    buf.put_u64_le(kind.len() as u64);
    buf.put_slice(&kind);
    match &cfg.strategy {
        PartitionStrategy::Original => buf.put_u8(0),
        PartitionStrategy::RandomShuffle { seed } => {
            buf.put_u8(1);
            buf.put_u64_le(*seed);
        }
        PartitionStrategy::Os => buf.put_u8(2),
        PartitionStrategy::Dd => buf.put_u8(3),
        PartitionStrategy::Heuristic(h) => {
            buf.put_u8(4);
            encode_init(h.init, &mut buf);
            buf.put_u64_le(h.max_iters as u64);
            match h.move_budget {
                Some(b) => {
                    buf.put_u8(1);
                    buf.put_u64_le(b as u64);
                }
                None => buf.put_u8(0),
            }
            buf.put_u64_le(h.sample_rows as u64);
            buf.put_u64_le(h.seed);
        }
        PartitionStrategy::Fixed(p) => {
            buf.put_u8(5);
            let bytes = encode_partitioning(p);
            buf.put_u64_le(bytes.len() as u64);
            buf.put_slice(&bytes);
        }
    }
    match &cfg.workload {
        None => buf.put_u8(0),
        Some(wl) => {
            buf.put_u8(1);
            let ds = encode_dataset(&wl.queries);
            buf.put_u64_le(ds.len() as u64);
            buf.put_slice(&ds);
            buf.put_u64_le(wl.taus.len() as u64);
            for &t in &wl.taus {
                buf.put_u32_le(t);
            }
        }
    }
    buf
}

/// Restores a [`GphConfig`] written by [`encode_gph_config`].
pub fn decode_gph_config(bytes: &[u8]) -> Result<GphConfig> {
    let mut r = ByteReader::new(bytes);
    let m = r.u64("config m")? as usize;
    let tau_max = r.u64("config tau_max")? as usize;
    let allocator = decode_allocator(r.u8("allocator kind")?)?;
    let cost_model = decode_cost_model(&mut r)?;
    let kind_len = r.len(1, "estimator kind length")?;
    let estimator = decode_kind(r.bytes(kind_len, "estimator kind")?)?;
    let strategy = match r.u8("strategy tag")? {
        0 => PartitionStrategy::Original,
        1 => PartitionStrategy::RandomShuffle { seed: r.u64("shuffle seed")? },
        2 => PartitionStrategy::Os,
        3 => PartitionStrategy::Dd,
        4 => {
            let init = decode_init(&mut r)?;
            let max_iters = r.u64("max_iters")? as usize;
            let move_budget = match r.u8("move budget flag")? {
                0 => None,
                1 => Some(r.u64("move budget")? as usize),
                other => {
                    return Err(HammingError::Corrupt(format!("bad move-budget flag {other}")))
                }
            };
            let sample_rows = r.u64("sample_rows")? as usize;
            let seed = r.u64("heuristic seed")?;
            PartitionStrategy::Heuristic(HeuristicConfig {
                init,
                max_iters,
                move_budget,
                sample_rows,
                seed,
            })
        }
        5 => {
            let len = r.len(1, "partitioning length")?;
            PartitionStrategy::Fixed(decode_partitioning(r.bytes(len, "fixed partitioning")?)?)
        }
        other => return Err(HammingError::Corrupt(format!("unknown strategy tag {other}"))),
    };
    let workload = match r.u8("workload flag")? {
        0 => None,
        1 => {
            let ds_len = r.len(1, "workload dataset length")?;
            let queries = decode_dataset(r.bytes(ds_len, "workload dataset")?)?;
            let n_taus = r.len(4, "workload tau count")?;
            if n_taus == 0 {
                return Err(HammingError::Corrupt("workload with no thresholds".into()));
            }
            let mut taus = Vec::with_capacity(n_taus);
            for _ in 0..n_taus {
                taus.push(r.u32("workload tau")?);
            }
            Some(WorkloadSpec { queries, taus })
        }
        other => return Err(HammingError::Corrupt(format!("bad workload flag {other}"))),
    };
    r.finish("gph config")?;
    Ok(GphConfig { m, tau_max, allocator, estimator, strategy, workload, cost_model })
}

/// Serializes a built engine in the offset-addressed v3 layout (see the
/// module docs for the slot table and `FORMAT.md` for the normative
/// byte-level spec).
pub(crate) fn encode_engine(g: &Gph) -> Vec<u8> {
    let mut w = OffsetWriter::new(ENGINE_MAGIC, SNAPSHOT_VERSION);
    w.section(&encode_config(g)); // SLOT_CONFIG
    w.section(&encode_partitioning(&g.partitioning)); // SLOT_PARTIT
    w.section(&encode_kind(&g.estimator_kind)); // SLOT_ESTKIND
    let est_state = match g.estimator.snapshot_state() {
        Some(state) => {
            let mut b = Vec::with_capacity(1 + state.len());
            b.push(1u8);
            b.extend_from_slice(&state);
            b
        }
        None => vec![0u8],
    };
    w.section(&est_state); // SLOT_ESTSTATE
    let mut rowmeta = Vec::with_capacity(16);
    rowmeta.put_u64_le(g.data.dim() as u64);
    rowmeta.put_u64_le(g.data.len() as u64);
    w.section(&rowmeta); // SLOT_ROWMETA
    let mut parttab = Vec::with_capacity(g.index.num_parts() * 24);
    for p in 0..g.index.num_parts() {
        parttab.put_u64_le(g.index.part_width(p) as u64);
        parttab.put_u64_le(g.index.part_keys(p).len() as u64);
        parttab.put_u64_le(g.index.part_ids(p).len() as u64);
    }
    w.section(&parttab); // SLOT_PARTTAB

    let mut rows = Vec::with_capacity(g.data.words().len() * 8);
    for &word in g.data.words() {
        rows.put_u64_le(word);
    }
    w.aligned_section(&rows); // SLOT_ROWS
    let mut keys = Vec::new();
    let mut offs = Vec::new();
    let mut ids = Vec::new();
    for p in 0..g.index.num_parts() {
        for &k in g.index.part_keys(p) {
            keys.put_u64_le(k);
        }
        for &o in g.index.part_offsets(p) {
            offs.put_u32_le(o);
        }
        for &id in g.index.part_ids(p) {
            ids.put_u32_le(id);
        }
    }
    w.aligned_section(&keys); // SLOT_KEYS
    w.aligned_section(&offs); // SLOT_OFFS
    w.aligned_section(&ids); // SLOT_IDS
    w.finish()
}

/// Serializes a built engine in the legacy tagged-section v2 layout.
/// Kept (not wired to any save path) so compatibility tests can mint
/// old-format fixtures without checked-in binary blobs.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn encode_engine_v2(g: &Gph) -> Vec<u8> {
    let mut w = SectionWriter::new(ENGINE_MAGIC, 2);
    w.section("dataset", &encode_dataset(&g.data));
    w.section("partit", &encode_partitioning(&g.partitioning));
    w.section("invindex", &g.index.encode());
    w.section("config", &encode_config(g));
    w.section("estkind", &encode_kind(&g.estimator_kind));
    if let Some(state) = g.estimator.snapshot_state() {
        w.section("eststate", &state);
    }
    w.finish()
}

/// Per-partition extents from the v3 `parttab` section.
pub(crate) struct PartExtent {
    pub(crate) width: usize,
    pub(crate) n_keys: usize,
    pub(crate) n_ids: usize,
}

/// Decodes the v3 `parttab` section: one `(width, n_keys, n_ids)`
/// triple per partition.
pub(crate) fn decode_parttab(bytes: &[u8]) -> Result<Vec<PartExtent>> {
    let mut r = ByteReader::new(bytes);
    if !bytes.len().is_multiple_of(24) {
        return Err(HammingError::Corrupt(format!(
            "partition table of {} bytes is not a whole number of 24-byte rows",
            bytes.len()
        )));
    }
    let mut parts = Vec::with_capacity(bytes.len() / 24);
    for _ in 0..bytes.len() / 24 {
        parts.push(PartExtent {
            width: r.u64("part width")? as usize,
            n_keys: r.u64("part key count")? as usize,
            n_ids: r.u64("part id count")? as usize,
        });
    }
    r.finish("partition table")?;
    Ok(parts)
}

/// Decodes the v3 `rowmeta` section into `(dim, n_rows)`.
pub(crate) fn decode_rowmeta(bytes: &[u8]) -> Result<(usize, usize)> {
    let mut r = ByteReader::new(bytes);
    let dim = r.u64("row dim")? as usize;
    let n_rows = r.u64("row count")? as usize;
    r.finish("row metadata")?;
    if dim == 0 {
        return Err(HammingError::Corrupt("snapshot declares dim 0".into()));
    }
    Ok((dim, n_rows))
}

/// Interprets the v3 `eststate` payload: a presence byte, then the
/// estimator tables if present.
pub(crate) fn decode_est_state(payload: &[u8]) -> Result<Option<&[u8]>> {
    match payload.split_first() {
        Some((0, [])) => Ok(None),
        Some((1, rest)) => Ok(Some(rest)),
        _ => Err(HammingError::Corrupt("malformed estimator-state presence flag".into())),
    }
}

/// Rebuilds a [`Dataset`] from the v3 raw row slab (`n_rows ×
/// words_for(dim)` little-endian u64), applying the same tail-bit
/// validation as [`decode_dataset`].
pub(crate) fn dataset_from_slab(dim: usize, n_rows: usize, slab: &[u8]) -> Result<Dataset> {
    let wpv = words_for(dim);
    let need = n_rows
        .checked_mul(wpv)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| HammingError::Corrupt("row slab size overflow".into()))?;
    if slab.len() != need {
        return Err(HammingError::Corrupt(format!(
            "row slab is {} bytes, expected {need} for {n_rows} rows of dim {dim}",
            slab.len()
        )));
    }
    let tail_mask = if dim.is_multiple_of(64) { u64::MAX } else { (1u64 << (dim % 64)) - 1 };
    let mut ds = Dataset::with_capacity(dim, n_rows);
    let mut row = vec![0u64; wpv];
    for chunk in slab.chunks_exact(wpv * 8) {
        for (w, b) in row.iter_mut().zip(chunk.chunks_exact(8)) {
            *w = u64::from_le_bytes(b.try_into().unwrap());
        }
        if let Some(&last) = row.last() {
            if last & !tail_mask != 0 {
                return Err(HammingError::Corrupt(
                    "trailing bits set beyond dimensionality".into(),
                ));
            }
        }
        ds.push_row(&row)?;
    }
    Ok(ds)
}

/// Restores an engine from [`encode_engine`] bytes (any version
/// `1..=SNAPSHOT_VERSION`).
pub(crate) fn decode_engine(bytes: &[u8]) -> Result<Gph> {
    // Dispatch on the header version: v3+ is offset-addressed, v1/v2 are
    // tagged-section containers. The chosen parser re-validates the
    // version range, so a forged header cannot select a misparse.
    if bytes.len() >= 8
        && bytes[..4] == ENGINE_MAGIC
        && u32::from_le_bytes(bytes[4..8].try_into().unwrap()) >= 3
    {
        decode_engine_v3(bytes)
    } else {
        decode_engine_legacy(bytes)
    }
}

fn decode_engine_v3(bytes: &[u8]) -> Result<Gph> {
    let f = Footer::parse_bytes(ENGINE_MAGIC, SNAPSHOT_VERSION, bytes)?;
    if f.n_slots() != N_ENGINE_SLOTS {
        return Err(HammingError::Corrupt(format!(
            "engine snapshot has {} sections, expected {N_ENGINE_SLOTS}",
            f.n_slots()
        )));
    }
    let cfg = decode_config(f.payload(bytes, SLOT_CONFIG)?)?;
    let partitioning = decode_partitioning(f.payload(bytes, SLOT_PARTIT)?)?;
    let estimator_kind = decode_kind(f.payload(bytes, SLOT_ESTKIND)?)?;
    let est_state = decode_est_state(f.payload(bytes, SLOT_ESTSTATE)?)?;
    let (dim, n_rows) = decode_rowmeta(f.payload(bytes, SLOT_ROWMETA)?)?;
    let parts = decode_parttab(f.payload(bytes, SLOT_PARTTAB)?)?;
    let data = dataset_from_slab(dim, n_rows, f.payload(bytes, SLOT_ROWS)?)?;

    let keys_bytes = f.payload(bytes, SLOT_KEYS)?;
    let offs_bytes = f.payload(bytes, SLOT_OFFS)?;
    let ids_bytes = f.payload(bytes, SLOT_IDS)?;
    let mut csr = Vec::with_capacity(parts.len());
    let (mut koff, mut ooff, mut ioff) = (0usize, 0usize, 0usize);
    for (p, ext) in parts.iter().enumerate() {
        let k_end = koff.checked_add(ext.n_keys * 8).filter(|&e| e <= keys_bytes.len());
        let o_end = ooff.checked_add((ext.n_keys + 1) * 4).filter(|&e| e <= offs_bytes.len());
        let i_end = ioff.checked_add(ext.n_ids * 4).filter(|&e| e <= ids_bytes.len());
        let (Some(k_end), Some(o_end), Some(i_end)) = (k_end, o_end, i_end) else {
            return Err(HammingError::Corrupt(format!(
                "partition {p} extents exceed the CSR sections"
            )));
        };
        let keys = keys_bytes[koff..k_end]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let offsets = offs_bytes[ooff..o_end]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let ids = ids_bytes[ioff..i_end]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        csr.push((ext.width, keys, offsets, ids));
        (koff, ooff, ioff) = (k_end, o_end, i_end);
    }
    if koff != keys_bytes.len() || ooff != offs_bytes.len() || ioff != ids_bytes.len() {
        return Err(HammingError::Corrupt(format!(
            "CSR sections have {} trailing bytes beyond the partition table",
            (keys_bytes.len() - koff) + (offs_bytes.len() - ooff) + (ids_bytes.len() - ioff)
        )));
    }
    let index = InvertedIndex::from_csr(n_rows, csr)?;
    assemble_engine(data, partitioning, index, cfg, estimator_kind, est_state)
}

fn decode_engine_legacy(bytes: &[u8]) -> Result<Gph> {
    let r = SectionReader::parse(ENGINE_MAGIC, 2, bytes)?;
    let data = decode_dataset(r.section("dataset")?)?;
    let partitioning = decode_partitioning(r.section("partit")?)?;
    let cfg = decode_config(r.section("config")?)?;
    let index_bytes = r.section("invindex")?;
    let index = if r.version() >= 2 {
        InvertedIndex::decode(index_bytes)?
    } else {
        // v1 snapshots stored hash-map-ordered (key, range) triples; the
        // legacy decoder canonicalizes them into the CSR layout.
        InvertedIndex::decode_legacy(index_bytes)?
    };
    let estimator_kind = decode_kind(r.section("estkind")?)?;
    assemble_engine(data, partitioning, index, cfg, estimator_kind, r.get("eststate"))
}

/// Cross-validates the decoded pieces and assembles the engine. Shared
/// by the offset-addressed and tagged-section load paths so both apply
/// identical splice checks.
fn assemble_engine(
    data: Dataset,
    partitioning: hamming_core::Partitioning,
    index: InvertedIndex,
    cfg: DecodedConfig,
    estimator_kind: crate::cn::EstimatorKind,
    est_state: Option<&[u8]>,
) -> Result<Gph> {
    if partitioning.dim() != data.dim() {
        return Err(HammingError::Corrupt(format!(
            "partitioning covers {} dims but the dataset has {}",
            partitioning.dim(),
            data.dim()
        )));
    }
    if index.len() != data.len() {
        return Err(HammingError::Corrupt(format!(
            "index posts {} vectors but the dataset has {}",
            index.len(),
            data.len()
        )));
    }
    if index.num_parts() != partitioning.num_parts() {
        return Err(HammingError::Corrupt(format!(
            "index has {} partitions but the partitioning has {}",
            index.num_parts(),
            partitioning.num_parts()
        )));
    }
    let projector = Projector::new(&partitioning);
    for p in 0..index.num_parts() {
        if index.part_width(p) != projector.shape(p).width {
            return Err(HammingError::Corrupt(format!(
                "partition {p} width mismatch: index {} vs partitioning {}",
                index.part_width(p),
                projector.shape(p).width
            )));
        }
    }
    // The projected columns are a deterministic bit-gather of the rows —
    // cheap to recompute, so they are not stored.
    let projected = ProjectedDataset::build(&data, &projector);
    let widths: Vec<usize> = (0..projector.num_parts()).map(|p| projector.shape(p).width).collect();
    let estimator =
        restore_estimator(&estimator_kind, est_state, &projected, cfg.tau_max, &widths)?;
    Ok(Gph {
        data,
        partitioning,
        projector,
        index,
        projected,
        estimator,
        estimator_kind,
        allocator: cfg.allocator,
        cost_model: cfg.cost_model,
        tau_max: cfg.tau_max,
        build_stats: cfg.build_stats,
        scratch_pool: Mutex::new(Vec::new()),
    })
}

/// Writes `bytes` to `path` via a same-directory temp file + rename, so
/// a crashed save can never leave a half-written snapshot behind under
/// the final name.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cn::EstimatorKind;
    use crate::engine::GphConfig;
    use crate::partition_opt::PartitionStrategy;
    use hamming_core::{BitVector, Dataset};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4)));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn assert_engines_agree(a: &Gph, b: &Gph, queries: &Dataset, taus: &[u32]) {
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            for &tau in taus {
                let ra = a.search_with_stats(q, tau);
                let rb = b.search_with_stats(q, tau);
                assert_eq!(ra.ids, rb.ids, "qi={qi} tau={tau}");
                assert_eq!(ra.stats.thresholds, rb.stats.thresholds, "qi={qi} tau={tau}");
                assert_eq!(
                    a.estimate_cost(q, tau),
                    b.estimate_cost(q, tau),
                    "cost estimate diverged: qi={qi} tau={tau}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_default_estimator_is_query_identical() {
        let ds = random_dataset(64, 300, 11);
        let queries = random_dataset(64, 8, 12);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 5 };
        let built = Gph::build(ds, &cfg).unwrap();
        let loaded = Gph::from_bytes(&built.to_bytes()).unwrap();
        assert_eq!(loaded.tau_max(), built.tau_max());
        assert_eq!(loaded.partitioning(), built.partitioning());
        assert_eq!(loaded.build_stats().index_ms, built.build_stats().index_ms);
        assert_engines_agree(&built, &loaded, &queries, &[0, 3, 8]);
    }

    #[test]
    fn roundtrip_covers_every_estimator_kind() {
        let ds = random_dataset(32, 150, 13);
        let queries = random_dataset(32, 5, 14);
        let kinds = [
            EstimatorKind::Exact { max_width: 16 },
            EstimatorKind::SubPartition { sub_count: 2, paper_shift: true },
            EstimatorKind::SampleScan { sample_cap: 64, seed: 7 },
            // No table snapshot exists for the learned kind; the load
            // path re-trains from the stored seed, which must reproduce
            // the saved estimator exactly.
            EstimatorKind::Learned(crate::cn::learned::LearnedParams {
                model: crate::cn::learned::ModelKind::Rf,
                n_train: 30,
                scan_cap: 150,
                seed: 21,
            }),
        ];
        for kind in kinds {
            let mut cfg = GphConfig::new(3, 6);
            cfg.strategy = PartitionStrategy::Original;
            cfg.estimator = kind.clone();
            let built = Gph::build(ds.clone(), &cfg).unwrap();
            let loaded = Gph::from_bytes(&built.to_bytes()).unwrap();
            assert_engines_agree(&built, &loaded, &queries, &[0, 2, 6]);
        }
    }

    #[test]
    fn save_load_via_file() {
        let ds = random_dataset(32, 80, 15);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = Gph::build(ds, &cfg).unwrap();
        let dir = std::env::temp_dir().join("gph_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.gphe");
        built.save(&path).unwrap();
        let loaded = Gph::load(&path).unwrap();
        let q = built.data().row(0).to_vec();
        assert_eq!(loaded.search(&q, 4), built.search(&q, 4));
        assert!(!path.with_extension("tmp").exists(), "atomic save leaves no temp file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let ds = random_dataset(48, 120, 16);
        let mut cfg = GphConfig::new(3, 6);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 2 };
        let built = Gph::build(ds, &cfg).unwrap();
        let b1 = built.to_bytes();
        // A second encode of the same engine and an encode of the loaded
        // engine both reproduce the exact bytes, modulo build timings
        // (which are persisted verbatim, hence identical here too).
        assert_eq!(b1, built.to_bytes());
        assert_eq!(b1, Gph::from_bytes(&b1).unwrap().to_bytes());
    }

    #[test]
    fn corrupt_sections_are_rejected_not_panicking() {
        let ds = random_dataset(32, 60, 17);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let bytes = Gph::build(ds, &cfg).unwrap().to_bytes();
        // Every 37th byte flipped (cheap proxy; the proptest sweeps
        // random offsets) must produce Corrupt, never a panic.
        for i in (0..bytes.len()).step_by(37) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            match Gph::from_bytes(&bad) {
                Err(HammingError::Corrupt(_)) => {}
                Err(other) => panic!("flip at {i}: unexpected error kind {other}"),
                Ok(_) => panic!("flip at {i} went undetected"),
            }
        }
    }

    #[test]
    fn spliced_estimator_state_is_rejected() {
        // Every section CRC can be intact while the estimator state
        // belongs to a different partitioning; the cross-check must
        // reject the splice instead of letting a query panic.
        let ds = random_dataset(32, 80, 19);
        let a = encode_engine_v2(
            &Gph::build(
                ds.clone(),
                &GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) },
            )
            .unwrap(),
        );
        let b = encode_engine_v2(
            &Gph::build(
                ds,
                &GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(4, 4) },
            )
            .unwrap(),
        );
        let ra = SectionReader::parse(ENGINE_MAGIC, 2, &a).unwrap();
        let rb = SectionReader::parse(ENGINE_MAGIC, 2, &b).unwrap();
        let mut w = SectionWriter::new(ENGINE_MAGIC, 2);
        for tag in ["dataset", "partit", "invindex", "config", "estkind"] {
            w.section(tag, rb.section(tag).unwrap());
        }
        w.section("eststate", ra.section("eststate").unwrap());
        match Gph::from_bytes(&w.finish()) {
            Err(HammingError::Corrupt(msg)) => {
                assert!(msg.contains("partition"), "{msg}")
            }
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(engine) => {
                // Must never get here — but if it did, the panic the
                // check prevents would fire on this search.
                let _ = engine.search(&[0u64], 4);
                panic!("spliced estimator state went undetected");
            }
        }
    }

    #[test]
    fn gph_config_roundtrips_every_strategy_and_workload() {
        let ds = random_dataset(24, 30, 20);
        let strategies = [
            PartitionStrategy::Original,
            PartitionStrategy::RandomShuffle { seed: 77 },
            PartitionStrategy::Os,
            PartitionStrategy::Dd,
            PartitionStrategy::Heuristic(crate::partition_opt::HeuristicConfig {
                init: crate::partition_opt::InitKind::Random { seed: 5 },
                max_iters: 3,
                move_budget: None,
                sample_rows: 100,
                seed: 9,
            }),
            PartitionStrategy::Fixed(hamming_core::Partitioning::equi_width(24, 3).unwrap()),
        ];
        for (i, strategy) in strategies.into_iter().enumerate() {
            let mut cfg = GphConfig::new(3, 6);
            cfg.strategy = strategy;
            cfg.estimator = EstimatorKind::Exact { max_width: 12 };
            if i % 2 == 0 {
                cfg.workload =
                    Some(crate::partition_opt::WorkloadSpec::from_sample(&ds, 8, vec![2, 4, 6], 3));
            }
            let decoded = decode_gph_config(&encode_gph_config(&cfg)).unwrap();
            // The decoded config must drive an identical build.
            assert_eq!(decoded.m, cfg.m);
            assert_eq!(decoded.tau_max, cfg.tau_max);
            assert_eq!(decoded.allocator, cfg.allocator);
            assert_eq!(format!("{:?}", decoded.strategy), format!("{:?}", cfg.strategy));
            assert_eq!(format!("{:?}", decoded.estimator), format!("{:?}", cfg.estimator));
            match (&decoded.workload, &cfg.workload) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.taus, b.taus);
                    assert_eq!(a.queries.len(), b.queries.len());
                    for r in 0..a.queries.len() {
                        assert_eq!(a.queries.row(r), b.queries.row(r));
                    }
                }
                other => panic!("workload mismatch: {other:?}"),
            }
            let built = Gph::build(ds.clone(), &cfg).unwrap();
            let rebuilt = Gph::build(ds.clone(), &decoded).unwrap();
            let q = ds.row(0).to_vec();
            assert_eq!(built.search(&q, 6), rebuilt.search(&q, 6), "strategy #{i}");
        }
        // Truncated config bytes are rejected.
        let bytes = encode_gph_config(&GphConfig::new(2, 4));
        for cut in (0..bytes.len()).step_by(7) {
            assert!(decode_gph_config(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn version1_snapshots_load_through_the_legacy_path() {
        // Reconstruct what a pre-CSR writer produced: a version-1
        // container whose `invindex` section holds the old
        // (key, offset, len)-triple encoding. Loading it must succeed and
        // give an engine query-for-query identical to the v3 round-trip.
        let ds = random_dataset(48, 200, 22);
        let queries = random_dataset(48, 6, 23);
        let mut cfg = GphConfig::new(3, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 9 };
        let built = Gph::build(ds, &cfg).unwrap();
        let v2 = encode_engine_v2(&built);
        let r = SectionReader::parse(ENGINE_MAGIC, 2, &v2).unwrap();
        assert_eq!(r.version(), 2, "the v2 writer stamps version 2");
        let mut w = SectionWriter::new(ENGINE_MAGIC, 1);
        for tag in ["dataset", "partit", "config", "estkind"] {
            w.section(tag, r.section(tag).unwrap());
        }
        w.section("invindex", &built.index.encode_legacy());
        if let Some(state) = r.get("eststate") {
            w.section("eststate", state);
        }
        let v1 = w.finish();
        assert_ne!(v1, v2, "the two formats differ on the wire");

        let loaded = Gph::from_bytes(&v1).unwrap();
        assert_engines_agree(&built, &loaded, &queries, &[0, 4, 8]);
        // Saving the migrated engine re-emits the canonical v3 bytes.
        assert_eq!(loaded.to_bytes(), built.to_bytes());
    }

    #[test]
    fn version2_snapshots_load_through_the_legacy_path() {
        // A v2 (tagged-section, CSR) snapshot loads into an engine
        // query-identical to the v3 round-trip, and re-saving migrates
        // it to the offset-addressed layout.
        let ds = random_dataset(48, 150, 30);
        let queries = random_dataset(48, 6, 31);
        let mut cfg = GphConfig::new(3, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 4 };
        let built = Gph::build(ds, &cfg).unwrap();
        let v2 = encode_engine_v2(&built);
        let v3 = built.to_bytes();
        assert_ne!(v2, v3);
        assert_eq!(u32::from_le_bytes(v3[4..8].try_into().unwrap()), 3);

        let loaded = Gph::from_bytes(&v2).unwrap();
        assert_engines_agree(&built, &loaded, &queries, &[0, 4, 8]);
        assert_eq!(loaded.to_bytes(), v3);
    }

    #[test]
    fn v3_sections_are_page_aligned_and_offset_addressed() {
        use hamming_core::io::PAGE_SIZE;
        let ds = random_dataset(64, 300, 33);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 5 };
        let built = Gph::build(ds, &cfg).unwrap();
        let bytes = built.to_bytes();
        let f = Footer::parse_bytes(ENGINE_MAGIC, SNAPSHOT_VERSION, &bytes).unwrap();
        assert_eq!(f.n_slots(), N_ENGINE_SLOTS);
        for slot in [SLOT_ROWS, SLOT_KEYS, SLOT_OFFS, SLOT_IDS] {
            let s = f.slot(slot).unwrap();
            assert_eq!(s.offset % PAGE_SIZE as u64, 0, "slot {slot} unaligned");
        }
        // The row slab is the dataset words verbatim: the whole point of
        // the layout is that a pager can read rows without decoding.
        let rows = f.payload(&bytes, SLOT_ROWS).unwrap();
        let wpv = built.data().words_per_vec();
        let row7 = built.data().row(7);
        let start = 7 * wpv * 8;
        for (w, chunk) in row7.iter().zip(rows[start..start + wpv * 8].chunks_exact(8)) {
            assert_eq!(*w, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
    }

    #[test]
    fn truncated_snapshots_are_rejected() {
        let ds = random_dataset(32, 40, 18);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let bytes = Gph::build(ds, &cfg).unwrap().to_bytes();
        for cut in (0..bytes.len()).step_by(41) {
            assert!(Gph::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }
}

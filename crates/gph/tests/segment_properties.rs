//! Segmented-engine correctness: across arbitrary interleavings of
//! insert / delete / upsert / seal / compact — and through a
//! snapshot/restore round-trip — `SegmentedGph` answers every query
//! exactly like a fresh `Gph` built over the surviving rows.

use gph::engine::{Gph, GphConfig};
use gph::partition_opt::PartitionStrategy;
use gph::segment::{SegmentConfig, SegmentedGph};
use hamming_core::{BitVector, Dataset};
use proptest::prelude::*;
use std::collections::BTreeMap;

const DIM: usize = 40;
/// Ops draw ids from a small universe so deletes and upserts frequently
/// hit live rows (and frequently miss, exercising the no-op path).
const ID_UNIVERSE: u32 = 24;

#[derive(Clone, Debug)]
enum Op {
    Upsert(u32, Vec<bool>),
    Delete(u32),
    Seal,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice via a selector (the vendored proptest shim has no
    // prop_oneof!): 0..5 upsert, 5..7 delete, 7 seal, 8 compact.
    (0u8..9, 0..ID_UNIVERSE, prop::collection::vec(any::<bool>(), DIM)).prop_map(
        |(sel, id, bits)| match sel {
            0..=4 => Op::Upsert(id, bits),
            5 | 6 => Op::Delete(id),
            7 => Op::Seal,
            _ => Op::Compact,
        },
    )
}

fn cfg(seed: u64) -> GphConfig {
    let mut cfg = GphConfig::new(3, 8);
    // RandomShuffle keeps build time trivial; exactness is
    // partitioning-independent so any strategy exercises the merge.
    cfg.strategy = PartitionStrategy::RandomShuffle { seed };
    cfg
}

fn words(bits: &[bool]) -> Vec<u64> {
    BitVector::from_bits(bits.iter().copied()).words().to_vec()
}

/// Applies `op` to both the engine and the reference model.
fn apply(engine: &mut SegmentedGph, model: &mut BTreeMap<u32, Vec<u64>>, op: &Op) {
    match op {
        Op::Upsert(id, bits) => {
            let row = words(bits);
            let replaced = engine.upsert(*id, &row).expect("upsert");
            assert_eq!(replaced, model.insert(*id, row).is_some());
        }
        Op::Delete(id) => {
            assert_eq!(engine.delete(*id), model.remove(id).is_some());
        }
        Op::Seal => engine.seal().expect("seal"),
        Op::Compact => engine.compact().expect("compact"),
    }
}

/// The reference: a fresh frozen engine over the model's surviving rows
/// (ascending id order), with local ids mapped back to external ids.
fn reference(model: &BTreeMap<u32, Vec<u64>>, cfg: &GphConfig) -> Option<(Gph, Vec<u32>)> {
    if model.is_empty() {
        return None;
    }
    let mut ds = Dataset::new(DIM);
    let mut ids = Vec::with_capacity(model.len());
    for (&id, row) in model {
        ds.push_row(row).expect("model rows are well-formed");
        ids.push(id);
    }
    Some((Gph::build(ds, cfg).expect("build reference"), ids))
}

fn assert_equivalent(
    engine: &SegmentedGph,
    model: &BTreeMap<u32, Vec<u64>>,
    cfg: &GphConfig,
    queries: &[Vec<bool>],
) {
    let fresh = reference(model, cfg);
    for qbits in queries {
        let q = words(qbits);
        for tau in [0u32, 3, 8] {
            let got = engine.search(&q, tau);
            let expect = match &fresh {
                None => Vec::new(),
                Some((g, ids)) => g.search(&q, tau).into_iter().map(|l| ids[l as usize]).collect(),
            };
            assert_eq!(got, expect, "tau={tau}");
        }
        for k in [1usize, 5] {
            let got = engine.search_topk(&q, k);
            let expect: Vec<(u32, u32)> = match &fresh {
                None => Vec::new(),
                Some((g, ids)) => {
                    g.search_topk(&q, k).into_iter().map(|(l, d)| (ids[l as usize], d)).collect()
                }
            };
            assert_eq!(got, expect, "k={k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of upsert/delete/seal/compact leaves the engine
    /// query-for-query equal to a fresh frozen engine over the survivors.
    #[test]
    fn segmented_engine_matches_fresh_engine(
        ops in prop::collection::vec(op_strategy(), 1..40),
        queries in prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..4),
        seal_rows in 1usize..6,
        max_sealed in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(seed);
        let seg_cfg = SegmentConfig { seal_rows, max_sealed, ..SegmentConfig::default() };
        let mut engine = SegmentedGph::new(DIM, cfg.clone(), seg_cfg).expect("new engine");
        let mut model: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for op in &ops {
            apply(&mut engine, &mut model, op);
        }
        assert_equivalent(&engine, &model, &cfg, &queries);
    }

    /// The same equivalence holds through a snapshot/restore round-trip
    /// taken mid-sequence (with whatever tombstones were pending), and
    /// the restored engine keeps behaving identically under the rest of
    /// the ops.
    #[test]
    fn segmented_engine_matches_after_snapshot_roundtrip(
        ops_before in prop::collection::vec(op_strategy(), 1..25),
        ops_after in prop::collection::vec(op_strategy(), 0..15),
        queries in prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..3),
        seal_rows in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(seed);
        let seg_cfg = SegmentConfig { seal_rows, max_sealed: 2, ..SegmentConfig::default() };
        let mut engine = SegmentedGph::new(DIM, cfg.clone(), seg_cfg).expect("new engine");
        let mut model: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for op in &ops_before {
            apply(&mut engine, &mut model, op);
        }
        let mut restored =
            SegmentedGph::from_bytes(&engine.to_bytes()).expect("snapshot round-trip");
        prop_assert_eq!(restored.len(), engine.len());
        prop_assert_eq!(restored.live_ids(), engine.live_ids());
        assert_equivalent(&restored, &model, &cfg, &queries);
        for op in &ops_after {
            apply(&mut restored, &mut model, op);
        }
        assert_equivalent(&restored, &model, &cfg, &queries);
    }
}

//! Property tests for the paper's core claims.

use gph::alloc::{allocate_dp, allocate_dp_budget, allocate_exhaustive, allocate_round_robin};
use gph::cn::{CnEstimator, CnTable};
use gph::engine::{Gph, GphConfig};
use gph::partition_opt::PartitionStrategy;
use gph::pigeonhole::{passes_filter, tightness_witness, ThresholdVector};
use hamming_core::project::Projector;
use hamming_core::{BitVector, Dataset, Partitioning};
use proptest::prelude::*;

fn bits(dim: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), dim)
}

fn bv(b: &[bool]) -> BitVector {
    BitVector::from_bits(b.iter().copied())
}

/// Random general-budget threshold vector for (m, tau).
fn general_vector(m: usize, tau: u32) -> impl Strategy<Value = ThresholdVector> {
    // Generate m-1 entries in [-1, tau], set the last to balance; retry
    // via filtering when the remainder falls outside [-1, tau].
    prop::collection::vec(-1i32..=(tau as i32), m - 1).prop_filter_map(
        "last entry out of range",
        move |mut v| {
            let budget = tau as i64 - m as i64 + 1;
            let partial: i64 = v.iter().map(|&x| x as i64).sum();
            let last = budget - partial;
            if (-1..=tau as i64).contains(&last) {
                v.push(last as i32);
                Some(ThresholdVector(v))
            } else {
                None
            }
        },
    )
}

proptest! {
    /// Lemma 4 (general pigeonhole principle): any threshold vector with
    /// ‖T‖₁ = τ − m + 1 never filters out a true result.
    #[test]
    fn general_pigeonhole_is_correct(
        x in bits(32),
        y in bits(32),
        m in 2usize..6,
        tau in 0u32..32,
        seed in any::<u64>(),
        t in (2usize..6, 0u32..32).prop_flat_map(|(m, tau)| {
            general_vector(m, tau).prop_map(move |t| (m, tau, t))
        }),
    ) {
        // Use the inner-generated (m, tau, t) triple; outer m/tau unused.
        let _ = (m, tau);
        let (m, tau, t) = t;
        let p = Partitioning::random_shuffle(32, m, seed).unwrap();
        let proj = Projector::new(&p);
        let (vx, vy) = (bv(&x), bv(&y));
        if vx.distance(&vy) <= tau {
            prop_assert!(
                passes_filter(&proj, &t, vx.words(), vy.words()),
                "true result filtered: d={} tau={tau} t={t:?}",
                vx.distance(&vy)
            );
        }
    }

    /// Theorem 1 (tightness): for any vector dominating a general-budget
    /// vector, the constructed witness distances sum to ≤ τ yet fail
    /// every partition — the dominating vector is incorrect.
    #[test]
    fn tightness_witness_always_defeats_dominators(
        m in 2usize..5,
        tau in 1u32..12,
        seed in any::<u64>(),
        drop_idx in any::<prop::sample::Index>(),
    ) {
        let dim = 24usize;
        let p = Partitioning::random_shuffle(dim, m, seed).unwrap();
        let widths = p.widths();
        // Build a general-budget vector by round-robin, then dominate it
        // by lowering one in-range entry.
        let t = allocate_round_robin(m, tau);
        let i = drop_idx.index(m);
        let mut dom = t.clone();
        prop_assume!(dom.0[i] >= 0); // lowering below −1 is invalid
        dom.0[i] -= 1;
        prop_assume!(dom.dominates(&t, &widths));
        let d = tightness_witness(&t, &dom, &widths, tau).expect("dominates");
        let total: i64 = d.iter().map(|&x| x as i64).sum();
        prop_assert!(total <= tau as i64);
        for (j, &dj) in d.iter().enumerate() {
            prop_assert!(dj as i64 > dom.0[j] as i64, "partition {j} passes dom");
            prop_assert!(dj as usize <= widths[j], "witness exceeds width");
        }
    }

    /// Algorithm 1 is optimal: DP cost equals exhaustive minimum.
    #[test]
    fn dp_is_optimal(
        m in 1usize..5,
        tau in 0u32..7,
        raw in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 8), 5),
    ) {
        struct Fixed(Vec<Vec<f64>>);
        impl CnEstimator for Fixed {
            fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
                let mut acc = 0.0;
                out[0] = 0.0;
                for e in 0..=tau {
                    acc += self.0[part][e.min(self.0[part].len() - 1)];
                    out[e + 1] = acc;
                }
            }
            fn size_bytes(&self) -> usize { 0 }
        }
        let est = Fixed(raw);
        let q: Vec<Vec<u64>> = vec![vec![0u64]; m];
        let cn = CnTable::compute(&est, &q, tau as usize);
        let dp = allocate_dp(&cn, tau);
        let (_, best) = allocate_exhaustive(&cn, tau);
        prop_assert!((cn.sum_for(&dp) - best).abs() < 1e-9);
        prop_assert!(dp.satisfies_general_budget(tau));
    }

    /// The generalized budget DP respects its constraints and never beats
    /// the exhaustive optimum over the same feasible set.
    #[test]
    fn budget_dp_feasible_and_bounded(
        m in 1usize..5,
        tau in 0u32..6,
        min_e in -1i32..=0,
        raw in prop::collection::vec(prop::collection::vec(0.0f64..50.0, 7), 5),
    ) {
        struct Fixed(Vec<Vec<f64>>);
        impl CnEstimator for Fixed {
            fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
                let mut acc = 0.0;
                out[0] = 0.0;
                for e in 0..=tau {
                    acc += self.0[part][e.min(self.0[part].len() - 1)];
                    out[e + 1] = acc;
                }
            }
            fn size_bytes(&self) -> usize { 0 }
        }
        let est = Fixed(raw);
        let q: Vec<Vec<u64>> = vec![vec![0u64]; m];
        let cn = CnTable::compute(&est, &q, tau as usize);
        for budget in (m as i64) * (min_e as i64)..=(m as i64) * (tau as i64) {
            let tv = allocate_dp_budget(&cn, tau, budget, min_e)
                .expect("in-range budgets are feasible");
            prop_assert_eq!(tv.sum(), budget);
            prop_assert!(tv.0.iter().all(|&e| e >= min_e && e <= tau as i32));
        }
        // General budget via the generic DP equals the fast path.
        let budget = tau as i64 - m as i64 + 1;
        let generic = allocate_dp_budget(&cn, tau, budget, -1).expect("feasible");
        let fast = allocate_dp(&cn, tau);
        prop_assert!((cn.sum_for(&generic) - cn.sum_for(&fast)).abs() < 1e-9);
    }

    /// End-to-end exactness: GPH (random configs) returns exactly the
    /// linear-scan result set.
    #[test]
    fn engine_equals_linear_scan(
        rows in prop::collection::vec(bits(40), 10..60),
        q in bits(40),
        tau in 0u32..10,
        m in 1usize..5,
        shuffle_seed in any::<u64>(),
        use_rr in any::<bool>(),
    ) {
        let ds = Dataset::from_vectors(40, rows.iter().map(|r| bv(r))).unwrap();
        let mut cfg = GphConfig::new(m, 10);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: shuffle_seed };
        if use_rr {
            cfg.allocator = gph::alloc::AllocatorKind::RoundRobin;
        }
        let engine = Gph::build(ds.clone(), &cfg).unwrap();
        let qv = bv(&q);
        prop_assert_eq!(engine.search(qv.words(), tau), ds.linear_scan(qv.words(), tau));
    }

    /// Hot-path refactor pin: the CSR-probing, batch-verifying engine is
    /// query-for-query identical to the linear scan (the pre-refactor
    /// observable behavior), its stats respect their invariants, and both
    /// properties survive a GPHE snapshot round-trip.
    #[test]
    fn hot_path_is_query_identical_through_snapshot(
        rows in prop::collection::vec(bits(48), 15..70),
        queries in prop::collection::vec(bits(48), 1..5),
        tau in 0u32..9,
        m in 1usize..5,
        shuffle_seed in any::<u64>(),
    ) {
        let ds = Dataset::from_vectors(48, rows.iter().map(|r| bv(r))).unwrap();
        let mut cfg = GphConfig::new(m, 9);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: shuffle_seed };
        let built = Gph::build(ds.clone(), &cfg).unwrap();
        let loaded = Gph::from_bytes(&built.to_bytes()).unwrap();
        for q in &queries {
            let qv = bv(q);
            let expect = ds.linear_scan(qv.words(), tau);
            for engine in [&built, &loaded] {
                let res = engine.search_with_stats(qv.words(), tau);
                prop_assert_eq!(&res.ids, &expect);
                let st = &res.stats;
                prop_assert_eq!(st.n_results as usize, res.ids.len());
                prop_assert!(st.n_results <= st.n_candidates);
                prop_assert!(st.n_candidates <= st.sum_postings + st.n_scanned);
            }
            // Saved and loaded engines agree on thresholds too — the
            // whole allocation pipeline survived the round-trip.
            let a = built.search_with_stats(qv.words(), tau);
            let b = loaded.search_with_stats(qv.words(), tau);
            prop_assert_eq!(a.stats.thresholds, b.stats.thresholds);
            prop_assert_eq!(a.stats.sum_postings, b.stats.sum_postings);
            prop_assert_eq!(a.stats.n_scanned, b.stats.n_scanned);
            prop_assert_eq!(a.stats.n_candidates, b.stats.n_candidates);
        }
    }
}

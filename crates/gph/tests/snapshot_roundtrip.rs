//! Snapshot round-trip properties: a loaded engine is query-for-query
//! identical to the engine that was saved, and corruption anywhere in a
//! snapshot is detected — never a panic, never silently wrong data.

use gph::engine::{Gph, GphConfig};
use gph::partition_opt::PartitionStrategy;
use gph::EstimatorKind;
use hamming_core::{BitVector, Dataset, HammingError};
use proptest::prelude::*;

const DIM: usize = 40;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..100).prop_map(|rows| {
        Dataset::from_vectors(DIM, rows.iter().map(|r| BitVector::from_bits(r.iter().copied())))
            .expect("uniform width")
    })
}

fn estimator_strategy() -> impl Strategy<Value = EstimatorKind> {
    (0usize..3, 1usize..=3, 8usize..64, any::<u64>()).prop_map(
        |(which, sub_count, sample_cap, seed)| match which {
            0 => EstimatorKind::Exact { max_width: 24 },
            1 => EstimatorKind::SubPartition { sub_count, paper_shift: false },
            _ => EstimatorKind::SampleScan { sample_cap, seed },
        },
    )
}

fn cfg(m: usize, estimator: EstimatorKind, seed: u64) -> GphConfig {
    let mut cfg = GphConfig::new(m, 8);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed };
    cfg.estimator = estimator;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → query equals build → query, for every estimator
    /// kind, including the allocator's chosen thresholds and the cost
    /// estimate (i.e. the loaded engine takes identical decisions, not
    /// just identical result sets).
    #[test]
    fn loaded_engine_is_query_identical(
        ds in dataset_strategy(),
        m in 1usize..=4,
        estimator in estimator_strategy(),
        seed in any::<u64>(),
        tau in 0u32..=8,
        qi in any::<prop::sample::Index>(),
    ) {
        // Exact tables are O(2^width): keep partitions narrow for that kind.
        let m = if matches!(estimator, EstimatorKind::Exact { .. }) { 4 } else { m };
        let built = Gph::build(ds.clone(), &cfg(m, estimator, seed)).expect("build");
        let loaded = Gph::from_bytes(&built.to_bytes()).expect("load");
        let q = ds.row(qi.index(ds.len())).to_vec();
        let a = built.search_with_stats(&q, tau);
        let b = loaded.search_with_stats(&q, tau);
        prop_assert_eq!(&a.ids, &b.ids);
        prop_assert_eq!(&a.stats.thresholds, &b.stats.thresholds);
        prop_assert_eq!(built.estimate_cost(&q, tau), loaded.estimate_cost(&q, tau));
        prop_assert_eq!(built.search_topk(&q, 5), loaded.search_topk(&q, 5));
    }

    /// Any single-byte corruption of a snapshot yields
    /// `HammingError::Corrupt` — the CRC-framed container turns every
    /// flip into a checksum or structure error before it can reach the
    /// engine.
    #[test]
    fn single_byte_corruption_is_detected(
        ds in dataset_strategy(),
        m in 1usize..=3,
        seed in any::<u64>(),
        offset in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let built = Gph::build(ds, &cfg(m, EstimatorKind::default(), seed)).expect("build");
        let mut bytes = built.to_bytes();
        let at = offset.index(bytes.len());
        bytes[at] ^= flip;
        match Gph::from_bytes(&bytes) {
            Err(HammingError::Corrupt(_)) => {}
            Err(other) => {
                return Err(TestCaseError::Fail(
                    format!("flip {flip:#x} at {at}: unexpected error kind {other}")));
            }
            Ok(_) => {
                return Err(TestCaseError::Fail(
                    format!("flip {flip:#x} at {at} went undetected")));
            }
        }
    }

    /// Truncating a snapshot anywhere is also detected.
    #[test]
    fn truncation_is_detected(
        ds in dataset_strategy(),
        seed in any::<u64>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let built = Gph::build(ds, &cfg(2, EstimatorKind::default(), seed)).expect("build");
        let bytes = built.to_bytes();
        let cut = cut.index(bytes.len());
        prop_assert!(Gph::from_bytes(&bytes[..cut]).is_err(), "cut={}", cut);
    }
}

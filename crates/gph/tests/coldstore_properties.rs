//! Out-of-core correctness: a file-backed `SegmentedGph` — sealed
//! segments spilled to disk and served through an eviction-forcing page
//! cache — answers every query byte-identically to a fully resident
//! twin, across arbitrary interleavings of upsert / delete / seal /
//! compact and through a snapshot round-trip restored via the lazy
//! `load_with_storage` path.

use gph::coldstore::StorageMode;
use gph::engine::GphConfig;
use gph::partition_opt::PartitionStrategy;
use gph::segment::{SegmentConfig, SegmentedGph};
use hamming_core::BitVector;
use proptest::prelude::*;

const DIM: usize = 40;
/// Ops draw ids from a small universe so deletes and upserts frequently
/// hit live rows (and frequently miss, exercising the no-op path).
const ID_UNIVERSE: u32 = 24;
/// 1-byte budget: the cache clamps to a single resident page, so any
/// sealed corpus beyond one page forces clock evictions mid-query.
const TINY_BUDGET: StorageMode = StorageMode::FileBacked { budget_bytes: 1 };

#[derive(Clone, Debug)]
enum Op {
    Upsert(u32, Vec<bool>),
    Delete(u32),
    Seal,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice via a selector: 0..5 upsert, 5..7 delete, 7 seal,
    // 8 compact.
    (0u8..9, 0..ID_UNIVERSE, prop::collection::vec(any::<bool>(), DIM)).prop_map(
        |(sel, id, bits)| match sel {
            0..=4 => Op::Upsert(id, bits),
            5 | 6 => Op::Delete(id),
            7 => Op::Seal,
            _ => Op::Compact,
        },
    )
}

fn cfg(seed: u64) -> GphConfig {
    let mut cfg = GphConfig::new(3, 8);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed };
    cfg
}

fn words(bits: &[bool]) -> Vec<u64> {
    BitVector::from_bits(bits.iter().copied()).words().to_vec()
}

/// Applies `op` to both engines and checks the mutation outcomes agree.
fn apply(hot: &mut SegmentedGph, cold: &mut SegmentedGph, op: &Op) {
    match op {
        Op::Upsert(id, bits) => {
            let row = words(bits);
            let a = hot.upsert(*id, &row).expect("resident upsert");
            let b = cold.upsert(*id, &row).expect("file-backed upsert");
            assert_eq!(a, b, "upsert({id}) outcome diverged");
        }
        Op::Delete(id) => {
            assert_eq!(hot.delete(*id), cold.delete(*id), "delete({id}) outcome diverged");
        }
        Op::Seal => {
            hot.seal().expect("resident seal");
            cold.seal().expect("file-backed seal");
        }
        Op::Compact => {
            hot.compact().expect("resident compact");
            cold.compact().expect("file-backed compact");
        }
    }
}

/// The file-backed engine must be indistinguishable from the resident
/// one through every read API.
fn assert_identical(hot: &SegmentedGph, cold: &SegmentedGph, queries: &[Vec<bool>]) {
    assert_eq!(cold.len(), hot.len());
    assert_eq!(cold.live_ids(), hot.live_ids());
    for id in hot.live_ids() {
        assert_eq!(cold.get(id), hot.get(id), "row {id} diverged");
    }
    for qbits in queries {
        let q = words(qbits);
        for tau in [0u32, 3, 8] {
            assert_eq!(cold.search(&q, tau), hot.search(&q, tau), "tau={tau}");
            assert_eq!(
                cold.search_with_distances(&q, tau),
                hot.search_with_distances(&q, tau),
                "tau={tau}"
            );
            assert_eq!(cold.estimate_cost(&q, tau), hot.estimate_cost(&q, tau), "tau={tau}");
        }
        for k in [1usize, 5] {
            assert_eq!(cold.search_topk(&q, k), hot.search_topk(&q, k), "k={k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of upsert/delete/seal/compact leaves a
    /// file-backed engine query-for-query equal to a resident one, even
    /// with the page cache squeezed to a single page.
    #[test]
    fn file_backed_engine_matches_resident(
        ops in prop::collection::vec(op_strategy(), 1..40),
        queries in prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..4),
        seal_rows in 1usize..6,
        max_sealed in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(seed);
        let mut hot = SegmentedGph::new(
            DIM,
            cfg.clone(),
            SegmentConfig { seal_rows, max_sealed, ..SegmentConfig::default() },
        ).expect("resident engine");
        let mut cold = SegmentedGph::new(
            DIM,
            cfg,
            SegmentConfig { seal_rows, max_sealed, storage: TINY_BUDGET },
        ).expect("file-backed engine");
        for op in &ops {
            apply(&mut hot, &mut cold, op);
        }
        assert_identical(&hot, &cold, &queries);
        if cold.num_sealed() > 0 {
            let stats = cold.page_cache_stats().expect("sealed cold segments have a cache");
            prop_assert!(stats.hits + stats.misses > 0, "queries never paged");
        }
    }

    /// The same equivalence holds when the file-backed engine is a lazy
    /// `load_with_storage` restore of the resident engine's snapshot —
    /// and keeps holding under further mutations, with the re-serialized
    /// snapshot staying byte-identical until the first mutation.
    #[test]
    fn lazily_restored_engine_matches_resident(
        ops_before in prop::collection::vec(op_strategy(), 1..25),
        ops_after in prop::collection::vec(op_strategy(), 0..15),
        queries in prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..3),
        seal_rows in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(seed);
        let seg_cfg = SegmentConfig { seal_rows, max_sealed: 2, ..SegmentConfig::default() };
        let mut hot = SegmentedGph::new(DIM, cfg, seg_cfg).expect("resident engine");
        // Drive the resident engine alone; the cold twin enters via the
        // snapshot below.
        for op in &ops_before {
            apply_single(&mut hot, op);
        }
        let path = std::env::temp_dir().join(format!(
            "gph-coldprop-{}-{}.gphs",
            std::process::id(),
            seed,
        ));
        hot.save(&path).expect("save snapshot");
        let mut cold = SegmentedGph::load_with_storage(&path, TINY_BUDGET)
            .expect("lazy file-backed restore");
        // Before any payload is paged, re-serialization must be
        // byte-identical to the file on disk (blobs stream verbatim).
        prop_assert_eq!(cold.to_bytes(), std::fs::read(&path).expect("read snapshot back"));
        assert_identical(&hot, &cold, &queries);
        for op in &ops_after {
            apply(&mut hot, &mut cold, op);
        }
        assert_identical(&hot, &cold, &queries);
        std::fs::remove_file(&path).ok();
    }
}

/// Applies `op` to one engine (the resident driver of the restore test).
fn apply_single(engine: &mut SegmentedGph, op: &Op) {
    match op {
        Op::Upsert(id, bits) => {
            engine.upsert(*id, &words(bits)).expect("upsert");
        }
        Op::Delete(id) => {
            engine.delete(*id);
        }
        Op::Seal => engine.seal().expect("seal"),
        Op::Compact => engine.compact().expect("compact"),
    }
}

/// A tiny sealed snapshot plus the byte length of its footer (slot
/// table + trailer), read back from the trailer itself.
fn sealed_snapshot_bytes() -> (Vec<u8>, usize) {
    let mut cfg = GphConfig::new(3, 8);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed: 11 };
    let mut eng = SegmentedGph::new(
        DIM,
        cfg,
        SegmentConfig { seal_rows: 4, max_sealed: 4, ..SegmentConfig::default() },
    )
    .expect("engine");
    for id in 0..12u32 {
        let bits: Vec<bool> = (0..DIM).map(|b| (id as usize + b).is_multiple_of(3)).collect();
        eng.upsert(id, &words(&bits)).expect("upsert");
    }
    eng.seal().expect("seal");
    let bytes = eng.to_bytes();
    // Trailer layout: version u32 | n_slots u32 | magic echo | crc | magic.
    let n_slots = u32::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 12].try_into().unwrap());
    let flen = hamming_core::io::Footer::footer_len(n_slots as usize);
    (bytes, flen)
}

/// Writes `bytes` to a temp file and attempts a file-backed load; the
/// file is removed either way.
fn try_cold_load(bytes: &[u8], tag: &str) -> Result<SegmentedGph, hamming_core::HammingError> {
    let path =
        std::env::temp_dir().join(format!("gph-coldcorrupt-{}-{tag}.gphs", std::process::id()));
    std::fs::write(&path, bytes).expect("write corrupted snapshot");
    let out = SegmentedGph::load_with_storage(&path, TINY_BUDGET);
    std::fs::remove_file(&path).ok();
    out
}

/// Exhaustive sweep: inverting any single byte of the v3 footer makes
/// the lazy (cold) open fail with `Corrupt` — never a panic, a huge
/// allocation, or a silently wrong mapping. The footer checksum covers
/// the slot table and the trailer fields, so no flip can hide.
#[test]
fn every_footer_byte_flip_is_rejected_by_the_cold_open() {
    let (bytes, flen) = sealed_snapshot_bytes();
    assert!(try_cold_load(&bytes, "pristine").is_ok(), "pristine snapshot must load");
    for i in bytes.len() - flen..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        match try_cold_load(&corrupt, "sweep") {
            Err(hamming_core::HammingError::Corrupt(_)) => {}
            Err(other) => panic!("footer byte {i}: expected Corrupt, got {other}"),
            Ok(_) => panic!("footer byte {i}: corruption loaded cleanly"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-bit flips anywhere in the v3 footer are likewise rejected
    /// by the cold open (the byte sweep above inverts whole bytes; bit
    /// flips are the subtler corruption).
    #[test]
    fn footer_bit_flips_are_rejected_by_the_cold_open(pos in any::<u32>(), bit in 0u8..8) {
        let (bytes, flen) = sealed_snapshot_bytes();
        let i = bytes.len() - flen + (pos as usize % flen);
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1 << bit;
        match try_cold_load(&corrupt, "bitflip") {
            Err(hamming_core::HammingError::Corrupt(_)) => {}
            Err(other) => panic!("footer byte {i} bit {bit}: expected Corrupt, got {other}"),
            Ok(_) => panic!("footer byte {i} bit {bit}: corruption loaded cleanly"),
        }
    }
}

//! Service-level metrics: a lock-free log-linear latency histogram, the
//! aggregate snapshot (QPS, p50/p95/p99, candidates per query), and the
//! encodable [`ServiceSnapshotStats`] bundle the network `Stats` op and
//! `gph-store stats` ship over the wire.

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use hamming_core::error::Result;
use hamming_core::io::ByteReader;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: 16 sub-buckets per power of two (≈ ±6 %
/// relative error on reported quantiles).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values up to 2^63 ns land in-range; bucket count ≈ 16 · 60 octaves.
const BUCKETS: usize = SUB * 61;

/// Lock-free log-linear histogram of nanosecond latencies.
///
/// HDR-style bucketing: values below 16 map to themselves; larger values
/// keep their top 4 mantissa bits per octave. Recording is a single
/// relaxed `fetch_add`.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        let idx = ((octave - SUB_BITS + 1) as usize) * SUB + sub;
        idx.min(BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `idx` (the value quantiles report).
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = idx / SUB;
        let sub = (idx % SUB) as u64;
        (SUB as u64 + sub) << (octave - 1)
    }

    /// Records one latency observation.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) in nanoseconds: the floor of the
    /// bucket holding the ⌈q·n⌉-th observation. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        self.max_ns()
    }
}

/// Rolling counters owned by the service, aggregated across workers.
pub struct ServiceMetrics {
    started: Instant,
    /// Responses produced (cache hits + engine executions; excludes
    /// rejections).
    responses: AtomicU64,
    /// Queries executed on the engines (cache misses).
    executed: AtomicU64,
    /// Batch jobs processed by workers.
    batches: AtomicU64,
    /// Requests shed (resolved as `Overloaded`) on a full queue.
    queue_rejections: AtomicU64,
    /// Mutations applied (inserts + deletes + upserts that changed data).
    mutations: AtomicU64,
    /// Σ candidates verified across executed queries (summed over
    /// shards).
    candidates: AtomicU64,
    /// Σ results returned across executed queries.
    results: AtomicU64,
    /// End-to-end latency (submit → response), including queue wait.
    pub(crate) latency: LatencyHistogram,
}

impl ServiceMetrics {
    /// Fresh metrics anchored at "now" (QPS denominators start here).
    pub fn new() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            responses: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            results: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    pub(crate) fn note_response(&self, latency_ns: u64) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_ns);
    }

    pub(crate) fn note_execution(&self, candidates: u64, results: u64) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
        self.results.fetch_add(results, Ordering::Relaxed);
    }

    pub(crate) fn note_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_queue_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_mutation(&self) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregate snapshot (see [`ServiceStats`] fields).
    pub fn snapshot(&self) -> ServiceStats {
        let responses = self.responses.load(Ordering::Relaxed);
        let executed = self.executed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        ServiceStats {
            responses,
            executed,
            batches: self.batches.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            qps: responses as f64 / elapsed,
            latency_p50_ns: self.latency.quantile_ns(0.50),
            latency_p95_ns: self.latency.quantile_ns(0.95),
            latency_p99_ns: self.latency.quantile_ns(0.99),
            latency_mean_ns: self.latency.mean_ns(),
            latency_max_ns: self.latency.max_ns(),
            candidates_per_query: if executed == 0 {
                0.0
            } else {
                self.candidates.load(Ordering::Relaxed) as f64 / executed as f64
            },
            results_per_query: if executed == 0 {
                0.0
            } else {
                self.results.load(Ordering::Relaxed) as f64 / executed as f64
            },
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time service statistics (one row of a dashboard).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Responses produced (cache hits + executions; excludes rejects).
    pub responses: u64,
    /// Queries executed on the engines (cache misses).
    pub executed: u64,
    /// Batch jobs processed.
    pub batches: u64,
    /// Requests shed (resolved as `Overloaded`) on a full queue.
    pub queue_rejections: u64,
    /// Mutations applied (inserts + deletes + upserts that changed data).
    pub mutations: u64,
    /// Responses per second since service start.
    pub qps: f64,
    /// Median end-to-end latency (ns).
    pub latency_p50_ns: u64,
    /// 95th-percentile end-to-end latency (ns).
    pub latency_p95_ns: u64,
    /// 99th-percentile end-to-end latency (ns).
    pub latency_p99_ns: u64,
    /// Mean end-to-end latency (ns).
    pub latency_mean_ns: f64,
    /// Worst observed latency (ns).
    pub latency_max_ns: u64,
    /// Mean candidates verified per executed query (summed over shards).
    pub candidates_per_query: f64,
    /// Mean results returned per executed query.
    pub results_per_query: f64,
}

/// Everything a running service can report about itself in one struct:
/// throughput/latency counters, result-cache counters, and admission
/// verdict counters. This is the payload of the network protocol's
/// `Stats` op, so it carries a versioned binary codec
/// ([`ServiceSnapshotStats::encode`] / [`ServiceSnapshotStats::decode`])
/// rather than relying on any serialization framework.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceSnapshotStats {
    /// Worker-pool throughput and latency counters.
    pub service: ServiceStats,
    /// Result-cache hit/miss/invalidation counters.
    pub cache: CacheStats,
    /// Admission-control verdict counters.
    pub admission: AdmissionStats,
}

/// Codec version of the [`ServiceSnapshotStats`] payload.
const SNAPSHOT_STATS_VERSION: u8 = 1;

impl ServiceSnapshotStats {
    /// Encodes the snapshot as a little-endian byte string (leading
    /// version byte, then every counter in declaration order).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + 21 * 8);
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the encoding to `buf` (the composition point for wire
    /// payloads that embed a stats snapshot).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(SNAPSHOT_STATS_VERSION);
        let s = &self.service;
        for v in [s.responses, s.executed, s.batches, s.queue_rejections, s.mutations] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&s.qps.to_le_bytes());
        for v in [s.latency_p50_ns, s.latency_p95_ns, s.latency_p99_ns] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&s.latency_mean_ns.to_le_bytes());
        buf.extend_from_slice(&s.latency_max_ns.to_le_bytes());
        buf.extend_from_slice(&s.candidates_per_query.to_le_bytes());
        buf.extend_from_slice(&s.results_per_query.to_le_bytes());
        let c = &self.cache;
        for v in [c.hits, c.misses, c.invalidations, c.len as u64, c.capacity as u64] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let a = &self.admission;
        for v in [a.admitted, a.degraded, a.rejected] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes a snapshot produced by [`ServiceSnapshotStats::encode`],
    /// requiring full consumption of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.finish("service stats")?;
        Ok(out)
    }

    /// Decodes a snapshot from the reader's current position (the
    /// composition point for wire payloads that embed one).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.u8("stats version")?;
        if version != SNAPSHOT_STATS_VERSION {
            return Err(hamming_core::HammingError::Corrupt(format!(
                "unsupported stats version {version}"
            )));
        }
        let service = ServiceStats {
            responses: r.u64("responses")?,
            executed: r.u64("executed")?,
            batches: r.u64("batches")?,
            queue_rejections: r.u64("queue rejections")?,
            mutations: r.u64("mutations")?,
            qps: r.f64("qps")?,
            latency_p50_ns: r.u64("p50")?,
            latency_p95_ns: r.u64("p95")?,
            latency_p99_ns: r.u64("p99")?,
            latency_mean_ns: r.f64("mean latency")?,
            latency_max_ns: r.u64("max latency")?,
            candidates_per_query: r.f64("candidates per query")?,
            results_per_query: r.f64("results per query")?,
        };
        let cache = CacheStats {
            hits: r.u64("cache hits")?,
            misses: r.u64("cache misses")?,
            invalidations: r.u64("cache invalidations")?,
            len: r.u64("cache len")? as usize,
            capacity: r.u64("cache capacity")? as usize,
        };
        let admission = AdmissionStats {
            admitted: r.u64("admitted")?,
            degraded: r.u64("degraded")?,
            rejected: r.u64("rejected")?,
        };
        Ok(ServiceSnapshotStats { service, cache, admission })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(idx >= prev || v < 32, "bucket index regressed at {v}");
            prev = idx;
            let floor = LatencyHistogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // Log-linear guarantee: floor within 1/16 relative error.
            assert!((v - floor) as f64 <= (v as f64 / 16.0).max(0.0) + 1e-9, "v={v} floor={floor}");
        }
    }

    #[test]
    fn exact_quantiles_on_small_values() {
        let h = LatencyHistogram::new();
        for v in 1..=10u64 {
            h.record(v); // values < 16 are bucketed exactly
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_ns(0.5), 5);
        assert_eq!(h.quantile_ns(1.0), 10);
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.max_ns(), 10);
        assert!((h.mean_ns() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn skewed_distribution_quantiles() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!((937..=1000).contains(&p50), "p50={p50}");
        assert!((937..=1000).contains(&p99), "p99={p99}");
        assert!(p999 > 900_000, "p999={p999}");
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn metrics_snapshot_math() {
        let m = ServiceMetrics::new();
        m.note_response(1_000);
        m.note_response(2_000);
        m.note_execution(50, 5);
        m.note_execution(150, 15);
        m.note_batch();
        m.note_queue_rejection();
        m.note_mutation();
        let s = m.snapshot();
        assert_eq!(s.responses, 2);
        assert_eq!(s.executed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.queue_rejections, 1);
        assert_eq!(s.mutations, 1);
        assert!(s.qps > 0.0);
        assert!((s.candidates_per_query - 100.0).abs() < 1e-9);
        assert!((s.results_per_query - 10.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_stats_roundtrip() {
        let snap = ServiceSnapshotStats {
            service: ServiceStats {
                responses: 101,
                executed: 88,
                batches: 12,
                queue_rejections: 3,
                mutations: 7,
                qps: 1234.5,
                latency_p50_ns: 40_000,
                latency_p95_ns: 900_000,
                latency_p99_ns: 1_500_000,
                latency_mean_ns: 55_123.25,
                latency_max_ns: 2_000_001,
                candidates_per_query: 321.75,
                results_per_query: 8.5,
            },
            cache: CacheStats { hits: 60, misses: 41, invalidations: 2, len: 39, capacity: 1024 },
            admission: AdmissionStats { admitted: 95, degraded: 4, rejected: 2 },
        };
        let bytes = snap.encode();
        let back = ServiceSnapshotStats::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes, "re-encoding must be byte-identical");
        assert_eq!(back.service.responses, 101);
        assert_eq!(back.service.latency_p95_ns, 900_000);
        assert!((back.service.qps - 1234.5).abs() < 1e-12);
        assert!((back.service.latency_mean_ns - 55_123.25).abs() < 1e-12);
        assert_eq!(back.cache.hits, 60);
        assert_eq!(back.cache.capacity, 1024);
        assert_eq!(back.admission, snap.admission);
    }

    #[test]
    fn snapshot_stats_rejects_corruption() {
        let bytes = ServiceSnapshotStats::default().encode();
        assert!(ServiceSnapshotStats::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut versioned = bytes.clone();
        versioned[0] = 99;
        assert!(ServiceSnapshotStats::decode(&versioned).is_err(), "unknown version");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(ServiceSnapshotStats::decode(&trailing).is_err(), "trailing bytes");
    }
}

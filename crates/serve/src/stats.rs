//! Service-level metrics: lock-free counters and the latency histogram
//! (both registered in a `gph-obs` [`MetricsRegistry`]), the aggregate
//! snapshot (QPS, p50/p95/p99, candidates per query), and the encodable
//! [`ServiceSnapshotStats`] bundle the network `Stats` op and
//! `gph-store stats` ship over the wire.
//!
//! The log-linear histogram itself lives in `gph-obs` now
//! ([`gph_obs::LogHistogram`]); [`LatencyHistogram`] remains as an alias
//! for API compatibility.

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use gph_obs::{Counter, Histogram, MetricsRegistry};
use hamming_core::error::Result;
use hamming_core::io::ByteReader;
use std::time::Instant;

/// The service's latency histogram type (promoted into `gph-obs`).
pub type LatencyHistogram = gph_obs::LogHistogram;

/// Rolling counters owned by the service, aggregated across workers.
///
/// Every counter is a `gph-obs` handle; construct with
/// [`ServiceMetrics::registered`] to expose them through a registry's
/// Prometheus rendering, or [`ServiceMetrics::new`] for detached
/// counters (tests, embedded use).
pub struct ServiceMetrics {
    started: Instant,
    /// Responses produced (cache hits + engine executions; excludes
    /// rejections).
    responses: Counter,
    /// Queries executed on the engines (cache misses).
    executed: Counter,
    /// Batch jobs processed by workers.
    batches: Counter,
    /// Requests shed (resolved as `Overloaded`) on a full queue.
    queue_rejections: Counter,
    /// Mutations applied (inserts + deletes + upserts that changed data).
    mutations: Counter,
    /// Σ candidates verified across executed queries (summed over
    /// shards).
    candidates: Counter,
    /// Σ rows linear-scanned across executed queries (memtable scans +
    /// sealed-segment scan fallbacks, summed over shards).
    scanned: Counter,
    /// Σ results returned across executed queries.
    results: Counter,
    /// End-to-end latency (submit → response), including queue wait.
    pub(crate) latency: Histogram,
}

impl ServiceMetrics {
    /// Fresh detached metrics anchored at "now" (QPS denominators start
    /// here).
    pub fn new() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            responses: Counter::detached(),
            executed: Counter::detached(),
            batches: Counter::detached(),
            queue_rejections: Counter::detached(),
            mutations: Counter::detached(),
            candidates: Counter::detached(),
            scanned: Counter::detached(),
            results: Counter::detached(),
            latency: Histogram::detached(),
        }
    }

    /// Fresh metrics whose counters and latency summary are registered
    /// in `registry` (series `gph_responses_total`, `gph_executed_total`,
    /// …, `gph_latency_ns`).
    pub fn registered(registry: &MetricsRegistry) -> Self {
        let c = |name, help| registry.counter(name, help, &[]);
        ServiceMetrics {
            started: Instant::now(),
            responses: c("gph_responses_total", "Responses produced (cache hits + executions)."),
            executed: c("gph_executed_total", "Queries executed on the engines (cache misses)."),
            batches: c("gph_batches_total", "Batch jobs processed by workers."),
            queue_rejections: c(
                "gph_queue_rejections_total",
                "Requests shed on a full worker queue.",
            ),
            mutations: c("gph_mutations_total", "Mutations applied (insert/delete/upsert)."),
            candidates: c("gph_candidates_total", "Candidates verified across executed queries."),
            scanned: c(
                "gph_scanned_total",
                "Rows linear-scanned across executed queries (memtable + fallback).",
            ),
            results: c("gph_results_total", "Results returned across executed queries."),
            latency: registry.histogram(
                "gph_latency_ns",
                "End-to-end response latency in nanoseconds (submit to response).",
                &[],
            ),
        }
    }

    pub(crate) fn note_response(&self, latency_ns: u64) {
        self.responses.inc();
        self.latency.record(latency_ns);
    }

    pub(crate) fn note_execution(&self, candidates: u64, scanned: u64, results: u64) {
        self.executed.inc();
        self.candidates.add(candidates);
        self.scanned.add(scanned);
        self.results.add(results);
    }

    pub(crate) fn note_batch(&self) {
        self.batches.inc();
    }

    pub(crate) fn note_queue_rejection(&self) {
        self.queue_rejections.inc();
    }

    pub(crate) fn note_mutation(&self) {
        self.mutations.inc();
    }

    /// Aggregate snapshot (see [`ServiceStats`] fields).
    pub fn snapshot(&self) -> ServiceStats {
        let responses = self.responses.get();
        let executed = self.executed.get();
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let per_query =
            |total: u64| if executed == 0 { 0.0 } else { total as f64 / executed as f64 };
        let latency = self.latency.inner();
        ServiceStats {
            responses,
            executed,
            batches: self.batches.get(),
            queue_rejections: self.queue_rejections.get(),
            mutations: self.mutations.get(),
            qps: responses as f64 / elapsed,
            latency_p50_ns: latency.quantile(0.50),
            latency_p95_ns: latency.quantile(0.95),
            latency_p99_ns: latency.quantile(0.99),
            latency_mean_ns: latency.mean(),
            latency_max_ns: latency.max(),
            candidates_per_query: per_query(self.candidates.get()),
            scanned_per_query: per_query(self.scanned.get()),
            results_per_query: per_query(self.results.get()),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time service statistics (one row of a dashboard).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Responses produced (cache hits + executions; excludes rejects).
    pub responses: u64,
    /// Queries executed on the engines (cache misses).
    pub executed: u64,
    /// Batch jobs processed.
    pub batches: u64,
    /// Requests shed (resolved as `Overloaded`) on a full queue.
    pub queue_rejections: u64,
    /// Mutations applied (inserts + deletes + upserts that changed data).
    pub mutations: u64,
    /// Responses per second since service start.
    pub qps: f64,
    /// Median end-to-end latency (ns).
    pub latency_p50_ns: u64,
    /// 95th-percentile end-to-end latency (ns).
    pub latency_p95_ns: u64,
    /// 99th-percentile end-to-end latency (ns).
    pub latency_p99_ns: u64,
    /// Mean end-to-end latency (ns).
    pub latency_mean_ns: f64,
    /// Worst observed latency (ns).
    pub latency_max_ns: u64,
    /// Mean candidates verified per executed query (summed over shards).
    pub candidates_per_query: f64,
    /// Mean rows linear-scanned per executed query (memtable scans plus
    /// sealed-segment scan fallbacks, summed over shards).
    pub scanned_per_query: f64,
    /// Mean results returned per executed query.
    pub results_per_query: f64,
}

/// Everything a running service can report about itself in one struct:
/// throughput/latency counters, result-cache counters, and admission
/// verdict counters. This is the payload of the network protocol's
/// `Stats` op, so it carries a versioned binary codec
/// ([`ServiceSnapshotStats::encode`] / [`ServiceSnapshotStats::decode`])
/// rather than relying on any serialization framework.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceSnapshotStats {
    /// Worker-pool throughput and latency counters.
    pub service: ServiceStats,
    /// Result-cache hit/miss/invalidation counters.
    pub cache: CacheStats,
    /// Admission-control verdict counters.
    pub admission: AdmissionStats,
}

/// Codec version of the [`ServiceSnapshotStats`] payload. Version 2
/// added `scanned_per_query` (the `n_scanned` counter landed in the
/// engines before the codec learned about it); version 1 is rejected.
const SNAPSHOT_STATS_VERSION: u8 = 2;

impl ServiceSnapshotStats {
    /// Encodes the snapshot as a little-endian byte string (leading
    /// version byte, then every counter in declaration order).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + 22 * 8);
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the encoding to `buf` (the composition point for wire
    /// payloads that embed a stats snapshot).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(SNAPSHOT_STATS_VERSION);
        let s = &self.service;
        for v in [s.responses, s.executed, s.batches, s.queue_rejections, s.mutations] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&s.qps.to_le_bytes());
        for v in [s.latency_p50_ns, s.latency_p95_ns, s.latency_p99_ns] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&s.latency_mean_ns.to_le_bytes());
        buf.extend_from_slice(&s.latency_max_ns.to_le_bytes());
        buf.extend_from_slice(&s.candidates_per_query.to_le_bytes());
        buf.extend_from_slice(&s.scanned_per_query.to_le_bytes());
        buf.extend_from_slice(&s.results_per_query.to_le_bytes());
        let c = &self.cache;
        for v in [c.hits, c.misses, c.invalidations, c.len as u64, c.capacity as u64] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let a = &self.admission;
        for v in [a.admitted, a.degraded, a.rejected] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes a snapshot produced by [`ServiceSnapshotStats::encode`],
    /// requiring full consumption of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.finish("service stats")?;
        Ok(out)
    }

    /// Decodes a snapshot from the reader's current position (the
    /// composition point for wire payloads that embed one).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let version = r.u8("stats version")?;
        if version != SNAPSHOT_STATS_VERSION {
            return Err(hamming_core::HammingError::Corrupt(format!(
                "unsupported stats version {version}"
            )));
        }
        let service = ServiceStats {
            responses: r.u64("responses")?,
            executed: r.u64("executed")?,
            batches: r.u64("batches")?,
            queue_rejections: r.u64("queue rejections")?,
            mutations: r.u64("mutations")?,
            qps: r.f64("qps")?,
            latency_p50_ns: r.u64("p50")?,
            latency_p95_ns: r.u64("p95")?,
            latency_p99_ns: r.u64("p99")?,
            latency_mean_ns: r.f64("mean latency")?,
            latency_max_ns: r.u64("max latency")?,
            candidates_per_query: r.f64("candidates per query")?,
            scanned_per_query: r.f64("scanned per query")?,
            results_per_query: r.f64("results per query")?,
        };
        let cache = CacheStats {
            hits: r.u64("cache hits")?,
            misses: r.u64("cache misses")?,
            invalidations: r.u64("cache invalidations")?,
            len: r.u64("cache len")? as usize,
            capacity: r.u64("cache capacity")? as usize,
        };
        let admission = AdmissionStats {
            admitted: r.u64("admitted")?,
            degraded: r.u64("degraded")?,
            rejected: r.u64("rejected")?,
        };
        Ok(ServiceSnapshotStats { service, cache, admission })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_snapshot_math() {
        let m = ServiceMetrics::new();
        m.note_response(1_000);
        m.note_response(2_000);
        m.note_execution(50, 10, 5);
        m.note_execution(150, 30, 15);
        m.note_batch();
        m.note_queue_rejection();
        m.note_mutation();
        let s = m.snapshot();
        assert_eq!(s.responses, 2);
        assert_eq!(s.executed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.queue_rejections, 1);
        assert_eq!(s.mutations, 1);
        assert!(s.qps > 0.0);
        assert!((s.candidates_per_query - 100.0).abs() < 1e-9);
        assert!((s.scanned_per_query - 20.0).abs() < 1e-9);
        assert!((s.results_per_query - 10.0).abs() < 1e-9);
    }

    #[test]
    fn registered_metrics_surface_in_the_registry() {
        let registry = MetricsRegistry::new();
        let m = ServiceMetrics::registered(&registry);
        m.note_response(5_000);
        m.note_execution(10, 3, 2);
        let text = registry.render();
        assert!(text.contains("\ngph_responses_total 1\n"), "got:\n{text}");
        assert!(text.contains("\ngph_candidates_total 10\n"));
        assert!(text.contains("\ngph_scanned_total 3\n"));
        assert!(text.contains("gph_latency_ns_count 1"));
    }

    #[test]
    fn snapshot_stats_roundtrip() {
        let snap = ServiceSnapshotStats {
            service: ServiceStats {
                responses: 101,
                executed: 88,
                batches: 12,
                queue_rejections: 3,
                mutations: 7,
                qps: 1234.5,
                latency_p50_ns: 40_000,
                latency_p95_ns: 900_000,
                latency_p99_ns: 1_500_000,
                latency_mean_ns: 55_123.25,
                latency_max_ns: 2_000_001,
                candidates_per_query: 321.75,
                scanned_per_query: 17.5,
                results_per_query: 8.5,
            },
            cache: CacheStats { hits: 60, misses: 41, invalidations: 2, len: 39, capacity: 1024 },
            admission: AdmissionStats { admitted: 95, degraded: 4, rejected: 2 },
        };
        let bytes = snap.encode();
        let back = ServiceSnapshotStats::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes, "re-encoding must be byte-identical");
        assert_eq!(back.service.responses, 101);
        assert_eq!(back.service.latency_p95_ns, 900_000);
        assert!((back.service.qps - 1234.5).abs() < 1e-12);
        assert!((back.service.latency_mean_ns - 55_123.25).abs() < 1e-12);
        assert!((back.service.scanned_per_query - 17.5).abs() < 1e-12);
        assert_eq!(back.cache.hits, 60);
        assert_eq!(back.cache.capacity, 1024);
        assert_eq!(back.admission, snap.admission);
    }

    #[test]
    fn snapshot_stats_rejects_corruption() {
        let bytes = ServiceSnapshotStats::default().encode();
        assert_eq!(bytes[0], 2, "codec version is 2 since scanned_per_query was added");
        assert!(ServiceSnapshotStats::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut versioned = bytes.clone();
        versioned[0] = 99;
        assert!(ServiceSnapshotStats::decode(&versioned).is_err(), "unknown version");
        let mut v1 = bytes.clone();
        v1[0] = 1;
        assert!(ServiceSnapshotStats::decode(&v1).is_err(), "pre-scanned v1 layout");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(ServiceSnapshotStats::decode(&trailing).is_err(), "trailing bytes");
    }
}

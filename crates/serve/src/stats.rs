//! Service-level metrics: a lock-free log-linear latency histogram and
//! the aggregate snapshot (QPS, p50/p95/p99, candidates per query).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: 16 sub-buckets per power of two (≈ ±6 %
/// relative error on reported quantiles).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values up to 2^63 ns land in-range; bucket count ≈ 16 · 60 octaves.
const BUCKETS: usize = SUB * 61;

/// Lock-free log-linear histogram of nanosecond latencies.
///
/// HDR-style bucketing: values below 16 map to themselves; larger values
/// keep their top 4 mantissa bits per octave. Recording is a single
/// relaxed `fetch_add`.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        let idx = ((octave - SUB_BITS + 1) as usize) * SUB + sub;
        idx.min(BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `idx` (the value quantiles report).
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = idx / SUB;
        let sub = (idx % SUB) as u64;
        (SUB as u64 + sub) << (octave - 1)
    }

    /// Records one latency observation.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) in nanoseconds: the floor of the
    /// bucket holding the ⌈q·n⌉-th observation. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        self.max_ns()
    }
}

/// Rolling counters owned by the service, aggregated across workers.
pub struct ServiceMetrics {
    started: Instant,
    /// Responses produced (cache hits + engine executions; excludes
    /// rejections).
    responses: AtomicU64,
    /// Queries executed on the engines (cache misses).
    executed: AtomicU64,
    /// Batch jobs processed by workers.
    batches: AtomicU64,
    /// Requests shed (resolved as `Overloaded`) on a full queue.
    queue_rejections: AtomicU64,
    /// Mutations applied (inserts + deletes + upserts that changed data).
    mutations: AtomicU64,
    /// Σ candidates verified across executed queries (summed over
    /// shards).
    candidates: AtomicU64,
    /// Σ results returned across executed queries.
    results: AtomicU64,
    /// End-to-end latency (submit → response), including queue wait.
    pub(crate) latency: LatencyHistogram,
}

impl ServiceMetrics {
    /// Fresh metrics anchored at "now" (QPS denominators start here).
    pub fn new() -> Self {
        ServiceMetrics {
            started: Instant::now(),
            responses: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            queue_rejections: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            results: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    pub(crate) fn note_response(&self, latency_ns: u64) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_ns);
    }

    pub(crate) fn note_execution(&self, candidates: u64, results: u64) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
        self.results.fetch_add(results, Ordering::Relaxed);
    }

    pub(crate) fn note_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_queue_rejection(&self) {
        self.queue_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_mutation(&self) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregate snapshot (see [`ServiceStats`] fields).
    pub fn snapshot(&self) -> ServiceStats {
        let responses = self.responses.load(Ordering::Relaxed);
        let executed = self.executed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        ServiceStats {
            responses,
            executed,
            batches: self.batches.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            qps: responses as f64 / elapsed,
            latency_p50_ns: self.latency.quantile_ns(0.50),
            latency_p95_ns: self.latency.quantile_ns(0.95),
            latency_p99_ns: self.latency.quantile_ns(0.99),
            latency_mean_ns: self.latency.mean_ns(),
            latency_max_ns: self.latency.max_ns(),
            candidates_per_query: if executed == 0 {
                0.0
            } else {
                self.candidates.load(Ordering::Relaxed) as f64 / executed as f64
            },
            results_per_query: if executed == 0 {
                0.0
            } else {
                self.results.load(Ordering::Relaxed) as f64 / executed as f64
            },
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time service statistics (one row of a dashboard).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Responses produced (cache hits + executions; excludes rejects).
    pub responses: u64,
    /// Queries executed on the engines (cache misses).
    pub executed: u64,
    /// Batch jobs processed.
    pub batches: u64,
    /// Requests shed (resolved as `Overloaded`) on a full queue.
    pub queue_rejections: u64,
    /// Mutations applied (inserts + deletes + upserts that changed data).
    pub mutations: u64,
    /// Responses per second since service start.
    pub qps: f64,
    /// Median end-to-end latency (ns).
    pub latency_p50_ns: u64,
    /// 95th-percentile end-to-end latency (ns).
    pub latency_p95_ns: u64,
    /// 99th-percentile end-to-end latency (ns).
    pub latency_p99_ns: u64,
    /// Mean end-to-end latency (ns).
    pub latency_mean_ns: f64,
    /// Worst observed latency (ns).
    pub latency_max_ns: u64,
    /// Mean candidates verified per executed query (summed over shards).
    pub candidates_per_query: f64,
    /// Mean results returned per executed query.
    pub results_per_query: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(idx >= prev || v < 32, "bucket index regressed at {v}");
            prev = idx;
            let floor = LatencyHistogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // Log-linear guarantee: floor within 1/16 relative error.
            assert!((v - floor) as f64 <= (v as f64 / 16.0).max(0.0) + 1e-9, "v={v} floor={floor}");
        }
    }

    #[test]
    fn exact_quantiles_on_small_values() {
        let h = LatencyHistogram::new();
        for v in 1..=10u64 {
            h.record(v); // values < 16 are bucketed exactly
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile_ns(0.5), 5);
        assert_eq!(h.quantile_ns(1.0), 10);
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.max_ns(), 10);
        assert!((h.mean_ns() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn skewed_distribution_quantiles() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        let p999 = h.quantile_ns(0.999);
        assert!((937..=1000).contains(&p50), "p50={p50}");
        assert!((937..=1000).contains(&p99), "p99={p99}");
        assert!(p999 > 900_000, "p999={p999}");
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn metrics_snapshot_math() {
        let m = ServiceMetrics::new();
        m.note_response(1_000);
        m.note_response(2_000);
        m.note_execution(50, 5);
        m.note_execution(150, 15);
        m.note_batch();
        m.note_queue_rejection();
        m.note_mutation();
        let s = m.snapshot();
        assert_eq!(s.responses, 2);
        assert_eq!(s.executed, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.queue_rejections, 1);
        assert_eq!(s.mutations, 1);
        assert!(s.qps > 0.0);
        assert!((s.candidates_per_query - 100.0).abs() < 1e-9);
        assert!((s.results_per_query - 10.0).abs() < 1e-9);
    }
}

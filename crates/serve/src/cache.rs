//! Result caching: a slab-backed LRU plus the service-facing
//! [`ResultCache`] keyed by `(query words, tau)` / `(query words, k)`.
//!
//! The LRU is an intrusive doubly-linked list over a `Vec` slab (indices
//! instead of pointers — no `unsafe`), giving O(1) get/insert/evict.
//! Values are handed out by clone; the service stores `Arc`'d result
//! vectors so a clone is a refcount bump.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map. `capacity == 0` disables
/// caching (every insert is a no-op, every get a miss).
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently
    /// used entry when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let node = Node { key: key.clone(), value, prev: NIL, next: NIL };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = node;
                idx
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every entry (capacity unchanged). Slab storage is released:
    /// after a mutation invalidates the cache, stale result vectors must
    /// not stay resident.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict called on an empty cache");
        self.unlink(idx);
        self.map.remove(&self.slab[idx].key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Cache key: the query's raw words plus the request parameter. Keyed on
/// the *requested* parameters (a degraded query caches under the tau the
/// client asked for, so repeats hit without re-running admission).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum CacheKey {
    /// Range search at threshold `tau`.
    Range {
        /// The query's raw words.
        query: Vec<u64>,
        /// Requested threshold.
        tau: u32,
    },
    /// Top-k search.
    TopK {
        /// The query's raw words.
        query: Vec<u64>,
        /// Requested result count.
        k: u32,
    },
}

/// A cached service result (shared, refcounted).
#[derive(Clone, Debug)]
pub enum CachedResult {
    /// Range-search IDs (with the tau actually executed, for degraded
    /// queries).
    Range {
        /// Matching global IDs, ascending.
        ids: Arc<Vec<u32>>,
        /// Threshold the engine actually ran.
        effective_tau: u32,
    },
    /// Top-k `(id, distance)` pairs.
    TopK {
        /// The hits, ascending by `(distance, id)`.
        hits: Arc<Vec<(u32, u32)>>,
        /// Escalation cap the engine actually ran (`tau_max` unless
        /// admission degraded the query).
        effective_cap: u32,
    },
}

/// Hit/miss counters, snapshot alongside the service stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engines.
    pub misses: u64,
    /// Whole-cache invalidations (one per applied mutation).
    pub invalidations: u64,
    /// Entries resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU result cache checked before dispatch to the worker
/// pool.
pub struct ResultCache {
    inner: Mutex<LruCache<CacheKey, CachedResult>>,
    /// Bumped (under the inner mutex) by every invalidation. Writers
    /// capture it before computing a result and store with
    /// [`ResultCache::store_if_current`], so a result computed before an
    /// invalidation can never be cached after it.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(LruCache::new(capacity)),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The current invalidation epoch. Capture this *before* computing a
    /// result destined for [`ResultCache::store_if_current`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Looks up a result, counting the hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<CachedResult> {
        let got = self.inner.lock().get(key);
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Stores a computed result unconditionally (no mutation can have
    /// raced the computation — e.g. single-threaded tests).
    pub fn store(&self, key: CacheKey, value: CachedResult) {
        self.inner.lock().insert(key, value);
    }

    /// Stores a computed result only if no invalidation happened since
    /// `epoch` was captured. The check and the insert share the cache
    /// mutex with [`ResultCache::invalidate_all`]'s bump, closing the
    /// race where a worker finishes a search, a mutation invalidates,
    /// and the worker then caches the now-stale result — which would
    /// otherwise be served as a hit until the next mutation.
    pub fn store_if_current(&self, epoch: u64, key: CacheKey, value: CachedResult) {
        let mut inner = self.inner.lock();
        if self.epoch.load(Ordering::Relaxed) == epoch {
            inner.insert(key, value);
        }
    }

    /// Drops every cached result and advances the epoch. Called after a
    /// mutation commits: any cached answer may now include a deleted row
    /// or miss an inserted one. Whole-cache invalidation is coarse but
    /// correct; shard- or radius-scoped invalidation is an optimization
    /// the counters make measurable.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        self.epoch.fetch_add(1, Ordering::Release);
        inner.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: inner.len(),
            capacity: inner.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 becomes MRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_refresh_updates_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 is now LRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn lru_capacity_one_and_zero() {
        let mut one: LruCache<u32, u32> = LruCache::new(1);
        one.insert(1, 10);
        one.insert(2, 20);
        assert_eq!(one.get(&1), None);
        assert_eq!(one.get(&2), Some(20));

        let mut zero: LruCache<u32, u32> = LruCache::new(0);
        zero.insert(1, 10);
        assert_eq!(zero.get(&1), None);
        assert!(zero.is_empty());
    }

    #[test]
    fn lru_slab_reuse_many_cycles() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..1000u32 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 4);
        // Slab never grows past capacity + nothing leaks.
        assert!(c.slab.len() <= 5);
        for i in 996..1000 {
            assert_eq!(c.get(&i), Some(i * 2));
        }
    }

    #[test]
    fn result_cache_counts_hits_and_misses() {
        let cache = ResultCache::new(8);
        let key = CacheKey::Range { query: vec![0xF0, 0x0F], tau: 4 };
        assert!(cache.lookup(&key).is_none());
        cache.store(
            key.clone(),
            CachedResult::Range { ids: Arc::new(vec![1, 2, 3]), effective_tau: 4 },
        );
        match cache.lookup(&key) {
            Some(CachedResult::Range { ids, effective_tau }) => {
                assert_eq!(*ids, vec![1, 2, 3]);
                assert_eq!(effective_tau, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.len), (1, 1, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stale_epoch_store_is_rejected() {
        let cache = ResultCache::new(8);
        let key = CacheKey::Range { query: vec![4], tau: 1 };
        // A "worker" captures the epoch, then a mutation invalidates
        // before the store lands: the stale result must not be cached.
        let epoch = cache.epoch();
        cache.invalidate_all();
        cache.store_if_current(
            epoch,
            key.clone(),
            CachedResult::Range { ids: Arc::new(vec![1]), effective_tau: 1 },
        );
        assert!(cache.lookup(&key).is_none(), "stale store must be dropped");
        // With the current epoch the store lands.
        cache.store_if_current(
            cache.epoch(),
            key.clone(),
            CachedResult::Range { ids: Arc::new(vec![2]), effective_tau: 1 },
        );
        assert!(cache.lookup(&key).is_some());
    }

    #[test]
    fn invalidate_all_clears_and_counts() {
        let cache = ResultCache::new(8);
        let key = CacheKey::Range { query: vec![1], tau: 2 };
        cache.store(key.clone(), CachedResult::Range { ids: Arc::new(vec![9]), effective_tau: 2 });
        assert!(cache.lookup(&key).is_some());
        cache.invalidate_all();
        assert!(cache.lookup(&key).is_none(), "stale entry must be gone");
        let st = cache.stats();
        assert_eq!(st.invalidations, 1);
        assert_eq!(st.len, 0);
        // The cache keeps working after invalidation.
        cache.store(key.clone(), CachedResult::Range { ids: Arc::new(vec![3]), effective_tau: 2 });
        assert!(cache.lookup(&key).is_some());
    }

    #[test]
    fn distinct_taus_are_distinct_keys() {
        let cache = ResultCache::new(8);
        let k4 = CacheKey::Range { query: vec![7], tau: 4 };
        let k5 = CacheKey::Range { query: vec![7], tau: 5 };
        cache.store(k4.clone(), CachedResult::Range { ids: Arc::new(vec![1]), effective_tau: 4 });
        assert!(cache.lookup(&k5).is_none());
        assert!(cache.lookup(&k4).is_some());
    }
}

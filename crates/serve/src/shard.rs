//! Row-sharded GPH: scatter-gather over `S` independent engines.
//!
//! [`ShardedIndex`] splits a [`Dataset`] into `S` shards by a stable hash
//! of the record ID, builds one [`Gph`] engine per shard in parallel, and
//! answers queries by scattering to every shard and merging. Range search
//! merges trivially (shards partition the rows); top-k uses a two-phase
//! threshold-refinement pass (scatter a cheap per-shard top-k′ to bound
//! the global k-th distance, then range-refine at that bound) so results
//! are **identical** to a single engine over the unsharded data — the
//! shard-merge property test pins this down.

use gph::engine::{Gph, GphConfig, QueryStats};
use hamming_core::error::Result;
use hamming_core::key::mix64;
use hamming_core::Dataset;

/// Threaded scatter pays off only when each shard holds enough rows that
/// a per-shard probe outweighs spawning a thread; below this, queries
/// run the shards sequentially. (Lowered under `cfg(test)` so the unit
/// tests exercise both paths.)
#[cfg(not(test))]
const PAR_SCATTER_MIN_ROWS_PER_SHARD: usize = 4096;
#[cfg(test)]
const PAR_SCATTER_MIN_ROWS_PER_SHARD: usize = 64;

/// Per-record shard members for a fleet of `(len, n_shards)` — the pure
/// function of the stable id hash that build, snapshot, and restore all
/// derive the global-id maps from. Keeping it in one place is what lets
/// [`crate::snapshot`] recompute the assignment instead of storing it.
pub(crate) fn shard_members(len: usize, n_shards: usize) -> Vec<Vec<u32>> {
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    for id in 0..len {
        members[ShardedIndex::shard_of(id as u32, n_shards)].push(id as u32);
    }
    members
}

/// One shard: a full GPH engine over a row subset, plus the map from
/// shard-local IDs (the engine's `0..len`) back to global record IDs.
/// Crate-visible so [`crate::snapshot`] can persist and restore shards.
pub(crate) struct Shard {
    pub(crate) engine: Gph,
    pub(crate) global_ids: Vec<u32>,
}

/// A GPH index sharded by rows, queried scatter-gather.
pub struct ShardedIndex {
    /// Non-empty shards only; empty shards (more shards than rows) hold
    /// no records and are dropped at build time.
    pub(crate) shards: Vec<Shard>,
    pub(crate) n_shards: usize,
    pub(crate) len: usize,
    pub(crate) words_per_vec: usize,
    pub(crate) dim: usize,
    pub(crate) tau_max: usize,
}

/// Scatter-gather search output: merged global IDs plus one
/// [`QueryStats`] per (non-empty) shard, in shard order.
#[derive(Clone, Debug)]
pub struct ShardedSearchResult {
    /// Matching global record IDs, ascending.
    pub ids: Vec<u32>,
    /// Per-shard instrumentation from the scatter phase.
    pub shard_stats: Vec<QueryStats>,
}

impl ShardedIndex {
    /// Shard assignment: stable splitmix64 hash of the record ID. Stable
    /// across runs and independent of `Dataset` iteration order, so a
    /// record always lands on the same shard for a fixed shard count.
    #[inline]
    pub fn shard_of(id: u32, n_shards: usize) -> usize {
        (mix64(id as u64) % n_shards.max(1) as u64) as usize
    }

    /// Splits `data` into `n_shards` row shards and builds one engine per
    /// shard in parallel (one scoped thread per non-empty shard). Every
    /// engine shares `cfg`, so `tau_max` and the allocation machinery are
    /// uniform across shards.
    pub fn build(data: &Dataset, n_shards: usize, cfg: &GphConfig) -> Result<Self> {
        let n_shards = n_shards.max(1);
        let members = shard_members(data.len(), n_shards);
        let mut subsets: Vec<(Dataset, Vec<u32>)> = Vec::new();
        for ids in members.into_iter().filter(|m| !m.is_empty()) {
            let mut sub = Dataset::with_capacity(data.dim(), ids.len());
            for &id in &ids {
                sub.push_row_from(data, id as usize)?;
            }
            subsets.push((sub, ids));
        }
        let mut built: Vec<Result<Shard>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = subsets
                .into_iter()
                .map(|(sub, global_ids)| {
                    scope.spawn(move |_| {
                        Gph::build(sub, cfg).map(|engine| Shard { engine, global_ids })
                    })
                })
                .collect();
            built = handles
                .into_iter()
                .map(|h| h.join().expect("shard builders never panic"))
                .collect();
        })
        .expect("shard builders never panic");
        let shards = built.into_iter().collect::<Result<Vec<Shard>>>()?;
        Ok(ShardedIndex {
            shards,
            n_shards,
            len: data.len(),
            words_per_vec: data.words_per_vec(),
            dim: data.dim(),
            tau_max: cfg.tau_max,
        })
    }

    /// Requested shard count (including shards that received no rows).
    pub fn num_shards(&self) -> usize {
        self.n_shards
    }

    /// Total records indexed across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Largest threshold the engines serve.
    pub fn tau_max(&self) -> usize {
        self.tau_max
    }

    /// Rows per non-empty shard (build-balance diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.global_ids.len()).collect()
    }

    /// Summed heap size of all shard engines.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.engine.size_bytes()).sum()
    }

    /// All global IDs within `tau` of `query`, ascending — identical to a
    /// single engine over the unsharded data.
    pub fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).ids
    }

    /// Scatter-gather range search with per-shard instrumentation.
    pub fn search_with_stats(&self, query: &[u64], tau: u32) -> ShardedSearchResult {
        self.assert_query(query, tau as usize);
        let per_shard = self.scatter(|shard| {
            let res = shard.engine.search_with_stats(query, tau);
            let ids: Vec<u32> =
                res.ids.iter().map(|&local| shard.global_ids[local as usize]).collect();
            (ids, res.stats)
        });
        let mut ids: Vec<u32> = Vec::new();
        let mut shard_stats = Vec::with_capacity(per_shard.len());
        for (shard_ids, stats) in per_shard {
            ids.extend_from_slice(&shard_ids);
            shard_stats.push(stats);
        }
        // Shards hold disjoint row sets, so the gather is a sort, not a
        // dedup.
        ids.sort_unstable();
        ShardedSearchResult { ids, shard_stats }
    }

    /// The `k` nearest records by exact Hamming distance (ties broken by
    /// ID), considering records within `tau_max` — identical output to
    /// [`Gph::search_topk`] on the unsharded data.
    ///
    /// Two phases: (1) scatter a per-shard top-`⌈k/S⌉` to cheaply bound
    /// the global k-th distance `τ*`; (2) range-refine every shard at
    /// `τ*`, which provably covers the true top-k (each true member has
    /// distance ≤ true k-th ≤ `τ*`), then merge, sort by `(distance,
    /// id)`, and truncate.
    pub fn search_topk(&self, query: &[u64], k: usize) -> Vec<(u32, u32)> {
        self.search_topk_within(query, k, self.tau_max as u32)
    }

    /// [`ShardedIndex::search_topk`] with the escalation radius capped at
    /// `tau_cap ≤ tau_max` — identical to [`Gph::search_topk_within`] on
    /// the unsharded data. Admission control uses smaller caps as the
    /// degraded top-k mode.
    pub fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        self.assert_query(query, tau_cap as usize);
        if k == 0 || self.shards.is_empty() {
            return Vec::new();
        }
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            return shard
                .engine
                .search_topk_within(query, k, tau_cap)
                .into_iter()
                .map(|(local, d)| (shard.global_ids[local as usize], d))
                .collect();
        }

        // Phase 1: bound τ*. Each shard's local top-k′ is a subset of the
        // records, so the pool's k-th smallest distance is an upper bound
        // on the true k-th; with fewer than k pooled hits fall back to
        // tau_cap (the widest radius this search considers).
        let k_local = k.div_ceil(self.shards.len());
        let mut pool: Vec<(u32, u32)> = self
            .scatter(|shard| {
                shard
                    .engine
                    .search_topk_within(query, k_local, tau_cap)
                    .into_iter()
                    .map(|(local, d)| (shard.global_ids[local as usize], d))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        pool.sort_unstable_by_key(|&(id, d)| (d, id));
        let tau_star = if pool.len() >= k { pool[k - 1].1 } else { tau_cap };

        // Phase 2: exact refinement at τ*.
        let mut hits: Vec<(u32, u32)> = self
            .scatter(|shard| {
                shard
                    .engine
                    .search(query, tau_star)
                    .into_iter()
                    .map(|local| {
                        let d = shard.engine.data().distance_to(local as usize, query);
                        (shard.global_ids[local as usize], d)
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        hits.sort_unstable_by_key(|&(id, d)| (d, id));
        hits.truncate(k);
        hits
    }

    /// Summed per-shard cost estimate for `(query, tau)` — the admission
    /// controller's signal. Scatter-gather executes every shard, so the
    /// service pays the *sum* of the shard costs (the wall-clock is the
    /// max, but admission budgets total work).
    pub fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        self.assert_query(query, tau as usize);
        self.shards.iter().map(|s| s.engine.estimate_cost(query, tau)).sum()
    }

    fn assert_query(&self, query: &[u64], tau: usize) {
        assert!(tau <= self.tau_max, "tau {tau} exceeds the configured tau_max {}", self.tau_max);
        assert_eq!(query.len(), self.words_per_vec, "query width mismatch with indexed data");
    }

    /// Runs `f` on every shard (the scatter phase); results come back in
    /// shard order. Spawns one scoped thread per shard only when the
    /// shards are large enough that a per-shard search dwarfs thread
    /// start-up (~tens of µs); small shards run sequentially — in the
    /// service the worker pool already parallelizes across queries, so
    /// intra-query threads only pay off once per-shard work is
    /// substantial.
    fn scatter<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Shard) -> T + Sync,
    {
        if self.shards.len() <= 1 || self.len < PAR_SCATTER_MIN_ROWS_PER_SHARD * self.shards.len() {
            return self.shards.iter().map(&f).collect();
        }
        let mut out: Vec<T> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> =
                self.shards.iter().map(|shard| scope.spawn(|_| f(shard))).collect();
            out =
                handles.into_iter().map(|h| h.join().expect("shard workers never panic")).collect();
        })
        .expect("shard workers never panic");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gph::partition_opt::PartitionStrategy;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, p: f64, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(p)));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn test_cfg(m: usize, tau_max: usize) -> GphConfig {
        let mut cfg = GphConfig::new(m, tau_max);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 9 };
        cfg
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        for n_shards in 1..=8 {
            let mut counts = vec![0usize; n_shards];
            for id in 0..1000u32 {
                let s = ShardedIndex::shard_of(id, n_shards);
                assert_eq!(s, ShardedIndex::shard_of(id, n_shards));
                counts[s] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 1000);
            if n_shards > 1 {
                // splitmix64 spreads ids; no shard should be empty at
                // 1000 records over ≤ 8 shards.
                assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
            }
        }
    }

    #[test]
    fn sharded_range_search_matches_single_index() {
        let ds = random_dataset(64, 400, 0.4, 101);
        let cfg = test_cfg(4, 8);
        let single = Gph::build(ds.clone(), &cfg).unwrap();
        for n_shards in [1usize, 3, 4, 7] {
            let sharded = ShardedIndex::build(&ds, n_shards, &cfg).unwrap();
            assert_eq!(sharded.len(), ds.len());
            for qi in [0usize, 17, 255] {
                let q = ds.row(qi);
                for tau in [0u32, 3, 8] {
                    assert_eq!(
                        sharded.search(q, tau),
                        single.search(q, tau),
                        "n_shards={n_shards} qi={qi} tau={tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_single_index() {
        let ds = random_dataset(48, 300, 0.5, 102);
        let cfg = test_cfg(3, 12);
        let single = Gph::build(ds.clone(), &cfg).unwrap();
        for n_shards in [2usize, 5] {
            let sharded = ShardedIndex::build(&ds, n_shards, &cfg).unwrap();
            for qi in [1usize, 42] {
                let q = ds.row(qi);
                for k in [1usize, 4, 10, 50] {
                    assert_eq!(
                        sharded.search_topk(q, k),
                        single.search_topk(q, k),
                        "n_shards={n_shards} qi={qi} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_shards_than_rows() {
        let ds = random_dataset(32, 5, 0.5, 103);
        let cfg = test_cfg(2, 4);
        let sharded = ShardedIndex::build(&ds, 8, &cfg).unwrap();
        assert_eq!(sharded.num_shards(), 8);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 5);
        let single = Gph::build(ds.clone(), &cfg).unwrap();
        assert_eq!(sharded.search(ds.row(0), 4), single.search(ds.row(0), 4));
        assert_eq!(sharded.search_topk(ds.row(0), 3), single.search_topk(ds.row(0), 3));
    }

    #[test]
    fn empty_dataset_serves_empty_results() {
        let ds = Dataset::new(32);
        let sharded = ShardedIndex::build(&ds, 4, &test_cfg(2, 4)).unwrap();
        assert!(sharded.is_empty());
        let q = vec![0u64; 1];
        assert!(sharded.search(&q, 4).is_empty());
        assert!(sharded.search_topk(&q, 3).is_empty());
        assert_eq!(sharded.estimate_cost(&q, 4), 0.0);
    }

    #[test]
    fn estimate_cost_sums_shards() {
        let ds = random_dataset(64, 500, 0.35, 104);
        let cfg = test_cfg(4, 8);
        let sharded = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        let q = ds.row(0);
        let c = sharded.estimate_cost(q, 8);
        assert!(c.is_finite() && c >= 0.0);
        assert!(c >= sharded.estimate_cost(q, 2), "cost grows with tau");
    }
}

//! Row-sharded GPH: scatter-gather over `S` independent live-updatable
//! engines.
//!
//! [`ShardedIndex`] routes every record to one of `S` shards by a stable
//! hash of its ID and keeps one [`SegmentedGph`] per shard — so the fleet
//! serves `insert`/`delete`/`upsert` as well as queries. Each shard sits
//! behind its own `RwLock`: queries take shared locks (scatter still runs
//! shards concurrently), a mutation takes the write lock of exactly the
//! one shard that owns the ID. Range search merges trivially (shards
//! partition the live rows); top-k uses a two-phase threshold-refinement
//! pass (scatter a cheap per-shard top-k′ to bound the global k-th
//! distance, then range-refine at that bound) so results are
//! **identical** to a single engine over the surviving rows — the
//! shard-merge and mutation property tests pin this down.

use gph::coldstore::PageCacheStats;
use gph::engine::{GphConfig, QueryStats};
use gph::segment::{SegmentConfig, SegmentedGph};
use gph_obs::{QueryTrace, ShardTrace};
use hamming_core::error::{HammingError, Result};
use hamming_core::key::mix64;
use hamming_core::{words_for, Dataset};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Threaded scatter pays off only when each shard holds enough rows that
/// a per-shard probe outweighs spawning a thread; below this, queries
/// run the shards sequentially. (Lowered under `cfg(test)` so the unit
/// tests exercise both paths.)
#[cfg(not(test))]
const PAR_SCATTER_MIN_ROWS_PER_SHARD: usize = 4096;
#[cfg(test)]
const PAR_SCATTER_MIN_ROWS_PER_SHARD: usize = 64;

/// Per-record shard members for a fleet of `(len, n_shards)` — the pure
/// function of the stable id hash that bulk build derives its row routing
/// from (record id = row index at build time).
pub(crate) fn shard_members(len: usize, n_shards: usize) -> Vec<Vec<u32>> {
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    for id in 0..len {
        members[ShardedIndex::shard_of(id as u32, n_shards)].push(id as u32);
    }
    members
}

/// The exact top-k gather: merges per-source `(id, distance)` candidate
/// lists into the global top-`k` by `(distance, id)`. When the sources
/// partition the live rows (shards of one index, or node groups of a
/// fleet) and each list is its source's exact top-`k`, the merge is
/// provably the global top-`k`: every true member beats the global k-th
/// distance, so it beats its own source's k-th and appears in that
/// source's list. Both the in-process scatter-gather and the networked
/// `FleetClient` merge through this one function.
pub fn merge_topk<I>(lists: I, k: usize) -> Vec<(u32, u32)>
where
    I: IntoIterator<Item = Vec<(u32, u32)>>,
{
    let mut hits: Vec<(u32, u32)> = lists.into_iter().flatten().collect();
    hits.sort_unstable_by_key(|&(id, d)| (d, id));
    hits.truncate(k);
    hits
}

/// A GPH index sharded by record id, queried scatter-gather and mutated
/// one shard at a time.
pub struct ShardedIndex {
    /// One live-updatable engine per shard slot (empty slots hold empty
    /// engines so inserts can route anywhere).
    pub(crate) shards: Vec<RwLock<SegmentedGph>>,
    pub(crate) n_shards: usize,
    pub(crate) words_per_vec: usize,
    pub(crate) dim: usize,
    pub(crate) tau_max: usize,
    /// Live records, maintained by the mutation paths so `len()` (and
    /// the scatter-threading heuristic on every query) never has to
    /// take all `S` shard locks just to sum counts.
    live: AtomicUsize,
}

/// Scatter-gather search output: merged global IDs plus one aggregated
/// [`QueryStats`] per shard, in shard order.
#[derive(Clone, Debug)]
pub struct ShardedSearchResult {
    /// Matching global record IDs, ascending.
    pub ids: Vec<u32>,
    /// Per-shard instrumentation from the scatter phase (summed across
    /// each shard's segments).
    pub shard_stats: Vec<QueryStats>,
}

impl ShardedIndex {
    /// Shard assignment: stable splitmix64 hash of the record ID. Stable
    /// across runs and independent of insertion order, so a record always
    /// lands on the same shard for a fixed shard count.
    #[inline]
    pub fn shard_of(id: u32, n_shards: usize) -> usize {
        (mix64(id as u64) % n_shards.max(1) as u64) as usize
    }

    /// Splits `data` into `n_shards` shards (record id = row index) and
    /// bulk-builds one sealed [`SegmentedGph`] per shard in parallel.
    /// Every engine shares `cfg`, so `tau_max` and the allocation
    /// machinery are uniform across shards.
    pub fn build(data: &Dataset, n_shards: usize, cfg: &GphConfig) -> Result<Self> {
        Self::build_with_segments(data, n_shards, cfg, SegmentConfig::default())
    }

    /// [`ShardedIndex::build`] with explicit segment-lifecycle knobs
    /// (seal threshold and compaction fan-out) for the per-shard engines.
    pub fn build_with_segments(
        data: &Dataset,
        n_shards: usize,
        cfg: &GphConfig,
        seg_cfg: SegmentConfig,
    ) -> Result<Self> {
        let n_shards = n_shards.max(1);
        let members = shard_members(data.len(), n_shards);
        let mut subsets: Vec<(Dataset, Vec<u32>)> = Vec::with_capacity(n_shards);
        for ids in members {
            let mut sub = Dataset::with_capacity(data.dim(), ids.len());
            for &id in &ids {
                sub.push_row_from(data, id as usize)?;
            }
            subsets.push((sub, ids));
        }
        let mut built: Vec<Result<SegmentedGph>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = subsets
                .into_iter()
                .map(|(sub, global_ids)| {
                    scope.spawn(move |_| {
                        SegmentedGph::build_sealed(sub, global_ids, cfg.clone(), seg_cfg)
                    })
                })
                .collect();
            built = handles
                .into_iter()
                .map(|h| h.join().expect("shard builders never panic"))
                .collect();
        })
        .expect("shard builders never panic");
        let engines = built.into_iter().collect::<Result<Vec<_>>>()?;
        let live = engines.iter().map(SegmentedGph::len).sum();
        Ok(ShardedIndex {
            shards: engines.into_iter().map(RwLock::new).collect(),
            n_shards,
            words_per_vec: data.words_per_vec(),
            dim: data.dim(),
            tau_max: cfg.tau_max,
            live: AtomicUsize::new(live),
        })
    }

    /// Assembles an index from pre-built shard engines (the restore
    /// path). Engines must agree on dimensionality and `tau_max`.
    pub(crate) fn from_shards(shards: Vec<SegmentedGph>, dim: usize, tau_max: usize) -> Self {
        let n_shards = shards.len();
        let live = shards.iter().map(SegmentedGph::len).sum();
        ShardedIndex {
            shards: shards.into_iter().map(RwLock::new).collect(),
            n_shards,
            words_per_vec: words_for(dim),
            dim,
            tau_max,
            live: AtomicUsize::new(live),
        }
    }

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.n_shards
    }

    /// Live records across all shards (O(1): maintained by the mutation
    /// paths).
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Whether the index holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Largest threshold the engines serve.
    pub fn tau_max(&self) -> usize {
        self.tau_max
    }

    /// Live rows per shard slot.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }

    /// Sealed-segment counts per shard slot (compaction diagnostics).
    pub fn segment_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().num_sealed()).collect()
    }

    /// Summed heap size of all shard engines. Under
    /// [`gph::coldstore::StorageMode::FileBacked`] this excludes paged blob bytes, which
    /// [`ShardedIndex::page_cache_stats`] accounts separately.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.read().size_bytes()).sum()
    }

    /// Summed page-cache counters across all file-backed shards; `None`
    /// when every shard is fully resident.
    pub fn page_cache_stats(&self) -> Option<PageCacheStats> {
        let mut agg: Option<PageCacheStats> = None;
        for shard in &self.shards {
            if let Some(s) = shard.read().page_cache_stats() {
                let a = agg.get_or_insert_with(PageCacheStats::default);
                a.hits += s.hits;
                a.misses += s.misses;
                a.evictions += s.evictions;
                a.resident_bytes += s.resident_bytes;
            }
        }
        agg
    }

    /// Whether `id` is live.
    pub fn contains(&self, id: u32) -> bool {
        self.shards[Self::shard_of(id, self.n_shards)].read().contains(id)
    }

    // -----------------------------------------------------------------
    // Mutations
    // -----------------------------------------------------------------

    fn check_row(&self, row: &[u64]) -> Result<()> {
        if row.len() != self.words_per_vec {
            return Err(HammingError::InvalidParameter(format!(
                "row has {} words, {}-dimensional rows take {}",
                row.len(),
                self.dim,
                self.words_per_vec
            )));
        }
        Ok(())
    }

    /// Inserts `row` under `id` on its shard. Errors if `id` is live.
    pub fn insert(&self, id: u32, row: &[u64]) -> Result<()> {
        self.check_row(row)?;
        let mut engine = self.shards[Self::shard_of(id, self.n_shards)].write();
        // A failing seal still appends the row (the engine documents
        // this), so count from the engine's own delta, not the Result.
        let before = engine.len();
        let result = engine.insert(id, row);
        self.live.fetch_add(engine.len() - before, Ordering::Relaxed);
        result
    }

    /// Tombstones `id`; returns whether it was live.
    pub fn delete(&self, id: u32) -> bool {
        let was_live = self.shards[Self::shard_of(id, self.n_shards)].write().delete(id);
        if was_live {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
        was_live
    }

    /// Inserts `row` under `id`, replacing any live row with that id.
    /// Returns whether a replacement happened.
    pub fn upsert(&self, id: u32, row: &[u64]) -> Result<bool> {
        self.check_row(row)?;
        let mut engine = self.shards[Self::shard_of(id, self.n_shards)].write();
        let before = engine.len();
        let result = engine.upsert(id, row);
        let after = engine.len();
        if after >= before {
            self.live.fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.live.fetch_sub(before - after, Ordering::Relaxed);
        }
        result
    }

    /// Estimated cost of inserting `id` next (the owning shard's memtable
    /// append, plus a seal when one would trigger) — the admission
    /// controller's mutation-pricing signal.
    pub fn next_insert_cost(&self, id: u32) -> f64 {
        self.shards[Self::shard_of(id, self.n_shards)].read().next_insert_cost()
    }

    /// Estimated cost of deleting `id` (lookup + tombstone flip).
    pub fn delete_cost(&self, id: u32) -> f64 {
        self.shards[Self::shard_of(id, self.n_shards)].read().delete_cost()
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// All live global IDs within `tau` of `query`, ascending — identical
    /// to a single engine over the surviving rows.
    pub fn search(&self, query: &[u64], tau: u32) -> Vec<u32> {
        self.search_with_stats(query, tau).ids
    }

    /// Scatter-gather range search with per-shard instrumentation.
    pub fn search_with_stats(&self, query: &[u64], tau: u32) -> ShardedSearchResult {
        self.assert_query(query, tau as usize);
        let per_shard = self.scatter(|engine| engine.search_with_stats(query, tau));
        let mut ids: Vec<u32> = Vec::new();
        let mut shard_stats = Vec::with_capacity(per_shard.len());
        for (shard_ids, stats) in per_shard {
            ids.extend_from_slice(&shard_ids);
            shard_stats.push(stats);
        }
        // Shards hold disjoint id sets, so the gather is a sort, not a
        // dedup.
        ids.sort_unstable();
        ShardedSearchResult { ids, shard_stats }
    }

    /// [`ShardedIndex::search_with_stats`] plus a structured
    /// [`QueryTrace`]: per-phase wall time and counters for every
    /// segment of every shard, shard-local wall clocks, and the total
    /// scatter-gather wall clock. The untraced path is unchanged — this
    /// method exists so tracing costs nothing unless asked for.
    pub fn search_traced(&self, query: &[u64], tau: u32) -> (ShardedSearchResult, QueryTrace) {
        self.assert_query(query, tau as usize);
        let t0 = std::time::Instant::now();
        let per_shard = self.scatter(|engine| {
            let t = std::time::Instant::now();
            let mut segments = Vec::new();
            let (ids, stats) = engine.search_with_trace(query, tau, Some(&mut segments));
            (ids, stats, segments, t.elapsed().as_nanos() as u64)
        });
        let mut ids: Vec<u32> = Vec::new();
        let mut shard_stats = Vec::with_capacity(per_shard.len());
        let mut shards = Vec::with_capacity(per_shard.len());
        for (shard, (shard_ids, stats, segments, shard_ns)) in per_shard.into_iter().enumerate() {
            ids.extend_from_slice(&shard_ids);
            shard_stats.push(stats);
            shards.push(ShardTrace { shard: shard as u32, total_ns: shard_ns, segments });
        }
        ids.sort_unstable();
        let trace = QueryTrace {
            tau,
            total_ns: t0.elapsed().as_nanos() as u64,
            shards,
            ..QueryTrace::default()
        };
        (ShardedSearchResult { ids, shard_stats }, trace)
    }

    /// The `k` nearest live records by exact Hamming distance (ties
    /// broken by ID), considering records within `tau_max` — identical
    /// output to [`gph::Gph::search_topk`] on the surviving rows.
    ///
    /// Two phases: (1) scatter a per-shard top-`⌈k/S⌉` to cheaply bound
    /// the global k-th distance `τ*`; (2) range-refine every shard at
    /// `τ*`, which provably covers the true top-k (each true member has
    /// distance ≤ true k-th ≤ `τ*`), then merge, sort by `(distance,
    /// id)`, and truncate.
    pub fn search_topk(&self, query: &[u64], k: usize) -> Vec<(u32, u32)> {
        self.search_topk_within(query, k, self.tau_max as u32)
    }

    /// [`ShardedIndex::search_topk`] with the escalation radius capped at
    /// `tau_cap ≤ tau_max`. Admission control uses smaller caps as the
    /// degraded top-k mode.
    pub fn search_topk_within(&self, query: &[u64], k: usize, tau_cap: u32) -> Vec<(u32, u32)> {
        self.assert_query(query, tau_cap as usize);
        if k == 0 {
            return Vec::new();
        }
        if self.shards.len() == 1 {
            return self.shards[0].read().search_topk_within(query, k, tau_cap);
        }

        // Phase 1: bound τ*. Each shard's local top-k′ is a subset of the
        // live records, so the pool's k-th smallest distance is an upper
        // bound on the true k-th; with fewer than k pooled hits fall back
        // to tau_cap (the widest radius this search considers).
        let k_local = k.div_ceil(self.shards.len());
        let pool = merge_topk(self.scatter(|e| e.search_topk_within(query, k_local, tau_cap)), k);
        let tau_star = if pool.len() >= k { pool[k - 1].1 } else { tau_cap };

        // Phase 2: exact refinement at τ*.
        merge_topk(self.scatter(|engine| engine.search_with_distances(query, tau_star)), k)
    }

    /// Summed per-shard cost estimate for `(query, tau)` — the admission
    /// controller's signal. Scatter-gather executes every shard, so the
    /// service pays the *sum* of the shard costs (the wall-clock is the
    /// max, but admission budgets total work).
    pub fn estimate_cost(&self, query: &[u64], tau: u32) -> f64 {
        self.assert_query(query, tau as usize);
        self.shards.iter().map(|s| s.read().estimate_cost(query, tau)).sum()
    }

    fn assert_query(&self, query: &[u64], tau: usize) {
        assert!(tau <= self.tau_max, "tau {tau} exceeds the configured tau_max {}", self.tau_max);
        assert_eq!(query.len(), self.words_per_vec, "query width mismatch with indexed data");
    }

    /// Runs `f` on every shard under its read lock (the scatter phase);
    /// results come back in shard order. Spawns one scoped thread per
    /// shard only when the shards are large enough that a per-shard
    /// search dwarfs thread start-up (~tens of µs); small shards run
    /// sequentially — in the service the worker pool already parallelizes
    /// across queries, so intra-query threads only pay off once per-shard
    /// work is substantial.
    fn scatter<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&SegmentedGph) -> T + Sync,
    {
        if self.shards.len() <= 1 || self.len() < PAR_SCATTER_MIN_ROWS_PER_SHARD * self.shards.len()
        {
            return self.shards.iter().map(|s| f(&s.read())).collect();
        }
        let mut out: Vec<T> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> =
                self.shards.iter().map(|shard| scope.spawn(|_| f(&shard.read()))).collect();
            out =
                handles.into_iter().map(|h| h.join().expect("shard workers never panic")).collect();
        })
        .expect("shard workers never panic");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gph::engine::Gph;
    use gph::partition_opt::PartitionStrategy;
    use hamming_core::BitVector;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, p: f64, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(p)));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn test_cfg(m: usize, tau_max: usize) -> GphConfig {
        let mut cfg = GphConfig::new(m, tau_max);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 9 };
        cfg
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        for n_shards in 1..=8 {
            let mut counts = vec![0usize; n_shards];
            for id in 0..1000u32 {
                let s = ShardedIndex::shard_of(id, n_shards);
                assert_eq!(s, ShardedIndex::shard_of(id, n_shards));
                counts[s] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), 1000);
            if n_shards > 1 {
                // splitmix64 spreads ids; no shard should be empty at
                // 1000 records over ≤ 8 shards.
                assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
            }
        }
    }

    #[test]
    fn sharded_range_search_matches_single_index() {
        let ds = random_dataset(64, 400, 0.4, 101);
        let cfg = test_cfg(4, 8);
        let single = Gph::build(ds.clone(), &cfg).unwrap();
        for n_shards in [1usize, 3, 4, 7] {
            let sharded = ShardedIndex::build(&ds, n_shards, &cfg).unwrap();
            assert_eq!(sharded.len(), ds.len());
            for qi in [0usize, 17, 255] {
                let q = ds.row(qi);
                for tau in [0u32, 3, 8] {
                    assert_eq!(
                        sharded.search(q, tau),
                        single.search(q, tau),
                        "n_shards={n_shards} qi={qi} tau={tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_single_index() {
        let ds = random_dataset(48, 300, 0.5, 102);
        let cfg = test_cfg(3, 12);
        let single = Gph::build(ds.clone(), &cfg).unwrap();
        for n_shards in [2usize, 5] {
            let sharded = ShardedIndex::build(&ds, n_shards, &cfg).unwrap();
            for qi in [1usize, 42] {
                let q = ds.row(qi);
                for k in [1usize, 4, 10, 50] {
                    assert_eq!(
                        sharded.search_topk(q, k),
                        single.search_topk(q, k),
                        "n_shards={n_shards} qi={qi} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_shards_than_rows() {
        let ds = random_dataset(32, 5, 0.5, 103);
        let cfg = test_cfg(2, 4);
        let sharded = ShardedIndex::build(&ds, 8, &cfg).unwrap();
        assert_eq!(sharded.num_shards(), 8);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 5);
        let single = Gph::build(ds.clone(), &cfg).unwrap();
        assert_eq!(sharded.search(ds.row(0), 4), single.search(ds.row(0), 4));
        assert_eq!(sharded.search_topk(ds.row(0), 3), single.search_topk(ds.row(0), 3));
    }

    #[test]
    fn empty_dataset_serves_empty_results() {
        let ds = Dataset::new(32);
        let sharded = ShardedIndex::build(&ds, 4, &test_cfg(2, 4)).unwrap();
        assert!(sharded.is_empty());
        let q = vec![0u64; 1];
        assert!(sharded.search(&q, 4).is_empty());
        assert!(sharded.search_topk(&q, 3).is_empty());
        assert_eq!(sharded.estimate_cost(&q, 4), 0.0);
    }

    #[test]
    fn estimate_cost_sums_shards() {
        let ds = random_dataset(64, 500, 0.35, 104);
        let cfg = test_cfg(4, 8);
        let sharded = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        let q = ds.row(0);
        let c = sharded.estimate_cost(q, 8);
        assert!(c.is_finite() && c >= 0.0);
        assert!(c >= sharded.estimate_cost(q, 2), "cost grows with tau");
    }

    #[test]
    fn mutations_route_to_the_owning_shard() {
        let ds = random_dataset(48, 120, 0.5, 105);
        let cfg = test_cfg(3, 8);
        let sharded = ShardedIndex::build(&ds, 4, &cfg).unwrap();
        let fresh = random_dataset(48, 3, 0.5, 106);
        // Insert three new records past the dense prefix.
        for (i, id) in [500u32, 501, 502].iter().enumerate() {
            sharded.insert(*id, fresh.row(i)).unwrap();
        }
        assert_eq!(sharded.len(), 123);
        assert!(sharded.contains(501));
        assert!(sharded.search(fresh.row(1), 0).contains(&501));
        // Delete one original and one new record.
        assert!(sharded.delete(0));
        assert!(sharded.delete(502));
        assert!(!sharded.delete(502), "second delete is a no-op");
        assert_eq!(sharded.len(), 121);
        assert!(!sharded.search(ds.row(0), 0).contains(&0));
        // Upsert replaces in place.
        assert!(sharded.upsert(501, fresh.row(2)).unwrap());
        assert!(sharded.search(fresh.row(2), 0).contains(&501));
        // Width mismatches error before touching any shard.
        assert!(sharded.insert(900, &[0u64; 3]).is_err());
        assert!(sharded.upsert(900, &[0u64; 3]).is_err());
    }

    #[test]
    fn mutated_index_matches_fresh_single_engine() {
        let ds = random_dataset(48, 150, 0.45, 107);
        let cfg = test_cfg(3, 8);
        let sharded = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        // Delete a spread of ids, upsert a few, insert fresh ones.
        for id in [3u32, 50, 51, 149] {
            assert!(sharded.delete(id));
        }
        let extra = random_dataset(48, 4, 0.45, 108);
        sharded.upsert(10, extra.row(0)).unwrap();
        sharded.insert(300, extra.row(1)).unwrap();
        sharded.insert(301, extra.row(2)).unwrap();

        // Reference: a fresh engine over the surviving rows.
        let mut surviving = Vec::new();
        for id in 0..150u32 {
            if ![3u32, 50, 51, 149].contains(&id) {
                let row =
                    if id == 10 { extra.row(0).to_vec() } else { ds.row(id as usize).to_vec() };
                surviving.push((id, row));
            }
        }
        surviving.push((300, extra.row(1).to_vec()));
        surviving.push((301, extra.row(2).to_vec()));
        surviving.sort_by_key(|&(id, _)| id);
        let mut fresh_ds = Dataset::new(48);
        for (_, row) in &surviving {
            fresh_ds.push_row(row).unwrap();
        }
        let fresh = Gph::build(fresh_ds, &cfg).unwrap();
        let map: Vec<u32> = surviving.iter().map(|&(id, _)| id).collect();
        for qi in [0usize, 10, 77] {
            let q = ds.row(qi);
            for tau in [0u32, 4, 8] {
                let expect: Vec<u32> =
                    fresh.search(q, tau).into_iter().map(|l| map[l as usize]).collect();
                assert_eq!(sharded.search(q, tau), expect, "qi={qi} tau={tau}");
            }
            let expect_topk: Vec<(u32, u32)> =
                fresh.search_topk(q, 7).into_iter().map(|(l, d)| (map[l as usize], d)).collect();
            assert_eq!(sharded.search_topk(q, 7), expect_topk, "qi={qi} topk");
        }
    }

    #[test]
    fn mutation_costs_are_positive_and_seal_aware() {
        let ds = random_dataset(32, 40, 0.5, 109);
        let mut cfg = test_cfg(2, 4);
        cfg.strategy = PartitionStrategy::Original;
        let seg_cfg = SegmentConfig { seal_rows: 2, max_sealed: 4, ..SegmentConfig::default() };
        let sharded = ShardedIndex::build_with_segments(&ds, 2, &cfg, seg_cfg).unwrap();
        let id = 1000u32;
        let base = sharded.next_insert_cost(id);
        assert!(base > 0.0 && sharded.delete_cost(id) > 0.0);
        // Fill the owning shard's memtable to one row below the seal
        // threshold: the next insert must be priced at seal cost.
        let slot = ShardedIndex::shard_of(id, 2);
        let filler = (0..).map(|i| 2000 + i).find(|&i| ShardedIndex::shard_of(i, 2) == slot);
        sharded.insert(filler.unwrap(), ds.row(0)).unwrap();
        assert!(
            sharded.next_insert_cost(id) > base,
            "an insert that triggers a seal costs more than an append"
        );
    }
}

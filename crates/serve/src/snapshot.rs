//! Persistent sharded-index snapshots: a manifest plus one segmented
//! engine snapshot file per shard, so a serving fleet warm-starts by
//! reloading — never by re-running partition optimization.
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! <dir>/MANIFEST          GPHM container: fleet shape + per-shard entries
//! <dir>/shard-<slot>.gphs one SegmentedGph snapshot per non-empty slot
//! ```
//!
//! The manifest (format v2; v1 predates live updates and is rejected)
//! records the shard count, the id-hash fingerprint (a probe value
//! through [`mix64`], so a changed hash function is detected instead of
//! silently misrouting records), the build config (so restored shards
//! keep sealing and compacting with the same recipe), and for every
//! non-empty shard slot its file's CRC-32 and live-row count. Shard files
//! carry their ids and tombstones themselves — pending deletes
//! round-trip — and restore verifies that every live id actually hashes
//! to the slot that stored it. Shard files are section-framed and
//! checksummed (see [`gph::segment`]), so corruption anywhere surfaces
//! as [`HammingError::Corrupt`].

use crate::shard::ShardedIndex;
use bytes::BufMut;
use gph::coldstore::StorageMode;
use gph::segment::{SegmentConfig, SegmentedGph};
use gph::snapshot::{decode_gph_config, encode_gph_config};
use hamming_core::error::{HammingError, Result};
use hamming_core::io::{crc32, ByteReader, SectionReader, SectionWriter};
use hamming_core::key::mix64;
use std::path::{Path, PathBuf};

/// Magic of the shard-manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"GPHM";

/// Current manifest format version. Version 1 (frozen shards, dense ids)
/// is no longer readable: those fleets predate live updates and must be
/// rebuilt.
pub const MANIFEST_VERSION: u32 = 2;

/// File name of the manifest inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Fingerprint of the id-hash function: a fixed probe through the hash.
/// Recorded in every manifest and checked on restore, so changing
/// [`mix64`] (which would re-route every record) breaks loudly.
fn id_hash_fingerprint() -> u64 {
    mix64(0x6770_685F_7368_6172) // "gph_shar"
}

/// One shard's entry in a [`ShardManifest`].
#[derive(Clone, Debug)]
pub struct ShardEntry {
    /// Shard slot in `0..n_shards` (slots with no stored rows have no
    /// entry).
    pub slot: usize,
    /// Live records this shard holds.
    pub rows: usize,
    /// CRC-32 of the shard's snapshot file.
    pub crc: u32,
}

impl ShardEntry {
    /// File name of this shard's snapshot inside the directory.
    pub fn file_name(&self) -> String {
        format!("shard-{}.gphs", self.slot)
    }
}

/// The parsed manifest of a snapshot directory.
#[derive(Clone, Debug)]
pub struct ShardManifest {
    /// Shard count (including empty slots).
    pub n_shards: usize,
    /// Total live records across shards.
    pub len: usize,
    /// Dimensionality of the indexed vectors.
    pub dim: usize,
    /// Largest threshold the engines serve.
    pub tau_max: usize,
    /// Shards with stored rows, ascending by slot.
    pub shards: Vec<ShardEntry>,
}

fn encode_manifest(m: &ShardManifest, cfg: &gph::GphConfig, seg_cfg: SegmentConfig) -> Vec<u8> {
    let mut body = Vec::with_capacity(48 + m.shards.len() * 20);
    body.put_u64_le(m.n_shards as u64);
    body.put_u64_le(m.len as u64);
    body.put_u64_le(m.dim as u64);
    body.put_u64_le(m.tau_max as u64);
    body.put_u64_le(id_hash_fingerprint());
    body.put_u64_le(m.shards.len() as u64);
    for e in &m.shards {
        body.put_u64_le(e.slot as u64);
        body.put_u64_le(e.rows as u64);
        body.put_u32_le(e.crc);
    }
    let mut w = SectionWriter::new(MANIFEST_MAGIC, MANIFEST_VERSION);
    w.section("shards", &body);
    // The build recipe for empty slots (non-empty slots carry their own
    // config inside the shard file).
    let mut cfg_body = encode_gph_config(cfg);
    cfg_body.put_u64_le(seg_cfg.seal_rows as u64);
    cfg_body.put_u64_le(seg_cfg.max_sealed as u64);
    w.section("config", &cfg_body);
    w.finish()
}

/// Caps on the manifest's self-declared shape. Record IDs are `u32`
/// throughout the stack, and a fleet of more than ~a million shard
/// slots is nonsense; validating both before any per-slot allocation
/// keeps a forged or CRC-colliding manifest from driving huge
/// allocations — the same guard `decode_partitioning` applies to its
/// header fields.
const MAX_SHARD_SLOTS: u64 = 1 << 20;

fn decode_manifest(bytes: &[u8]) -> Result<(ShardManifest, gph::GphConfig, SegmentConfig)> {
    let sections = SectionReader::parse(MANIFEST_MAGIC, MANIFEST_VERSION, bytes)?;
    if sections.version() < 2 {
        return Err(HammingError::Corrupt(
            "manifest version 1 predates live updates; rebuild the snapshot".into(),
        ));
    }
    let mut r = ByteReader::new(sections.section("shards")?);
    let n_shards_raw = r.u64("shard count")?;
    if n_shards_raw == 0 || n_shards_raw > MAX_SHARD_SLOTS {
        return Err(HammingError::Corrupt(format!(
            "manifest declares {n_shards_raw} shard slots (supported: 1..={MAX_SHARD_SLOTS})"
        )));
    }
    let n_shards = n_shards_raw as usize;
    let len_raw = r.u64("record count")?;
    if len_raw > u32::MAX as u64 {
        return Err(HammingError::Corrupt(format!(
            "manifest declares {len_raw} records; ids are u32"
        )));
    }
    let len = len_raw as usize;
    let dim = r.u64("dimensionality")? as usize;
    let tau_max = r.u64("tau_max")? as usize;
    let fingerprint = r.u64("id-hash fingerprint")?;
    if fingerprint != id_hash_fingerprint() {
        return Err(HammingError::Corrupt(format!(
            "id-hash fingerprint {fingerprint:#x} does not match this build \
             ({:#x}); records would be routed to different shards",
            id_hash_fingerprint()
        )));
    }
    let n_entries = r.len(20, "shard entry count")?;
    let mut shards = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let slot = r.u64("shard slot")? as usize;
        if slot >= n_shards {
            return Err(HammingError::Corrupt(format!(
                "shard slot {slot} out of range for {n_shards} shards"
            )));
        }
        if shards.last().is_some_and(|prev: &ShardEntry| prev.slot >= slot) {
            return Err(HammingError::Corrupt("shard slots not strictly ascending".into()));
        }
        let rows = r.u64("shard rows")? as usize;
        let crc = r.u32("shard file crc")?;
        shards.push(ShardEntry { slot, rows, crc });
    }
    r.finish("shard manifest")?;
    // Checked sum: wrap-around in release builds would let two absurd
    // row counts cancel out and satisfy the equality.
    let total = shards
        .iter()
        .try_fold(0usize, |acc, e| acc.checked_add(e.rows))
        .filter(|&t| t == len)
        .ok_or_else(|| {
            HammingError::Corrupt(format!("shard rows do not sum to the declared {len} records"))
        })?;
    debug_assert_eq!(total, len);
    let cfg_bytes = sections.section("config")?;
    if cfg_bytes.len() < 16 {
        return Err(HammingError::Corrupt("manifest config section truncated".into()));
    }
    let (gph_cfg_bytes, tail) = cfg_bytes.split_at(cfg_bytes.len() - 16);
    let cfg = decode_gph_config(gph_cfg_bytes)?;
    let mut tr = ByteReader::new(tail);
    let seal_rows = tr.u64("seal_rows")? as usize;
    let max_sealed = tr.u64("max_sealed")? as usize;
    if seal_rows == 0 || max_sealed == 0 {
        return Err(HammingError::Corrupt("zero segment-lifecycle knobs".into()));
    }
    let seg_cfg = SegmentConfig { seal_rows, max_sealed, ..SegmentConfig::default() };
    Ok((ShardManifest { n_shards, len, dim, tau_max, shards }, cfg, seg_cfg))
}

/// Reads and validates the manifest of a snapshot directory (without
/// loading any shard engines) — what `gph-store info` prints.
pub fn read_manifest<P: AsRef<Path>>(dir: P) -> Result<ShardManifest> {
    decode_manifest(&std::fs::read(dir.as_ref().join(MANIFEST_FILE))?).map(|(m, _, _)| m)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

impl ShardedIndex {
    /// Persists the index into `dir` (created if missing): one
    /// checksummed segmented snapshot per shard slot with stored rows
    /// (pending tombstones included) plus the `MANIFEST`, written last
    /// and atomically so a crashed snapshot never yields a directory
    /// that restores partially.
    pub fn snapshot<P: AsRef<Path>>(&self, dir: P) -> Result<ShardManifest> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut entries = Vec::new();
        let mut cfg: Option<(gph::GphConfig, SegmentConfig)> = None;
        for (slot, shard) in self.shards.iter().enumerate() {
            let engine = shard.read();
            if cfg.is_none() {
                cfg = Some((engine.config().clone(), engine.segment_config()));
            }
            if engine.stored_rows() == 0 {
                continue;
            }
            let bytes = engine.to_bytes();
            let entry = ShardEntry { slot, rows: engine.len(), crc: crc32(&bytes) };
            write_atomic(&dir.join(entry.file_name()), &bytes)?;
            entries.push(entry);
        }
        let (cfg, seg_cfg) = cfg.expect("a sharded index always has at least one shard");
        let manifest = ShardManifest {
            n_shards: self.n_shards,
            len: entries.iter().map(|e| e.rows).sum(),
            dim: self.dim,
            tau_max: self.tau_max,
            shards: entries,
        };
        write_atomic(&dir.join(MANIFEST_FILE), &encode_manifest(&manifest, &cfg, seg_cfg))?;
        Ok(manifest)
    }

    /// Restores a sharded index from a [`ShardedIndex::snapshot`]
    /// directory: validates the manifest (shard count, id-hash
    /// fingerprint, per-file checksums), reloads all shard engines in
    /// parallel — no partition optimization, index build, or estimator
    /// training runs — and verifies every live id hashes to the slot
    /// that stored it. Slots without a file come back as empty engines
    /// ready to accept inserts.
    pub fn restore<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Self::restore_with_storage(dir, StorageMode::Resident)
    }

    /// [`ShardedIndex::restore`] with an explicit [`StorageMode`].
    ///
    /// With [`StorageMode::FileBacked`] the shard files are *mapped*,
    /// not read: each shard validates its snapshot's footer and metadata
    /// checksums, then serves sealed segments by paging blocks from the
    /// file on demand. Restore time and resident memory stay near
    /// constant in corpus size; the budget is split evenly across shard
    /// slots (each shard caps its own page cache at `budget / n_shards`).
    /// The manifest's whole-file CRC is deliberately *not* recomputed on
    /// this path — doing so would read every byte and defeat the lazy
    /// mapping; payload pages are instead covered by the per-section
    /// checksums described in `FORMAT.md`. The storage mode is a runtime
    /// policy, never persisted: the same directory restores either way.
    pub fn restore_with_storage<P: AsRef<Path>>(dir: P, storage: StorageMode) -> Result<Self> {
        let dir = dir.as_ref();
        let (manifest, cfg, seg_cfg) = decode_manifest(&std::fs::read(dir.join(MANIFEST_FILE))?)?;
        let shard_mode = split_budget(storage, manifest.n_shards);
        let seg_cfg = SegmentConfig { storage: shard_mode, ..seg_cfg };
        let mut loaded: Vec<Result<SegmentedGph>> = Vec::new();
        let manifest_ref = &manifest;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..manifest_ref.n_shards)
                .map(|slot| {
                    let entry = manifest_ref.shards.iter().find(|e| e.slot == slot);
                    let cfg = &cfg;
                    scope.spawn(move |_| match entry {
                        Some(entry) => {
                            let path: PathBuf = dir.join(entry.file_name());
                            load_shard(&path, entry, manifest_ref, shard_mode)
                        }
                        None => SegmentedGph::new(manifest_ref.dim, cfg.clone(), seg_cfg),
                    })
                })
                .collect();
            loaded =
                handles.into_iter().map(|h| h.join().expect("shard loaders never panic")).collect();
        })
        .expect("shard loaders never panic");
        let shards = loaded.into_iter().collect::<Result<Vec<SegmentedGph>>>()?;
        for (slot, engine) in shards.iter().enumerate() {
            for id in engine.live_ids() {
                if ShardedIndex::shard_of(id, manifest.n_shards) != slot {
                    return Err(HammingError::Corrupt(format!(
                        "id {id} stored in shard slot {slot} but hashes to slot {}",
                        ShardedIndex::shard_of(id, manifest.n_shards)
                    )));
                }
            }
        }
        Ok(ShardedIndex::from_shards(shards, manifest.dim, manifest.tau_max))
    }
}

/// Splits a fleet-wide page-cache budget into a per-shard mode. Every
/// shard owns its own cache (shards are independently locked), so the
/// fleet's total stays at the configured budget.
fn split_budget(storage: StorageMode, n_shards: usize) -> StorageMode {
    match storage {
        StorageMode::Resident => StorageMode::Resident,
        StorageMode::FileBacked { budget_bytes } => {
            StorageMode::FileBacked { budget_bytes: (budget_bytes / n_shards.max(1) as u64).max(1) }
        }
    }
}

fn load_shard(
    path: &Path,
    entry: &ShardEntry,
    manifest: &ShardManifest,
    storage: StorageMode,
) -> Result<SegmentedGph> {
    let engine = match storage {
        StorageMode::Resident => {
            let bytes = std::fs::read(path)?;
            if crc32(&bytes) != entry.crc {
                return Err(HammingError::Corrupt(format!(
                    "checksum mismatch for {}",
                    entry.file_name()
                )));
            }
            SegmentedGph::from_bytes(&bytes)?
        }
        // File-backed restore maps the snapshot instead of reading it;
        // section checksums replace the whole-file CRC (see
        // `restore_with_storage`).
        StorageMode::FileBacked { .. } => SegmentedGph::load_with_storage(path, storage)?,
    };
    if engine.len() != entry.rows {
        return Err(HammingError::Corrupt(format!(
            "{} holds {} live rows, manifest says {}",
            entry.file_name(),
            engine.len(),
            entry.rows
        )));
    }
    if engine.dim() != manifest.dim {
        return Err(HammingError::Corrupt(format!(
            "{} indexes {}-dimensional vectors, manifest says {}",
            entry.file_name(),
            engine.dim(),
            manifest.dim
        )));
    }
    if engine.tau_max() != manifest.tau_max {
        return Err(HammingError::Corrupt(format!(
            "{} serves tau_max {}, manifest says {}",
            entry.file_name(),
            engine.tau_max(),
            manifest.tau_max
        )));
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gph::engine::GphConfig;
    use gph::partition_opt::PartitionStrategy;
    use hamming_core::{BitVector, Dataset};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4)));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gph_serve_snapshot_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn snapshot_restore_roundtrip_is_query_identical() {
        let ds = random_dataset(64, 250, 301);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 4 };
        let built = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        let dir = tmp_dir("roundtrip");
        let manifest = built.snapshot(&dir).unwrap();
        assert_eq!(manifest.n_shards, 3);
        assert_eq!(manifest.len, 250);
        let restored = ShardedIndex::restore(&dir).unwrap();
        assert_eq!(restored.num_shards(), built.num_shards());
        assert_eq!(restored.shard_sizes(), built.shard_sizes());
        for qi in [0usize, 17, 101] {
            let q = ds.row(qi);
            for tau in [0u32, 4, 8] {
                assert_eq!(restored.search(q, tau), built.search(q, tau), "qi={qi} tau={tau}");
            }
            assert_eq!(restored.search_topk(q, 7), built.search_topk(q, 7), "qi={qi}");
            assert_eq!(restored.estimate_cost(q, 8), built.estimate_cost(q, 8), "qi={qi}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrips_pending_mutations() {
        let ds = random_dataset(48, 120, 305);
        let mut cfg = GphConfig::new(3, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 6 };
        let built = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        // Mutate: tombstones stay pending (no compaction forced).
        let extra = random_dataset(48, 3, 306);
        for id in [5u32, 60, 119] {
            assert!(built.delete(id));
        }
        built.insert(400, extra.row(0)).unwrap();
        built.upsert(10, extra.row(1)).unwrap();
        let dir = tmp_dir("pending");
        let manifest = built.snapshot(&dir).unwrap();
        assert_eq!(manifest.len, built.len());
        let restored = ShardedIndex::restore(&dir).unwrap();
        assert_eq!(restored.len(), built.len());
        for qi in [0usize, 10, 60] {
            let q = ds.row(qi);
            assert_eq!(restored.search(q, 8), built.search(q, 8), "qi={qi}");
        }
        // Mutations continue identically after restore.
        restored.insert(500, extra.row(2)).unwrap();
        built.insert(500, extra.row(2)).unwrap();
        assert_eq!(restored.search(extra.row(2), 2), built.search(extra.row(2), 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backed_restore_is_query_identical_and_pages_on_demand() {
        let ds = random_dataset(64, 220, 309);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 9 };
        let built = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        let dir = tmp_dir("file_backed");
        built.snapshot(&dir).unwrap();
        let resident = ShardedIndex::restore(&dir).unwrap();
        let cold = ShardedIndex::restore_with_storage(
            &dir,
            StorageMode::FileBacked { budget_bytes: 64 * 1024 },
        )
        .unwrap();
        assert_eq!(cold.len(), resident.len());
        // Restore mapped the shard files without touching payloads.
        let fresh = cold.page_cache_stats().expect("file-backed shards report cache stats");
        assert_eq!(fresh.resident_bytes, 0, "restore reads no payload pages");
        assert!(resident.page_cache_stats().is_none(), "resident fleets have no page cache");
        for qi in [0usize, 33, 150] {
            let q = ds.row(qi);
            for tau in [0u32, 4, 8] {
                assert_eq!(cold.search(q, tau), resident.search(q, tau), "qi={qi} tau={tau}");
            }
            assert_eq!(cold.search_topk(q, 5), resident.search_topk(q, 5), "qi={qi}");
        }
        let used = cold.page_cache_stats().unwrap();
        assert!(used.hits + used.misses > 0, "queries page through the cache");
        // Mutations keep matching after a file-backed restore.
        let extra = random_dataset(64, 2, 310);
        cold.insert(900, extra.row(0)).unwrap();
        resident.insert(900, extra.row(0)).unwrap();
        assert_eq!(cold.delete(5), resident.delete(5));
        assert_eq!(cold.search(extra.row(0), 2), resident.search(extra.row(0), 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_corrupt_shard_file() {
        let ds = random_dataset(32, 60, 302);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 2, &cfg).unwrap();
        let dir = tmp_dir("corrupt_shard");
        let manifest = built.snapshot(&dir).unwrap();
        let victim = dir.join(manifest.shards[0].file_name());
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        match ShardedIndex::restore(&dir) {
            Err(HammingError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("corrupt shard restored"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_corrupt_manifest_and_missing_files() {
        let ds = random_dataset(32, 50, 303);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 2, &cfg).unwrap();
        let dir = tmp_dir("corrupt_manifest");
        let manifest = built.snapshot(&dir).unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&mpath).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&mpath, &bytes).unwrap();
        assert!(matches!(ShardedIndex::restore(&dir), Err(HammingError::Corrupt(_))));
        // Restore the good manifest but delete a shard file.
        built.snapshot(&dir).unwrap();
        std::fs::remove_file(dir.join(manifest.shards[1].file_name())).unwrap();
        assert!(ShardedIndex::restore(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrips_with_empty_slots() {
        // More shards than rows leaves empty slots with no files; they
        // restore as empty engines that accept inserts.
        let ds = random_dataset(32, 5, 304);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 8, &cfg).unwrap();
        let dir = tmp_dir("sparse");
        let manifest = built.snapshot(&dir).unwrap();
        assert!(manifest.shards.len() < 8);
        let restored = ShardedIndex::restore(&dir).unwrap();
        assert_eq!(restored.num_shards(), 8);
        assert_eq!(restored.search(ds.row(0), 4), built.search(ds.row(0), 4));
        // An insert routed to a previously empty slot works.
        let extra = random_dataset(32, 40, 307);
        for id in 100..140u32 {
            restored.insert(id, extra.row((id - 100) as usize)).unwrap();
        }
        assert_eq!(restored.len(), 45);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_misrouted_ids() {
        // A shard file moved to the wrong slot passes its own CRC but
        // must fail the id-routing check.
        let ds = random_dataset(32, 60, 308);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 2, &cfg).unwrap();
        let dir = tmp_dir("misrouted");
        let manifest = built.snapshot(&dir).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        // Swap the two shard files and patch the manifest CRCs/rows to
        // match, leaving ids in slots they do not hash to.
        let a = std::fs::read(dir.join(manifest.shards[0].file_name())).unwrap();
        let b = std::fs::read(dir.join(manifest.shards[1].file_name())).unwrap();
        std::fs::write(dir.join(manifest.shards[0].file_name()), &b).unwrap();
        std::fs::write(dir.join(manifest.shards[1].file_name()), &a).unwrap();
        let mut swapped = manifest.clone();
        swapped.shards[0].crc = crc32(&b);
        swapped.shards[1].crc = crc32(&a);
        let rows0 = swapped.shards[0].rows;
        swapped.shards[0].rows = swapped.shards[1].rows;
        swapped.shards[1].rows = rows0;
        let engine0 = built.shards[0].read();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            encode_manifest(&swapped, engine0.config(), engine0.segment_config()),
        )
        .unwrap();
        match ShardedIndex::restore(&dir) {
            Err(HammingError::Corrupt(msg)) => assert!(msg.contains("hashes to"), "{msg}"),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("misrouted ids restored"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Persistent sharded-index snapshots: a manifest plus one engine
//! snapshot file per shard, so a serving fleet warm-starts by reloading
//! — never by re-running partition optimization.
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! <dir>/MANIFEST          GPHM container: fleet shape + per-shard entries
//! <dir>/shard-<slot>.gphe one Gph snapshot per non-empty shard slot
//! ```
//!
//! The manifest records the shard count, the id-hash fingerprint (a probe
//! value through [`mix64`], so a changed hash function is detected
//! instead of silently misrouting records), and for every non-empty
//! shard slot its file's CRC-32 and row count. Restore recomputes each
//! record's shard assignment from `(len, n_shards)` — the assignment is a
//! pure function of the global ID — verifies it against the manifest,
//! and reloads all shard engines in parallel. Shard files are themselves
//! section-framed and checksummed (see [`gph::snapshot`]), so corruption
//! anywhere surfaces as [`HammingError::Corrupt`].

use crate::shard::{shard_members, Shard, ShardedIndex};
use bytes::BufMut;
use gph::engine::Gph;
use hamming_core::error::{HammingError, Result};
use hamming_core::io::{crc32, ByteReader, SectionReader, SectionWriter};
use hamming_core::key::mix64;
use hamming_core::words_for;
use std::path::{Path, PathBuf};

/// Magic of the shard-manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"GPHM";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Fingerprint of the id-hash function: a fixed probe through the hash.
/// Recorded in every manifest and checked on restore, so changing
/// [`mix64`] (which would re-route every record) breaks loudly.
fn id_hash_fingerprint() -> u64 {
    mix64(0x6770_685F_7368_6172) // "gph_shar"
}

/// One shard's entry in a [`ShardManifest`].
#[derive(Clone, Debug)]
pub struct ShardEntry {
    /// Shard slot in `0..n_shards` (empty slots have no entry).
    pub slot: usize,
    /// Records this shard holds.
    pub rows: usize,
    /// CRC-32 of the shard's snapshot file.
    pub crc: u32,
}

impl ShardEntry {
    /// File name of this shard's snapshot inside the directory.
    pub fn file_name(&self) -> String {
        format!("shard-{}.gphe", self.slot)
    }
}

/// The parsed manifest of a snapshot directory.
#[derive(Clone, Debug)]
pub struct ShardManifest {
    /// Requested shard count (including empty slots).
    pub n_shards: usize,
    /// Total records across shards.
    pub len: usize,
    /// Dimensionality of the indexed vectors.
    pub dim: usize,
    /// Largest threshold the engines serve.
    pub tau_max: usize,
    /// Non-empty shards, ascending by slot.
    pub shards: Vec<ShardEntry>,
}

fn encode_manifest(m: &ShardManifest) -> Vec<u8> {
    let mut body = Vec::with_capacity(48 + m.shards.len() * 20);
    body.put_u64_le(m.n_shards as u64);
    body.put_u64_le(m.len as u64);
    body.put_u64_le(m.dim as u64);
    body.put_u64_le(m.tau_max as u64);
    body.put_u64_le(id_hash_fingerprint());
    body.put_u64_le(m.shards.len() as u64);
    for e in &m.shards {
        body.put_u64_le(e.slot as u64);
        body.put_u64_le(e.rows as u64);
        body.put_u32_le(e.crc);
    }
    let mut w = SectionWriter::new(MANIFEST_MAGIC, MANIFEST_VERSION);
    w.section("shards", &body);
    w.finish()
}

/// Caps on the manifest's self-declared shape. Record IDs are `u32`
/// throughout the stack, and a fleet of more than ~a million shard
/// slots is nonsense; validating both before [`shard_members`] runs
/// keeps a forged or CRC-colliding manifest from driving huge
/// allocations — the same guard `decode_partitioning` applies to its
/// header fields.
const MAX_SHARD_SLOTS: u64 = 1 << 20;

fn decode_manifest(bytes: &[u8]) -> Result<ShardManifest> {
    let sections = SectionReader::parse(MANIFEST_MAGIC, MANIFEST_VERSION, bytes)?;
    let mut r = ByteReader::new(sections.section("shards")?);
    let n_shards_raw = r.u64("shard count")?;
    if n_shards_raw == 0 || n_shards_raw > MAX_SHARD_SLOTS {
        return Err(HammingError::Corrupt(format!(
            "manifest declares {n_shards_raw} shard slots (supported: 1..={MAX_SHARD_SLOTS})"
        )));
    }
    let n_shards = n_shards_raw as usize;
    let len_raw = r.u64("record count")?;
    if len_raw > u32::MAX as u64 {
        return Err(HammingError::Corrupt(format!(
            "manifest declares {len_raw} records; ids are u32"
        )));
    }
    let len = len_raw as usize;
    let dim = r.u64("dimensionality")? as usize;
    let tau_max = r.u64("tau_max")? as usize;
    let fingerprint = r.u64("id-hash fingerprint")?;
    if fingerprint != id_hash_fingerprint() {
        return Err(HammingError::Corrupt(format!(
            "id-hash fingerprint {fingerprint:#x} does not match this build \
             ({:#x}); records would be routed to different shards",
            id_hash_fingerprint()
        )));
    }
    let n_entries = r.len(20, "shard entry count")?;
    let mut shards = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let slot = r.u64("shard slot")? as usize;
        if slot >= n_shards {
            return Err(HammingError::Corrupt(format!(
                "shard slot {slot} out of range for {n_shards} shards"
            )));
        }
        if shards.last().is_some_and(|prev: &ShardEntry| prev.slot >= slot) {
            return Err(HammingError::Corrupt("shard slots not strictly ascending".into()));
        }
        let rows = r.u64("shard rows")? as usize;
        let crc = r.u32("shard file crc")?;
        shards.push(ShardEntry { slot, rows, crc });
    }
    r.finish("shard manifest")?;
    // Checked sum: wrap-around in release builds would let two absurd
    // row counts cancel out and satisfy the equality.
    let total = shards
        .iter()
        .try_fold(0usize, |acc, e| acc.checked_add(e.rows))
        .filter(|&t| t == len)
        .ok_or_else(|| {
            HammingError::Corrupt(format!("shard rows do not sum to the declared {len} records"))
        })?;
    debug_assert_eq!(total, len);
    Ok(ShardManifest { n_shards, len, dim, tau_max, shards })
}

/// Reads and validates the manifest of a snapshot directory (without
/// loading any shard engines) — what `gph-store info` prints.
pub fn read_manifest<P: AsRef<Path>>(dir: P) -> Result<ShardManifest> {
    decode_manifest(&std::fs::read(dir.as_ref().join(MANIFEST_FILE))?)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

impl ShardedIndex {
    /// Persists the index into `dir` (created if missing): one
    /// checksummed engine snapshot per non-empty shard plus the
    /// `MANIFEST`, written last and atomically so a crashed snapshot
    /// never yields a directory that restores partially.
    pub fn snapshot<P: AsRef<Path>>(&self, dir: P) -> Result<ShardManifest> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        // Non-empty shards appear in slot order at build time; recompute
        // the slots the same way to label the files.
        let members = shard_members(self.len, self.n_shards);
        let slots: Vec<usize> = (0..self.n_shards).filter(|&s| !members[s].is_empty()).collect();
        debug_assert_eq!(slots.len(), self.shards.len());
        let mut entries = Vec::with_capacity(self.shards.len());
        for (shard, &slot) in self.shards.iter().zip(&slots) {
            let bytes = shard.engine.to_bytes();
            let entry = ShardEntry { slot, rows: shard.global_ids.len(), crc: crc32(&bytes) };
            write_atomic(&dir.join(entry.file_name()), &bytes)?;
            entries.push(entry);
        }
        let manifest = ShardManifest {
            n_shards: self.n_shards,
            len: self.len,
            dim: self.dim,
            tau_max: self.tau_max,
            shards: entries,
        };
        write_atomic(&dir.join(MANIFEST_FILE), &encode_manifest(&manifest))?;
        Ok(manifest)
    }

    /// Restores a sharded index from a [`ShardedIndex::snapshot`]
    /// directory: validates the manifest (shard count, id-hash
    /// fingerprint, per-file checksums), recomputes every record's shard
    /// assignment, and reloads all shard engines in parallel — no
    /// partition optimization, index build, or estimator training runs.
    pub fn restore<P: AsRef<Path>>(dir: P) -> Result<Self> {
        let dir = dir.as_ref();
        let manifest = read_manifest(dir)?;
        let members = shard_members(manifest.len, manifest.n_shards);
        let expected: Vec<usize> =
            (0..manifest.n_shards).filter(|&s| !members[s].is_empty()).collect();
        let got: Vec<usize> = manifest.shards.iter().map(|e| e.slot).collect();
        if expected != got {
            return Err(HammingError::Corrupt(format!(
                "manifest shard slots {got:?} do not match the assignment {expected:?}"
            )));
        }
        let mut loaded: Vec<Result<Shard>> = Vec::new();
        let manifest_ref = &manifest;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = manifest_ref
                .shards
                .iter()
                .map(|entry| {
                    let path: PathBuf = dir.join(entry.file_name());
                    let global_ids = members[entry.slot].clone();
                    scope.spawn(move |_| load_shard(&path, entry, manifest_ref, global_ids))
                })
                .collect();
            loaded =
                handles.into_iter().map(|h| h.join().expect("shard loaders never panic")).collect();
        })
        .expect("shard loaders never panic");
        let shards = loaded.into_iter().collect::<Result<Vec<Shard>>>()?;
        Ok(ShardedIndex {
            shards,
            n_shards: manifest.n_shards,
            len: manifest.len,
            words_per_vec: words_for(manifest.dim),
            dim: manifest.dim,
            tau_max: manifest.tau_max,
        })
    }
}

fn load_shard(
    path: &Path,
    entry: &ShardEntry,
    manifest: &ShardManifest,
    global_ids: Vec<u32>,
) -> Result<Shard> {
    let bytes = std::fs::read(path)?;
    if crc32(&bytes) != entry.crc {
        return Err(HammingError::Corrupt(format!("checksum mismatch for {}", entry.file_name())));
    }
    let engine = Gph::from_bytes(&bytes)?;
    if engine.data().len() != entry.rows || global_ids.len() != entry.rows {
        return Err(HammingError::Corrupt(format!(
            "{} holds {} rows, manifest says {}",
            entry.file_name(),
            engine.data().len(),
            entry.rows
        )));
    }
    if engine.data().dim() != manifest.dim {
        return Err(HammingError::Corrupt(format!(
            "{} indexes {}-dimensional vectors, manifest says {}",
            entry.file_name(),
            engine.data().dim(),
            manifest.dim
        )));
    }
    if engine.tau_max() != manifest.tau_max {
        return Err(HammingError::Corrupt(format!(
            "{} serves tau_max {}, manifest says {}",
            entry.file_name(),
            engine.tau_max(),
            manifest.tau_max
        )));
    }
    Ok(Shard { engine, global_ids })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gph::engine::GphConfig;
    use gph::partition_opt::PartitionStrategy;
    use hamming_core::{BitVector, Dataset};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dataset(dim: usize, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        for _ in 0..n {
            let v = BitVector::from_bits((0..dim).map(|_| rng.random_bool(0.4)));
            ds.push(&v).unwrap();
        }
        ds
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gph_serve_snapshot_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn snapshot_restore_roundtrip_is_query_identical() {
        let ds = random_dataset(64, 250, 301);
        let mut cfg = GphConfig::new(4, 8);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 4 };
        let built = ShardedIndex::build(&ds, 3, &cfg).unwrap();
        let dir = tmp_dir("roundtrip");
        let manifest = built.snapshot(&dir).unwrap();
        assert_eq!(manifest.n_shards, 3);
        assert_eq!(manifest.len, 250);
        let restored = ShardedIndex::restore(&dir).unwrap();
        assert_eq!(restored.num_shards(), built.num_shards());
        assert_eq!(restored.shard_sizes(), built.shard_sizes());
        for qi in [0usize, 17, 101] {
            let q = ds.row(qi);
            for tau in [0u32, 4, 8] {
                assert_eq!(restored.search(q, tau), built.search(q, tau), "qi={qi} tau={tau}");
            }
            assert_eq!(restored.search_topk(q, 7), built.search_topk(q, 7), "qi={qi}");
            assert_eq!(restored.estimate_cost(q, 8), built.estimate_cost(q, 8), "qi={qi}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_corrupt_shard_file() {
        let ds = random_dataset(32, 60, 302);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 2, &cfg).unwrap();
        let dir = tmp_dir("corrupt_shard");
        let manifest = built.snapshot(&dir).unwrap();
        let victim = dir.join(manifest.shards[0].file_name());
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        match ShardedIndex::restore(&dir) {
            Err(HammingError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            Err(other) => panic!("expected Corrupt, got {other}"),
            Ok(_) => panic!("corrupt shard restored"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_corrupt_manifest_and_missing_files() {
        let ds = random_dataset(32, 50, 303);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 2, &cfg).unwrap();
        let dir = tmp_dir("corrupt_manifest");
        let manifest = built.snapshot(&dir).unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&mpath).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&mpath, &bytes).unwrap();
        assert!(matches!(ShardedIndex::restore(&dir), Err(HammingError::Corrupt(_))));
        // Restore the good manifest but delete a shard file.
        built.snapshot(&dir).unwrap();
        std::fs::remove_file(dir.join(manifest.shards[1].file_name())).unwrap();
        assert!(ShardedIndex::restore(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrips_with_empty_slots() {
        // More shards than rows leaves empty slots with no files.
        let ds = random_dataset(32, 5, 304);
        let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(2, 4) };
        let built = ShardedIndex::build(&ds, 8, &cfg).unwrap();
        let dir = tmp_dir("sparse");
        let manifest = built.snapshot(&dir).unwrap();
        assert!(manifest.shards.len() < 8);
        let restored = ShardedIndex::restore(&dir).unwrap();
        assert_eq!(restored.num_shards(), 8);
        assert_eq!(restored.search(ds.row(0), 4), built.search(ds.row(0), 4));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The query service: a worker pool over a bounded MPMC queue, fed by
//! single or batched submissions.
//!
//! Flow per request: **cache lookup** (hit returns immediately) →
//! **admission** (reject / degrade / admit, from the cost estimate) →
//! **enqueue** (bounded queue; `try_submit` sheds load when full) →
//! **worker** scatter-gathers on the [`ShardedIndex`], records metrics,
//! and populates the cache. A [`Ticket`] joins the immediate outcomes
//! (cache hits, rejections) with worker-produced responses in submission
//! order.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats};
use crate::cache::{CacheKey, CacheStats, CachedResult, ResultCache};
use crate::shard::ShardedIndex;
use crate::stats::{ServiceMetrics, ServiceSnapshotStats, ServiceStats};
use crossbeam::channel;
use gph::coldstore::StorageMode;
use gph_obs::{Gauge, MetricsRegistry, QueryTrace, TraceConfig, Tracer};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Service knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. 0 = one per available core
    /// (capped at 8).
    pub workers: usize,
    /// Bounded queue depth, in jobs (a batch is one job).
    pub queue_capacity: usize,
    /// LRU result-cache entries. 0 disables caching.
    pub cache_capacity: usize,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Query-tracing policy (sampling rate, slow-query ring).
    pub trace: TraceConfig,
    /// Where sealed segments live: [`StorageMode::Resident`] keeps every
    /// engine in memory; [`StorageMode::FileBacked`] serves sealed
    /// segments out-of-core from snapshot files through a bounded page
    /// cache. Applied by [`QueryService::warm_start`] at restore time and
    /// inherited by segments sealed while serving.
    pub storage: StorageMode,
    /// Build/restore generation the operator stamps on this service
    /// (bumped per rebuild or warm restart). Reported verbatim by the
    /// network `Health` op so fleet clients can tell a restarted node
    /// from a stale one.
    pub generation: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 1024,
            admission: AdmissionConfig::default(),
            trace: TraceConfig::default(),
            storage: StorageMode::Resident,
            generation: 0,
        }
    }
}

/// One mutation's outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MutationOutcome {
    /// The mutation committed. `replaced` is true when an upsert
    /// displaced a live row (inserts report false, deletes true).
    Applied {
        /// Whether a live row was displaced or removed.
        replaced: bool,
    },
    /// A delete named an id that was not live.
    NotFound,
    /// Admission refused the mutation.
    Rejected {
        /// Estimated cost of the mutation.
        estimated_cost: f64,
        /// Budget it exceeded.
        budget: f64,
    },
}

/// One mutation's response.
#[derive(Clone, Copy, Debug)]
pub struct MutationResponse {
    /// What happened.
    pub outcome: MutationOutcome,
    /// Submit → commit latency in nanoseconds.
    pub latency_ns: u64,
}

/// One request's outcome.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Range search results.
    Ids {
        /// Matching global IDs, ascending (shared with the cache).
        ids: Arc<Vec<u32>>,
        /// Threshold actually executed.
        tau: u32,
        /// Set when admission degraded the query: the threshold the
        /// client asked for.
        degraded_from: Option<u32>,
    },
    /// Top-k results: `(id, distance)` ascending by `(distance, id)`.
    TopK {
        /// The hits (shared with the cache).
        hits: Arc<Vec<(u32, u32)>>,
        /// Set when admission degraded the query: the escalation cap the
        /// search actually ran (below the index's `tau_max`).
        degraded_cap: Option<u32>,
    },
    /// Admission refused the query.
    Rejected {
        /// Estimated cost at the requested threshold.
        estimated_cost: f64,
        /// Budget it exceeded.
        budget: f64,
    },
    /// Load-shed by [`QueryService::try_submit_batch`]: the queue was
    /// full, so the query was never executed.
    Overloaded,
    /// The service shut down before the request was executed.
    Dropped,
}

/// One request's response.
#[derive(Clone, Debug)]
pub struct Response {
    /// What happened.
    pub outcome: Outcome,
    /// Whether the result came from the cache.
    pub from_cache: bool,
    /// Submit → response latency in nanoseconds. Cache hits and
    /// rejections resolve inside `submit`, so theirs measures the
    /// lookup/admission path (sub-microsecond, but real).
    pub latency_ns: u64,
    /// Per-phase trace, present only for requests submitted through
    /// [`QueryService::submit_traced`] that reached the engine.
    pub trace: Option<Box<QueryTrace>>,
}

impl Response {
    /// The result IDs, if the request produced any.
    pub fn ids(&self) -> Option<&[u32]> {
        match &self.outcome {
            Outcome::Ids { ids, .. } => Some(ids),
            _ => None,
        }
    }
}

/// A queued unit of engine work.
enum Work {
    Range {
        query: Vec<u64>,
        /// Threshold to execute (post-admission).
        tau: u32,
        /// Threshold requested (differs when degraded).
        requested_tau: u32,
        /// Always run the traced search and attach the trace to the
        /// response (set by [`QueryService::submit_traced`]).
        want_trace: bool,
    },
    TopK {
        query: Vec<u64>,
        k: usize,
        /// Escalation cap to execute (post-admission; `tau_max` unless
        /// degraded).
        tau_cap: u32,
    },
}

struct Job {
    work: Vec<Work>,
    submitted: Instant,
    reply: channel::Sender<Vec<Response>>,
}

/// How each slot of a ticket resolves.
enum Slot {
    /// Resolved at submit time (cache hit or rejection).
    Ready(Response),
    /// The `i`-th response of the pending job.
    Pending(usize),
}

/// Handle to an in-flight submission; [`Ticket::wait`] blocks for the
/// responses, in the order the requests were submitted.
pub struct Ticket {
    slots: Vec<Slot>,
    rx: Option<channel::Receiver<Vec<Response>>>,
}

impl Ticket {
    /// Blocks until every request in the submission has a response.
    pub fn wait(self) -> Vec<Response> {
        let computed: Vec<Response> = match self.rx {
            Some(rx) => rx.recv().unwrap_or_default(),
            None => Vec::new(),
        };
        self.slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(r) => r,
                Slot::Pending(i) => computed.get(i).cloned().unwrap_or(Response {
                    outcome: Outcome::Dropped,
                    from_cache: false,
                    latency_ns: 0,
                    trace: None,
                }),
            })
            .collect()
    }
}

/// Gauges refreshed at scrape time from the live snapshots, so the
/// exposition never lags the counters it sits next to.
struct ScrapeGauges {
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_invalidations: Gauge,
    cache_len: Gauge,
    cache_capacity: Gauge,
    admission_admitted: Gauge,
    admission_degraded: Gauge,
    admission_rejected: Gauge,
    index_rows: Gauge,
    index_shards: Gauge,
    pagecache_hits: Gauge,
    pagecache_misses: Gauge,
    pagecache_evictions: Gauge,
    pagecache_resident_bytes: Gauge,
}

impl ScrapeGauges {
    fn registered(registry: &MetricsRegistry) -> Self {
        let g = |name: &str, help: &str| registry.gauge(name, help, &[]);
        ScrapeGauges {
            cache_hits: g("gph_cache_hits", "Result-cache lookup hits."),
            cache_misses: g("gph_cache_misses", "Result-cache lookup misses."),
            cache_invalidations: g(
                "gph_cache_invalidations",
                "Whole-cache invalidations triggered by mutations.",
            ),
            cache_len: g("gph_cache_len", "Entries currently resident in the result cache."),
            cache_capacity: g("gph_cache_capacity", "Configured result-cache capacity."),
            admission_admitted: g("gph_admission_admitted", "Queries admitted at full threshold."),
            admission_degraded: g(
                "gph_admission_degraded",
                "Queries degraded to a cheaper threshold.",
            ),
            admission_rejected: g("gph_admission_rejected", "Queries rejected by admission."),
            index_rows: g("gph_index_rows", "Live rows across every shard."),
            index_shards: g("gph_index_shards", "Shards in the serving index."),
            pagecache_hits: g(
                "gph_pagecache_hits",
                "Page-cache hits across file-backed shards (0 when fully resident).",
            ),
            pagecache_misses: g(
                "gph_pagecache_misses",
                "Page-cache misses (each one is a block read from a segment file).",
            ),
            pagecache_evictions: g(
                "gph_pagecache_evictions",
                "Pages evicted to stay within the configured memory budget.",
            ),
            pagecache_resident_bytes: g(
                "gph_pagecache_resident_bytes",
                "Bytes of segment pages currently held in memory.",
            ),
        }
    }
}

struct Shared {
    index: Arc<ShardedIndex>,
    cache: ResultCache,
    admission: AdmissionController,
    metrics: ServiceMetrics,
    registry: Arc<MetricsRegistry>,
    tracer: Tracer,
    gauges: ScrapeGauges,
}

/// The serving front end: admission control + result cache in front of a
/// worker pool scatter-gathering on a [`ShardedIndex`], with live
/// inserts/deletes/upserts applied directly to the owning shard.
///
/// # Example
///
/// ```
/// use gph::engine::GphConfig;
/// use gph::partition_opt::PartitionStrategy;
/// use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
/// use hamming_core::{BitVector, Dataset};
/// use std::sync::Arc;
///
/// // Index a handful of 16-dimensional rows over 2 shards.
/// let rows = ["0000111100001111", "0000111100001010", "1111000011110000"];
/// let data =
///     Dataset::from_vectors(16, rows.iter().map(|s| BitVector::parse(s).unwrap())).unwrap();
/// let mut cfg = GphConfig::new(2, 4);
/// cfg.strategy = PartitionStrategy::Original;
/// let index = Arc::new(ShardedIndex::build(&data, 2, &cfg).unwrap());
///
/// let service = QueryService::new(index, ServiceConfig {
///     workers: 1,
///     ..ServiceConfig::default()
/// });
/// let q = BitVector::parse("0000111100001111").unwrap();
/// assert_eq!(service.query(q.words(), 3).ids().unwrap(), &[0, 1]);
///
/// // Live updates go through the same front end (and invalidate the
/// // result cache).
/// service.delete(1);
/// assert_eq!(service.query(q.words(), 3).ids().unwrap(), &[0]);
/// service.shutdown();
/// ```
pub struct QueryService {
    shared: Arc<Shared>,
    tx: Option<channel::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    generation: u64,
    queue_capacity: usize,
}

impl QueryService {
    /// Spawns the worker pool over `index`.
    pub fn new(index: Arc<ShardedIndex>, cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8)
        };
        let registry = Arc::new(MetricsRegistry::new());
        let shared = Arc::new(Shared {
            index,
            cache: ResultCache::new(cfg.cache_capacity),
            admission: AdmissionController::new(cfg.admission),
            metrics: ServiceMetrics::registered(&registry),
            tracer: Tracer::new(cfg.trace, &registry),
            gauges: ScrapeGauges::registered(&registry),
            registry,
        });
        let (tx, rx) = channel::bounded::<Job>(cfg.queue_capacity.max(1));
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gph-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawning a worker thread")
            })
            .collect();
        QueryService {
            shared,
            tx: Some(tx),
            workers: handles,
            generation: cfg.generation,
            queue_capacity: cfg.queue_capacity.max(1),
        }
    }

    /// Warm-starts a service from a [`ShardedIndex::snapshot`]
    /// directory: restores every shard engine in parallel (no partition
    /// optimization, index construction, or estimator training) and
    /// spawns the worker pool over the restored fleet.
    ///
    /// [`ServiceConfig::storage`] picks the restore path. The default
    /// keeps everything resident. With [`StorageMode::FileBacked`] the
    /// shard snapshots are mapped rather than read — only footers and
    /// metadata load eagerly, so startup stays near constant in corpus
    /// size and the fleet serves corpora larger than the page-cache
    /// budget:
    ///
    /// ```
    /// use gph::coldstore::StorageMode;
    /// use gph::engine::GphConfig;
    /// use gph::partition_opt::PartitionStrategy;
    /// use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
    /// use hamming_core::{BitVector, Dataset};
    ///
    /// let rows = ["0000111100001111", "0000111100001010", "1111000011110000"];
    /// let data =
    ///     Dataset::from_vectors(16, rows.iter().map(|s| BitVector::parse(s).unwrap())).unwrap();
    /// let mut cfg = GphConfig::new(2, 4);
    /// cfg.strategy = PartitionStrategy::Original;
    /// let index = ShardedIndex::build(&data, 2, &cfg).unwrap();
    /// let dir = std::env::temp_dir().join("gph-warm-start-doc");
    /// index.snapshot(&dir).unwrap();
    ///
    /// // Serve the same snapshot out-of-core: sealed segments page
    /// // through a 1 MiB cache instead of loading into memory.
    /// let service = QueryService::warm_start(&dir, ServiceConfig {
    ///     workers: 1,
    ///     storage: StorageMode::FileBacked { budget_bytes: 1 << 20 },
    ///     ..ServiceConfig::default()
    /// }).unwrap();
    /// let q = BitVector::parse("0000111100001111").unwrap();
    /// assert_eq!(service.query(q.words(), 3).ids().unwrap(), &[0, 1]);
    /// service.shutdown();
    /// std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn warm_start<P: AsRef<std::path::Path>>(
        dir: P,
        cfg: ServiceConfig,
    ) -> hamming_core::error::Result<Self> {
        Ok(QueryService::new(Arc::new(ShardedIndex::restore_with_storage(dir, cfg.storage)?), cfg))
    }

    /// Submits one range query; blocks only if the queue is full.
    pub fn submit(&self, query: &[u64], tau: u32) -> Ticket {
        self.submit_batch(&[query], tau)
    }

    /// Submits a batch of range queries at a shared threshold as one
    /// job — workers execute the whole batch back-to-back, amortizing
    /// dispatch. Blocks only if the queue is full.
    pub fn submit_batch(&self, queries: &[&[u64]], tau: u32) -> Ticket {
        self.submit_inner(queries, tau, true)
    }

    /// Like [`QueryService::submit_batch`] but sheds load instead of
    /// blocking: when the queue is full, the queries that would have
    /// queued resolve to [`Outcome::Overloaded`] (cache hits and
    /// admission rejections still resolve normally).
    pub fn try_submit_batch(&self, queries: &[&[u64]], tau: u32) -> Ticket {
        self.submit_inner(queries, tau, false)
    }

    /// Submits one top-k query. Admission prices it at the full
    /// escalation radius (`tau_max`, the cost ceiling threshold
    /// escalation can reach); over-budget queries are degraded to a
    /// smaller escalation cap or rejected per the configured policy.
    pub fn submit_topk(&self, query: &[u64], k: usize) -> Ticket {
        let submitted = Instant::now();
        let tau_max = self.shared.index.tau_max() as u32;
        let key = CacheKey::TopK { query: query.to_vec(), k: k as u32 };
        if let Some(CachedResult::TopK { hits, effective_cap }) = self.shared.cache.lookup(&key) {
            let latency_ns = submitted.elapsed().as_nanos() as u64;
            self.shared.metrics.note_response(latency_ns);
            return Ticket {
                slots: vec![Slot::Ready(Response {
                    outcome: Outcome::TopK {
                        hits,
                        degraded_cap: (effective_cap != tau_max).then_some(effective_cap),
                    },
                    from_cache: true,
                    latency_ns,
                    trace: None,
                })],
                rx: None,
            };
        }
        let tau_cap = match self.shared.admission.evaluate(&self.shared.index, query, tau_max) {
            AdmissionDecision::Admit { .. } => tau_max,
            AdmissionDecision::Degrade { tau, .. } => tau,
            AdmissionDecision::Reject { estimated_cost, budget } => {
                return Ticket {
                    slots: vec![Slot::Ready(Response {
                        outcome: Outcome::Rejected { estimated_cost, budget },
                        from_cache: false,
                        latency_ns: submitted.elapsed().as_nanos() as u64,
                        trace: None,
                    })],
                    rx: None,
                };
            }
        };
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job {
            work: vec![Work::TopK { query: query.to_vec(), k, tau_cap }],
            submitted,
            reply: reply_tx,
        };
        self.send_blocking(job);
        Ticket { slots: vec![Slot::Pending(0)], rx: Some(reply_rx) }
    }

    /// Convenience: submit one range query and wait.
    pub fn query(&self, query: &[u64], tau: u32) -> Response {
        self.submit(query, tau).wait().pop().expect("single submission yields one response")
    }

    /// Convenience: submit one top-k query and wait.
    pub fn query_topk(&self, query: &[u64], k: usize) -> Response {
        self.submit_topk(query, k).wait().pop().expect("single submission yields one response")
    }

    /// Submits one range query that always runs the traced search and
    /// carries its own [`QueryTrace`] in [`Response::trace`]. The cache
    /// is bypassed on lookup (a hit would have no trace to return) but
    /// the result is still stored for later plain queries. Admission
    /// applies as usual; rejected queries have no trace.
    pub fn submit_traced(&self, query: &[u64], tau: u32) -> Ticket {
        let submitted = Instant::now();
        match self.shared.admission.evaluate(&self.shared.index, query, tau) {
            AdmissionDecision::Reject { estimated_cost, budget } => Ticket {
                slots: vec![Slot::Ready(Response {
                    outcome: Outcome::Rejected { estimated_cost, budget },
                    from_cache: false,
                    latency_ns: submitted.elapsed().as_nanos() as u64,
                    trace: None,
                })],
                rx: None,
            },
            decision => {
                let executed = match decision {
                    AdmissionDecision::Degrade { tau: degraded, .. } => degraded,
                    _ => tau,
                };
                let (reply_tx, reply_rx) = channel::bounded(1);
                let job = Job {
                    work: vec![Work::Range {
                        query: query.to_vec(),
                        tau: executed,
                        requested_tau: tau,
                        want_trace: true,
                    }],
                    submitted,
                    reply: reply_tx,
                };
                self.send_blocking(job);
                Ticket { slots: vec![Slot::Pending(0)], rx: Some(reply_rx) }
            }
        }
    }

    /// Convenience: submit one traced range query and wait.
    pub fn query_traced(&self, query: &[u64], tau: u32) -> Response {
        self.submit_traced(query, tau).wait().pop().expect("single submission yields one response")
    }

    /// Inserts `row` under `id`. Priced by the admission controller (an
    /// insert that triggers a segment seal costs a build); applied
    /// mutations invalidate the result cache. Errors if `id` is already
    /// live or the row is malformed.
    pub fn insert(&self, id: u32, row: &[u64]) -> hamming_core::error::Result<MutationResponse> {
        let submitted = Instant::now();
        if let Some(resp) = self.price_mutation(self.shared.index.next_insert_cost(id), submitted) {
            return Ok(resp);
        }
        self.shared.index.insert(id, row)?;
        Ok(self.commit_mutation(MutationOutcome::Applied { replaced: false }, submitted))
    }

    /// Tombstones `id`; [`MutationOutcome::NotFound`] when it was not
    /// live. Applied deletes invalidate the result cache.
    pub fn delete(&self, id: u32) -> MutationResponse {
        let submitted = Instant::now();
        if let Some(resp) = self.price_mutation(self.shared.index.delete_cost(id), submitted) {
            return resp;
        }
        if self.shared.index.delete(id) {
            self.commit_mutation(MutationOutcome::Applied { replaced: true }, submitted)
        } else {
            MutationResponse {
                outcome: MutationOutcome::NotFound,
                latency_ns: submitted.elapsed().as_nanos() as u64,
            }
        }
    }

    /// Inserts `row` under `id`, replacing any live row with that id.
    pub fn upsert(&self, id: u32, row: &[u64]) -> hamming_core::error::Result<MutationResponse> {
        let submitted = Instant::now();
        if let Some(resp) = self.price_mutation(self.shared.index.next_insert_cost(id), submitted) {
            return Ok(resp);
        }
        let replaced = self.shared.index.upsert(id, row)?;
        Ok(self.commit_mutation(MutationOutcome::Applied { replaced }, submitted))
    }

    /// Runs admission on a mutation cost; `Some` is an early rejection.
    fn price_mutation(&self, cost: f64, submitted: Instant) -> Option<MutationResponse> {
        match self.shared.admission.evaluate_mutation(cost) {
            AdmissionDecision::Reject { estimated_cost, budget } => Some(MutationResponse {
                outcome: MutationOutcome::Rejected { estimated_cost, budget },
                latency_ns: submitted.elapsed().as_nanos() as u64,
            }),
            _ => None,
        }
    }

    /// Books an applied mutation: cached results may now be stale, so
    /// the whole cache is invalidated.
    fn commit_mutation(&self, outcome: MutationOutcome, submitted: Instant) -> MutationResponse {
        self.shared.cache.invalidate_all();
        self.shared.metrics.note_mutation();
        MutationResponse { outcome, latency_ns: submitted.elapsed().as_nanos() as u64 }
    }

    fn submit_inner(&self, queries: &[&[u64]], tau: u32, block: bool) -> Ticket {
        let submitted = Instant::now();
        let mut slots = Vec::with_capacity(queries.len());
        let mut work = Vec::new();
        for &query in queries {
            let key = CacheKey::Range { query: query.to_vec(), tau };
            if let Some(CachedResult::Range { ids, effective_tau }) = self.shared.cache.lookup(&key)
            {
                let latency_ns = submitted.elapsed().as_nanos() as u64;
                self.shared.metrics.note_response(latency_ns);
                slots.push(Slot::Ready(Response {
                    outcome: Outcome::Ids {
                        ids,
                        tau: effective_tau,
                        degraded_from: (effective_tau != tau).then_some(tau),
                    },
                    from_cache: true,
                    latency_ns,
                    trace: None,
                }));
                continue;
            }
            match self.shared.admission.evaluate(&self.shared.index, query, tau) {
                AdmissionDecision::Admit { .. } => {
                    slots.push(Slot::Pending(work.len()));
                    work.push(Work::Range {
                        query: query.to_vec(),
                        tau,
                        requested_tau: tau,
                        want_trace: false,
                    });
                }
                AdmissionDecision::Degrade { tau: degraded, .. } => {
                    slots.push(Slot::Pending(work.len()));
                    work.push(Work::Range {
                        query: query.to_vec(),
                        tau: degraded,
                        requested_tau: tau,
                        want_trace: false,
                    });
                }
                AdmissionDecision::Reject { estimated_cost, budget } => {
                    slots.push(Slot::Ready(Response {
                        outcome: Outcome::Rejected { estimated_cost, budget },
                        from_cache: false,
                        latency_ns: submitted.elapsed().as_nanos() as u64,
                        trace: None,
                    }));
                }
            }
        }
        if work.is_empty() {
            return Ticket { slots, rx: None };
        }
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job { work, submitted, reply: reply_tx };
        if block {
            self.send_blocking(job);
        } else if self.try_send(job).is_err() {
            // Queue full: shed exactly the requests that would have
            // queued; already-resolved cache hits and rejections keep
            // their responses.
            for slot in &mut slots {
                if matches!(slot, Slot::Pending(_)) {
                    self.shared.metrics.note_queue_rejection();
                    *slot = Slot::Ready(Response {
                        outcome: Outcome::Overloaded,
                        from_cache: false,
                        latency_ns: submitted.elapsed().as_nanos() as u64,
                        trace: None,
                    });
                }
            }
            return Ticket { slots, rx: None };
        }
        Ticket { slots, rx: Some(reply_rx) }
    }

    fn try_send(&self, job: Job) -> Result<(), ()> {
        match self.tx.as_ref().expect("service is live").try_send(job) {
            Ok(()) => Ok(()),
            Err(channel::TrySendError::Full(_)) | Err(channel::TrySendError::Disconnected(_)) => {
                Err(())
            }
        }
    }

    fn send_blocking(&self, job: Job) {
        // Workers outlive `tx` (joined only after it drops), so a send on
        // a live service cannot fail; a send after shutdown is a bug.
        self.tx
            .as_ref()
            .expect("service is live")
            .send(job)
            .unwrap_or_else(|_| panic!("worker pool disconnected while the service is live"));
    }

    /// The index being served.
    pub fn index(&self) -> &ShardedIndex {
        &self.shared.index
    }

    /// Service-level throughput/latency snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// Result-cache snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Admission-control snapshot.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.admission.stats()
    }

    /// One-call aggregate of service, cache, and admission counters —
    /// the encodable bundle served by the network protocol's `Stats` op.
    pub fn snapshot_stats(&self) -> ServiceSnapshotStats {
        ServiceSnapshotStats {
            service: self.stats(),
            cache: self.cache_stats(),
            admission: self.admission_stats(),
        }
    }

    /// The build/restore generation stamped via
    /// [`ServiceConfig::generation`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Jobs currently queued ahead of the workers (one batch = one
    /// job). Cheap enough to serve from a health probe.
    pub fn queue_depth(&self) -> usize {
        self.tx.as_ref().map(|tx| tx.len()).unwrap_or(0)
    }

    /// The configured queue capacity, in jobs.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Whether the service is degraded: the worker queue is saturated,
    /// so new submissions will block or shed. Health probes report this
    /// so fleet clients can prefer a healthier replica.
    pub fn degraded(&self) -> bool {
        self.queue_depth() >= self.queue_capacity
    }

    /// The metrics registry every service counter/histogram lives in.
    /// Callers may register their own series alongside.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// The query tracer (sampling state + slow-query ring).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Renders the full Prometheus text exposition: refreshes the
    /// scrape-time gauges (cache, admission, index shape) from their
    /// live snapshots, then renders every registered series.
    pub fn metrics_text(&self) -> String {
        let cache = self.shared.cache.stats();
        self.shared.gauges.cache_hits.set(cache.hits);
        self.shared.gauges.cache_misses.set(cache.misses);
        self.shared.gauges.cache_invalidations.set(cache.invalidations);
        self.shared.gauges.cache_len.set(cache.len as u64);
        self.shared.gauges.cache_capacity.set(cache.capacity as u64);
        let admission = self.shared.admission.stats();
        self.shared.gauges.admission_admitted.set(admission.admitted);
        self.shared.gauges.admission_degraded.set(admission.degraded);
        self.shared.gauges.admission_rejected.set(admission.rejected);
        self.shared.gauges.index_rows.set(self.shared.index.len() as u64);
        self.shared.gauges.index_shards.set(self.shared.index.num_shards() as u64);
        let pc = self.shared.index.page_cache_stats().unwrap_or_default();
        self.shared.gauges.pagecache_hits.set(pc.hits);
        self.shared.gauges.pagecache_misses.set(pc.misses);
        self.shared.gauges.pagecache_evictions.set(pc.evictions);
        self.shared.gauges.pagecache_resident_bytes.set(pc.resident_bytes);
        self.shared.registry.render()
    }

    /// Drains the queue and joins the workers. Called automatically on
    /// drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the sender disconnects the channel once queued jobs
        // drain; workers then exit their recv loop.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            handle.join().expect("worker threads never panic");
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(shared: &Shared, rx: &channel::Receiver<Job>) {
    for job in rx.iter() {
        shared.metrics.note_batch();
        let mut responses = Vec::with_capacity(job.work.len());
        for work in &job.work {
            // Captured before the search: if a mutation invalidates the
            // cache while the search runs, the store below is dropped
            // instead of resurrecting a stale result.
            let epoch = shared.cache.epoch();
            let response = match work {
                Work::Range { query, tau, requested_tau, want_trace } => {
                    // Traced either on request or by the sampler; the
                    // trace feeds the phase histograms and slow-query
                    // ring either way, but rides the response only when
                    // the client asked for it.
                    let (res, trace) = if *want_trace || shared.tracer.should_sample() {
                        let (res, trace) = shared.index.search_traced(query, *tau);
                        shared.tracer.record(&trace);
                        (res, want_trace.then(|| Box::new(trace)))
                    } else {
                        (shared.index.search_with_stats(query, *tau), None)
                    };
                    let candidates: u64 = res.shard_stats.iter().map(|s| s.n_candidates).sum();
                    let scanned: u64 = res.shard_stats.iter().map(|s| s.n_scanned).sum();
                    let ids = Arc::new(res.ids);
                    shared.metrics.note_execution(candidates, scanned, ids.len() as u64);
                    shared.cache.store_if_current(
                        epoch,
                        CacheKey::Range { query: query.clone(), tau: *requested_tau },
                        CachedResult::Range { ids: Arc::clone(&ids), effective_tau: *tau },
                    );
                    Response {
                        outcome: Outcome::Ids {
                            ids,
                            tau: *tau,
                            degraded_from: (tau != requested_tau).then_some(*requested_tau),
                        },
                        from_cache: false,
                        latency_ns: job.submitted.elapsed().as_nanos() as u64,
                        trace,
                    }
                }
                Work::TopK { query, k, tau_cap } => {
                    let hits = Arc::new(shared.index.search_topk_within(query, *k, *tau_cap));
                    shared.metrics.note_execution(0, 0, hits.len() as u64);
                    shared.cache.store_if_current(
                        epoch,
                        CacheKey::TopK { query: query.clone(), k: *k as u32 },
                        CachedResult::TopK { hits: Arc::clone(&hits), effective_cap: *tau_cap },
                    );
                    let tau_max = shared.index.tau_max() as u32;
                    Response {
                        outcome: Outcome::TopK {
                            hits,
                            degraded_cap: (*tau_cap != tau_max).then_some(*tau_cap),
                        },
                        from_cache: false,
                        latency_ns: job.submitted.elapsed().as_nanos() as u64,
                        trace: None,
                    }
                }
            };
            shared.metrics.note_response(response.latency_ns);
            responses.push(response);
        }
        // The ticket may have been dropped without waiting; that's fine.
        let _ = job.reply.send(responses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::OverBudgetPolicy;
    use gph::engine::GphConfig;
    use gph::partition_opt::PartitionStrategy;
    use hamming_core::{BitVector, Dataset};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture(n: usize, seed: u64) -> (Arc<ShardedIndex>, Dataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ds = Dataset::new(64);
        for _ in 0..n {
            let v = BitVector::from_bits((0..64).map(|_| rng.random_bool(0.4)));
            ds.push(&v).unwrap();
        }
        let mut cfg = GphConfig::new(4, 12);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 3 };
        (Arc::new(ShardedIndex::build(&ds, 3, &cfg).unwrap()), ds)
    }

    #[test]
    fn single_query_round_trip_matches_index() {
        let (index, ds) = fixture(400, 201);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        let q = ds.row(7);
        let resp = service.query(q, 6);
        assert!(!resp.from_cache);
        assert_eq!(resp.ids().unwrap(), index.search(q, 6).as_slice());
        assert!(matches!(resp.outcome, Outcome::Ids { degraded_from: None, .. }));
        service.shutdown();
    }

    #[test]
    fn repeat_query_hits_cache() {
        let (index, ds) = fixture(300, 202);
        let service = QueryService::new(index, ServiceConfig::default());
        let q = ds.row(3);
        let first = service.query(q, 5);
        let second = service.query(q, 5);
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.ids().unwrap(), second.ids().unwrap());
        let cs = service.cache_stats();
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.misses, 1);
        let st = service.stats();
        assert_eq!(st.responses, 2);
        assert_eq!(st.executed, 1);
    }

    #[test]
    fn batch_preserves_submission_order() {
        let (index, ds) = fixture(300, 203);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        let queries: Vec<&[u64]> = (0..6).map(|i| ds.row(i * 10)).collect();
        let responses = service.submit_batch(&queries, 6).wait();
        assert_eq!(responses.len(), queries.len());
        for (q, resp) in queries.iter().zip(&responses) {
            assert_eq!(resp.ids().unwrap(), index.search(q, 6).as_slice());
        }
        assert_eq!(service.stats().batches, 1, "one batch = one job");
    }

    #[test]
    fn zero_budget_rejects_via_service() {
        let (index, ds) = fixture(300, 204);
        let cfg = ServiceConfig {
            admission: AdmissionConfig { cost_budget: 0.0, policy: OverBudgetPolicy::Reject },
            ..ServiceConfig::default()
        };
        let service = QueryService::new(index, cfg);
        let resp = service.query(ds.row(0), 12);
        assert!(matches!(resp.outcome, Outcome::Rejected { .. }));
        assert_eq!(service.admission_stats().rejected, 1);
        // Rejected responses are not counted as served.
        assert_eq!(service.stats().responses, 0);
    }

    #[test]
    fn degraded_query_notes_original_tau_and_caches() {
        let (index, ds) = fixture(500, 205);
        let q = ds.row(1);
        let lo = index.estimate_cost(q, 1);
        let hi = index.estimate_cost(q, 12);
        if hi <= lo {
            return; // degenerate fixture; covered by admission unit tests
        }
        let budget = (lo + hi) / 2.0;
        let cfg = ServiceConfig {
            admission: AdmissionConfig {
                cost_budget: budget,
                policy: OverBudgetPolicy::Degrade { min_tau: 0 },
            },
            ..ServiceConfig::default()
        };
        let service = QueryService::new(Arc::clone(&index), cfg);
        let resp = service.query(q, 12);
        match &resp.outcome {
            Outcome::Ids { ids, tau, degraded_from } => {
                assert_eq!(*degraded_from, Some(12));
                assert!(*tau < 12);
                assert_eq!(**ids, index.search(q, *tau));
            }
            other => panic!("expected degraded ids, got {other:?}"),
        }
        // The repeat hits the cache under the *requested* tau and keeps
        // the degradation marker.
        let again = service.query(q, 12);
        assert!(again.from_cache);
        assert!(matches!(again.outcome, Outcome::Ids { degraded_from: Some(12), .. }));
    }

    #[test]
    fn topk_round_trip_and_cache() {
        let (index, ds) = fixture(300, 206);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        let q = ds.row(2);
        let first = service.query_topk(q, 5);
        match &first.outcome {
            Outcome::TopK { hits, degraded_cap } => {
                assert_eq!(**hits, index.search_topk(q, 5));
                assert_eq!(*degraded_cap, None);
            }
            other => panic!("expected topk, got {other:?}"),
        }
        assert!(service.query_topk(q, 5).from_cache);
        // Different k is a different key.
        assert!(!service.query_topk(q, 4).from_cache);
    }

    #[test]
    fn topk_is_subject_to_admission() {
        let (index, ds) = fixture(500, 210);
        let q = ds.row(4);
        // Reject policy with a zero budget refuses top-k outright.
        let reject = QueryService::new(
            Arc::clone(&index),
            ServiceConfig {
                admission: AdmissionConfig { cost_budget: 0.0, policy: OverBudgetPolicy::Reject },
                ..ServiceConfig::default()
            },
        );
        assert!(matches!(reject.query_topk(q, 5).outcome, Outcome::Rejected { .. }));

        // Degrade policy caps the escalation radius instead; the result
        // matches the capped search and the repeat keeps the marker.
        let lo = index.estimate_cost(q, 1);
        let hi = index.estimate_cost(q, 12);
        if hi <= lo {
            return; // degenerate fixture; covered by admission unit tests
        }
        let degrade = QueryService::new(
            Arc::clone(&index),
            ServiceConfig {
                admission: AdmissionConfig {
                    cost_budget: (lo + hi) / 2.0,
                    policy: OverBudgetPolicy::Degrade { min_tau: 0 },
                },
                ..ServiceConfig::default()
            },
        );
        let resp = degrade.query_topk(q, 5);
        match &resp.outcome {
            Outcome::TopK { hits, degraded_cap: Some(cap) } => {
                assert!(*cap < 12);
                assert_eq!(**hits, index.search_topk_within(q, 5, *cap));
            }
            other => panic!("expected degraded topk, got {other:?}"),
        }
        let again = degrade.query_topk(q, 5);
        assert!(again.from_cache);
        assert!(matches!(again.outcome, Outcome::TopK { degraded_cap: Some(_), .. }));
    }

    #[test]
    fn concurrent_submissions_all_answered() {
        let (index, ds) = fixture(400, 207);
        let cfg = ServiceConfig { workers: 3, queue_capacity: 4, ..ServiceConfig::default() };
        let service = QueryService::new(Arc::clone(&index), cfg);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..8usize)
                .map(|i| {
                    let service = &service;
                    let ds = &ds;
                    let index = &index;
                    scope.spawn(move |_| {
                        let q = ds.row(i * 13);
                        let resp = service.query(q, 6);
                        assert_eq!(resp.ids().unwrap(), index.search(q, 6).as_slice());
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        let st = service.stats();
        assert_eq!(st.responses, 8);
        assert!(st.latency_p99_ns >= st.latency_p50_ns);
        assert!(st.qps > 0.0);
    }

    #[test]
    fn try_submit_sheds_load_when_queue_full() {
        let (index, ds) = fixture(200, 208);
        // One worker, capacity-1 queue: saturate it, then try_submit must
        // resolve shed queries as Overloaded rather than blocking.
        let cfg = ServiceConfig { workers: 1, queue_capacity: 1, ..ServiceConfig::default() };
        let service = QueryService::new(index, cfg);
        let queries: Vec<&[u64]> = (0..40).map(|i| ds.row(i * 5)).collect();
        let tickets: Vec<Ticket> =
            queries.iter().map(|q| service.try_submit_batch(&[q], 8)).collect();
        let mut shed = 0u64;
        for t in tickets {
            for resp in t.wait() {
                match resp.outcome {
                    Outcome::Ids { .. } => assert!(resp.ids().is_some()),
                    Outcome::Overloaded => shed += 1,
                    ref other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(service.stats().queue_rejections, shed);
    }

    #[test]
    fn try_submit_keeps_cache_hits_when_queue_full() {
        let (index, ds) = fixture(200, 211);
        let cfg = ServiceConfig { workers: 1, queue_capacity: 1, ..ServiceConfig::default() };
        let service = QueryService::new(index, cfg);
        let hot = ds.row(0);
        // Warm the cache, then flood: mixed batches must still resolve
        // the cached query even when their fresh queries are shed.
        let _ = service.query(hot, 8);
        let mut saw_shed_batch_with_hit = false;
        for i in 1..40usize {
            let batch: [&[u64]; 2] = [hot, ds.row(i * 5)];
            let responses = service.try_submit_batch(&batch, 8).wait();
            assert_eq!(responses.len(), 2);
            assert!(responses[0].from_cache, "hot query always resolves from cache");
            assert!(responses[0].ids().is_some());
            if matches!(responses[1].outcome, Outcome::Overloaded) {
                saw_shed_batch_with_hit = true;
            }
        }
        // With a capacity-1 queue and 39 rapid submissions, at least one
        // batch must have been shed while its cache hit resolved.
        assert!(saw_shed_batch_with_hit || service.stats().queue_rejections == 0);
    }

    #[test]
    fn mutations_invalidate_the_cache() {
        let (index, ds) = fixture(300, 212);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        let q = ds.row(3);
        let before = service.query(q, 6);
        assert!(service.query(q, 6).from_cache, "repeat hits the cache");
        // Delete one of the results: the cached entry must not survive.
        let victim = before.ids().unwrap()[0];
        let resp = service.delete(victim);
        assert_eq!(resp.outcome, MutationOutcome::Applied { replaced: true });
        let after = service.query(q, 6);
        assert!(!after.from_cache, "mutation invalidated the cache");
        assert!(!after.ids().unwrap().contains(&victim));
        assert_eq!(service.cache_stats().invalidations, 1);
        assert_eq!(service.stats().mutations, 1);
        // Deleting an unknown id is NotFound and does not invalidate.
        assert_eq!(service.delete(victim).outcome, MutationOutcome::NotFound);
        assert_eq!(service.cache_stats().invalidations, 1);
    }

    #[test]
    fn insert_and_upsert_serve_immediately() {
        let (index, ds) = fixture(200, 213);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        let fresh = ds.row(0).to_vec();
        let resp = service.insert(9000, &fresh).unwrap();
        assert_eq!(resp.outcome, MutationOutcome::Applied { replaced: false });
        assert!(service.query(&fresh, 0).ids().unwrap().contains(&9000));
        assert!(service.insert(9000, &fresh).is_err(), "duplicate insert errors");
        let resp = service.upsert(9000, ds.row(1)).unwrap();
        assert_eq!(resp.outcome, MutationOutcome::Applied { replaced: true });
        assert!(!service.query(&fresh, 0).ids().unwrap().contains(&9000));
    }

    #[test]
    fn zero_budget_rejects_mutations() {
        let (index, ds) = fixture(200, 214);
        let cfg = ServiceConfig {
            admission: AdmissionConfig { cost_budget: 0.0, policy: OverBudgetPolicy::Reject },
            ..ServiceConfig::default()
        };
        let service = QueryService::new(Arc::clone(&index), cfg);
        let len_before = index.len();
        let resp = service.insert(9000, ds.row(0)).unwrap();
        assert!(matches!(resp.outcome, MutationOutcome::Rejected { .. }));
        assert!(matches!(service.delete(0).outcome, MutationOutcome::Rejected { .. }));
        assert_eq!(index.len(), len_before, "rejected mutations must not apply");
        assert_eq!(service.stats().mutations, 0);
    }

    #[test]
    fn shutdown_completes_queued_work() {
        let (index, ds) = fixture(200, 209);
        let service =
            QueryService::new(index, ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let tickets: Vec<Ticket> = (0..10).map(|i| service.submit(ds.row(i * 7), 6)).collect();
        service.shutdown(); // queued jobs drain before workers exit
        for t in tickets {
            assert!(t.wait()[0].ids().is_some());
        }
    }

    #[test]
    fn traced_query_matches_plain_and_bounds_phase_sum() {
        let (index, ds) = fixture(400, 215);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        let q = ds.row(11);
        let resp = service.query_traced(q, 6);
        assert!(!resp.from_cache);
        assert_eq!(resp.ids().unwrap(), index.search(q, 6).as_slice());
        let trace = resp.trace.as_ref().expect("traced query carries its trace");
        assert_eq!(trace.tau, 6);
        assert_eq!(trace.shards.len(), index.num_shards());
        // Phase work happens inside the traced wall time, which happens
        // inside the submit → response latency.
        assert!(trace.phase_totals().total() <= trace.total_ns);
        assert!(trace.total_ns <= resp.latency_ns);
        // Plain queries never carry a trace, even after a traced one.
        assert!(service.query(ds.row(12), 6).trace.is_none());
    }

    #[test]
    fn traced_query_bypasses_cache_lookup_but_stores() {
        let (index, ds) = fixture(300, 216);
        let service = QueryService::new(index, ServiceConfig::default());
        let q = ds.row(2);
        assert!(!service.query(q, 5).from_cache);
        let traced = service.query_traced(q, 5);
        assert!(!traced.from_cache, "a cache hit would have no trace");
        assert!(traced.trace.is_some());
        assert!(service.query(q, 5).from_cache);
    }

    #[test]
    fn sampled_tracing_feeds_histograms_and_slow_ring() {
        let (index, ds) = fixture(300, 217);
        let cfg = ServiceConfig {
            trace: gph_obs::TraceConfig { sample_every: 1, slow_threshold_ns: 0, ring_capacity: 4 },
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let service = QueryService::new(index, cfg);
        for i in 0..6 {
            assert!(service.query(ds.row(i), 5).trace.is_none(), "sampling is invisible");
        }
        let slow = service.tracer().slow_queries();
        assert_eq!(slow.len(), 4, "ring holds the most recent traces up to capacity");
        let text = service.metrics_text();
        assert!(text.contains("gph_query_phase_ns{phase=\"verify\",quantile=\"0.5\"}"));
    }

    #[test]
    fn metrics_text_reflects_live_state() {
        let (index, ds) = fixture(300, 218);
        let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());
        service.query(ds.row(0), 5);
        service.query(ds.row(0), 5);
        let text = service.metrics_text();
        assert!(text.contains("\ngph_responses_total 2\n"), "exposition:\n{text}");
        assert!(text.contains("\ngph_executed_total 1\n"));
        assert!(text.contains("\ngph_cache_hits 1\n"));
        assert!(text.contains(&format!("\ngph_index_rows {}\n", index.len())));
        assert!(text.contains(&format!("\ngph_index_shards {}\n", index.num_shards())));
        // A fully resident fleet still exposes the page-cache series,
        // pinned at zero.
        assert!(text.contains("\ngph_pagecache_hits 0\n"));
        assert!(text.contains("\ngph_pagecache_resident_bytes 0\n"));
    }
}

//! # gph-serve
//!
//! Serving layer over the [`gph`] engine: the subsystem that turns the
//! paper's single in-process index into something shaped like a query
//! service. Multi-Index Hashing and FAISS both scale the same way — shard
//! the data, batch the queries, cache the answers — and this crate is
//! that path for GPH:
//!
//! ```text
//!                 ┌────────────────────── QueryService ─────────────────────┐
//!  submit(q, τ) ─▶│ result cache ──▶ admission control ──▶ bounded queue    │
//!  (single/batch) │   (LRU,             (cost budget:        (MPMC,         │
//!                 │    hit/miss)         reject/degrade)      backpressure) │
//!                 │                                             │           │
//!                 │                                      worker pool        │
//!                 └─────────────────────────────────────────────┼───────────┘
//!                                                               ▼
//!                                     ShardedIndex: scatter ▶ S × Gph ▶ gather
//! ```
//!
//! * [`ShardedIndex`] routes records to `S` shards by stable hash of the
//!   record ID and keeps one live-updatable [`gph::SegmentedGph`] per
//!   shard behind an `RwLock`, so the fleet serves
//!   `insert`/`delete`/`upsert` alongside queries. Scatter-gather answers
//!   `search`/`search_topk` with a merge that is provably identical to a
//!   single index over the surviving rows (top-k uses a two-phase
//!   threshold-refinement pass; property tests pin the equivalence down,
//!   including under interleaved mutations).
//! * [`QueryService`] runs a worker pool over a bounded MPMC queue,
//!   accepts single and batched requests, applies cost-based admission
//!   control from [`gph::Gph::estimate_cost`] (reject or degrade
//!   over-budget queries), and aggregates per-shard [`gph::QueryStats`]
//!   into service-level stats — QPS, latency p50/p95/p99, candidates per
//!   query.
//! * [`ResultCache`] is an LRU keyed by `(query words, τ)` with hit/miss
//!   counters, checked before dispatch.
//! * [`snapshot`] persists the whole fleet: one checksummed engine
//!   snapshot per shard plus a manifest, so
//!   [`QueryService::warm_start`] brings a service up from disk without
//!   re-running partition optimization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod stats;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats, OverBudgetPolicy,
};
pub use cache::{CacheKey, CacheStats, CachedResult, LruCache, ResultCache};
pub use service::{
    MutationOutcome, MutationResponse, Outcome, QueryService, Response, ServiceConfig, Ticket,
};
pub use shard::{merge_topk, ShardedIndex, ShardedSearchResult};
pub use snapshot::{read_manifest, ShardEntry, ShardManifest, MANIFEST_FILE};
pub use stats::{LatencyHistogram, ServiceSnapshotStats, ServiceStats};

#[cfg(test)]
mod tests {
    #[test]
    fn service_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ShardedIndex>();
        assert_send_sync::<crate::QueryService>();
        assert_send_sync::<crate::ResultCache>();
    }
}
